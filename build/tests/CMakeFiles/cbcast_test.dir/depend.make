# Empty dependencies file for cbcast_test.
# This may be replaced when dependencies are built.
