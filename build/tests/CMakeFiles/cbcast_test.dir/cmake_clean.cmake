file(REMOVE_RECURSE
  "CMakeFiles/cbcast_test.dir/cbcast_test.cc.o"
  "CMakeFiles/cbcast_test.dir/cbcast_test.cc.o.d"
  "cbcast_test"
  "cbcast_test.pdb"
  "cbcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cbcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
