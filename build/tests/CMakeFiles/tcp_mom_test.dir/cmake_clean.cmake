file(REMOVE_RECURSE
  "CMakeFiles/tcp_mom_test.dir/tcp_mom_test.cc.o"
  "CMakeFiles/tcp_mom_test.dir/tcp_mom_test.cc.o.d"
  "tcp_mom_test"
  "tcp_mom_test.pdb"
  "tcp_mom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_mom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
