# Empty compiler generated dependencies file for tcp_mom_test.
# This may be replaced when dependencies are built.
