file(REMOVE_RECURSE
  "CMakeFiles/updates_tracker_test.dir/updates_tracker_test.cc.o"
  "CMakeFiles/updates_tracker_test.dir/updates_tracker_test.cc.o.d"
  "updates_tracker_test"
  "updates_tracker_test.pdb"
  "updates_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updates_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
