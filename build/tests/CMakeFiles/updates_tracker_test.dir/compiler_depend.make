# Empty compiler generated dependencies file for updates_tracker_test.
# This may be replaced when dependencies are built.
