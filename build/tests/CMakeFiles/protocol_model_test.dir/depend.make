# Empty dependencies file for protocol_model_test.
# This may be replaced when dependencies are built.
