file(REMOVE_RECURSE
  "CMakeFiles/protocol_model_test.dir/protocol_model_test.cc.o"
  "CMakeFiles/protocol_model_test.dir/protocol_model_test.cc.o.d"
  "protocol_model_test"
  "protocol_model_test.pdb"
  "protocol_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
