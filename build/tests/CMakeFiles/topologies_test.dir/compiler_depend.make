# Empty compiler generated dependencies file for topologies_test.
# This may be replaced when dependencies are built.
