file(REMOVE_RECURSE
  "CMakeFiles/inproc_network_test.dir/inproc_network_test.cc.o"
  "CMakeFiles/inproc_network_test.dir/inproc_network_test.cc.o.d"
  "inproc_network_test"
  "inproc_network_test.pdb"
  "inproc_network_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inproc_network_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
