# Empty compiler generated dependencies file for inproc_network_test.
# This may be replaced when dependencies are built.
