file(REMOVE_RECURSE
  "CMakeFiles/logical_clocks_test.dir/logical_clocks_test.cc.o"
  "CMakeFiles/logical_clocks_test.dir/logical_clocks_test.cc.o.d"
  "logical_clocks_test"
  "logical_clocks_test.pdb"
  "logical_clocks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_clocks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
