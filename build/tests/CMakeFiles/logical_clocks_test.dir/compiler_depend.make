# Empty compiler generated dependencies file for logical_clocks_test.
# This may be replaced when dependencies are built.
