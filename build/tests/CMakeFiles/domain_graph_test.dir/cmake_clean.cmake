file(REMOVE_RECURSE
  "CMakeFiles/domain_graph_test.dir/domain_graph_test.cc.o"
  "CMakeFiles/domain_graph_test.dir/domain_graph_test.cc.o.d"
  "domain_graph_test"
  "domain_graph_test.pdb"
  "domain_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
