# Empty dependencies file for domain_graph_test.
# This may be replaced when dependencies are built.
