file(REMOVE_RECURSE
  "CMakeFiles/agent_server_test.dir/agent_server_test.cc.o"
  "CMakeFiles/agent_server_test.dir/agent_server_test.cc.o.d"
  "agent_server_test"
  "agent_server_test.pdb"
  "agent_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agent_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
