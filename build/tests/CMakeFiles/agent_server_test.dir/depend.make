# Empty dependencies file for agent_server_test.
# This may be replaced when dependencies are built.
