file(REMOVE_RECURSE
  "CMakeFiles/ids_status_test.dir/ids_status_test.cc.o"
  "CMakeFiles/ids_status_test.dir/ids_status_test.cc.o.d"
  "ids_status_test"
  "ids_status_test.pdb"
  "ids_status_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
