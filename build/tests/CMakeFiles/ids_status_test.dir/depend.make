# Empty dependencies file for ids_status_test.
# This may be replaced when dependencies are built.
