file(REMOVE_RECURSE
  "CMakeFiles/threaded_harness_test.dir/threaded_harness_test.cc.o"
  "CMakeFiles/threaded_harness_test.dir/threaded_harness_test.cc.o.d"
  "threaded_harness_test"
  "threaded_harness_test.pdb"
  "threaded_harness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threaded_harness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
