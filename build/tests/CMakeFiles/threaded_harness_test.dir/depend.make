# Empty dependencies file for threaded_harness_test.
# This may be replaced when dependencies are built.
