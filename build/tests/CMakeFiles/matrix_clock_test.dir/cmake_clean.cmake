file(REMOVE_RECURSE
  "CMakeFiles/matrix_clock_test.dir/matrix_clock_test.cc.o"
  "CMakeFiles/matrix_clock_test.dir/matrix_clock_test.cc.o.d"
  "matrix_clock_test"
  "matrix_clock_test.pdb"
  "matrix_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
