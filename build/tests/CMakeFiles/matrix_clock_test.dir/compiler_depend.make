# Empty compiler generated dependencies file for matrix_clock_test.
# This may be replaced when dependencies are built.
