# Empty dependencies file for causal_clock_test.
# This may be replaced when dependencies are built.
