
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/causal_clock_test.cc" "tests/CMakeFiles/causal_clock_test.dir/causal_clock_test.cc.o" "gcc" "tests/CMakeFiles/causal_clock_test.dir/causal_clock_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/cmom_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pubsub/CMakeFiles/cmom_pubsub.dir/DependInfo.cmake"
  "/root/repo/build/src/mom/CMakeFiles/cmom_mom.dir/DependInfo.cmake"
  "/root/repo/build/src/causality/CMakeFiles/cmom_causality.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/cmom_domains.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/cmom_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/cmom_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/clocks/CMakeFiles/cmom_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
