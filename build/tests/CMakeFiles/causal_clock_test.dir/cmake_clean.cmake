file(REMOVE_RECURSE
  "CMakeFiles/causal_clock_test.dir/causal_clock_test.cc.o"
  "CMakeFiles/causal_clock_test.dir/causal_clock_test.cc.o.d"
  "causal_clock_test"
  "causal_clock_test.pdb"
  "causal_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
