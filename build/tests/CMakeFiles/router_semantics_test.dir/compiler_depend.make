# Empty compiler generated dependencies file for router_semantics_test.
# This may be replaced when dependencies are built.
