file(REMOVE_RECURSE
  "CMakeFiles/router_semantics_test.dir/router_semantics_test.cc.o"
  "CMakeFiles/router_semantics_test.dir/router_semantics_test.cc.o.d"
  "router_semantics_test"
  "router_semantics_test.pdb"
  "router_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
