# Empty dependencies file for cycle_demo.
# This may be replaced when dependencies are built.
