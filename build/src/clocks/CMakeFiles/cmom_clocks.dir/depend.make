# Empty dependencies file for cmom_clocks.
# This may be replaced when dependencies are built.
