file(REMOVE_RECURSE
  "CMakeFiles/cmom_clocks.dir/causal_clock.cc.o"
  "CMakeFiles/cmom_clocks.dir/causal_clock.cc.o.d"
  "CMakeFiles/cmom_clocks.dir/cbcast.cc.o"
  "CMakeFiles/cmom_clocks.dir/cbcast.cc.o.d"
  "CMakeFiles/cmom_clocks.dir/matrix_clock.cc.o"
  "CMakeFiles/cmom_clocks.dir/matrix_clock.cc.o.d"
  "CMakeFiles/cmom_clocks.dir/stamp.cc.o"
  "CMakeFiles/cmom_clocks.dir/stamp.cc.o.d"
  "CMakeFiles/cmom_clocks.dir/updates_tracker.cc.o"
  "CMakeFiles/cmom_clocks.dir/updates_tracker.cc.o.d"
  "CMakeFiles/cmom_clocks.dir/vector_clock.cc.o"
  "CMakeFiles/cmom_clocks.dir/vector_clock.cc.o.d"
  "libcmom_clocks.a"
  "libcmom_clocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_clocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
