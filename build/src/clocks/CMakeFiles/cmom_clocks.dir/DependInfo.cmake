
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clocks/causal_clock.cc" "src/clocks/CMakeFiles/cmom_clocks.dir/causal_clock.cc.o" "gcc" "src/clocks/CMakeFiles/cmom_clocks.dir/causal_clock.cc.o.d"
  "/root/repo/src/clocks/cbcast.cc" "src/clocks/CMakeFiles/cmom_clocks.dir/cbcast.cc.o" "gcc" "src/clocks/CMakeFiles/cmom_clocks.dir/cbcast.cc.o.d"
  "/root/repo/src/clocks/matrix_clock.cc" "src/clocks/CMakeFiles/cmom_clocks.dir/matrix_clock.cc.o" "gcc" "src/clocks/CMakeFiles/cmom_clocks.dir/matrix_clock.cc.o.d"
  "/root/repo/src/clocks/stamp.cc" "src/clocks/CMakeFiles/cmom_clocks.dir/stamp.cc.o" "gcc" "src/clocks/CMakeFiles/cmom_clocks.dir/stamp.cc.o.d"
  "/root/repo/src/clocks/updates_tracker.cc" "src/clocks/CMakeFiles/cmom_clocks.dir/updates_tracker.cc.o" "gcc" "src/clocks/CMakeFiles/cmom_clocks.dir/updates_tracker.cc.o.d"
  "/root/repo/src/clocks/vector_clock.cc" "src/clocks/CMakeFiles/cmom_clocks.dir/vector_clock.cc.o" "gcc" "src/clocks/CMakeFiles/cmom_clocks.dir/vector_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmom_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
