file(REMOVE_RECURSE
  "libcmom_clocks.a"
)
