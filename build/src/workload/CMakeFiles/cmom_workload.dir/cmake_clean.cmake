file(REMOVE_RECURSE
  "CMakeFiles/cmom_workload.dir/agents.cc.o"
  "CMakeFiles/cmom_workload.dir/agents.cc.o.d"
  "CMakeFiles/cmom_workload.dir/experiments.cc.o"
  "CMakeFiles/cmom_workload.dir/experiments.cc.o.d"
  "CMakeFiles/cmom_workload.dir/fit.cc.o"
  "CMakeFiles/cmom_workload.dir/fit.cc.o.d"
  "CMakeFiles/cmom_workload.dir/metrics.cc.o"
  "CMakeFiles/cmom_workload.dir/metrics.cc.o.d"
  "CMakeFiles/cmom_workload.dir/sim_harness.cc.o"
  "CMakeFiles/cmom_workload.dir/sim_harness.cc.o.d"
  "CMakeFiles/cmom_workload.dir/threaded_harness.cc.o"
  "CMakeFiles/cmom_workload.dir/threaded_harness.cc.o.d"
  "libcmom_workload.a"
  "libcmom_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
