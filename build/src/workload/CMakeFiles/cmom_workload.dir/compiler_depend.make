# Empty compiler generated dependencies file for cmom_workload.
# This may be replaced when dependencies are built.
