file(REMOVE_RECURSE
  "libcmom_workload.a"
)
