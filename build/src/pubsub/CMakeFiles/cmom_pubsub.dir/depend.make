# Empty dependencies file for cmom_pubsub.
# This may be replaced when dependencies are built.
