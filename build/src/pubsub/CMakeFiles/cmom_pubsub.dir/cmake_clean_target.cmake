file(REMOVE_RECURSE
  "libcmom_pubsub.a"
)
