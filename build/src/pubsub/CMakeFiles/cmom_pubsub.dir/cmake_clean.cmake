file(REMOVE_RECURSE
  "CMakeFiles/cmom_pubsub.dir/queue.cc.o"
  "CMakeFiles/cmom_pubsub.dir/queue.cc.o.d"
  "CMakeFiles/cmom_pubsub.dir/topic.cc.o"
  "CMakeFiles/cmom_pubsub.dir/topic.cc.o.d"
  "libcmom_pubsub.a"
  "libcmom_pubsub.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_pubsub.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
