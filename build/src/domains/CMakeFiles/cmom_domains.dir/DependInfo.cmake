
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/domains/config_io.cc" "src/domains/CMakeFiles/cmom_domains.dir/config_io.cc.o" "gcc" "src/domains/CMakeFiles/cmom_domains.dir/config_io.cc.o.d"
  "/root/repo/src/domains/deployment.cc" "src/domains/CMakeFiles/cmom_domains.dir/deployment.cc.o" "gcc" "src/domains/CMakeFiles/cmom_domains.dir/deployment.cc.o.d"
  "/root/repo/src/domains/domain_graph.cc" "src/domains/CMakeFiles/cmom_domains.dir/domain_graph.cc.o" "gcc" "src/domains/CMakeFiles/cmom_domains.dir/domain_graph.cc.o.d"
  "/root/repo/src/domains/routing.cc" "src/domains/CMakeFiles/cmom_domains.dir/routing.cc.o" "gcc" "src/domains/CMakeFiles/cmom_domains.dir/routing.cc.o.d"
  "/root/repo/src/domains/splitter.cc" "src/domains/CMakeFiles/cmom_domains.dir/splitter.cc.o" "gcc" "src/domains/CMakeFiles/cmom_domains.dir/splitter.cc.o.d"
  "/root/repo/src/domains/topologies.cc" "src/domains/CMakeFiles/cmom_domains.dir/topologies.cc.o" "gcc" "src/domains/CMakeFiles/cmom_domains.dir/topologies.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmom_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clocks/CMakeFiles/cmom_clocks.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
