# Empty dependencies file for cmom_domains.
# This may be replaced when dependencies are built.
