file(REMOVE_RECURSE
  "libcmom_domains.a"
)
