file(REMOVE_RECURSE
  "CMakeFiles/cmom_domains.dir/config_io.cc.o"
  "CMakeFiles/cmom_domains.dir/config_io.cc.o.d"
  "CMakeFiles/cmom_domains.dir/deployment.cc.o"
  "CMakeFiles/cmom_domains.dir/deployment.cc.o.d"
  "CMakeFiles/cmom_domains.dir/domain_graph.cc.o"
  "CMakeFiles/cmom_domains.dir/domain_graph.cc.o.d"
  "CMakeFiles/cmom_domains.dir/routing.cc.o"
  "CMakeFiles/cmom_domains.dir/routing.cc.o.d"
  "CMakeFiles/cmom_domains.dir/splitter.cc.o"
  "CMakeFiles/cmom_domains.dir/splitter.cc.o.d"
  "CMakeFiles/cmom_domains.dir/topologies.cc.o"
  "CMakeFiles/cmom_domains.dir/topologies.cc.o.d"
  "libcmom_domains.a"
  "libcmom_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
