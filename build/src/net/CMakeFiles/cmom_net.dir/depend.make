# Empty dependencies file for cmom_net.
# This may be replaced when dependencies are built.
