file(REMOVE_RECURSE
  "CMakeFiles/cmom_net.dir/inproc_network.cc.o"
  "CMakeFiles/cmom_net.dir/inproc_network.cc.o.d"
  "CMakeFiles/cmom_net.dir/runtime.cc.o"
  "CMakeFiles/cmom_net.dir/runtime.cc.o.d"
  "CMakeFiles/cmom_net.dir/sim_network.cc.o"
  "CMakeFiles/cmom_net.dir/sim_network.cc.o.d"
  "CMakeFiles/cmom_net.dir/tcp_network.cc.o"
  "CMakeFiles/cmom_net.dir/tcp_network.cc.o.d"
  "libcmom_net.a"
  "libcmom_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
