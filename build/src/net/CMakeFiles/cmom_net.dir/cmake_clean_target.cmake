file(REMOVE_RECURSE
  "libcmom_net.a"
)
