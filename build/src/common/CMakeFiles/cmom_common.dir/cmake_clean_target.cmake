file(REMOVE_RECURSE
  "libcmom_common.a"
)
