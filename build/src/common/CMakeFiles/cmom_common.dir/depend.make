# Empty dependencies file for cmom_common.
# This may be replaced when dependencies are built.
