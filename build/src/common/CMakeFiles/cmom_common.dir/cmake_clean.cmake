file(REMOVE_RECURSE
  "CMakeFiles/cmom_common.dir/bytes.cc.o"
  "CMakeFiles/cmom_common.dir/bytes.cc.o.d"
  "CMakeFiles/cmom_common.dir/log.cc.o"
  "CMakeFiles/cmom_common.dir/log.cc.o.d"
  "libcmom_common.a"
  "libcmom_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
