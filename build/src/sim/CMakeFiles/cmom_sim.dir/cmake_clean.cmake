file(REMOVE_RECURSE
  "CMakeFiles/cmom_sim.dir/simulator.cc.o"
  "CMakeFiles/cmom_sim.dir/simulator.cc.o.d"
  "libcmom_sim.a"
  "libcmom_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
