file(REMOVE_RECURSE
  "libcmom_sim.a"
)
