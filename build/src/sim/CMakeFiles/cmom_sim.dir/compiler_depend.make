# Empty compiler generated dependencies file for cmom_sim.
# This may be replaced when dependencies are built.
