# Empty compiler generated dependencies file for cmom_causality.
# This may be replaced when dependencies are built.
