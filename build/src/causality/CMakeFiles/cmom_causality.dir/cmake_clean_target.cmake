file(REMOVE_RECURSE
  "libcmom_causality.a"
)
