file(REMOVE_RECURSE
  "CMakeFiles/cmom_causality.dir/chains.cc.o"
  "CMakeFiles/cmom_causality.dir/chains.cc.o.d"
  "CMakeFiles/cmom_causality.dir/checker.cc.o"
  "CMakeFiles/cmom_causality.dir/checker.cc.o.d"
  "CMakeFiles/cmom_causality.dir/paths.cc.o"
  "CMakeFiles/cmom_causality.dir/paths.cc.o.d"
  "CMakeFiles/cmom_causality.dir/trace.cc.o"
  "CMakeFiles/cmom_causality.dir/trace.cc.o.d"
  "libcmom_causality.a"
  "libcmom_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
