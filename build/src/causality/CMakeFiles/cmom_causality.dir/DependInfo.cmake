
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/causality/chains.cc" "src/causality/CMakeFiles/cmom_causality.dir/chains.cc.o" "gcc" "src/causality/CMakeFiles/cmom_causality.dir/chains.cc.o.d"
  "/root/repo/src/causality/checker.cc" "src/causality/CMakeFiles/cmom_causality.dir/checker.cc.o" "gcc" "src/causality/CMakeFiles/cmom_causality.dir/checker.cc.o.d"
  "/root/repo/src/causality/paths.cc" "src/causality/CMakeFiles/cmom_causality.dir/paths.cc.o" "gcc" "src/causality/CMakeFiles/cmom_causality.dir/paths.cc.o.d"
  "/root/repo/src/causality/trace.cc" "src/causality/CMakeFiles/cmom_causality.dir/trace.cc.o" "gcc" "src/causality/CMakeFiles/cmom_causality.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmom_common.dir/DependInfo.cmake"
  "/root/repo/build/src/clocks/CMakeFiles/cmom_clocks.dir/DependInfo.cmake"
  "/root/repo/build/src/domains/CMakeFiles/cmom_domains.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
