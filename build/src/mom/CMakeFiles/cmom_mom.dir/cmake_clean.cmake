file(REMOVE_RECURSE
  "CMakeFiles/cmom_mom.dir/agent_server.cc.o"
  "CMakeFiles/cmom_mom.dir/agent_server.cc.o.d"
  "CMakeFiles/cmom_mom.dir/file_store.cc.o"
  "CMakeFiles/cmom_mom.dir/file_store.cc.o.d"
  "CMakeFiles/cmom_mom.dir/message.cc.o"
  "CMakeFiles/cmom_mom.dir/message.cc.o.d"
  "CMakeFiles/cmom_mom.dir/store.cc.o"
  "CMakeFiles/cmom_mom.dir/store.cc.o.d"
  "libcmom_mom.a"
  "libcmom_mom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmom_mom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
