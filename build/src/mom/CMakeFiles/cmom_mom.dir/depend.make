# Empty dependencies file for cmom_mom.
# This may be replaced when dependencies are built.
