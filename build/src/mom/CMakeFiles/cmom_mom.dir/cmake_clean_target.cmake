file(REMOVE_RECURSE
  "libcmom_mom.a"
)
