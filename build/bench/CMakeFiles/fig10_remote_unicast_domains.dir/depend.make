# Empty dependencies file for fig10_remote_unicast_domains.
# This may be replaced when dependencies are built.
