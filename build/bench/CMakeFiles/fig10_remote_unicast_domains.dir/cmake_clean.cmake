file(REMOVE_RECURSE
  "CMakeFiles/fig10_remote_unicast_domains.dir/fig10_remote_unicast_domains.cc.o"
  "CMakeFiles/fig10_remote_unicast_domains.dir/fig10_remote_unicast_domains.cc.o.d"
  "fig10_remote_unicast_domains"
  "fig10_remote_unicast_domains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_remote_unicast_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
