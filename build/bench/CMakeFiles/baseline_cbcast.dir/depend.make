# Empty dependencies file for baseline_cbcast.
# This may be replaced when dependencies are built.
