file(REMOVE_RECURSE
  "CMakeFiles/baseline_cbcast.dir/baseline_cbcast.cc.o"
  "CMakeFiles/baseline_cbcast.dir/baseline_cbcast.cc.o.d"
  "baseline_cbcast"
  "baseline_cbcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_cbcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
