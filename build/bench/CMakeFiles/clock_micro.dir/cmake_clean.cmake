file(REMOVE_RECURSE
  "CMakeFiles/clock_micro.dir/clock_micro.cc.o"
  "CMakeFiles/clock_micro.dir/clock_micro.cc.o.d"
  "clock_micro"
  "clock_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
