# Empty dependencies file for clock_micro.
# This may be replaced when dependencies are built.
