file(REMOVE_RECURSE
  "CMakeFiles/wallclock_crosscheck.dir/wallclock_crosscheck.cc.o"
  "CMakeFiles/wallclock_crosscheck.dir/wallclock_crosscheck.cc.o.d"
  "wallclock_crosscheck"
  "wallclock_crosscheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wallclock_crosscheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
