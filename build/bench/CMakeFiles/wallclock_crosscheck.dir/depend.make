# Empty dependencies file for wallclock_crosscheck.
# This may be replaced when dependencies are built.
