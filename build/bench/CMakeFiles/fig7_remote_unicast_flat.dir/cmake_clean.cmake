file(REMOVE_RECURSE
  "CMakeFiles/fig7_remote_unicast_flat.dir/fig7_remote_unicast_flat.cc.o"
  "CMakeFiles/fig7_remote_unicast_flat.dir/fig7_remote_unicast_flat.cc.o.d"
  "fig7_remote_unicast_flat"
  "fig7_remote_unicast_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_remote_unicast_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
