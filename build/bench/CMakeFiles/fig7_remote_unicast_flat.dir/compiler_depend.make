# Empty compiler generated dependencies file for fig7_remote_unicast_flat.
# This may be replaced when dependencies are built.
