file(REMOVE_RECURSE
  "CMakeFiles/local_unicast.dir/local_unicast.cc.o"
  "CMakeFiles/local_unicast.dir/local_unicast.cc.o.d"
  "local_unicast"
  "local_unicast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_unicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
