# Empty compiler generated dependencies file for local_unicast.
# This may be replaced when dependencies are built.
