file(REMOVE_RECURSE
  "CMakeFiles/tree_cost_model.dir/tree_cost_model.cc.o"
  "CMakeFiles/tree_cost_model.dir/tree_cost_model.cc.o.d"
  "tree_cost_model"
  "tree_cost_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
