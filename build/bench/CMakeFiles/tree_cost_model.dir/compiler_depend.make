# Empty compiler generated dependencies file for tree_cost_model.
# This may be replaced when dependencies are built.
