file(REMOVE_RECURSE
  "CMakeFiles/theorem_demo.dir/theorem_demo.cc.o"
  "CMakeFiles/theorem_demo.dir/theorem_demo.cc.o.d"
  "theorem_demo"
  "theorem_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theorem_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
