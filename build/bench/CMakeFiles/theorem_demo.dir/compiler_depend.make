# Empty compiler generated dependencies file for theorem_demo.
# This may be replaced when dependencies are built.
