# Empty compiler generated dependencies file for splitting_ablation.
# This may be replaced when dependencies are built.
