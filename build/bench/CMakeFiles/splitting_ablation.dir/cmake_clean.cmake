file(REMOVE_RECURSE
  "CMakeFiles/splitting_ablation.dir/splitting_ablation.cc.o"
  "CMakeFiles/splitting_ablation.dir/splitting_ablation.cc.o.d"
  "splitting_ablation"
  "splitting_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitting_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
