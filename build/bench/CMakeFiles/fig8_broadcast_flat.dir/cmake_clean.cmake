file(REMOVE_RECURSE
  "CMakeFiles/fig8_broadcast_flat.dir/fig8_broadcast_flat.cc.o"
  "CMakeFiles/fig8_broadcast_flat.dir/fig8_broadcast_flat.cc.o.d"
  "fig8_broadcast_flat"
  "fig8_broadcast_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_broadcast_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
