# Empty dependencies file for fig8_broadcast_flat.
# This may be replaced when dependencies are built.
