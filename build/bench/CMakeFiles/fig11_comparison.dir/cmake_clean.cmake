file(REMOVE_RECURSE
  "CMakeFiles/fig11_comparison.dir/fig11_comparison.cc.o"
  "CMakeFiles/fig11_comparison.dir/fig11_comparison.cc.o.d"
  "fig11_comparison"
  "fig11_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
