file(REMOVE_RECURSE
  "CMakeFiles/fig9_topology_ablation.dir/fig9_topology_ablation.cc.o"
  "CMakeFiles/fig9_topology_ablation.dir/fig9_topology_ablation.cc.o.d"
  "fig9_topology_ablation"
  "fig9_topology_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_topology_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
