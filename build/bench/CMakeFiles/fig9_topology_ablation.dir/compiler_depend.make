# Empty compiler generated dependencies file for fig9_topology_ablation.
# This may be replaced when dependencies are built.
