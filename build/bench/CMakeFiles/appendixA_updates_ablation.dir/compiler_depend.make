# Empty compiler generated dependencies file for appendixA_updates_ablation.
# This may be replaced when dependencies are built.
