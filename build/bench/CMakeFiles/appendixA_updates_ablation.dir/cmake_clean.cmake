file(REMOVE_RECURSE
  "CMakeFiles/appendixA_updates_ablation.dir/appendixA_updates_ablation.cc.o"
  "CMakeFiles/appendixA_updates_ablation.dir/appendixA_updates_ablation.cc.o.d"
  "appendixA_updates_ablation"
  "appendixA_updates_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendixA_updates_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
