file(REMOVE_RECURSE
  "CMakeFiles/momd.dir/momd.cc.o"
  "CMakeFiles/momd.dir/momd.cc.o.d"
  "momd"
  "momd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/momd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
