# Empty dependencies file for momd.
# This may be replaced when dependencies are built.
