file(REMOVE_RECURSE
  "CMakeFiles/momtool.dir/momtool.cc.o"
  "CMakeFiles/momtool.dir/momtool.cc.o.d"
  "momtool"
  "momtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/momtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
