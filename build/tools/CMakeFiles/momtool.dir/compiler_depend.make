# Empty compiler generated dependencies file for momtool.
# This may be replaced when dependencies are built.
