// momd -- one agent server as one OS process, the paper's deployment
// unit (they ran one JVM per agent server across ten hosts).
//
//   momd <config-file> <server-id> [--base-port P] [--store DIR]
//        [--echo LOCAL_ID] [--ping SERVER:AGENT COUNT] [--epoch N]
//
// Loads the shared configuration, boots the agent server for
// <server-id> on TCP 127.0.0.1:(base-port + id), optionally hosts an
// echo agent, optionally drives COUNT pings to a remote agent, then
// serves until EOF on stdin.  State persists in the store directory, so
// killing and restarting a momd recovers mid-stream.
//
// A two-terminal smoke run:
//   momtool topo flat 2 > /tmp/mom.cfg
//   momd /tmp/mom.cfg 1 --echo 1 &
//   momd /tmp/mom.cfg 0 --ping 1:1 5
#include <cstdio>
#include <cstring>
#include <string>

#include "control/epoch.h"
#include "domains/config_io.h"
#include "domains/deployment.h"
#include "mom/agent_server.h"
#include "mom/file_store.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"

using namespace cmom;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "momd: %s\n", status.to_string().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: momd <config-file> <server-id> [--base-port P] "
                 "[--store DIR] [--echo LOCAL_ID] "
                 "[--ping SERVER:AGENT COUNT] [--epoch N]\n");
    return 2;
  }
  const std::string config_path = argv[1];
  const ServerId self(static_cast<std::uint16_t>(std::stoul(argv[2])));

  std::uint16_t base_port = 25000;
  std::string store_dir;
  std::uint32_t echo_local = 0;
  bool run_echo = false;
  ServerId ping_server(0);
  std::uint32_t ping_agent = 0;
  std::size_t ping_count = 0;
  std::uint64_t epoch = 0;
  bool epoch_forced = false;

  for (int arg = 3; arg < argc; ++arg) {
    if (std::strcmp(argv[arg], "--base-port") == 0 && arg + 1 < argc) {
      base_port = static_cast<std::uint16_t>(std::stoul(argv[++arg]));
    } else if (std::strcmp(argv[arg], "--store") == 0 && arg + 1 < argc) {
      store_dir = argv[++arg];
    } else if (std::strcmp(argv[arg], "--echo") == 0 && arg + 1 < argc) {
      run_echo = true;
      echo_local = static_cast<std::uint32_t>(std::stoul(argv[++arg]));
    } else if (std::strcmp(argv[arg], "--ping") == 0 && arg + 2 < argc) {
      const std::string target = argv[++arg];
      const auto colon = target.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "momd: --ping expects SERVER:AGENT\n");
        return 2;
      }
      ping_server = ServerId(
          static_cast<std::uint16_t>(std::stoul(target.substr(0, colon))));
      ping_agent = static_cast<std::uint32_t>(
          std::stoul(target.substr(colon + 1)));
      ping_count = std::stoul(argv[++arg]);
    } else if (std::strcmp(argv[arg], "--epoch") == 0 && arg + 1 < argc) {
      epoch = std::stoull(argv[++arg]);
      epoch_forced = true;
    } else {
      std::fprintf(stderr, "momd: unknown argument '%s'\n", argv[arg]);
      return 2;
    }
  }
  if (store_dir.empty()) {
    store_dir = "momd-store-" + std::to_string(self.value());
  }

  auto config = domains::LoadMomConfig(config_path);
  if (!config.ok()) return Fail(config.status());
  auto deployment = domains::Deployment::Create(config.value());
  if (!deployment.ok()) return Fail(deployment.status());

  net::TcpNetwork network(base_port);
  net::ThreadRuntime runtime;
  auto endpoint = network.CreateEndpoint(self);
  if (!endpoint.ok()) return Fail(endpoint.status());
  auto store = mom::FileStore::Open(store_dir);
  if (!store.ok()) return Fail(store.status());

  // Adopt the epoch the store was last cut over to (--epoch overrides
  // for repair scenarios); Boot cross-checks it against the record, so
  // a stale momd cannot rejoin a reconfigured cluster by accident.
  if (!epoch_forced) {
    auto recorded = control::CurrentEpochOf(*store.value());
    if (!recorded.ok()) return Fail(recorded.status());
    epoch = recorded.value();
  }

  mom::AgentServerOptions server_options;
  server_options.epoch = epoch;
  mom::AgentServer server(deployment.value(), self, endpoint.value().get(),
                          &runtime, store.value().get(), server_options);
  workload::EchoAgent* echo = nullptr;
  workload::PingPongDriver* driver = nullptr;
  constexpr std::uint32_t kDriverLocal = 1000;
  if (run_echo) {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    server.AttachAgent(echo_local, std::move(agent));
  }
  if (ping_count > 0) {
    auto agent = std::make_unique<workload::PingPongDriver>(
        AgentId{ping_server, ping_agent}, ping_count);
    driver = agent.get();
    server.AttachAgent(kDriverLocal, std::move(agent));
  }
  if (Status status = server.Boot(); !status.ok()) return Fail(status);
  std::printf("momd: %s up on 127.0.0.1:%u, store '%s', epoch %llu\n",
              to_string(self).c_str(), network.PortFor(self),
              store_dir.c_str(), static_cast<unsigned long long>(epoch));

  if (driver != nullptr) {
    auto start = server.SendMessage(AgentId{self, kDriverLocal},
                                    AgentId{self, kDriverLocal},
                                    workload::kStart);
    if (!start.ok()) return Fail(start.status());
    while (!driver->done()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    std::uint64_t total = 0;
    for (std::uint64_t rtt : driver->round_trip_ns()) total += rtt;
    std::printf("momd: %zu pings to %s:%u, avg RTT %.3f ms\n",
                driver->round_trip_ns().size(),
                to_string(ping_server).c_str(), ping_agent,
                static_cast<double>(total) /
                    static_cast<double>(driver->round_trip_ns().size()) /
                    1e6);
    server.Shutdown();
    return 0;
  }

  // Serve until stdin closes (Ctrl-D or the orchestrating script's
  // pipe teardown).
  std::printf("momd: serving (EOF on stdin to stop)%s\n",
              echo != nullptr ? ", echo agent attached" : "");
  std::fflush(stdout);
  while (std::fgetc(stdin) != EOF) {
  }
  if (echo != nullptr) {
    std::printf("momd: echoed %llu pings\n",
                static_cast<unsigned long long>(echo->pings_seen()));
  }
  server.Shutdown();
  return 0;
}
