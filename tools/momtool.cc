// momtool -- command-line administration for domain-partitioned MOMs.
//
//   momtool validate <config>             check a configuration: ids,
//                                         coverage, routing, and the
//                                         theorem's acyclicity condition
//   momtool routes <config> <from> <to>   print the routed path
//   momtool topo <kind> <args...>         emit a canonical topology:
//       flat <n> | bus <k> <s> | daisy <k> <s> | tree <k> <s> <d> |
//       ring <k> <s>
//   momtool topo <config-file>            pre-deploy lint: print the
//                                         domain graph, router-servers,
//                                         per-domain causal cores, and
//                                         per-server clock cost (per-core
//                                         stamp cost: s^2 matrix, s
//                                         reduced, 1 hybrid); exits
//                                         non-zero when the graph is
//                                         cyclic
//   momtool split <traffic> <max-size>    traffic-aware domain split
//                                         (Section 7 future work);
//                                         emits the config, plus cost
//                                         vs the naive index bus
//   momtool estimate <config> <traffic>   analytic cost of a config
//                                         under a traffic profile
//   momtool tcpsmoke <servers> <pings>    boot a flat MOM over real TCP
//       [--base-port P] [--workers N]     loopback sockets with fault
//       [--drop p] [--dup p] [--disc p]   injection, run a ping storm,
//       [--seed s] [--core K]             verify causal exactly-once
//                                         delivery and print transport
//                                         health, commit counters, the
//                                         active causal core per domain
//                                         (K = matrix|reduced|hybrid),
//                                         and (with --workers) the
//                                         parallel engine's shard stats
//   momtool storestat <dir>               inspect a FileStore directory:
//                                         keys and bytes per key-space
//                                         prefix, plus WAL/snapshot
//                                         file sizes
//   momtool dlq <dir>                     list a store's dead-letter
//                                         records (messages shed by the
//                                         slow-consumer policy): seq,
//                                         reason, route and payload size
//   momtool epoch <dir>                   print a store's config epoch
//                                         records (current + pending)
//   momtool epoch <dir> --cutover <id>    offline repair: apply the
//                                         store's pending epoch record
//                                         for server <id> (what the
//                                         coordinator's crash recovery
//                                         does, one store at a time)
//   momtool chaos <report.json>           pretty-print a CHAOS_soak.json
//                                         report: seed, traffic, latency
//                                         percentiles, faults injected
//                                         and the invariant verdicts
//   momtool autopilot <store-dir>         replay the topology controller's
//                                         durable decision journal: every
//                                         window's verdict, candidate
//                                         scores and suppression/abort
//                                         reasons
//   momtool autopilot <report.json>       summarize a BENCH_autopilot.json
//                                         comparison (or a single
//                                         *.live_run.json section): epochs
//                                         taken, steady-state score /
//                                         router load / stamp rate vs the
//                                         frozen baseline, invariants
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autopilot/controller.h"
#include "causality/checker.h"
#include "control/coordinator.h"
#include "control/epoch.h"
#include "control/plan.h"
#include "domains/config_io.h"
#include "domains/domain_graph.h"
#include "domains/deployment.h"
#include "domains/splitter.h"
#include "domains/topologies.h"
#include "flow/dead_letter.h"
#include "mom/agent_server.h"
#include "mom/file_store.h"
#include "net/faulty_network.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"

using namespace cmom;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

int Validate(const std::string& path) {
  auto config = domains::LoadMomConfig(path);
  if (!config.ok()) return Fail(config.status());
  auto deployment = domains::Deployment::Create(config.value());
  if (!deployment.ok()) return Fail(deployment.status());
  const auto& d = deployment.value();

  std::size_t diameter = 0;
  for (ServerId a : d.servers()) {
    for (ServerId b : d.servers()) {
      diameter = std::max(diameter, d.routing().HopCount(a, b));
    }
  }
  std::size_t max_domain = 0;
  for (const auto& domain : d.domains()) {
    max_domain = std::max(max_domain, domain.size());
  }
  std::printf("OK: %zu servers, %zu domains, %zu causal router-servers\n",
              d.servers().size(), d.domains().size(),
              d.domain_graph().routers().size());
  std::printf("domain graph: acyclic, %s\n",
              d.domain_graph().IsConnected() ? "connected" : "DISCONNECTED");
  std::printf("largest domain: %zu servers (matrix %zux%zu)\n", max_domain,
              max_domain, max_domain);
  std::printf("routing diameter: %zu hops\n", diameter);
  return 0;
}

int Routes(const std::string& path, const std::string& from_str,
           const std::string& to_str) {
  auto config = domains::LoadMomConfig(path);
  if (!config.ok()) return Fail(config.status());
  auto deployment = domains::Deployment::Create(config.value());
  if (!deployment.ok()) return Fail(deployment.status());
  const auto& d = deployment.value();

  const ServerId from(static_cast<std::uint16_t>(std::stoul(from_str)));
  const ServerId to(static_cast<std::uint16_t>(std::stoul(to_str)));
  std::printf("%s", to_string(from).c_str());
  ServerId at = from;
  while (at != to) {
    const ServerId hop = d.routing().NextHop(at, to);
    auto link = d.LinkDomainIndex(at, hop);
    std::printf(" -[%s]-> %s",
                link.ok() ? to_string(d.domain(link.value()).id).c_str()
                          : "?",
                to_string(hop).c_str());
    at = hop;
  }
  std::printf("   (%zu hops)\n", d.routing().HopCount(from, to));
  return 0;
}

// Pre-deploy lint: everything an operator wants to see before pushing
// a configuration (or proposing it as the next epoch), with the
// acyclicity verdict as the exit code so CI can gate on it.
int TopoLint(const std::string& path) {
  auto config = domains::LoadMomConfig(path);
  if (!config.ok()) return Fail(config.status());
  // The lint must render cyclic graphs, not refuse to look at them, so
  // build the deployment with the acyclicity check relaxed and report
  // the cycle ourselves.
  domains::MomConfig relaxed = config.value();
  relaxed.allow_cyclic_domain_graph = true;
  auto deployment = domains::Deployment::Create(relaxed);
  if (!deployment.ok()) return Fail(deployment.status());
  const auto& d = deployment.value();
  const domains::DomainGraph& graph = d.domain_graph();

  std::printf("%zu servers, %zu domains, stamp mode %s, causal core %s\n",
              d.servers().size(), relaxed.domains.size(),
              relaxed.stamp_mode == clocks::StampMode::kUpdates ? "updates"
                                                                : "full",
              std::string(clocks::CausalCoreKindName(relaxed.causal_core))
                  .c_str());
  for (const domains::DomainSpec& spec : relaxed.domains) {
    std::printf("  %s (%zu):", to_string(spec.id).c_str(),
                spec.members.size());
    for (ServerId member : spec.members) {
      std::printf(" %s", to_string(member).c_str());
    }
    const clocks::CausalCoreKind kind = relaxed.CoreFor(spec.id);
    if (kind != relaxed.causal_core) {
      std::printf("  [core %s]",
                  std::string(clocks::CausalCoreKindName(kind)).c_str());
    }
    std::printf("\n");
  }
  std::printf("router-servers:");
  for (ServerId router : graph.routers()) {
    std::printf(" %s", to_string(router).c_str());
  }
  std::printf("%s\n", graph.routers().empty() ? " none" : "");
  for (const domains::DomainEdge& edge : graph.edges()) {
    std::printf("  edge %s -- %s via %s\n", to_string(edge.a).c_str(),
                to_string(edge.b).c_str(), to_string(edge.via).c_str());
  }

  // Per-server clock cost: what a server pays per stamp in each of its
  // domains, summed -- s^2 under a matrix core, s under the reduced
  // core, O(1) under hybrid buffering.  This (not a fixed s^2) is the
  // quantity the splitter's objective approximates.
  std::size_t total = 0;
  std::printf("clock cost (sum of per-core stamp cost per server):\n");
  for (ServerId id : d.servers()) {
    std::size_t cost = 0;
    for (const domains::DomainSpec& spec : relaxed.domains) {
      if (std::find(spec.members.begin(), spec.members.end(), id) !=
          spec.members.end()) {
        cost += clocks::CausalCoreStampCost(relaxed.CoreFor(spec.id),
                                            spec.members.size());
      }
    }
    total += cost;
    std::printf("  %s: %zu\n", to_string(id).c_str(), cost);
  }
  std::printf("  total: %zu entries\n", total);

  std::printf("connected: %s\n", graph.IsConnected() ? "yes" : "NO");
  if (auto cycle = graph.FindCycle()) {
    std::printf("CYCLIC: %s\n", cycle->c_str());
    return 1;
  }
  std::printf("acyclic: yes\n");
  return 0;
}

int Topo(int argc, char** argv) {
  const std::string kind = argv[0];
  if (argc == 1 && std::filesystem::exists(kind)) return TopoLint(kind);
  auto arg = [&](int i) {
    return static_cast<std::size_t>(std::stoul(argv[i]));
  };
  domains::MomConfig config;
  if (kind == "flat" && argc == 2) {
    config = domains::topologies::Flat(arg(1));
  } else if (kind == "bus" && argc == 3) {
    config = domains::topologies::Bus(arg(1), arg(2));
  } else if (kind == "daisy" && argc == 3) {
    config = domains::topologies::Daisy(arg(1), arg(2));
  } else if (kind == "tree" && argc == 4) {
    config = domains::topologies::Tree(arg(1), arg(2), arg(3));
  } else if (kind == "ring" && argc == 3) {
    config = domains::topologies::Ring(arg(1), arg(2));
  } else {
    std::fprintf(stderr, "usage: momtool topo flat <n> | bus <k> <s> | "
                         "daisy <k> <s> | tree <k> <s> <d> | ring <k> <s>\n");
    return 1;
  }
  std::fputs(domains::FormatMomConfig(config).c_str(), stdout);
  return 0;
}

int Split(const std::string& traffic_path, const std::string& size_str) {
  auto traffic = domains::LoadTrafficProfile(traffic_path);
  if (!traffic.ok()) return Fail(traffic.status());
  domains::SplitterOptions options;
  options.max_domain_size =
      static_cast<std::size_t>(std::stoul(size_str));
  auto config = domains::DomainSplitter::Split(traffic.value(), options);
  if (!config.ok()) return Fail(config.status());

  const auto naive = domains::DomainSplitter::NaiveSplit(
      traffic.value().server_count(), options);
  const double optimized_cost =
      domains::CostEstimator::Estimate(config.value(), traffic.value())
          .value_or(-1);
  const double naive_cost =
      domains::CostEstimator::Estimate(naive, traffic.value()).value_or(-1);

  std::fputs(domains::FormatMomConfig(config.value()).c_str(), stdout);
  std::fprintf(stderr,
               "# analytic cost: %.1f (naive index bus: %.1f, %.1fx)\n",
               optimized_cost, naive_cost,
               optimized_cost > 0 ? naive_cost / optimized_cost : 0.0);
  return 0;
}

void PrintTransportStats(ServerId id, const net::TransportStats& stats) {
  std::printf("S%u: connects=%llu reconnects=%llu connect_failures=%llu "
              "forced_disconnects=%llu frames_sent=%llu buffered=%llu "
              "dropped=%llu bytes_retx=%llu outbox=%llu/%lluB backoff=%.1fms\n",
              id.value(),
              static_cast<unsigned long long>(stats.connects),
              static_cast<unsigned long long>(stats.reconnects),
              static_cast<unsigned long long>(stats.connect_failures),
              static_cast<unsigned long long>(stats.forced_disconnects),
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.frames_buffered),
              static_cast<unsigned long long>(stats.frames_dropped),
              static_cast<unsigned long long>(stats.bytes_retransmitted),
              static_cast<unsigned long long>(stats.outbox_frames),
              static_cast<unsigned long long>(stats.outbox_bytes),
              static_cast<double>(stats.current_backoff_ns) / 1e6);
}

// Prints commit-path health for one server: how many store commits it
// made, their size distribution, and how well reaction/frame batching
// engaged.
void PrintServerCommitStats(ServerId id, const mom::ServerStats& stats) {
  const double bytes_per_commit =
      stats.commits > 0 ? static_cast<double>(stats.commit_bytes) /
                              static_cast<double>(stats.commits)
                        : 0.0;
  const double acks_per_frame =
      stats.ack_frames_sent > 0 ? static_cast<double>(stats.acks_sent) /
                                      static_cast<double>(stats.ack_frames_sent)
                                : 0.0;
  std::printf("S%u: commits=%llu bytes/commit=%.1f ack-coalescing=%.2f\n",
              id.value(), static_cast<unsigned long long>(stats.commits),
              bytes_per_commit, acks_per_frame);
  std::printf("S%u:   commit bytes  %s\n", id.value(),
              stats.commit_bytes_hist.ToString().c_str());
  std::printf("S%u:   engine batch  %s\n", id.value(),
              stats.engine_batch_hist.ToString().c_str());
  std::printf("S%u:   channel batch %s\n", id.value(),
              stats.channel_batch_hist.ToString().c_str());
  // Parallel-engine pipeline health (all-zero under the inline engine).
  if (stats.group_commit_hist.count > 0) {
    std::printf("S%u:   group commit  %s\n", id.value(),
                stats.group_commit_hist.ToString().c_str());
    std::printf("S%u:   shard depth   %s\n", id.value(),
                stats.shard_depth_hist.ToString().c_str());
  }
  // Lock-free lane hand-off health: posts that spilled past the ring
  // into the overflow queue, consumer futex parks, and the consumer's
  // view of queue depth / task stall time (ns from post to pop).
  if (stats.lane_posts > 0) {
    std::printf("S%u:   lanes         posts=%llu overflow=%llu parks=%llu\n",
                id.value(), static_cast<unsigned long long>(stats.lane_posts),
                static_cast<unsigned long long>(stats.lane_overflow_posts),
                static_cast<unsigned long long>(stats.lane_parks));
    std::printf("S%u:   lane depth    %s\n", id.value(),
                stats.lane_depth_hist.ToString().c_str());
    std::printf("S%u:   lane stall ns %s\n", id.value(),
                stats.lane_stall_ns_hist.ToString().c_str());
  }
  if (!stats.worker_reactions.empty()) {
    std::printf("S%u:   workers      ", id.value());
    for (std::size_t w = 0; w < stats.worker_reactions.size(); ++w) {
      std::printf(" w%zu=%llu(%.1fms)", w,
                  static_cast<unsigned long long>(stats.worker_reactions[w]),
                  static_cast<double>(stats.worker_busy_ns[w]) / 1e6);
    }
    std::printf("\n");
  }
  // Flow-control health: only printed when backpressure actually
  // engaged, so un-throttled runs keep their historical output.
  if (stats.credit_blocked > 0 || stats.sends_deferred > 0 ||
      stats.sends_shed > 0 || stats.dead_letters > 0 ||
      stats.drr_forwarded > 0 || stats.transport_overloads > 0) {
    std::printf("S%u:   flow          blocked=%llu probes=%llu "
                "credit-acks=%llu drr=%llu/%llur staged-peak=%llu "
                "deferred=%llu shed=%llu wait-peak=%llu dlq=%llu "
                "transport-overloads=%llu\n",
                id.value(),
                static_cast<unsigned long long>(stats.credit_blocked),
                static_cast<unsigned long long>(stats.credit_probes),
                static_cast<unsigned long long>(stats.credit_only_acks),
                static_cast<unsigned long long>(stats.drr_forwarded),
                static_cast<unsigned long long>(stats.drr_rounds),
                static_cast<unsigned long long>(stats.staged_forward_peak),
                static_cast<unsigned long long>(stats.sends_deferred),
                static_cast<unsigned long long>(stats.sends_shed),
                static_cast<unsigned long long>(stats.wait_queue_peak),
                static_cast<unsigned long long>(stats.dead_letters),
                static_cast<unsigned long long>(stats.transport_overloads));
  }
}

// Prints the causal-core health of one server: which core each of its
// domains runs, the encoded stamp-size distribution, hold-back depth at
// enqueue time, and frames fenced for carrying the wrong core tag.
void PrintCausalCoreStats(ServerId id, const mom::AgentServer& server) {
  const auto cores = server.ActiveCores();
  const mom::ServerStats stats = server.stats();
  std::printf("S%u:   causal cores ", id.value());
  for (const auto& [domain, kind] : cores) {
    std::printf(" %s=%s", to_string(domain).c_str(),
                std::string(clocks::CausalCoreKindName(kind)).c_str());
  }
  if (stats.core_fenced_frames > 0) {
    std::printf("  fenced=%llu",
                static_cast<unsigned long long>(stats.core_fenced_frames));
  }
  std::printf("\n");
  if (stats.stamp_bytes_hist.count > 0) {
    std::printf("S%u:   stamp bytes   %s\n", id.value(),
                stats.stamp_bytes_hist.ToString().c_str());
  }
  if (stats.holdback_depth_hist.count > 0) {
    std::printf("S%u:   holdback depth %s\n", id.value(),
                stats.holdback_depth_hist.ToString().c_str());
  }
}

// Prints the live credit/backpressure gauges of one server.
void PrintFlowStatus(ServerId id, const mom::AgentServer::FlowStatus& flow) {
  if (flow.paused_links == 0 && flow.blocked_messages == 0 &&
      flow.wait_queue == 0 && flow.dead_letters == 0) {
    return;
  }
  std::printf("S%u:   flow gauges   paused-links=%zu blocked=%zu "
              "credits-out=%llu staged=%zu waiting=%zu dlq=%llu\n",
              id.value(), flow.paused_links, flow.blocked_messages,
              static_cast<unsigned long long>(flow.credits_outstanding),
              flow.staged_forwards, flow.wait_queue,
              static_cast<unsigned long long>(flow.dead_letters));
}

// Parses the value of `--flag` at argv[arg + 1], reporting a clear
// error instead of letting std::stod terminate the process on junk.
bool ParseValue(const char* flag, int argc, char** argv, int& arg,
                double lo, double hi, double& out) {
  if (arg + 1 >= argc) {
    std::fprintf(stderr, "tcpsmoke: %s requires a value\n", flag);
    return false;
  }
  char* end = nullptr;
  const double value = std::strtod(argv[++arg], &end);
  if (end == argv[arg] || *end != '\0' || value < lo || value > hi) {
    std::fprintf(stderr, "tcpsmoke: %s expects a number in [%g, %g], got '%s'\n",
                 flag, lo, hi, argv[arg]);
    return false;
  }
  out = value;
  return true;
}

// Boots a flat-topology MOM over real TCP loopback sockets (optionally
// behind a FaultyNetwork), fires `pings` echo round trips, then checks
// exactly-once causal delivery and dumps the transport counters.
int TcpSmoke(int argc, char** argv) {
  char* end = nullptr;
  const std::size_t n_servers = std::strtoul(argv[0], &end, 10);
  if (end == argv[0] || *end != '\0') {
    std::fprintf(stderr, "tcpsmoke: <servers> must be a number, got '%s'\n",
                 argv[0]);
    return 2;
  }
  const std::size_t pings = std::strtoul(argv[1], &end, 10);
  if (end == argv[1] || *end != '\0') {
    std::fprintf(stderr, "tcpsmoke: <pings> must be a number, got '%s'\n",
                 argv[1]);
    return 2;
  }
  std::uint16_t base_port = 26000;
  std::size_t engine_workers = 0;
  clocks::CausalCoreKind core = clocks::CausalCoreKind::kMatrix;
  net::FaultyNetworkOptions fault;
  bool any_fault = false;
  for (int arg = 2; arg < argc; ++arg) {
    double value = 0;
    if (std::strcmp(argv[arg], "--core") == 0) {
      if (arg + 1 >= argc) {
        std::fprintf(stderr, "tcpsmoke: --core requires a value\n");
        return 2;
      }
      auto kind = clocks::ParseCausalCoreKind(argv[++arg]);
      if (!kind.has_value()) {
        std::fprintf(stderr,
                     "tcpsmoke: --core expects matrix|reduced|hybrid, "
                     "got '%s'\n",
                     argv[arg]);
        return 2;
      }
      core = *kind;
    } else if (std::strcmp(argv[arg], "--base-port") == 0) {
      if (!ParseValue("--base-port", argc, argv, arg, 1024, 65535, value)) {
        return 2;
      }
      base_port = static_cast<std::uint16_t>(value);
    } else if (std::strcmp(argv[arg], "--workers") == 0) {
      if (!ParseValue("--workers", argc, argv, arg, 0, 64, value)) return 2;
      engine_workers = static_cast<std::size_t>(value);
    } else if (std::strcmp(argv[arg], "--drop") == 0) {
      if (!ParseValue("--drop", argc, argv, arg, 0, 1, value)) return 2;
      fault.model.drop_probability = value;
      any_fault = true;
    } else if (std::strcmp(argv[arg], "--dup") == 0) {
      if (!ParseValue("--dup", argc, argv, arg, 0, 1, value)) return 2;
      fault.model.duplicate_probability = value;
      any_fault = true;
    } else if (std::strcmp(argv[arg], "--disc") == 0) {
      if (!ParseValue("--disc", argc, argv, arg, 0, 1, value)) return 2;
      fault.disconnect_probability = value;
      any_fault = true;
    } else if (std::strcmp(argv[arg], "--seed") == 0) {
      if (!ParseValue("--seed", argc, argv, arg, 0, 1e18, value)) return 2;
      fault.seed = static_cast<std::uint64_t>(value);
    } else {
      std::fprintf(stderr, "tcpsmoke: unknown argument '%s'\n", argv[arg]);
      return 2;
    }
  }
  if (n_servers < 2) {
    std::fprintf(stderr, "tcpsmoke: need at least 2 servers\n");
    return 2;
  }

  domains::MomConfig topo = domains::topologies::Flat(n_servers);
  topo.causal_core = core;
  auto deployment = domains::Deployment::Create(topo);
  if (!deployment.ok()) return Fail(deployment.status());

  net::TcpNetwork tcp(base_port);
  std::unique_ptr<net::FaultyNetwork> faulty;
  net::ThreadRuntime runtime;
  net::Network* network = &tcp;
  if (any_fault) {
    faulty = std::make_unique<net::FaultyNetwork>(tcp, fault, &runtime);
    network = faulty.get();
  }

  causality::TraceRecorder trace;
  std::vector<std::unique_ptr<mom::InMemoryStore>> stores;
  std::vector<std::unique_ptr<net::Endpoint>> endpoints;
  std::vector<std::unique_ptr<mom::AgentServer>> servers;
  workload::EchoAgent* echo = nullptr;
  for (ServerId id : deployment.value().servers()) {
    auto endpoint = network->CreateEndpoint(id);
    if (!endpoint.ok()) return Fail(endpoint.status());
    endpoints.push_back(std::move(endpoint).value());
    stores.push_back(std::make_unique<mom::InMemoryStore>());
    mom::AgentServerOptions options;
    options.trace = &trace;
    options.retransmit_timeout_ns = 100ull * 1000 * 1000;
    options.engine_workers = engine_workers;
    servers.push_back(std::make_unique<mom::AgentServer>(
        deployment.value(), id, endpoints.back().get(), &runtime,
        stores.back().get(), options));
    if (id.value() == n_servers - 1) {
      auto agent = std::make_unique<workload::EchoAgent>();
      echo = agent.get();
      servers.back()->AttachAgent(1, std::move(agent));
    } else {
      // Pongs come back to the pinging agent; give them a home.
      servers.back()->AttachAgent(7, std::make_unique<workload::SinkAgent>());
    }
  }
  for (auto& server : servers) {
    if (Status status = server->Boot(); !status.ok()) return Fail(status);
  }

  const AgentId target{ServerId(static_cast<std::uint16_t>(n_servers - 1)), 1};
  for (std::size_t i = 0; i < pings; ++i) {
    const auto from =
        ServerId(static_cast<std::uint16_t>(i % (n_servers - 1)));
    auto sent = servers[from.value()]->SendMessage(AgentId{from, 7}, target,
                                                   workload::kPing);
    if (!sent.ok()) return Fail(sent.status());
  }

  // Quiescence: every server idle (QueueOUT drained => all ACKed).
  int stable = 0;
  while (stable < 3) {
    bool idle = true;
    for (auto& server : servers) {
      if (!server->Idle()) {
        idle = false;
        break;
      }
    }
    if (faulty != nullptr && faulty->pending_delayed() > 0) idle = false;
    stable = idle ? stable + 1 : 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  for (std::size_t i = 0; i < servers.size(); ++i) {
    PrintTransportStats(ServerId(static_cast<std::uint16_t>(i)),
                        endpoints[i]->stats());
  }
  // All endpoints share the transport's epoll shard pool; show how the
  // fd load and event traffic spread across it.
  const auto shards = tcp.reactor_stats();
  for (std::size_t i = 0; i < shards.size(); ++i) {
    std::printf("reactor[%zu]: fds=%llu polls=%llu events=%llu tasks=%llu "
                "timers=%llu wakeups=%llu\n",
                i, static_cast<unsigned long long>(shards[i].fds),
                static_cast<unsigned long long>(shards[i].polls),
                static_cast<unsigned long long>(shards[i].events),
                static_cast<unsigned long long>(shards[i].tasks),
                static_cast<unsigned long long>(shards[i].timers),
                static_cast<unsigned long long>(shards[i].wakeups));
  }
  for (std::size_t i = 0; i < servers.size(); ++i) {
    PrintServerCommitStats(ServerId(static_cast<std::uint16_t>(i)),
                           servers[i]->stats());
    PrintCausalCoreStats(ServerId(static_cast<std::uint16_t>(i)),
                         *servers[i]);
    PrintFlowStatus(ServerId(static_cast<std::uint16_t>(i)),
                    servers[i]->flow_status());
  }
  if (faulty != nullptr) {
    const auto injected = faulty->stats();
    std::printf("injected: dropped=%llu duplicated=%llu delayed=%llu "
                "disconnects=%llu of %llu frames\n",
                static_cast<unsigned long long>(injected.frames_dropped),
                static_cast<unsigned long long>(injected.frames_duplicated),
                static_cast<unsigned long long>(injected.frames_delayed),
                static_cast<unsigned long long>(injected.disconnects_forced),
                static_cast<unsigned long long>(injected.frames_seen));
  }

  std::vector<ServerId> ids(deployment.value().servers().begin(),
                            deployment.value().servers().end());
  causality::CausalityChecker checker(std::move(ids));
  const causality::Trace snapshot = trace.Snapshot();
  const auto report = checker.CheckCausalDelivery(snapshot);
  const Status once = checker.CheckExactlyOnce(snapshot);
  std::printf("echoed %llu pings; causal=%s exactly-once=%s\n",
              static_cast<unsigned long long>(
                  echo != nullptr ? echo->pings_seen() : 0),
              report.causal() ? "yes" : "NO",
              once.ok() ? "yes" : once.to_string().c_str());
  for (auto& server : servers) server->Shutdown();
  return report.causal() && once.ok() ? 0 : 1;
}

// Key-space statistics for a FileStore directory: the incremental
// schema's footprint (per-entry queue keys, per-domain clock images)
// made visible, plus the on-disk WAL/snapshot sizes.
int StoreStat(const std::string& dir) {
  auto store = mom::FileStore::Open(dir);
  if (!store.ok()) return Fail(store.status());

  struct PrefixStats {
    std::size_t keys = 0;
    std::size_t key_bytes = 0;
    std::size_t value_bytes = 0;
  };
  std::map<std::string, PrefixStats> by_prefix;
  for (const std::string& key : store.value()->Keys("")) {
    const std::size_t slash = key.find('/');
    const std::string prefix =
        slash == std::string::npos ? key : key.substr(0, slash + 1);
    PrefixStats& entry = by_prefix[prefix];
    ++entry.keys;
    entry.key_bytes += key.size();
    if (auto value = store.value()->Get(key)) {
      entry.value_bytes += value->size();
    }
  }

  std::printf("%-12s %8s %10s %12s\n", "prefix", "keys", "key B", "value B");
  std::size_t total_keys = 0, total_bytes = 0;
  for (const auto& [prefix, entry] : by_prefix) {
    std::printf("%-12s %8zu %10zu %12zu\n", prefix.c_str(), entry.keys,
                entry.key_bytes, entry.value_bytes);
    total_keys += entry.keys;
    total_bytes += entry.key_bytes + entry.value_bytes;
  }
  std::printf("total        %8zu %23zu\n", total_keys, total_bytes);

  for (const char* name : {"snapshot.log", "wal.log"}) {
    const std::filesystem::path file = std::filesystem::path(dir) / name;
    std::error_code ec;
    const auto size = std::filesystem::file_size(file, ec);
    std::printf("%-12s %s\n", name,
                ec ? "absent" : (std::to_string(size) + " bytes").c_str());
  }
  return 0;
}

// Lists the dead-letter records of one server's store: what the
// slow-consumer policy shed, why, and where it was headed.  Records are
// printed in retirement order (the key's fixed-width hex seq).
int Dlq(const std::string& dir) {
  auto store = mom::FileStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  std::size_t count = 0;
  std::size_t payload_bytes = 0;
  for (const std::string& key :
       store.value()->Keys(flow::kDeadLetterKeyPrefix)) {
    std::uint64_t seq = 0;
    if (!flow::ParseDeadLetterKey(key, seq)) {
      std::printf("%-20s  (malformed key)\n", key.c_str());
      continue;
    }
    auto value = store.value()->Get(key);
    if (!value.has_value()) continue;
    auto record = flow::DeadLetterRecord::Deserialize(*value);
    if (!record.ok()) {
      std::printf("#%llu  (corrupt: %s)\n",
                  static_cast<unsigned long long>(seq),
                  record.status().to_string().c_str());
      continue;
    }
    const flow::DeadLetterRecord& r = record.value();
    std::ostringstream route;
    route << r.id << ": " << r.from << " -> " << r.to;
    std::printf("#%llu  %s  subject='%s' payload=%zuB  (%s)\n",
                static_cast<unsigned long long>(seq), route.str().c_str(),
                r.subject.c_str(), r.payload.size(), r.reason.c_str());
    ++count;
    payload_bytes += r.payload.size();
  }
  std::printf("%zu dead-lettered message%s, %zu payload bytes\n", count,
              count == 1 ? "" : "s", payload_bytes);
  return 0;
}

void PrintEpochRecord(const char* label,
                      const std::optional<control::EpochRecord>& record) {
  if (!record.has_value()) {
    std::printf("%s: none\n", label);
    return;
  }
  std::printf("%s: epoch %llu\n", label,
              static_cast<unsigned long long>(record->epoch));
  std::string text = record->config_text;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::printf("  | %.*s\n", static_cast<int>(end - start),
                text.c_str() + start);
    start = end + 1;
  }
}

// Inspects a store's epoch records; with --cutover, applies the pending
// record for one server offline -- the per-store half of what the
// coordinator's crash recovery does, exposed for manual repair.
int EpochCmd(int argc, char** argv) {
  const std::string dir = argv[0];
  auto store = mom::FileStore::Open(dir);
  if (!store.ok()) return Fail(store.status());
  auto current =
      control::ReadEpochRecord(*store.value(), control::kEpochCurrentKey);
  if (!current.ok()) return Fail(current.status());
  auto pending =
      control::ReadEpochRecord(*store.value(), control::kEpochPendingKey);
  if (!pending.ok()) return Fail(pending.status());

  PrintEpochRecord("current", current.value());
  PrintEpochRecord("pending", pending.value());

  if (argc == 1) return 0;
  if (argc != 3 || std::strcmp(argv[1], "--cutover") != 0) {
    std::fprintf(stderr, "usage: momtool epoch <dir> [--cutover <id>]\n");
    return 2;
  }
  if (!pending.value().has_value()) {
    std::fprintf(stderr, "epoch: no pending record to cut over to\n");
    return 1;
  }
  const ServerId self(static_cast<std::uint16_t>(std::stoul(argv[2])));
  auto new_config = domains::ParseMomConfig(pending.value()->config_text);
  if (!new_config.ok()) return Fail(new_config.status());
  auto old_config = domains::ParseMomConfig(pending.value()->prev_config_text);
  if (!old_config.ok()) return Fail(old_config.status());
  auto plan = control::ReconfigPlan::Build(pending.value()->epoch - 1,
                                           std::move(old_config).value(),
                                           std::move(new_config).value());
  if (!plan.ok()) return Fail(plan.status());
  if (Status status =
          control::Coordinator::CutoverStore(*store.value(), self,
                                             plan.value());
      !status.ok()) {
    return Fail(status);
  }
  std::printf("cut over to epoch %llu\n",
              static_cast<unsigned long long>(plan.value().to_epoch));
  return 0;
}

// --- chaos report pretty-printer --------------------------------------
//
// CHAOS_soak.json is flat-ish (one level of nested objects, scalar
// values only), so a small scanner over "key": value pairs is enough --
// no JSON library in the tree, and none needed.
std::map<std::string, std::string> ScanFlatJson(const std::string& text) {
  std::map<std::string, std::string> values;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    std::size_t cursor = key_end + 1;
    while (cursor < text.size() &&
           (text[cursor] == ' ' || text[cursor] == '\t')) {
      ++cursor;
    }
    if (cursor >= text.size() || text[cursor] != ':') {
      pos = key_end + 1;
      continue;
    }
    ++cursor;
    while (cursor < text.size() &&
           (text[cursor] == ' ' || text[cursor] == '\t')) {
      ++cursor;
    }
    if (cursor < text.size() && text[cursor] == '"') {
      const std::size_t value_end = text.find('"', cursor + 1);
      if (value_end == std::string::npos) break;
      values[key] = text.substr(cursor + 1, value_end - cursor - 1);
      pos = value_end + 1;
    } else if (cursor < text.size() && text[cursor] != '{') {
      std::size_t value_end = cursor;
      while (value_end < text.size() && text[value_end] != ',' &&
             text[value_end] != '}' && text[value_end] != '\n') {
        ++value_end;
      }
      values[key] = text.substr(cursor, value_end - cursor);
      pos = value_end;
    } else {
      pos = cursor;  // nested object: keep scanning inside it
    }
  }
  return values;
}

int ChaosReport(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "chaos: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(in);

  auto values = ScanFlatJson(text);
  auto get = [&](const char* key) -> std::string {
    auto it = values.find(key);
    return it == values.end() ? std::string("?") : it->second;
  };
  auto verdict = [&](const char* key) {
    const std::string v = get(key);
    return v == "true" ? "ok" : (v == "false" ? "VIOLATED" : "?");
  };

  std::printf("chaos soak report: %s\n", path.c_str());
  std::printf("  seed          %s  (replay: CMOM_SEED=%s ctest -L chaos)\n",
              get("seed").c_str(), get("seed").c_str());
  std::printf("  duration      %s ms scheduled, %s s wall\n",
              get("duration_ms").c_str(), get("wall_seconds").c_str());
  std::printf("  traffic       accepted %s, committed sends %s, delivered %s,"
              " sheds %s\n",
              get("accepted").c_str(), get("sent").c_str(),
              get("delivered").c_str(), get("overload_sheds").c_str());
  std::printf("  latency (ms)  p50 %s  p99 %s  max %s  (%s samples)\n",
              get("p50").c_str(), get("p99").c_str(), get("max").c_str(),
              get("samples").c_str());
  std::printf("  backlog peaks consumer %s (bound %s), router %s (bound %s)\n",
              get("peak_consumer").c_str(), get("consumer_bound").c_str(),
              get("peak_router").c_str(), get("router_bound").c_str());
  std::printf("  faults        crashes %s, restarts %s, partitions %s/%s "
              "healed,\n"
              "                store faults armed %s / injected %s, "
              "fail-stops %s,\n"
              "                frames cut %s, slow-consumer phases %s\n",
              get("crashes").c_str(), get("restarts").c_str(),
              get("heals").c_str(), get("partitions").c_str(),
              get("store_faults_armed").c_str(),
              get("store_faults_injected").c_str(), get("fail_stops").c_str(),
              get("frames_partitioned").c_str(),
              get("slow_consumer_phases").c_str());
  std::printf("  invariants    causal %s, exactly-once %s, zero-loss %s, "
              "bounded-backlog %s\n",
              verdict("causal"), verdict("exactly_once"), verdict("zero_loss"),
              verdict("bounded_backlog"));
  const std::string violation = get("first_violation");
  if (!violation.empty() && violation != "?") {
    std::printf("  violation     %s\n", violation.c_str());
  }
  const bool all_ok = get("all_ok") == "true";
  std::printf("  verdict       %s\n", all_ok ? "ALL INVARIANTS GREEN"
                                             : "INVARIANT VIOLATIONS");
  return all_ok ? 0 : 1;
}

// --- autopilot post-mortems -------------------------------------------
//
// Two sources, one command:
//   momtool autopilot <store-dir>     replay the controller's durable
//                                     decision journal ("autopilot/<seq>"
//                                     records written through the journal
//                                     server's commit pipeline)
//   momtool autopilot <report.json>   summarize a churn-bench report
//                                     (BENCH_autopilot.json or a
//                                     *.live_run.json / *.frozen_run.json
//                                     single-run section)

int AutopilotJournal(const std::string& dir) {
  auto store = mom::FileStore::Open(dir);
  if (!store.ok()) return Fail(store.status());

  std::size_t records = 0;
  std::size_t epochs = 0;
  std::size_t aborts = 0;
  std::uint64_t last_epoch = 0;
  for (const std::string& key : store.value()->Keys("autopilot/")) {
    auto value = store.value()->Get(key);
    if (!value.has_value()) continue;
    auto decision = autopilot::DecodeDecision(
        std::string(value->begin(), value->end()));
    if (!decision.ok()) {
      std::printf("%-28s  (corrupt: %s)\n", key.c_str(),
                  decision.status().to_string().c_str());
      continue;
    }
    const autopilot::Decision& d = decision.value();
    ++records;
    last_epoch = d.to_epoch;
    if (d.verdict == autopilot::Verdict::kTaken) ++epochs;
    if (d.verdict == autopilot::Verdict::kAborted) ++aborts;

    std::printf("w%-4llu epoch %llu->%llu  %-14s %-8s %s\n",
                static_cast<unsigned long long>(d.window),
                static_cast<unsigned long long>(d.from_epoch),
                static_cast<unsigned long long>(d.to_epoch),
                autopilot::VerdictName(d.verdict),
                autopilot::OpKindName(d.op), d.detail.c_str());
    if (d.current_score > 0 || d.candidate_score > 0) {
      std::printf("      score %.2f -> %.2f\n", d.current_score,
                  d.candidate_score);
    }
    if (!d.reason.empty()) {
      std::printf("      reason: %s\n", d.reason.c_str());
    }
    for (const autopilot::CandidateScore& c : d.candidates) {
      if (c.valid) {
        std::printf("      cand  %-8s %-32s %.2f\n",
                    autopilot::OpKindName(c.op), c.detail.c_str(), c.score);
      } else {
        std::printf("      cand  %-8s %-32s invalid: %s\n",
                    autopilot::OpKindName(c.op), c.detail.c_str(),
                    c.rejection.c_str());
      }
    }
  }
  if (records == 0) {
    std::printf("no autopilot journal records in %s\n", dir.c_str());
    return 1;
  }
  std::printf("%zu decisions, %zu epochs taken, %zu aborts, final epoch "
              "%llu\n",
              records, epochs, aborts,
              static_cast<unsigned long long>(last_epoch));
  return 0;
}

int AutopilotReport(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) {
    std::fprintf(stderr, "autopilot: cannot read %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(in);

  auto values = ScanFlatJson(text);
  auto get = [&](const std::string& key) -> std::string {
    auto it = values.find(key);
    return it == values.end() ? std::string("?") : it->second;
  };
  auto verdict = [&](const std::string& key) {
    const std::string v = get(key);
    return v == "true" ? "ok" : (v == "false" ? "VIOLATED" : "?");
  };

  const std::string bench = get("bench");
  std::printf("autopilot report: %s\n", path.c_str());
  std::printf("  seed          %s  (replay: CMOM_SEED=%s ctest -L chaos)\n",
              get("seed").c_str(), get("seed").c_str());

  if (bench == "autopilot_churn") {
    // Comparison report: autopilot vs frozen baseline on one schedule.
    std::printf("  scale         %s windows x %s servers (smoke=%s)\n",
                get("windows").c_str(), get("servers").c_str(),
                get("smoke").c_str());
    std::printf("  reshaping     %s epochs (%s distinct op kinds); frozen "
                "took %s\n",
                get("epochs_taken").c_str(), get("distinct_ops").c_str(),
                get("frozen_epochs").c_str());
    std::printf("  ops           %s splits, %s merges, %s promotes, "
                "%s absorbs, %s retires; %s aborts\n",
                get("autopilot_splits").c_str(),
                get("autopilot_merges").c_str(),
                get("autopilot_promotes").c_str(),
                get("autopilot_absorbs").c_str(),
                get("autopilot_retires").c_str(),
                get("autopilot_aborts").c_str());
    std::printf("  invariants    autopilot causal %s exactly-once %s; "
                "frozen causal %s exactly-once %s\n",
                verdict("autopilot_causal"),
                verdict("autopilot_exactly_once"), verdict("frozen_causal"),
                verdict("frozen_exactly_once"));
    std::printf("  steady score  autopilot %s vs frozen %s  "
                "(improvement %s)\n",
                get("steady_score_autopilot").c_str(),
                get("steady_score_frozen").c_str(),
                get("score_improvement").c_str());
    std::printf("  router load   autopilot %s vs frozen %s  "
                "(traffic-weighted extra hops)\n",
                get("steady_router_load_autopilot").c_str(),
                get("steady_router_load_frozen").c_str());
    std::printf("  stamp rate    autopilot %s vs frozen %s  "
                "(entries/window; wider domains stamp wider)\n",
                get("steady_stamp_autopilot").c_str(),
                get("steady_stamp_frozen").c_str());
    std::printf("  clock cost    autopilot %s vs frozen %s  (standing "
                "sum s^2)\n",
                get("clock_cost_autopilot").c_str(),
                get("clock_cost_frozen").c_str());
    std::printf("  backlog       autopilot peak %s steady %s vs frozen "
                "peak %s steady %s\n",
                get("backlog_autopilot").c_str(),
                get("steady_backlog_autopilot").c_str(),
                get("backlog_frozen").c_str(),
                get("steady_backlog_frozen").c_str());
  } else if (bench == "autopilot_churn_run") {
    // Single-run section (live_run / frozen_run).
    std::printf("  scale         %s windows x %s servers (frozen=%s), "
                "%s s wall\n",
                get("windows").c_str(), get("servers").c_str(),
                get("frozen").c_str(), get("wall_seconds").c_str());
    std::printf("  traffic       accepted %s, sent %s, delivered %s\n",
                get("accepted").c_str(), get("sent").c_str(),
                get("delivered").c_str());
    std::printf("  reshaping     %s epochs: %s splits, %s merges, "
                "%s promotes, %s absorbs, %s retires; %s aborts\n",
                get("run_epochs_taken").c_str(), get("run_splits").c_str(),
                get("run_merges").c_str(), get("run_promotes").c_str(),
                get("run_absorbs").c_str(), get("run_retires").c_str(),
                get("run_aborts").c_str());
    std::printf("  suppressed    cooldown %s, threshold %s, hysteresis %s, "
                "backoff %s\n",
                get("suppressed_cooldown").c_str(),
                get("suppressed_threshold").c_str(),
                get("suppressed_hysteresis").c_str(),
                get("suppressed_backoff").c_str());
    std::printf("  steady state  score %s, stamp rate %s, router load %s, "
                "backlog %s\n",
                get("run_steady_score").c_str(),
                get("run_steady_stamp_rate").c_str(),
                get("run_steady_router_load").c_str(),
                get("run_steady_backlog").c_str());
    std::printf("  invariants    causal %s, exactly-once %s\n",
                verdict("run_causal"), verdict("run_exactly_once"));
    const std::string violation = get("first_violation");
    if (!violation.empty() && violation != "?") {
      std::printf("  violation     %s\n", violation.c_str());
    }
  } else {
    std::fprintf(stderr, "autopilot: %s is not an autopilot report "
                 "(bench=%s)\n", path.c_str(), bench.c_str());
    return 2;
  }

  const bool all_ok = get("all_ok") == "true";
  std::printf("  verdict       %s\n",
              all_ok ? "ALL INVARIANTS GREEN" : "INVARIANT VIOLATIONS");
  return all_ok ? 0 : 1;
}

int AutopilotCmd(const std::string& path) {
  if (path.size() > 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    return AutopilotReport(path);
  }
  return AutopilotJournal(path);
}

int Estimate(const std::string& config_path,
             const std::string& traffic_path) {
  auto config = domains::LoadMomConfig(config_path);
  if (!config.ok()) return Fail(config.status());
  auto traffic = domains::LoadTrafficProfile(traffic_path);
  if (!traffic.ok()) return Fail(traffic.status());
  auto cost = domains::CostEstimator::Estimate(config.value(),
                                               traffic.value());
  if (!cost.ok()) return Fail(cost.status());
  std::printf("analytic cost: %.2f\n", cost.value());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "validate") == 0) {
    return Validate(argv[2]);
  }
  if (argc == 5 && std::strcmp(argv[1], "routes") == 0) {
    return Routes(argv[2], argv[3], argv[4]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "topo") == 0) {
    return Topo(argc - 2, argv + 2);
  }
  if (argc == 4 && std::strcmp(argv[1], "split") == 0) {
    return Split(argv[2], argv[3]);
  }
  if (argc == 4 && std::strcmp(argv[1], "estimate") == 0) {
    return Estimate(argv[2], argv[3]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "tcpsmoke") == 0) {
    return TcpSmoke(argc - 2, argv + 2);
  }
  if (argc == 3 && std::strcmp(argv[1], "storestat") == 0) {
    return StoreStat(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "dlq") == 0) {
    return Dlq(argv[2]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "epoch") == 0) {
    return EpochCmd(argc - 2, argv + 2);
  }
  if (argc == 3 && std::strcmp(argv[1], "chaos") == 0) {
    return ChaosReport(argv[2]);
  }
  if (argc == 3 && std::strcmp(argv[1], "autopilot") == 0) {
    return AutopilotCmd(argv[2]);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  momtool validate <config>\n"
               "  momtool routes <config> <from> <to>\n"
               "  momtool topo <kind> <args...> | topo <config-file>\n"
               "  momtool split <traffic> <max-domain-size>\n"
               "  momtool estimate <config> <traffic>\n"
               "  momtool tcpsmoke <servers> <pings> [--base-port P] "
               "[--workers N] [--drop p] [--dup p] [--disc p] [--seed s]\n"
               "  momtool storestat <store-dir>\n"
               "  momtool dlq <store-dir>\n"
               "  momtool epoch <store-dir> [--cutover <server-id>]\n"
               "  momtool chaos <report.json>\n"
               "  momtool autopilot <store-dir> | autopilot <report.json>\n");
  return 2;
}
