// momtool -- command-line administration for domain-partitioned MOMs.
//
//   momtool validate <config>             check a configuration: ids,
//                                         coverage, routing, and the
//                                         theorem's acyclicity condition
//   momtool routes <config> <from> <to>   print the routed path
//   momtool topo <kind> <args...>         emit a canonical topology:
//       flat <n> | bus <k> <s> | daisy <k> <s> | tree <k> <s> <d> |
//       ring <k> <s>
//   momtool split <traffic> <max-size>    traffic-aware domain split
//                                         (Section 7 future work);
//                                         emits the config, plus cost
//                                         vs the naive index bus
//   momtool estimate <config> <traffic>   analytic cost of a config
//                                         under a traffic profile
#include <cstdio>
#include <cstring>
#include <string>

#include "domains/config_io.h"
#include "domains/deployment.h"
#include "domains/splitter.h"
#include "domains/topologies.h"

using namespace cmom;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.to_string().c_str());
  return 1;
}

int Validate(const std::string& path) {
  auto config = domains::LoadMomConfig(path);
  if (!config.ok()) return Fail(config.status());
  auto deployment = domains::Deployment::Create(config.value());
  if (!deployment.ok()) return Fail(deployment.status());
  const auto& d = deployment.value();

  std::size_t diameter = 0;
  for (ServerId a : d.servers()) {
    for (ServerId b : d.servers()) {
      diameter = std::max(diameter, d.routing().HopCount(a, b));
    }
  }
  std::size_t max_domain = 0;
  for (const auto& domain : d.domains()) {
    max_domain = std::max(max_domain, domain.size());
  }
  std::printf("OK: %zu servers, %zu domains, %zu causal router-servers\n",
              d.servers().size(), d.domains().size(),
              d.domain_graph().routers().size());
  std::printf("domain graph: acyclic, %s\n",
              d.domain_graph().IsConnected() ? "connected" : "DISCONNECTED");
  std::printf("largest domain: %zu servers (matrix %zux%zu)\n", max_domain,
              max_domain, max_domain);
  std::printf("routing diameter: %zu hops\n", diameter);
  return 0;
}

int Routes(const std::string& path, const std::string& from_str,
           const std::string& to_str) {
  auto config = domains::LoadMomConfig(path);
  if (!config.ok()) return Fail(config.status());
  auto deployment = domains::Deployment::Create(config.value());
  if (!deployment.ok()) return Fail(deployment.status());
  const auto& d = deployment.value();

  const ServerId from(static_cast<std::uint16_t>(std::stoul(from_str)));
  const ServerId to(static_cast<std::uint16_t>(std::stoul(to_str)));
  std::printf("%s", to_string(from).c_str());
  ServerId at = from;
  while (at != to) {
    const ServerId hop = d.routing().NextHop(at, to);
    auto link = d.LinkDomainIndex(at, hop);
    std::printf(" -[%s]-> %s",
                link.ok() ? to_string(d.domain(link.value()).id).c_str()
                          : "?",
                to_string(hop).c_str());
    at = hop;
  }
  std::printf("   (%zu hops)\n", d.routing().HopCount(from, to));
  return 0;
}

int Topo(int argc, char** argv) {
  const std::string kind = argv[0];
  auto arg = [&](int i) {
    return static_cast<std::size_t>(std::stoul(argv[i]));
  };
  domains::MomConfig config;
  if (kind == "flat" && argc == 2) {
    config = domains::topologies::Flat(arg(1));
  } else if (kind == "bus" && argc == 3) {
    config = domains::topologies::Bus(arg(1), arg(2));
  } else if (kind == "daisy" && argc == 3) {
    config = domains::topologies::Daisy(arg(1), arg(2));
  } else if (kind == "tree" && argc == 4) {
    config = domains::topologies::Tree(arg(1), arg(2), arg(3));
  } else if (kind == "ring" && argc == 3) {
    config = domains::topologies::Ring(arg(1), arg(2));
  } else {
    std::fprintf(stderr, "usage: momtool topo flat <n> | bus <k> <s> | "
                         "daisy <k> <s> | tree <k> <s> <d> | ring <k> <s>\n");
    return 1;
  }
  std::fputs(domains::FormatMomConfig(config).c_str(), stdout);
  return 0;
}

int Split(const std::string& traffic_path, const std::string& size_str) {
  auto traffic = domains::LoadTrafficProfile(traffic_path);
  if (!traffic.ok()) return Fail(traffic.status());
  domains::SplitterOptions options;
  options.max_domain_size =
      static_cast<std::size_t>(std::stoul(size_str));
  auto config = domains::DomainSplitter::Split(traffic.value(), options);
  if (!config.ok()) return Fail(config.status());

  const auto naive = domains::DomainSplitter::NaiveSplit(
      traffic.value().server_count(), options);
  const double optimized_cost =
      domains::CostEstimator::Estimate(config.value(), traffic.value())
          .value_or(-1);
  const double naive_cost =
      domains::CostEstimator::Estimate(naive, traffic.value()).value_or(-1);

  std::fputs(domains::FormatMomConfig(config.value()).c_str(), stdout);
  std::fprintf(stderr,
               "# analytic cost: %.1f (naive index bus: %.1f, %.1fx)\n",
               optimized_cost, naive_cost,
               optimized_cost > 0 ? naive_cost / optimized_cost : 0.0);
  return 0;
}

int Estimate(const std::string& config_path,
             const std::string& traffic_path) {
  auto config = domains::LoadMomConfig(config_path);
  if (!config.ok()) return Fail(config.status());
  auto traffic = domains::LoadTrafficProfile(traffic_path);
  if (!traffic.ok()) return Fail(traffic.status());
  auto cost = domains::CostEstimator::Estimate(config.value(),
                                               traffic.value());
  if (!cost.ok()) return Fail(cost.status());
  std::printf("analytic cost: %.2f\n", cost.value());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "validate") == 0) {
    return Validate(argv[2]);
  }
  if (argc == 5 && std::strcmp(argv[1], "routes") == 0) {
    return Routes(argv[2], argv[3], argv[4]);
  }
  if (argc >= 3 && std::strcmp(argv[1], "topo") == 0) {
    return Topo(argc - 2, argv + 2);
  }
  if (argc == 4 && std::strcmp(argv[1], "split") == 0) {
    return Split(argv[2], argv[3]);
  }
  if (argc == 4 && std::strcmp(argv[1], "estimate") == 0) {
    return Estimate(argv[2], argv[3]);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  momtool validate <config>\n"
               "  momtool routes <config> <from> <to>\n"
               "  momtool topo <kind> <args...>\n"
               "  momtool split <traffic> <max-domain-size>\n"
               "  momtool estimate <config> <traffic>\n");
  return 2;
}
