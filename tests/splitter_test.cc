// Tests for the traffic-aware domain splitter (the paper's future-work
// extension) and its analytic cost estimator.
#include "domains/splitter.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "domains/deployment.h"
#include "domains/topologies.h"

namespace cmom::domains {
namespace {

// Three communities of four servers with heavy intra-community traffic
// and light cross-community traffic.
TrafficProfile CommunityTraffic(double intra = 100, double inter = 0.5) {
  TrafficProfile traffic(12);
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = 0; b < 12; ++b) {
      if (a == b) continue;
      traffic.set(a, b, (a / 4 == b / 4) ? intra : inter);
    }
  }
  return traffic;
}

TEST(TrafficProfile, Accessors) {
  TrafficProfile traffic(3);
  traffic.set(0, 1, 2.0);
  traffic.add(0, 1, 1.0);
  traffic.set(1, 0, 4.0);
  EXPECT_DOUBLE_EQ(traffic.at(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(traffic.Between(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(traffic.Total(), 7.0);
}

TEST(DomainSplitter, SmallSystemStaysOneDomain) {
  TrafficProfile traffic(4);
  SplitterOptions options;
  options.max_domain_size = 8;
  auto config = DomainSplitter::Split(traffic, options).value();
  EXPECT_EQ(config.domains.size(), 1u);
  EXPECT_TRUE(Deployment::Create(config).ok());
}

TEST(DomainSplitter, RejectsDegenerateInputs) {
  EXPECT_FALSE(DomainSplitter::Split(TrafficProfile(0), {}).ok());
  SplitterOptions zero;
  zero.max_domain_size = 0;
  EXPECT_FALSE(DomainSplitter::Split(TrafficProfile(4), zero).ok());
}

TEST(DomainSplitter, OutputIsAlwaysAValidAcyclicDeployment) {
  Rng rng(7);
  for (int round = 0; round < 30; ++round) {
    const std::size_t n = 2 + rng.NextBelow(30);
    TrafficProfile traffic(n);
    for (int edges = 0; edges < 60; ++edges) {
      traffic.add(rng.NextBelow(n), rng.NextBelow(n),
                  static_cast<double>(rng.NextBelow(100)));
    }
    SplitterOptions options;
    options.max_domain_size = 1 + rng.NextBelow(6);
    auto config = DomainSplitter::Split(traffic, options);
    ASSERT_TRUE(config.ok());
    auto deployment = Deployment::Create(config.value());
    ASSERT_TRUE(deployment.ok())
        << "round " << round << ": " << deployment.status();
    EXPECT_TRUE(deployment.value().domain_graph().IsAcyclic());
    // Every server covered exactly; domain sizes bounded by s + 1.
    for (const DomainSpec& domain : config.value().domains) {
      EXPECT_LE(domain.members.size(), options.max_domain_size + 1);
    }
  }
}

TEST(DomainSplitter, KeepsCommunitiesTogether) {
  SplitterOptions options;
  options.max_domain_size = 4;
  auto config = DomainSplitter::Split(CommunityTraffic(), options).value();
  // Each community must land in a single domain (possibly plus a
  // router from another community).
  for (std::size_t community = 0; community < 3; ++community) {
    int best_overlap = 0;
    for (const DomainSpec& domain : config.domains) {
      int overlap = 0;
      for (ServerId member : domain.members) {
        if (member.value() / 4 == community) ++overlap;
      }
      best_overlap = std::max(best_overlap, overlap);
    }
    EXPECT_EQ(best_overlap, 4) << "community " << community << " split up";
  }
}

TEST(DomainSplitter, NaiveSplitIsAValidBus) {
  SplitterOptions options;
  options.max_domain_size = 4;
  auto config = DomainSplitter::NaiveSplit(12, options);
  auto deployment = Deployment::Create(config);
  ASSERT_TRUE(deployment.ok());
  EXPECT_EQ(config.domains.size(), 4u);  // backbone + 3
}

TEST(CostEstimator, IntraDomainTrafficIsCheapest) {
  TrafficProfile traffic(8);
  traffic.set(0, 1, 10);  // same leaf in Bus(2,4)
  auto bus = topologies::Bus(2, 4);
  const double local_cost = CostEstimator::Estimate(bus, traffic).value();

  TrafficProfile cross(8);
  cross.set(1, 5, 10);  // leaf 1 -> leaf 2: three hops
  const double cross_cost = CostEstimator::Estimate(bus, cross).value();
  EXPECT_LT(local_cost, cross_cost);
  EXPECT_NEAR(cross_cost / local_cost, 3.0, 0.7);  // ~3 hops vs 1
}

TEST(CostEstimator, FlatBeatenByBusAtScaleUnderUniformTraffic) {
  const std::size_t n = 36;
  TrafficProfile traffic(n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      if (a != b) traffic.set(a, b, 1);
    }
  }
  const double flat =
      CostEstimator::Estimate(topologies::Flat(n), traffic).value();
  const double bus =
      CostEstimator::Estimate(topologies::Bus(6, 6), traffic).value();
  EXPECT_LT(bus, flat);
}

TEST(CostEstimator, OptimizedSplitBeatsNaiveOnCommunityTraffic) {
  const TrafficProfile traffic = CommunityTraffic();
  SplitterOptions options;
  options.max_domain_size = 4;
  auto optimized = DomainSplitter::Split(traffic, options).value();
  auto naive = DomainSplitter::NaiveSplit(12, options);

  // Shuffle community membership away from index order so the naive
  // index-chop splits communities apart: relabel traffic by a fixed
  // permutation.
  TrafficProfile shuffled(12);
  const std::size_t perm[12] = {0, 4, 8, 1, 5, 9, 2, 6, 10, 3, 7, 11};
  for (std::size_t a = 0; a < 12; ++a) {
    for (std::size_t b = 0; b < 12; ++b) {
      shuffled.set(perm[a], perm[b], traffic.at(a, b));
    }
  }
  auto optimized_shuffled = DomainSplitter::Split(shuffled, options).value();
  const double opt_cost =
      CostEstimator::Estimate(optimized_shuffled, shuffled).value();
  const double naive_cost = CostEstimator::Estimate(naive, shuffled).value();
  EXPECT_LT(opt_cost, naive_cost * 0.6)
      << "optimizer should cut cost sharply on clustered traffic";
  (void)optimized;
}

TEST(CostEstimator, PropagatesInvalidConfig) {
  TrafficProfile traffic(3);
  MomConfig bad;  // empty
  EXPECT_FALSE(CostEstimator::Estimate(bad, traffic).ok());
}

}  // namespace
}  // namespace cmom::domains
