// Protocol tests for the per-domain causal clock (the RST delivery
// condition with full-matrix and Updates stamps).
#include "clocks/causal_clock.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.h"

namespace cmom::clocks {
namespace {

DomainServerId D(std::uint16_t v) { return DomainServerId(v); }

class CausalClockModes : public ::testing::TestWithParam<StampMode> {};

TEST_P(CausalClockModes, InOrderUnicastDelivers) {
  CausalDomainClock sender(D(1), 3, GetParam());
  CausalDomainClock receiver(D(0), 3, GetParam());
  for (int i = 0; i < 5; ++i) {
    const Stamp stamp = sender.PrepareSend(D(0));
    ASSERT_EQ(receiver.Check(D(1), stamp), CheckResult::kDeliver) << i;
    receiver.Commit(D(1), stamp);
  }
  EXPECT_EQ(receiver.matrix().at(D(1), D(0)), 5u);
}

TEST_P(CausalClockModes, FifoGapHolds) {
  CausalDomainClock sender(D(1), 2, GetParam());
  CausalDomainClock receiver(D(0), 2, GetParam());
  const Stamp first = sender.PrepareSend(D(0));
  const Stamp second = sender.PrepareSend(D(0));
  // Second message arrives first: must hold.
  EXPECT_EQ(receiver.Check(D(1), second), CheckResult::kHold);
  EXPECT_EQ(receiver.Check(D(1), first), CheckResult::kDeliver);
  receiver.Commit(D(1), first);
  EXPECT_EQ(receiver.Check(D(1), second), CheckResult::kDeliver);
  receiver.Commit(D(1), second);
}

TEST_P(CausalClockModes, DuplicateDetected) {
  CausalDomainClock sender(D(1), 2, GetParam());
  CausalDomainClock receiver(D(0), 2, GetParam());
  const Stamp stamp = sender.PrepareSend(D(0));
  ASSERT_EQ(receiver.Check(D(1), stamp), CheckResult::kDeliver);
  receiver.Commit(D(1), stamp);
  EXPECT_EQ(receiver.Check(D(1), stamp), CheckResult::kDuplicate);
}

TEST_P(CausalClockModes, CausalTriangleHoldsUntilPredecessorArrives) {
  // A -> B (m1), then A -> C (m2); C reacts with C -> B (m3).
  // If m3 reaches B before m1, B must hold it.
  const std::size_t size = 3;
  CausalDomainClock a(D(0), size, GetParam());
  CausalDomainClock b(D(1), size, GetParam());
  CausalDomainClock c(D(2), size, GetParam());

  const Stamp m1 = a.PrepareSend(D(1));
  const Stamp m2 = a.PrepareSend(D(2));

  ASSERT_EQ(c.Check(D(0), m2), CheckResult::kDeliver);
  c.Commit(D(0), m2);
  const Stamp m3 = c.PrepareSend(D(1));

  // m3 arrives at B first: the (0,1)=1 knowledge inside it forces Hold.
  EXPECT_EQ(b.Check(D(2), m3), CheckResult::kHold);
  ASSERT_EQ(b.Check(D(0), m1), CheckResult::kDeliver);
  b.Commit(D(0), m1);
  EXPECT_EQ(b.Check(D(2), m3), CheckResult::kDeliver);
  b.Commit(D(2), m3);
}

TEST_P(CausalClockModes, ConcurrentSendersDeliverInAnyOrder) {
  CausalDomainClock a(D(0), 3, GetParam());
  CausalDomainClock b(D(1), 3, GetParam());
  CausalDomainClock receiver(D(2), 3, GetParam());
  const Stamp from_a = a.PrepareSend(D(2));
  const Stamp from_b = b.PrepareSend(D(2));
  // No causal relation: both orders must work.  Try b first.
  ASSERT_EQ(receiver.Check(D(1), from_b), CheckResult::kDeliver);
  receiver.Commit(D(1), from_b);
  ASSERT_EQ(receiver.Check(D(0), from_a), CheckResult::kDeliver);
  receiver.Commit(D(0), from_a);
}

TEST_P(CausalClockModes, StatePersistenceRoundTrip) {
  CausalDomainClock sender(D(1), 4, GetParam());
  CausalDomainClock receiver(D(0), 4, GetParam());
  for (int i = 0; i < 3; ++i) {
    const Stamp stamp = sender.PrepareSend(D(0));
    receiver.Commit(D(0 + 1), stamp);
  }
  ByteWriter writer;
  receiver.EncodeState(writer);
  ByteReader reader(writer.buffer());
  auto decoded = CausalDomainClock::DecodeState(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), receiver);

  // The recovered clock continues the protocol identically.
  const Stamp next = sender.PrepareSend(D(0));
  CausalDomainClock recovered = std::move(decoded).value();
  EXPECT_EQ(recovered.Check(D(1), next), receiver.Check(D(1), next));
}

TEST_P(CausalClockModes, RemapPreservesQuiescedProtocolState) {
  // A quiesced 2-member domain grows to 3 with the survivors permuted
  // (old 0 -> new 2, old 1 -> new 0, newcomer at 1).  The protocol must
  // continue seamlessly: survivor-to-survivor FIFO counters carry over,
  // the newcomer starts from zero, and mode is preserved.
  CausalDomainClock a(D(0), 2, GetParam());
  CausalDomainClock b(D(1), 2, GetParam());
  for (int i = 0; i < 3; ++i) {
    const Stamp stamp = a.PrepareSend(D(1));
    ASSERT_EQ(b.Check(D(0), stamp), CheckResult::kDeliver);
    b.Commit(D(0), stamp);
  }

  const std::optional<DomainServerId> map[] = {D(1), std::nullopt, D(0)};
  CausalDomainClock a2 = a.Remap(D(2), 3, map);
  CausalDomainClock b2 = b.Remap(D(0), 3, map);
  CausalDomainClock c2(D(1), 3, GetParam());
  EXPECT_EQ(a2.mode(), GetParam());
  EXPECT_EQ(a2.domain_size(), 3u);
  EXPECT_EQ(b2.matrix().at(D(2), D(0)), 3u);  // old (0,1) counter

  // Survivor-to-survivor traffic continues where it left off.
  const Stamp next = a2.PrepareSend(D(0));
  ASSERT_EQ(b2.Check(D(2), next), CheckResult::kDeliver);
  b2.Commit(D(2), next);
  EXPECT_EQ(b2.matrix().at(D(2), D(0)), 4u);

  // Traffic to and from the newcomer works from a clean slate.
  const Stamp to_new = b2.PrepareSend(D(1));
  ASSERT_EQ(c2.Check(D(0), to_new), CheckResult::kDeliver);
  c2.Commit(D(0), to_new);
  const Stamp from_new = c2.PrepareSend(D(2));
  ASSERT_EQ(a2.Check(D(1), from_new), CheckResult::kDeliver);
  a2.Commit(D(1), from_new);
}

TEST_P(CausalClockModes, RemapShrinkForgetsDepartedMember) {
  // Three members with cross traffic; member 1 departs.  The survivors'
  // clocks drop row/col 1 and keep exchanging messages causally.
  CausalDomainClock a(D(0), 3, GetParam());
  CausalDomainClock b(D(1), 3, GetParam());
  CausalDomainClock c(D(2), 3, GetParam());
  const Stamp ab = a.PrepareSend(D(1));
  b.Commit(D(0), ab);
  const Stamp bc = b.PrepareSend(D(2));
  c.Commit(D(1), bc);
  const Stamp ac = a.PrepareSend(D(2));
  c.Commit(D(0), ac);

  const std::optional<DomainServerId> map[] = {D(0), D(2)};
  CausalDomainClock a2 = a.Remap(D(0), 2, map);
  CausalDomainClock c2 = c.Remap(D(1), 2, map);
  EXPECT_EQ(a2.domain_size(), 2u);
  EXPECT_EQ(c2.matrix().at(D(0), D(1)), 1u);  // old (0,2) counter

  const Stamp next = a2.PrepareSend(D(1));
  ASSERT_EQ(c2.Check(D(0), next), CheckResult::kDeliver);
  c2.Commit(D(0), next);
  const Stamp reply = c2.PrepareSend(D(0));
  ASSERT_EQ(a2.Check(D(1), reply), CheckResult::kDeliver);
  a2.Commit(D(1), reply);
}

TEST_P(CausalClockModes, RemapIdentityRoundTripsState) {
  CausalDomainClock a(D(0), 3, GetParam());
  CausalDomainClock b(D(1), 3, GetParam());
  for (int i = 0; i < 4; ++i) {
    const Stamp stamp = a.PrepareSend(D(1));
    b.Commit(D(0), stamp);
  }
  const std::optional<DomainServerId> identity[] = {D(0), D(1), D(2)};
  EXPECT_EQ(a.Remap(D(0), 3, identity), a);
  EXPECT_EQ(b.Remap(D(1), 3, identity), b);
}

INSTANTIATE_TEST_SUITE_P(Modes, CausalClockModes,
                         ::testing::Values(StampMode::kFullMatrix,
                                           StampMode::kUpdates));

// Property: full-matrix and Updates stamping are behaviourally
// equivalent under FIFO-per-link delivery.  We run the same random
// message pattern through two parallel universes (one per mode) with
// per-link FIFO queues and random interleaving, and require identical
// delivery decisions and identical final matrices.
class ModeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModeEquivalence, SameDecisionsAndMatrices) {
  const std::size_t size = 4;
  std::vector<CausalDomainClock> full;
  std::vector<CausalDomainClock> updates;
  for (std::uint16_t i = 0; i < size; ++i) {
    full.emplace_back(D(i), size, StampMode::kFullMatrix);
    updates.emplace_back(D(i), size, StampMode::kUpdates);
  }
  struct Link {
    std::deque<Stamp> full_frames;
    std::deque<Stamp> updates_frames;
  };
  Link links[4][4];

  Rng rng(GetParam());
  for (int step = 0; step < 400; ++step) {
    if (rng.NextBool(0.5)) {
      // A random send on both universes.
      const auto from = static_cast<std::uint16_t>(rng.NextBelow(size));
      auto to = static_cast<std::uint16_t>(rng.NextBelow(size));
      if (to == from) to = static_cast<std::uint16_t>((to + 1) % size);
      links[from][to].full_frames.push_back(full[from].PrepareSend(D(to)));
      links[from][to].updates_frames.push_back(
          updates[from].PrepareSend(D(to)));
    } else {
      // A random non-empty link delivers its head (FIFO).
      const auto from = static_cast<std::uint16_t>(rng.NextBelow(size));
      const auto to = static_cast<std::uint16_t>(rng.NextBelow(size));
      Link& link = links[from][to];
      if (link.full_frames.empty()) continue;
      const CheckResult full_check =
          full[to].Check(D(from), link.full_frames.front());
      const CheckResult updates_check =
          updates[to].Check(D(from), link.updates_frames.front());
      ASSERT_EQ(full_check, updates_check) << "step " << step;
      if (full_check == CheckResult::kDeliver) {
        full[to].Commit(D(from), link.full_frames.front());
        updates[to].Commit(D(from), link.updates_frames.front());
        link.full_frames.pop_front();
        link.updates_frames.pop_front();
      }
      // On kHold the frame stays at the head (FIFO link semantics).
    }
  }
  for (std::uint16_t i = 0; i < size; ++i) {
    EXPECT_EQ(full[i].matrix(), updates[i].matrix()) << "server " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalence,
                         ::testing::Range<std::uint64_t>(1, 13));

// Updates stamps must be no larger than full stamps, and shrink to a
// handful of entries in steady-state unicast.
TEST(UpdatesStampSize, SteadyStateUnicastIsConstant) {
  const std::size_t size = 16;
  CausalDomainClock sender(D(1), size, StampMode::kUpdates);
  CausalDomainClock receiver(D(0), size, StampMode::kUpdates);
  std::size_t last_size = 0;
  for (int i = 0; i < 10; ++i) {
    const Stamp stamp = sender.PrepareSend(D(0));
    last_size = stamp.entries.size();
    receiver.Commit(D(1), stamp);
  }
  EXPECT_EQ(last_size, 1u);  // only the (1,0) counter changes per send

  CausalDomainClock full_sender(D(1), size, StampMode::kFullMatrix);
  const Stamp full_stamp = full_sender.PrepareSend(D(0));
  EXPECT_EQ(full_stamp.entries.size(), size * size);
}

}  // namespace
}  // namespace cmom::clocks
