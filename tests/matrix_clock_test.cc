// Unit and property tests for the matrix clock.
#include "clocks/matrix_clock.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cmom::clocks {
namespace {

DomainServerId D(std::uint16_t v) { return DomainServerId(v); }

TEST(MatrixClock, StartsAtZero) {
  MatrixClock clock(4);
  for (std::uint16_t i = 0; i < 4; ++i) {
    for (std::uint16_t j = 0; j < 4; ++j) {
      EXPECT_EQ(clock.at(D(i), D(j)), 0u);
    }
  }
  EXPECT_EQ(clock.Total(), 0u);
}

TEST(MatrixClock, IncrementAndSet) {
  MatrixClock clock(3);
  EXPECT_EQ(clock.Increment(D(1), D(2)), 1u);
  EXPECT_EQ(clock.Increment(D(1), D(2)), 2u);
  clock.set(D(0), D(1), 7);
  EXPECT_EQ(clock.at(D(1), D(2)), 2u);
  EXPECT_EQ(clock.at(D(0), D(1)), 7u);
  EXPECT_EQ(clock.Total(), 9u);
}

TEST(MatrixClock, RowColumnIndependence) {
  // (i,j) and (j,i) are distinct cells.
  MatrixClock clock(3);
  clock.set(D(1), D(2), 5);
  EXPECT_EQ(clock.at(D(2), D(1)), 0u);
}

TEST(MatrixClock, MergeTakesEntrywiseMax) {
  MatrixClock a(2), b(2);
  a.set(D(0), D(1), 3);
  b.set(D(0), D(1), 1);
  b.set(D(1), D(0), 9);
  a.MergeFrom(b);
  EXPECT_EQ(a.at(D(0), D(1)), 3u);
  EXPECT_EQ(a.at(D(1), D(0)), 9u);
}

TEST(MatrixClock, DominatedBy) {
  MatrixClock lo(2), hi(2);
  hi.set(D(0), D(0), 1);
  EXPECT_TRUE(lo.DominatedBy(hi));
  EXPECT_FALSE(hi.DominatedBy(lo));
  EXPECT_TRUE(lo.DominatedBy(lo));
  lo.set(D(1), D(1), 5);
  EXPECT_FALSE(lo.DominatedBy(hi));
}

TEST(MatrixClock, CodecRoundTrip) {
  MatrixClock clock(5);
  Rng rng(3);
  for (std::uint16_t i = 0; i < 5; ++i) {
    for (std::uint16_t j = 0; j < 5; ++j) {
      clock.set(D(i), D(j), rng.NextBelow(1u << 20));
    }
  }
  ByteWriter writer;
  clock.Encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = MatrixClock::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), clock);
  EXPECT_TRUE(reader.exhausted());
}

TEST(MatrixClock, DecodeTruncatedFails) {
  MatrixClock clock(4);
  ByteWriter writer;
  clock.Encode(writer);
  Bytes truncated(writer.buffer().begin(), writer.buffer().end() - 3);
  ByteReader reader(truncated);
  EXPECT_FALSE(MatrixClock::Decode(reader).ok());
}

// Lattice property sweep over random matrices and sizes.
class MatrixLattice
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MatrixLattice, MergeLaws) {
  const auto [size, seed] = GetParam();
  Rng rng(seed);
  auto random_matrix = [&] {
    MatrixClock matrix(size);
    for (std::uint16_t i = 0; i < size; ++i) {
      for (std::uint16_t j = 0; j < size; ++j) {
        matrix.set(D(i), D(j), rng.NextBelow(50));
      }
    }
    return matrix;
  };
  for (int round = 0; round < 20; ++round) {
    const MatrixClock a = random_matrix();
    const MatrixClock b = random_matrix();

    MatrixClock ab = a;
    ab.MergeFrom(b);
    MatrixClock ba = b;
    ba.MergeFrom(a);
    EXPECT_EQ(ab, ba);

    // Join dominates both operands.
    EXPECT_TRUE(a.DominatedBy(ab));
    EXPECT_TRUE(b.DominatedBy(ab));

    // Idempotence.
    MatrixClock aa = a;
    aa.MergeFrom(a);
    EXPECT_EQ(aa, a);

    // Total is monotone under merge.
    EXPECT_GE(ab.Total(), a.Total());
    EXPECT_GE(ab.Total(), b.Total());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, MatrixLattice,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 16),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace cmom::clocks
