// Unit and property tests for the matrix clock.
#include "clocks/matrix_clock.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace cmom::clocks {
namespace {

DomainServerId D(std::uint16_t v) { return DomainServerId(v); }

TEST(MatrixClock, StartsAtZero) {
  MatrixClock clock(4);
  for (std::uint16_t i = 0; i < 4; ++i) {
    for (std::uint16_t j = 0; j < 4; ++j) {
      EXPECT_EQ(clock.at(D(i), D(j)), 0u);
    }
  }
  EXPECT_EQ(clock.Total(), 0u);
}

TEST(MatrixClock, IncrementAndSet) {
  MatrixClock clock(3);
  EXPECT_EQ(clock.Increment(D(1), D(2)), 1u);
  EXPECT_EQ(clock.Increment(D(1), D(2)), 2u);
  clock.set(D(0), D(1), 7);
  EXPECT_EQ(clock.at(D(1), D(2)), 2u);
  EXPECT_EQ(clock.at(D(0), D(1)), 7u);
  EXPECT_EQ(clock.Total(), 9u);
}

TEST(MatrixClock, RowColumnIndependence) {
  // (i,j) and (j,i) are distinct cells.
  MatrixClock clock(3);
  clock.set(D(1), D(2), 5);
  EXPECT_EQ(clock.at(D(2), D(1)), 0u);
}

TEST(MatrixClock, MergeTakesEntrywiseMax) {
  MatrixClock a(2), b(2);
  a.set(D(0), D(1), 3);
  b.set(D(0), D(1), 1);
  b.set(D(1), D(0), 9);
  a.MergeFrom(b);
  EXPECT_EQ(a.at(D(0), D(1)), 3u);
  EXPECT_EQ(a.at(D(1), D(0)), 9u);
}

TEST(MatrixClock, DominatedBy) {
  MatrixClock lo(2), hi(2);
  hi.set(D(0), D(0), 1);
  EXPECT_TRUE(lo.DominatedBy(hi));
  EXPECT_FALSE(hi.DominatedBy(lo));
  EXPECT_TRUE(lo.DominatedBy(lo));
  lo.set(D(1), D(1), 5);
  EXPECT_FALSE(lo.DominatedBy(hi));
}

TEST(MatrixClock, CodecRoundTrip) {
  MatrixClock clock(5);
  Rng rng(3);
  for (std::uint16_t i = 0; i < 5; ++i) {
    for (std::uint16_t j = 0; j < 5; ++j) {
      clock.set(D(i), D(j), rng.NextBelow(1u << 20));
    }
  }
  ByteWriter writer;
  clock.Encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = MatrixClock::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), clock);
  EXPECT_TRUE(reader.exhausted());
}

TEST(MatrixClock, DecodeTruncatedFails) {
  MatrixClock clock(4);
  ByteWriter writer;
  clock.Encode(writer);
  Bytes truncated(writer.buffer().begin(), writer.buffer().end() - 3);
  ByteReader reader(truncated);
  EXPECT_FALSE(MatrixClock::Decode(reader).ok());
}

TEST(MatrixClock, RemapGrowByOne) {
  MatrixClock clock(2);
  clock.set(D(0), D(1), 3);
  clock.set(D(1), D(0), 7);
  clock.set(D(1), D(1), 2);
  // Old members keep their positions; new member appended at id 2.
  const std::optional<DomainServerId> map[] = {D(0), D(1), std::nullopt};
  MatrixClock grown = clock.Remap(3, map);
  EXPECT_EQ(grown.size(), 3u);
  EXPECT_EQ(grown.at(D(0), D(1)), 3u);
  EXPECT_EQ(grown.at(D(1), D(0)), 7u);
  EXPECT_EQ(grown.at(D(1), D(1)), 2u);
  for (std::uint16_t k = 0; k < 3; ++k) {
    EXPECT_EQ(grown.at(D(2), D(k)), 0u);
    EXPECT_EQ(grown.at(D(k), D(2)), 0u);
  }
  EXPECT_EQ(grown.Total(), clock.Total());
}

TEST(MatrixClock, RemapShrinkDropsStaleRow) {
  MatrixClock clock(3);
  for (std::uint16_t i = 0; i < 3; ++i) {
    for (std::uint16_t j = 0; j < 3; ++j) {
      clock.set(D(i), D(j), 10u * i + j + 1);
    }
  }
  // Member 1 departs; 0 and 2 survive, 2 renumbered to local id 1.
  const std::optional<DomainServerId> map[] = {D(0), D(2)};
  MatrixClock shrunk = clock.Remap(2, map);
  EXPECT_EQ(shrunk.size(), 2u);
  EXPECT_EQ(shrunk.at(D(0), D(0)), clock.at(D(0), D(0)));
  EXPECT_EQ(shrunk.at(D(0), D(1)), clock.at(D(0), D(2)));
  EXPECT_EQ(shrunk.at(D(1), D(0)), clock.at(D(2), D(0)));
  EXPECT_EQ(shrunk.at(D(1), D(1)), clock.at(D(2), D(2)));
}

TEST(MatrixClock, RemapIdentityPermutationRoundTrip) {
  MatrixClock clock(4);
  Rng rng(11);
  for (std::uint16_t i = 0; i < 4; ++i) {
    for (std::uint16_t j = 0; j < 4; ++j) {
      clock.set(D(i), D(j), rng.NextBelow(1000));
    }
  }
  const std::optional<DomainServerId> identity[] = {D(0), D(1), D(2), D(3)};
  EXPECT_EQ(clock.Remap(4, identity), clock);

  // A permutation composed with its inverse is also the identity.
  const std::optional<DomainServerId> perm[] = {D(2), D(0), D(3), D(1)};
  const std::optional<DomainServerId> inv[] = {D(1), D(3), D(0), D(2)};
  EXPECT_EQ(clock.Remap(4, perm).Remap(4, inv), clock);
}

// Lattice property sweep over random matrices and sizes.
class MatrixLattice
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {
};

TEST_P(MatrixLattice, MergeLaws) {
  const auto [size, seed] = GetParam();
  Rng rng(seed);
  auto random_matrix = [&] {
    MatrixClock matrix(size);
    for (std::uint16_t i = 0; i < size; ++i) {
      for (std::uint16_t j = 0; j < size; ++j) {
        matrix.set(D(i), D(j), rng.NextBelow(50));
      }
    }
    return matrix;
  };
  for (int round = 0; round < 20; ++round) {
    const MatrixClock a = random_matrix();
    const MatrixClock b = random_matrix();

    MatrixClock ab = a;
    ab.MergeFrom(b);
    MatrixClock ba = b;
    ba.MergeFrom(a);
    EXPECT_EQ(ab, ba);

    // Join dominates both operands.
    EXPECT_TRUE(a.DominatedBy(ab));
    EXPECT_TRUE(b.DominatedBy(ab));

    // Idempotence.
    MatrixClock aa = a;
    aa.MergeFrom(a);
    EXPECT_EQ(aa, a);

    // Total is monotone under merge.
    EXPECT_GE(ab.Total(), a.Total());
    EXPECT_GE(ab.Total(), b.Total());
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, MatrixLattice,
    ::testing::Combine(::testing::Values(1, 2, 3, 8, 16),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace cmom::clocks
