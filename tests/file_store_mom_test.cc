// Integration of the full MOM with the real on-disk FileStore: servers
// run over the simulated network but persist to actual WAL+snapshot
// files, crash (process state discarded), and recover from disk.
#include <gtest/gtest.h>

#include <filesystem>

#include "causality/checker.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/file_store.h"
#include "net/sim_network.h"
#include "workload/agents.h"

namespace cmom {
namespace {

namespace fs = std::filesystem;

class FileStoreMomTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cmom_mom_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FileStoreMomTest, DeliveryAndRecoveryFromRealFiles) {
  auto config = domains::topologies::Flat(2);
  auto deployment = domains::Deployment::Create(config).value();

  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});
  causality::TraceRecorder trace;

  auto endpoint0 = network.CreateEndpoint(ServerId(0)).value();
  auto endpoint1 = network.CreateEndpoint(ServerId(1)).value();
  auto store0 = mom::FileStore::Open(dir_ / "s0").value();
  auto store1 = mom::FileStore::Open(dir_ / "s1").value();

  mom::AgentServerOptions options;
  options.trace = &trace;
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;

  workload::EchoAgent* echo = nullptr;
  auto server0 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(0), endpoint0.get(), &runtime, store0.get(),
      options);
  auto server1 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(1), endpoint1.get(), &runtime, store1.get(),
      options);
  {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    server1->AttachAgent(1, std::move(agent));
  }
  ASSERT_TRUE(server0->Boot().ok());
  ASSERT_TRUE(server1->Boot().ok());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server0
                    ->SendMessage(AgentId{ServerId(0), 7},
                                  AgentId{ServerId(1), 1}, workload::kPing)
                    .ok());
  }
  simulator.RunToCompletion();
  EXPECT_EQ(echo->pings_seen(), 5u);
  EXPECT_TRUE(fs::exists(dir_ / "s1" / "wal.log"));

  // Crash server 1 (drop the object AND the store handle), then
  // recover both from the files on disk.
  server1->Shutdown();
  server1.reset();
  store1.reset();

  // A message sent while S1 is down is retransmitted after recovery.
  ASSERT_TRUE(server0
                  ->SendMessage(AgentId{ServerId(0), 7},
                                AgentId{ServerId(1), 1}, workload::kPing)
                  .ok());
  simulator.RunUntil(simulator.now() + 50ull * 1000 * 1000);
  EXPECT_EQ(server0->queue_out_size(), 1u);

  store1 = mom::FileStore::Open(dir_ / "s1").value();
  server1 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(1), endpoint1.get(), &runtime, store1.get(),
      options);
  {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    server1->AttachAgent(1, std::move(agent));
  }
  ASSERT_TRUE(server1->Boot().ok());
  EXPECT_EQ(echo->pings_seen(), 5u);  // counter restored from disk

  simulator.RunToCompletion();
  EXPECT_EQ(echo->pings_seen(), 6u);
  EXPECT_EQ(server0->queue_out_size(), 0u);

  causality::CausalityChecker checker({ServerId(0), ServerId(1)});
  const auto snapshot = trace.Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(snapshot).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(snapshot).ok());
  server0->Shutdown();
  server1->Shutdown();
}

TEST_F(FileStoreMomTest, ClockStateSurvivesOnDisk) {
  auto config = domains::topologies::Flat(2);
  auto deployment = domains::Deployment::Create(config).value();

  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});

  auto endpoint0 = network.CreateEndpoint(ServerId(0)).value();
  auto endpoint1 = network.CreateEndpoint(ServerId(1)).value();

  std::uint64_t sends_before = 0;
  {
    auto store0 = mom::FileStore::Open(dir_ / "s0").value();
    auto store1 = mom::FileStore::Open(dir_ / "s1").value();
    mom::AgentServer server0(deployment, ServerId(0), endpoint0.get(),
                             &runtime, store0.get());
    mom::AgentServer server1(deployment, ServerId(1), endpoint1.get(),
                             &runtime, store1.get());
    ASSERT_TRUE(server0.Boot().ok());
    ASSERT_TRUE(server1.Boot().ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(server0
                      .SendMessage(AgentId{ServerId(0), 1},
                                   AgentId{ServerId(1), 1}, "m")
                      .ok());
    }
    simulator.RunToCompletion();
    const auto* clock = server0.FindDomainClock(0);
    ASSERT_NE(clock, nullptr);
    sends_before =
        clock->matrix().at(DomainServerId(0), DomainServerId(1));
    EXPECT_EQ(sends_before, 3u);
    server0.Shutdown();
    server1.Shutdown();
  }
  // Reopen both from disk: the matrix clock continues where it was.
  auto store0 = mom::FileStore::Open(dir_ / "s0").value();
  auto store1 = mom::FileStore::Open(dir_ / "s1").value();
  mom::AgentServer server0(deployment, ServerId(0), endpoint0.get(),
                           &runtime, store0.get());
  mom::AgentServer server1(deployment, ServerId(1), endpoint1.get(),
                           &runtime, store1.get());
  ASSERT_TRUE(server0.Boot().ok());
  ASSERT_TRUE(server1.Boot().ok());
  const auto* clock = server0.FindDomainClock(0);
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock->matrix().at(DomainServerId(0), DomainServerId(1)),
            sends_before);
  ASSERT_TRUE(server0
                  .SendMessage(AgentId{ServerId(0), 1},
                               AgentId{ServerId(1), 1}, "m")
                  .ok());
  simulator.RunToCompletion();
  EXPECT_EQ(clock->matrix().at(DomainServerId(0), DomainServerId(1)),
            sends_before + 1);
  server0.Shutdown();
  server1.Shutdown();
}

}  // namespace
}  // namespace cmom
