// Tests for the metrics aggregation module.
#include "workload/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom::workload {
namespace {

TEST(Metrics, AggregatesAcrossServers) {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  SimHarness harness(domains::topologies::Bus(2, 2), options);
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(3)) {
                      server.AttachAgent(1, std::make_unique<EchoAgent>());
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(1), 7, ServerId(3), 1, kPing).ok());
  }
  harness.Run();

  MetricsSummary summary;
  for (ServerId id : harness.deployment().servers()) {
    summary.Add(id, harness.server(id), harness.store(id));
  }
  ASSERT_EQ(summary.servers.size(), 4u);
  // 4 pings + 4 pongs originated.
  EXPECT_EQ(summary.TotalSent(), 8u);
  EXPECT_EQ(summary.TotalDelivered(), 8u);
  // Each ping and each pong crosses routers S0 and S2: 2 forwards per
  // message.
  EXPECT_EQ(summary.TotalForwarded(), 16u);
  EXPECT_GT(summary.TotalStampBytes(), 0u);
  EXPECT_GT(summary.TotalDiskBytes(), 0u);
  EXPECT_EQ(summary.TotalRetransmissions(), 0u);
}

TEST(Metrics, TableRendersAllRowsAndTotals) {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  SimHarness harness(domains::topologies::Flat(2), options);
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "x").ok());
  harness.Run();

  MetricsSummary summary;
  for (ServerId id : harness.deployment().servers()) {
    summary.Add(id, harness.server(id), harness.store(id));
  }
  const std::string table = summary.ToTable();
  EXPECT_NE(table.find("S0"), std::string::npos);
  EXPECT_NE(table.find("S1"), std::string::npos);
  EXPECT_NE(table.find("total"), std::string::npos);
  // One line per server + header + totals.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 4);
}

TEST(Metrics, EmptySummaryIsAllZero) {
  MetricsSummary summary;
  EXPECT_EQ(summary.TotalSent(), 0u);
  EXPECT_EQ(summary.TotalDiskBytes(), 0u);
  EXPECT_NE(summary.ToTable().find("total"), std::string::npos);
}

}  // namespace
}  // namespace cmom::workload
