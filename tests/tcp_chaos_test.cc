// Crash/restart chaos over real TCP sockets with durable FileStore
// state: servers are killed (endpoint torn down, process state thrown
// away) and rebooted from disk while traffic is in flight, repeatedly.
// The supervised transport must buffer and reconnect around every
// outage, the Channel's ACK/retransmit protocol must re-deliver what
// the crash swallowed, and the recovered matrix clocks must drop every
// duplicate -- the paper's exactly-once causal contract, end to end.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "causality/checker.h"
#include "common/seed.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/file_store.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"

namespace cmom {
namespace {

using workload::ChatterAgent;

constexpr std::uint16_t kBasePort = 23000;

// One Bus(2,2) cluster whose servers can be killed and rebooted from
// their FileStore at any moment.  Member order is the destruction
// contract: servers die before endpoints, endpoints before the network
// and the runtime.
class ChaosCluster {
 public:
  explicit ChaosCluster(std::uint16_t base_port)
      : config_(domains::topologies::Bus(2, 2)),
        deployment_(domains::Deployment::Create(config_).value()),
        network_(base_port) {
    root_ = std::filesystem::temp_directory_path() /
            ("cmom-chaos-" + std::to_string(::getpid()) + "-" +
             std::to_string(base_port));
    std::filesystem::remove_all(root_);
    for (ServerId id : config_.servers) peers_.push_back(AgentId{id, 1});
    const std::size_t n = config_.servers.size();
    stores_.resize(n);
    endpoints_.resize(n);
    servers_.resize(n);
    for (std::size_t i = 0; i < n; ++i) Start(static_cast<std::uint16_t>(i));
  }

  ~ChaosCluster() {
    for (auto& server : servers_) {
      if (server) server->Halt();
    }
    servers_.clear();
    endpoints_.clear();
    stores_.clear();
    std::filesystem::remove_all(root_);
  }

  // Boots (or reboots) server `i` from its durable directory.
  void Start(std::uint16_t i) {
    const ServerId id(i);
    stores_[i] = mom::FileStore::Open(root_ / std::to_string(i)).value();
    endpoints_[i] = network_.CreateEndpoint(id).value();
    mom::AgentServerOptions options;
    options.trace = &trace_;
    options.retransmit_timeout_ns = 100ull * 1000 * 1000;
    servers_[i] = std::make_unique<mom::AgentServer>(
        deployment_, id, endpoints_[i].get(), &runtime_, stores_[i].get(),
        options);
    servers_[i]->AttachAgent(
        1, std::make_unique<ChatterAgent>(agent_seed_ + id.value(), peers_));
    ASSERT_TRUE(servers_[i]->Boot().ok());
  }

  // Simulates a process kill: bar the server's timers, tear the sockets
  // down, discard all in-memory state.  Only the FileStore directory
  // survives, exactly what a real crash leaves behind.
  void Kill(std::uint16_t i) {
    servers_[i]->Halt();
    endpoints_[i].reset();  // joins the I/O thread: no more receives
    servers_[i].reset();
    stores_[i].reset();  // closes the WAL
  }

  void SendChat(std::uint16_t from, std::uint32_t hops) {
    const ServerId id(from);
    ASSERT_TRUE(servers_[from]
                    ->SendMessage(AgentId{id, 1}, AgentId{id, 1},
                                  workload::kChat,
                                  ChatterAgent::MakeChatPayload(hops))
                    .ok());
  }

  void WaitQuiescent() {
    int stable = 0;
    while (stable < 3) {
      bool idle = true;
      for (auto& server : servers_) {
        if (!server->Idle() || server->queue_out_size() != 0 ||
            server->holdback_size() != 0) {
          idle = false;
          break;
        }
      }
      for (auto& endpoint : endpoints_) {
        if (endpoint->stats().outbox_frames != 0) {
          idle = false;
          break;
        }
      }
      stable = idle ? stable + 1 : 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  const domains::MomConfig& config() const { return config_; }
  causality::TraceRecorder& trace() { return trace_; }
  mom::AgentServer& server(std::uint16_t i) { return *servers_[i]; }
  net::Endpoint& endpoint(std::uint16_t i) { return *endpoints_[i]; }

 private:
  domains::MomConfig config_;
  domains::Deployment deployment_;
  // Chatter randomness base; CMOM_SEED overrides for replay.
  std::uint64_t agent_seed_ = SeedFromEnv(1000, "tcp_chaos_test");
  net::TcpNetwork network_;
  net::ThreadRuntime runtime_;
  causality::TraceRecorder trace_;
  std::filesystem::path root_;
  std::vector<AgentId> peers_;
  std::vector<std::unique_ptr<mom::FileStore>> stores_;
  std::vector<std::unique_ptr<net::Endpoint>> endpoints_;
  std::vector<std::unique_ptr<mom::AgentServer>> servers_;
};

// Bus(2,2): S0,S1 in leaf 1; S2,S3 in leaf 2; backbone {S0,S2}.  S2 is
// a causal router (backbone + leaf 2), S3 a pure leaf.  Each gets two
// kill/restart cycles with chatter storms running across the cycles.
TEST(TcpChaos, ExactlyOnceCausalDeliveryAcrossKillRestartCycles) {
  ChaosCluster cluster(kBasePort);

  const std::uint16_t victims[] = {2, 3};  // router, then leaf
  int cycles = 0;
  for (std::uint16_t victim : victims) {
    for (int cycle = 0; cycle < 2; ++cycle, ++cycles) {
      // Launch a wave from every server, let it spread mid-flight...
      for (std::uint16_t i = 0; i < 4; ++i) cluster.SendChat(i, 3);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));

      // ...then rip the victim out while frames are in the air.
      cluster.Kill(victim);
      // More traffic toward the corpse: peers must buffer and back off.
      for (std::uint16_t i = 0; i < 4; ++i) {
        if (i != victim) cluster.SendChat(i, 2);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(150));

      cluster.Start(victim);  // reboot from the FileStore image
      cluster.WaitQuiescent();
    }
  }
  ASSERT_EQ(cycles, 4);

  // One more storm on the fully recovered cluster.
  for (std::uint16_t i = 0; i < 4; ++i) cluster.SendChat(i, 3);
  cluster.WaitQuiescent();

  causality::CausalityChecker checker(std::vector<ServerId>(
      cluster.config().servers.begin(), cluster.config().servers.end()));
  const causality::Trace trace = cluster.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << (report.violations.empty()
              ? ""
              : report.violations.front().description);
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  // Every wave really produced causal chains across the bus.
  EXPECT_GT(report.messages_delivered, 5u * 4u);

  // The survivors reconnected around each outage.
  std::uint64_t reconnects = 0;
  std::uint64_t retransmissions = 0;
  for (std::uint16_t i = 0; i < 4; ++i) {
    reconnects += cluster.endpoint(i).stats().reconnects;
    retransmissions += cluster.server(i).stats().retransmissions;
  }
  EXPECT_GE(reconnects, 1u);
  (void)retransmissions;  // informational; may be zero on fast restarts
}

// A crash wipes the in-memory incarnation completely: the rebooted
// server must resume from the durable image alone.  Run a ping-pong
// against a restarted echo server and check nothing is lost or doubled.
TEST(TcpChaos, RestartedServerResumesFromDurableStateOnly) {
  ChaosCluster cluster(kBasePort + 100);

  // S1 -> S3 crosses both routers of the bus.
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 5; ++i) cluster.SendChat(1, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    cluster.Kill(3);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    cluster.Start(3);
    cluster.WaitQuiescent();
  }

  causality::CausalityChecker checker(std::vector<ServerId>(
      cluster.config().servers.begin(), cluster.config().servers.end()));
  const causality::Trace trace = cluster.trace().Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
}

}  // namespace
}  // namespace cmom
