// Tests for the file-backed WAL + snapshot store, including crash
// recovery from torn and corrupted tails.
#include "mom/file_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace cmom::mom {
namespace {

namespace fs = std::filesystem;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cmom_store_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

Bytes B(std::initializer_list<std::uint8_t> bytes) { return Bytes(bytes); }

TEST_F(FileStoreTest, PersistsAcrossReopen) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("alpha", B({1, 2, 3}));
    store->Put("beta", B({4}));
    ASSERT_TRUE(store->Commit().ok());
  }
  auto store = FileStore::Open(dir_).value();
  ASSERT_TRUE(store->Get("alpha").has_value());
  EXPECT_EQ(*store->Get("alpha"), B({1, 2, 3}));
  EXPECT_EQ(*store->Get("beta"), B({4}));
}

TEST_F(FileStoreTest, DataSyncModeSyncsEveryCommitAndCompaction) {
  FileStoreOptions options;
  options.sync_mode = SyncMode::kDataSync;
  {
    auto store = FileStore::Open(dir_, options).value();
    EXPECT_EQ(store->sync_calls(), 0u);
    store->Put("alpha", B({1}));
    ASSERT_TRUE(store->Commit().ok());
    EXPECT_EQ(store->sync_calls(), 1u);
    store->Put("beta", B({2}));
    ASSERT_TRUE(store->Commit().ok());
    EXPECT_EQ(store->sync_calls(), 2u);
    ASSERT_TRUE(store->Compact().ok());
    EXPECT_GT(store->sync_calls(), 2u);  // the snapshot is synced too
  }
  auto store = FileStore::Open(dir_, options).value();
  EXPECT_EQ(*store->Get("alpha"), B({1}));
  EXPECT_EQ(*store->Get("beta"), B({2}));
}

TEST_F(FileStoreTest, DefaultSyncModeNeverCallsFdatasync) {
  auto store = FileStore::Open(dir_).value();
  store->Put("alpha", B({1}));
  ASSERT_TRUE(store->Commit().ok());
  ASSERT_TRUE(store->Compact().ok());
  EXPECT_EQ(store->sync_calls(), 0u);
}

TEST_F(FileStoreTest, UncommittedWritesDoNotSurvive) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("committed", B({1}));
    ASSERT_TRUE(store->Commit().ok());
    store->Put("staged", B({2}));
    // no commit
  }
  auto store = FileStore::Open(dir_).value();
  EXPECT_TRUE(store->Get("committed").has_value());
  EXPECT_FALSE(store->Get("staged").has_value());
}

TEST_F(FileStoreTest, DeletesPersist) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("k", B({1}));
    ASSERT_TRUE(store->Commit().ok());
    store->Delete("k");
    ASSERT_TRUE(store->Commit().ok());
  }
  auto store = FileStore::Open(dir_).value();
  EXPECT_FALSE(store->Get("k").has_value());
}

TEST_F(FileStoreTest, TornTailIsDiscarded) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("good", B({1}));
    ASSERT_TRUE(store->Commit().ok());
  }
  // Simulate a crash mid-append: write a header that claims more bytes
  // than exist.
  {
    std::ofstream wal(dir_ / "wal.log", std::ios::binary | std::ios::app);
    const std::uint32_t bogus_len = 1000;
    const std::uint32_t bogus_crc = 0;
    wal.write(reinterpret_cast<const char*>(&bogus_len), 4);
    wal.write(reinterpret_cast<const char*>(&bogus_crc), 4);
    wal.write("short", 5);
  }
  auto store = FileStore::Open(dir_).value();
  EXPECT_TRUE(store->Get("good").has_value());
}

TEST_F(FileStoreTest, CorruptCrcIsDiscarded) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("good", B({1}));
    ASSERT_TRUE(store->Commit().ok());
    store->Put("later", B({2}));
    ASSERT_TRUE(store->Commit().ok());
  }
  // Flip a byte inside the second transaction's body.
  {
    std::fstream wal(dir_ / "wal.log",
                     std::ios::binary | std::ios::in | std::ios::out);
    wal.seekg(0, std::ios::end);
    const auto size = static_cast<long>(wal.tellg());
    wal.seekp(size - 2);
    wal.put('\x5A');
  }
  auto store = FileStore::Open(dir_).value();
  EXPECT_TRUE(store->Get("good").has_value());
  EXPECT_FALSE(store->Get("later").has_value());  // corrupt txn dropped
}

TEST_F(FileStoreTest, CompactionPreservesStateAndTruncatesWal) {
  {
    auto store = FileStore::Open(dir_).value();
    for (int i = 0; i < 50; ++i) {
      store->Put("key" + std::to_string(i % 5), Bytes(100, 7));
      ASSERT_TRUE(store->Commit().ok());
    }
    ASSERT_TRUE(store->Compact().ok());
    EXPECT_LT(fs::file_size(dir_ / "wal.log"), 10u);
  }
  auto store = FileStore::Open(dir_).value();
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(store->Get("key" + std::to_string(i)).has_value());
  }
  // Writes after compaction still persist.
  store->Put("fresh", B({9}));
  ASSERT_TRUE(store->Commit().ok());
  auto reopened = FileStore::Open(dir_).value();
  EXPECT_TRUE(reopened->Get("fresh").has_value());
}

TEST_F(FileStoreTest, AutoCompactionKicksInPastThreshold) {
  auto store = FileStore::Open(dir_).value();
  store->set_compaction_threshold(1024);
  for (int i = 0; i < 100; ++i) {
    store->Put("hot", Bytes(200, 1));
    ASSERT_TRUE(store->Commit().ok());
  }
  EXPECT_LT(fs::file_size(dir_ / "wal.log"), 4096u);
  EXPECT_TRUE(fs::exists(dir_ / "snapshot.log"));
}

TEST_F(FileStoreTest, OrphanSnapshotTmpIsIgnored) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("k", B({1}));
    ASSERT_TRUE(store->Commit().ok());
  }
  std::ofstream(dir_ / "snapshot.log.tmp") << "garbage from crashed compact";
  auto store = FileStore::Open(dir_).value();
  EXPECT_TRUE(store->Get("k").has_value());
  EXPECT_FALSE(fs::exists(dir_ / "snapshot.log.tmp"));
}

TEST_F(FileStoreTest, ShortWalWriteLeavesPreviousStateRecoverable) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("good", B({1}));
    ASSERT_TRUE(store->Commit().ok());

    // ENOSPC mid-append: only the first 6 bytes of the next record
    // reach the disk -- not even a whole header.
    store->set_wal_write_limit(6);
    store->Put("doomed", B({2}));
    EXPECT_EQ(store->Commit().code(), StatusCode::kUnavailable);
    store->Rollback();

    // The cache is back at the committed image...
    EXPECT_EQ(*store->Get("good"), B({1}));
    EXPECT_FALSE(store->Get("doomed").has_value());

    // ...and the store refuses further commits: appending after the
    // torn tail would corrupt the log by offset.  This is the store
    // half of fail-stop.
    store->Put("late", B({3}));
    EXPECT_EQ(store->Commit().code(), StatusCode::kUnavailable);
    store->Rollback();
  }
  // Boot recovery: the CRC scan discards the torn prefix and the store
  // is exactly at its previous consistent state, writable again.
  auto store = FileStore::Open(dir_).value();
  EXPECT_EQ(*store->Get("good"), B({1}));
  EXPECT_FALSE(store->Get("doomed").has_value());
  EXPECT_FALSE(store->Get("late").has_value());
  store->Put("fresh", B({4}));
  ASSERT_TRUE(store->Commit().ok());
  auto reopened = FileStore::Open(dir_).value();
  EXPECT_EQ(*reopened->Get("good"), B({1}));
  EXPECT_EQ(*reopened->Get("fresh"), B({4}));
}

TEST_F(FileStoreTest, ShortWriteTornTailDoesNotShadowEarlierRecords) {
  {
    auto store = FileStore::Open(dir_).value();
    store->Put("a", B({1}));
    ASSERT_TRUE(store->Commit().ok());
    store->Put("b", B({2}));
    ASSERT_TRUE(store->Commit().ok());
    // Torn write that includes a full valid header but only part of the
    // body: the CRC check must reject it.
    store->set_wal_write_limit(12);
    store->Put("c", B({3, 3, 3, 3}));
    EXPECT_EQ(store->Commit().code(), StatusCode::kUnavailable);
  }
  auto store = FileStore::Open(dir_).value();
  EXPECT_EQ(*store->Get("a"), B({1}));
  EXPECT_EQ(*store->Get("b"), B({2}));
  EXPECT_FALSE(store->Get("c").has_value());
}

TEST_F(FileStoreTest, RollbackDiscardsStaged) {
  auto store = FileStore::Open(dir_).value();
  store->Put("a", B({1}));
  ASSERT_TRUE(store->Commit().ok());
  store->Put("a", B({2}));
  store->Rollback();
  EXPECT_EQ(*store->Get("a"), B({1}));
  ASSERT_TRUE(store->Commit().ok());  // empty commit
  auto reopened = FileStore::Open(dir_).value();
  EXPECT_EQ(*reopened->Get("a"), B({1}));
}

TEST_F(FileStoreTest, ManyKeysSurviveMixedWorkload) {
  {
    auto store = FileStore::Open(dir_).value();
    for (int round = 0; round < 10; ++round) {
      for (int k = 0; k < 20; ++k) {
        store->Put("k" + std::to_string(k),
                   Bytes{static_cast<std::uint8_t>(round),
                         static_cast<std::uint8_t>(k)});
      }
      if (round % 3 == 0) store->Delete("k" + std::to_string(round));
      ASSERT_TRUE(store->Commit().ok());
    }
  }
  auto store = FileStore::Open(dir_).value();
  // k0/k3/k6 were re-put by later rounds; k9's delete in the final
  // round is the last word on it.
  EXPECT_EQ(store->Keys("k").size(), 19u);
  EXPECT_FALSE(store->Get("k9").has_value());
  EXPECT_EQ((*store->Get("k5"))[0], 9);  // last round's value
}

}  // namespace
}  // namespace cmom::mom
