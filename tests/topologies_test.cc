// Property tests for the topology builders: server counts match the
// paper's formulas, canonical organizations validate as deployments,
// and the ring is the only cyclic one.
#include "domains/topologies.h"

#include <gtest/gtest.h>

#include "domains/deployment.h"
#include "domains/domain_graph.h"

namespace cmom::domains::topologies {
namespace {

TEST(Flat, OneDomainWithAllServers) {
  auto config = Flat(7);
  EXPECT_EQ(config.servers.size(), 7u);
  ASSERT_EQ(config.domains.size(), 1u);
  EXPECT_EQ(config.domains[0].members.size(), 7u);
  EXPECT_TRUE(Deployment::Create(config).ok());
}

class BusSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(BusSweep, StructureInvariants) {
  const auto [k, s] = GetParam();
  auto config = Bus(k, s);
  EXPECT_EQ(config.servers.size(), k * s);
  ASSERT_EQ(config.domains.size(), k + 1);  // backbone + k leaves
  EXPECT_EQ(config.domains[0].members.size(), k);  // backbone
  for (std::size_t leaf = 1; leaf <= k; ++leaf) {
    EXPECT_EQ(config.domains[leaf].members.size(), s);
  }
  auto deployment = Deployment::Create(config);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_TRUE(deployment.value().domain_graph().IsAcyclic());
  // Exactly the k backbone members are routers (for s >= 2).
  if (s >= 2) {
    EXPECT_EQ(deployment.value().domain_graph().routers().size(), k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BusSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 12),
                       ::testing::Values(1, 2, 4, 12)));

class DaisySweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(DaisySweep, StructureInvariants) {
  const auto [k, s] = GetParam();
  auto config = Daisy(k, s);
  EXPECT_EQ(config.servers.size(), k * s - (k - 1));
  EXPECT_EQ(config.domains.size(), k);
  auto deployment = Deployment::Create(config);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  // Adjacent domains share exactly one server; diameter is k hops...
  if (k >= 2) {
    EXPECT_EQ(deployment.value().domain_graph().routers().size(), k - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, DaisySweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 8),
                       ::testing::Values(2, 3, 7)));

class TreeSweep : public ::testing::TestWithParam<
                      std::tuple<std::size_t, std::size_t, std::size_t>> {};

TEST_P(TreeSweep, MatchesThePapersFormula) {
  const auto [branching, s, depth] = GetParam();
  if (branching > s - 1) GTEST_SKIP() << "requires branching <= s-1";
  auto config = Tree(branching, s, depth);
  // n = 1 + (s-1) (k^(d+1) - 1) / (k - 1); for k=1 the sum is d+1 terms.
  std::size_t domain_count = 0;
  std::size_t power = 1;
  for (std::size_t level = 0; level <= depth; ++level) {
    domain_count += power;
    power *= branching;
  }
  EXPECT_EQ(config.domains.size(), domain_count);
  EXPECT_EQ(config.servers.size(), 1 + (s - 1) * domain_count);
  auto deployment = Deployment::Create(config);
  ASSERT_TRUE(deployment.ok()) << deployment.status();
  EXPECT_TRUE(deployment.value().domain_graph().IsAcyclic());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(3, 4, 6),
                       ::testing::Values(0, 1, 2, 3)));

TEST(Ring, IsCyclicAndSized) {
  for (std::size_t k = 2; k <= 5; ++k) {
    auto config = Ring(k, 4);
    EXPECT_EQ(config.servers.size(), k * 3);
    EXPECT_TRUE(config.allow_cyclic_domain_graph);
    EXPECT_FALSE(DomainGraph::Build(config).IsAcyclic());
    EXPECT_TRUE(Deployment::Create(config).ok());  // allowed explicitly
  }
}

TEST(Ring, MinimalRingOfTwoServersPerDomain) {
  auto config = Ring(3, 2);
  EXPECT_EQ(config.servers.size(), 3u);
  EXPECT_FALSE(DomainGraph::Build(config).IsAcyclic());
}

TEST(BusForServerCount, RoundsUpToWholeDomains) {
  auto config = BusForServerCount(10, 4);
  EXPECT_EQ(config.servers.size(), 12u);  // 3 domains of 4
  EXPECT_EQ(config.domains.size(), 4u);   // backbone + 3
  auto exact = BusForServerCount(12, 4);
  EXPECT_EQ(exact.servers.size(), 12u);
}

TEST(AllBuilders, ServerIdsAreDenseFromZero) {
  for (const MomConfig& config :
       {Flat(5), Bus(3, 4), Daisy(4, 3), Tree(2, 4, 2), Ring(3, 3)}) {
    for (std::size_t i = 0; i < config.servers.size(); ++i) {
      EXPECT_EQ(config.servers[i], ServerId(static_cast<std::uint16_t>(i)));
    }
  }
}

}  // namespace
}  // namespace cmom::domains::topologies
