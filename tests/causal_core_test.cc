// Unit tests for the pluggable causal-delivery cores: the strategy
// interface contract, byte-identity of the matrix core with the
// pre-core CausalDomainClock (stamps and durable images), the durable
// codec for every core (including legacy-image compatibility in both
// directions), remapping, and the hybrid core's barrier lifecycle.
#include "clocks/causal_core.h"

#include <gtest/gtest.h>

#include <vector>

#include "clocks/causal_clock.h"

namespace cmom::clocks {
namespace {

DomainServerId D(std::uint16_t v) { return DomainServerId(v); }

Bytes EncodeStamp(const Stamp& stamp) {
  ByteWriter out;
  stamp.Encode(out);
  return std::move(out).Take();
}

Bytes EncodeCore(const CausalCore& core) {
  ByteWriter out;
  core.EncodeState(out);
  return std::move(out).Take();
}

TEST(CausalCoreKindTest, NamesAndParseRoundTrip) {
  for (CausalCoreKind kind :
       {CausalCoreKind::kMatrix, CausalCoreKind::kHybrid,
        CausalCoreKind::kReduced}) {
    EXPECT_EQ(ParseCausalCoreKind(CausalCoreKindName(kind)), kind);
  }
  EXPECT_FALSE(ParseCausalCoreKind("vector").has_value());
  EXPECT_FALSE(ParseCausalCoreKind("").has_value());
}

TEST(CausalCoreKindTest, StampCostModel) {
  EXPECT_EQ(CausalCoreStampCost(CausalCoreKind::kMatrix, 8), 64u);
  EXPECT_EQ(CausalCoreStampCost(CausalCoreKind::kReduced, 8), 8u);
  EXPECT_EQ(CausalCoreStampCost(CausalCoreKind::kHybrid, 8), 1u);
}

// The matrix core must be bit-exact with the bare CausalDomainClock:
// identical stamps on every send and identical durable images after
// identical traffic, in both stamp modes.  This is what keeps pre-core
// deployments wire- and store-compatible.
class MatrixCoreByteIdentity : public ::testing::TestWithParam<StampMode> {};

TEST_P(MatrixCoreByteIdentity, StampsAndImagesMatchTheBareClock) {
  const StampMode mode = GetParam();
  constexpr std::size_t kSize = 4;
  std::vector<CausalDomainClock> clocks;
  std::vector<std::unique_ptr<CausalCore>> cores;
  for (std::uint16_t i = 0; i < kSize; ++i) {
    clocks.emplace_back(D(i), kSize, mode);
    cores.push_back(MakeCausalCore(CausalCoreKind::kMatrix, D(i), kSize,
                                   mode));
  }

  // Deterministic little storm: every pair, a few rounds, immediate
  // delivery (the codec identity is what is under test, not ordering).
  for (int round = 0; round < 3; ++round) {
    for (std::uint16_t src = 0; src < kSize; ++src) {
      for (std::uint16_t dst = 0; dst < kSize; ++dst) {
        if (src == dst) continue;
        const Stamp expected = clocks[src].PrepareSend(D(dst));
        const Stamp actual = cores[src]->PrepareSend(D(dst));
        ASSERT_EQ(EncodeStamp(expected), EncodeStamp(actual));
        ASSERT_EQ(clocks[dst].Check(D(src), expected),
                  cores[dst]->CheckReceive(D(src), actual));
        clocks[dst].Commit(D(src), expected);
        cores[dst]->OnDeliver(D(src), actual);
      }
    }
  }

  for (std::uint16_t i = 0; i < kSize; ++i) {
    ByteWriter legacy;
    clocks[i].EncodeState(legacy);
    EXPECT_EQ(std::move(legacy).Take(), EncodeCore(*cores[i]));
    EXPECT_EQ(clocks[i].version(), cores[i]->version());
  }
}

TEST_P(MatrixCoreByteIdentity, BatchStampsMatchTheBareClock) {
  const StampMode mode = GetParam();
  CausalDomainClock clock(D(0), 3, mode);
  auto core = MakeCausalCore(CausalCoreKind::kMatrix, D(0), 3, mode);
  std::vector<Stamp> expected;
  std::vector<Stamp> actual;
  clock.PrepareSendBatch(D(1), 5, expected);
  core->PrepareSendBatch(D(1), 5, actual);
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(EncodeStamp(expected[i]), EncodeStamp(actual[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, MatrixCoreByteIdentity,
                         ::testing::Values(StampMode::kFullMatrix,
                                           StampMode::kUpdates),
                         [](const auto& info) {
                           return info.param == StampMode::kUpdates
                                      ? "updates"
                                      : "full";
                         });

// Drives a little three-member conversation on a core so its state is
// non-trivial before encoding.
void Stir(CausalCore& a, CausalCore& b, CausalCore& c) {
  const Stamp ab = a.PrepareSend(b.self());
  ASSERT_EQ(b.CheckReceive(a.self(), ab), CheckResult::kDeliver);
  b.OnDeliver(a.self(), ab);
  const Stamp bc = b.PrepareSend(c.self());
  ASSERT_EQ(c.CheckReceive(b.self(), bc), CheckResult::kDeliver);
  c.OnDeliver(b.self(), bc);
  const Stamp ca = c.PrepareSend(a.self());
  ASSERT_EQ(a.CheckReceive(c.self(), ca), CheckResult::kDeliver);
  a.OnDeliver(c.self(), ca);
}

class CausalCoreCodec : public ::testing::TestWithParam<CausalCoreKind> {};

TEST_P(CausalCoreCodec, EncodeDecodeRoundTripsAndReEncodesIdentically) {
  const CausalCoreKind kind = GetParam();
  auto a = MakeCausalCore(kind, D(0), 3, StampMode::kUpdates);
  auto b = MakeCausalCore(kind, D(1), 3, StampMode::kUpdates);
  auto c = MakeCausalCore(kind, D(2), 3, StampMode::kUpdates);
  Stir(*a, *b, *c);

  const Bytes image = EncodeCore(*b);
  ByteReader in(image);
  auto decoded = DecodeCausalCoreState(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  EXPECT_TRUE(in.exhausted());
  EXPECT_EQ(decoded.value()->kind(), kind);
  EXPECT_EQ(decoded.value()->self(), D(1));
  EXPECT_EQ(decoded.value()->domain_size(), 3u);
  EXPECT_TRUE(decoded.value()->Equals(*b));
  // Byte-identical restore: re-encoding the decoded core reproduces
  // the image exactly (the crash-recovery invariant).
  EXPECT_EQ(EncodeCore(*decoded.value()), image);
}

TEST_P(CausalCoreCodec, DecodedCoreKeepsDeliveringCorrectly) {
  const CausalCoreKind kind = GetParam();
  auto a = MakeCausalCore(kind, D(0), 3, StampMode::kUpdates);
  auto b = MakeCausalCore(kind, D(1), 3, StampMode::kUpdates);
  auto c = MakeCausalCore(kind, D(2), 3, StampMode::kUpdates);
  Stir(*a, *b, *c);

  const Bytes image = EncodeCore(*b);
  ByteReader in(image);
  auto revived = DecodeCausalCoreState(in);
  ASSERT_TRUE(revived.ok());

  // A fresh message is deliverable exactly once by the revived core,
  // and a replay of the pre-crash message is recognised as duplicate.
  const Stamp retransmit = a->PrepareSend(D(1));
  ASSERT_EQ(revived.value()->CheckReceive(D(0), retransmit),
            CheckResult::kDeliver);
  revived.value()->OnDeliver(D(0), retransmit);
  EXPECT_EQ(revived.value()->CheckReceive(D(0), retransmit),
            CheckResult::kDuplicate);
}

INSTANTIATE_TEST_SUITE_P(Kinds, CausalCoreCodec,
                         ::testing::Values(CausalCoreKind::kMatrix,
                                           CausalCoreKind::kHybrid,
                                           CausalCoreKind::kReduced),
                         [](const auto& info) {
                           return std::string(
                               CausalCoreKindName(info.param));
                         });

TEST(CausalCoreCodecCompat, LegacyMatrixImageDecodesAsMatrixCore) {
  CausalDomainClock clock(D(1), 3, StampMode::kUpdates);
  CausalDomainClock peer(D(0), 3, StampMode::kUpdates);
  const Stamp stamp = peer.PrepareSend(D(1));
  ASSERT_EQ(clock.Check(D(0), stamp), CheckResult::kDeliver);
  clock.Commit(D(0), stamp);

  ByteWriter out;
  clock.EncodeState(out);
  const Bytes legacy = std::move(out).Take();
  ByteReader in(legacy);
  auto core = DecodeCausalCoreState(in);
  ASSERT_TRUE(core.ok()) << core.status().to_string();
  EXPECT_EQ(core.value()->kind(), CausalCoreKind::kMatrix);
  ASSERT_NE(core.value()->AsMatrix(), nullptr);
  EXPECT_EQ(*core.value()->AsMatrix(), clock);
  EXPECT_EQ(EncodeCore(*core.value()), legacy);
}

TEST(CausalCoreCodecCompat, ReducedRecordIsRejectedByTheLegacyDecoder) {
  // A reduced-core image must NOT parse as a legacy CausalDomainClock:
  // the sentinel lands in the self-id slot and the kind byte (2) in the
  // stamp-mode slot, which the old decoder rejects as out of range.
  auto reduced = MakeCausalCore(CausalCoreKind::kReduced, D(0), 2,
                                StampMode::kUpdates);
  const Bytes image = EncodeCore(*reduced);
  ByteReader in(image);
  EXPECT_FALSE(CausalDomainClock::DecodeState(in).ok());
}

TEST(CausalCoreCodecCompat, UnknownKindAndTruncationAreDataLoss) {
  {
    ByteWriter out;
    out.WriteU16(0xFFFF);
    out.WriteU8(7);  // no such core
    const Bytes bytes = std::move(out).Take();
    ByteReader in(bytes);
    EXPECT_EQ(DecodeCausalCoreState(in).status().code(),
              StatusCode::kDataLoss);
  }
  {
    ByteWriter out;
    out.WriteU16(0xFFFF);
    const Bytes bytes = std::move(out).Take();
    ByteReader in(bytes);
    EXPECT_FALSE(DecodeCausalCoreState(in).ok());
  }
  {
    // A matrix-tagged record is impossible: the matrix core writes
    // legacy images.
    ByteWriter out;
    out.WriteU16(0xFFFF);
    out.WriteU8(static_cast<std::uint8_t>(CausalCoreKind::kMatrix));
    const Bytes bytes = std::move(out).Take();
    ByteReader in(bytes);
    EXPECT_EQ(DecodeCausalCoreState(in).status().code(),
              StatusCode::kDataLoss);
  }
}

// Causal transitivity through a relay, the scenario every core must
// hold back on: A -> C directly is slow, A -> B -> C is fast, so C
// sees B's relayed message (which causally follows A's) first.
class CausalCoreTransitivity
    : public ::testing::TestWithParam<CausalCoreKind> {};

TEST_P(CausalCoreTransitivity, RelayedMessageWaitsForItsPredecessor) {
  const CausalCoreKind kind = GetParam();
  auto a = MakeCausalCore(kind, D(0), 3, StampMode::kUpdates);
  auto b = MakeCausalCore(kind, D(1), 3, StampMode::kUpdates);
  auto c = MakeCausalCore(kind, D(2), 3, StampMode::kUpdates);

  const Stamp slow = a->PrepareSend(D(2));   // m1: A -> C, delayed
  const Stamp relay = a->PrepareSend(D(1));  // m2: A -> B
  ASSERT_EQ(b->CheckReceive(D(0), relay), CheckResult::kDeliver);
  b->OnDeliver(D(0), relay);
  const Stamp fast = b->PrepareSend(D(2));   // m3: B -> C, after m2

  // m3 arrives first: its causal past contains m1 (A -> C), so C must
  // hold it back even though the B -> C link itself has no gap.
  ASSERT_EQ(c->CheckReceive(D(1), fast), CheckResult::kHold);
  ASSERT_EQ(c->CheckReceive(D(0), slow), CheckResult::kDeliver);
  c->OnDeliver(D(0), slow);
  ASSERT_EQ(c->CheckReceive(D(1), fast), CheckResult::kDeliver);
  c->OnDeliver(D(1), fast);
  // Replays of both are duplicates now.
  EXPECT_EQ(c->CheckReceive(D(0), slow), CheckResult::kDuplicate);
  EXPECT_EQ(c->CheckReceive(D(1), fast), CheckResult::kDuplicate);
}

INSTANTIATE_TEST_SUITE_P(Kinds, CausalCoreTransitivity,
                         ::testing::Values(CausalCoreKind::kMatrix,
                                           CausalCoreKind::kHybrid,
                                           CausalCoreKind::kReduced),
                         [](const auto& info) {
                           return std::string(
                               CausalCoreKindName(info.param));
                         });

TEST(HybridBufferingBarriers, ConfirmationsPruneTheBarrierSet) {
  HybridBufferingCore a(D(0), 2);
  HybridBufferingCore b(D(1), 2);

  const Stamp m1 = a.PrepareSend(D(1));
  EXPECT_EQ(a.barrier_count(), 1u);  // m1 possibly undelivered
  ASSERT_EQ(b.CheckReceive(D(0), m1), CheckResult::kDeliver);
  b.OnDeliver(D(0), m1);

  // B's reply carries its delivered count for the A -> B link; on
  // delivery A learns m1 arrived and drops the barrier (m2's own
  // barrier lives at B, and delivering m2 needs no barrier at A).
  const Stamp m2 = b.PrepareSend(D(0));
  EXPECT_EQ(b.barrier_count(), 1u);  // m2 possibly undelivered
  ASSERT_EQ(a.CheckReceive(D(1), m2), CheckResult::kDeliver);
  a.OnDeliver(D(1), m2);
  EXPECT_EQ(a.barrier_count(), 0u);  // m1 confirmed by m2's gossip
  const Stamp m3 = a.PrepareSend(D(1));
  ASSERT_EQ(b.CheckReceive(D(0), m3), CheckResult::kDeliver);
  b.OnDeliver(D(0), m3);
  EXPECT_EQ(b.barrier_count(), 0u);  // m2 confirmed by m3's gossip
}

TEST(HybridBufferingBarriers, StampSizeTracksInFlightNotHistory) {
  // Ping-pong forever: the barrier set must stay at the single
  // in-flight message, so stamps stop growing after the first
  // exchange.
  HybridBufferingCore a(D(0), 2);
  HybridBufferingCore b(D(1), 2);
  std::size_t steady = 0;
  for (int round = 0; round < 100; ++round) {
    const Stamp ping = a.PrepareSend(D(1));
    ASSERT_EQ(b.CheckReceive(D(0), ping), CheckResult::kDeliver);
    b.OnDeliver(D(0), ping);
    const Stamp pong = b.PrepareSend(D(0));
    ASSERT_EQ(a.CheckReceive(D(1), pong), CheckResult::kDeliver);
    a.OnDeliver(D(1), pong);
    EXPECT_LE(a.barrier_count(), 2u);
    EXPECT_LE(b.barrier_count(), 2u);
    if (round == 10) steady = ping.entries.size();
    if (round > 10) EXPECT_EQ(ping.entries.size(), steady);
  }
}

class CausalCoreRemapTest : public ::testing::TestWithParam<CausalCoreKind> {
};

TEST_P(CausalCoreRemapTest, SurvivorsKeepOrderAcrossAPermutedEpoch) {
  const CausalCoreKind kind = GetParam();
  // Old domain {A=0, B=1, C=2}; C departs, survivors swap coordinates:
  // new domain {B=0, A=1}.
  auto a = MakeCausalCore(kind, D(0), 3, StampMode::kUpdates);
  auto b = MakeCausalCore(kind, D(1), 3, StampMode::kUpdates);
  auto c = MakeCausalCore(kind, D(2), 3, StampMode::kUpdates);
  Stir(*a, *b, *c);
  // Quiesce is assumed by Remap; the Stir exchange is fully delivered.

  const std::vector<std::optional<DomainServerId>> old_of_new = {D(1), D(0)};
  auto a2 = a->Remap(D(1), 2, old_of_new);
  auto b2 = b->Remap(D(0), 2, old_of_new);
  ASSERT_EQ(a2->kind(), kind);
  EXPECT_EQ(a2->self(), D(1));
  EXPECT_EQ(b2->domain_size(), 2u);

  // Delivery history survives the remap (matrix entries / per-link
  // FIFO counters), so a fresh exchange continues the old sequence and
  // a replay of it is recognised as duplicate.
  const Stamp next = a2->PrepareSend(D(0));
  ASSERT_EQ(b2->CheckReceive(D(1), next), CheckResult::kDeliver);
  b2->OnDeliver(D(1), next);
  EXPECT_EQ(b2->CheckReceive(D(1), next), CheckResult::kDuplicate);
}

INSTANTIATE_TEST_SUITE_P(Kinds, CausalCoreRemapTest,
                         ::testing::Values(CausalCoreKind::kMatrix,
                                           CausalCoreKind::kHybrid,
                                           CausalCoreKind::kReduced),
                         [](const auto& info) {
                           return std::string(
                               CausalCoreKindName(info.param));
                         });

}  // namespace
}  // namespace cmom::clocks
