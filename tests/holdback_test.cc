// Unit tests for the generic hold-back queue.
#include "clocks/holdback.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cmom::clocks {
namespace {

struct FakeMessage {
  int id = 0;
  int required_level = 0;  // deliverable once level >= required_level
  bool duplicate = false;
};

TEST(HoldbackQueue, DeliversWhatIsReady) {
  HoldbackQueue<FakeMessage> queue;
  queue.Push({1, 0});
  queue.Push({2, 5});
  std::vector<int> delivered;
  const std::size_t count = queue.DrainDeliverable(
      [](const FakeMessage& m) {
        return m.required_level <= 0 ? CheckResult::kDeliver
                                     : CheckResult::kHold;
      },
      [&](FakeMessage&& m) { delivered.push_back(m.id); });
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(delivered, std::vector<int>{1});
  EXPECT_EQ(queue.size(), 1u);
}

TEST(HoldbackQueue, DrainsToFixpointWhenDeliveriesEnableOthers) {
  // Message k becomes deliverable once k-1 was delivered: a chain that
  // needs repeated passes when stored in reverse order.
  HoldbackQueue<FakeMessage> queue;
  for (int id = 5; id >= 1; --id) queue.Push({id, id - 1});
  int level = 0;
  std::vector<int> delivered;
  queue.DrainDeliverable(
      [&](const FakeMessage& m) {
        return m.required_level <= level ? CheckResult::kDeliver
                                         : CheckResult::kHold;
      },
      [&](FakeMessage&& m) {
        delivered.push_back(m.id);
        level = m.id;  // delivering k enables k+1
      });
  EXPECT_EQ(delivered, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_TRUE(queue.empty());
}

TEST(HoldbackQueue, DropsDuplicates) {
  HoldbackQueue<FakeMessage> queue;
  queue.Push({1, 99});
  queue.Push({2, 0, /*duplicate=*/true});
  std::vector<int> delivered;
  const std::size_t count = queue.DrainDeliverable(
      [](const FakeMessage& m) {
        if (m.duplicate) return CheckResult::kDuplicate;
        return m.required_level <= 0 ? CheckResult::kDeliver
                                     : CheckResult::kHold;
      },
      [&](FakeMessage&& m) { delivered.push_back(m.id); });
  EXPECT_EQ(count, 0u);
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(queue.size(), 1u);  // the duplicate is gone, the held stays
}

TEST(HoldbackQueue, PreservesArrivalOrderAmongEquallyReady) {
  HoldbackQueue<FakeMessage> queue;
  queue.Push({10, 0});
  queue.Push({11, 0});
  queue.Push({12, 0});
  std::vector<int> delivered;
  queue.DrainDeliverable(
      [](const FakeMessage&) { return CheckResult::kDeliver; },
      [&](FakeMessage&& m) { delivered.push_back(m.id); });
  EXPECT_EQ(delivered, (std::vector<int>{10, 11, 12}));
}

TEST(HoldbackQueue, RestoreReplacesContents) {
  HoldbackQueue<FakeMessage> queue;
  queue.Push({1, 0});
  std::deque<FakeMessage> replacement;
  replacement.push_back({7, 0});
  replacement.push_back({8, 0});
  queue.Restore(std::move(replacement));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.pending().front().id, 7);
}

}  // namespace
}  // namespace cmom::clocks
