// Unit tests for causal stamps and their codec.
#include "clocks/stamp.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cmom::clocks {
namespace {

DomainServerId D(std::uint16_t v) { return DomainServerId(v); }

Stamp SampleStamp() {
  Stamp stamp;
  stamp.entries = {{D(0), D(1), 7}, {D(1), D(1), 3}, {D(2), D(0), 123456}};
  return stamp;
}

TEST(Stamp, FindLocatesEntries) {
  const Stamp stamp = SampleStamp();
  ASSERT_NE(stamp.Find(D(1), D(1)), nullptr);
  EXPECT_EQ(stamp.Find(D(1), D(1))->value, 3u);
  EXPECT_EQ(stamp.Find(D(1), D(0)), nullptr);
  EXPECT_EQ(stamp.Find(D(9), D(9)), nullptr);
}

TEST(Stamp, CodecRoundTrip) {
  const Stamp stamp = SampleStamp();
  ByteWriter writer;
  stamp.Encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = Stamp::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), stamp);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Stamp, EmptyStampRoundTrip) {
  Stamp stamp;
  ByteWriter writer;
  stamp.Encode(writer);
  EXPECT_EQ(writer.size(), 1u);  // just the zero count
  ByteReader reader(writer.buffer());
  auto decoded = Stamp::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().entries.empty());
}

TEST(Stamp, EncodedSizeMatchesEncode) {
  const Stamp stamp = SampleStamp();
  ByteWriter writer;
  stamp.Encode(writer);
  EXPECT_EQ(stamp.EncodedSize(), writer.size());
}

TEST(Stamp, SmallEntriesEncodeCompactly) {
  // One entry with tiny values: 1 count + 1 row + 1 col + 1 value.
  Stamp stamp;
  stamp.entries = {{D(1), D(2), 5}};
  EXPECT_EQ(stamp.EncodedSize(), 4u);
}

TEST(Stamp, DecodeTruncatedFails) {
  const Stamp stamp = SampleStamp();
  ByteWriter writer;
  stamp.Encode(writer);
  for (std::size_t cut = 1; cut < writer.size(); cut += 2) {
    Bytes truncated(writer.buffer().begin(),
                    writer.buffer().begin() + static_cast<long>(cut));
    ByteReader reader(truncated);
    EXPECT_FALSE(Stamp::Decode(reader).ok()) << "cut at " << cut;
  }
}

TEST(Stamp, StreamsReadably) {
  Stamp stamp;
  stamp.entries = {{D(0), D(1), 7}};
  std::ostringstream out;
  out << stamp;
  EXPECT_EQ(out.str(), "{(0,1)=7}");
}

}  // namespace
}  // namespace cmom::clocks
