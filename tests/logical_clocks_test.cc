// Unit and property tests for Lamport and vector clocks.
#include <gtest/gtest.h>

#include "clocks/lamport_clock.h"
#include "clocks/vector_clock.h"
#include "common/rng.h"

namespace cmom::clocks {
namespace {

TEST(LamportClock, TickIncreasesMonotonically) {
  LamportClock clock;
  EXPECT_EQ(clock.now(), 0u);
  EXPECT_EQ(clock.Tick(), 1u);
  EXPECT_EQ(clock.Tick(), 2u);
  EXPECT_EQ(clock.now(), 2u);
}

TEST(LamportClock, WitnessJumpsPastRemote) {
  LamportClock clock;
  clock.Tick();
  EXPECT_EQ(clock.Witness(10), 11u);
  EXPECT_EQ(clock.Witness(3), 12u);  // already past; still advances
}

TEST(LamportClock, MessageOrderingProperty) {
  // send at a, receive at b => a's send time < b's receive time.
  LamportClock a, b;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t sent = a.Tick();
    const std::uint64_t received = b.Witness(sent);
    EXPECT_LT(sent, received);
  }
}

TEST(VectorClock, FreshClocksAreEqual) {
  VectorClock a(4), b(4);
  EXPECT_EQ(a.Compare(b), ClockOrder::kEqual);
  EXPECT_FALSE(a.HappensBefore(b));
}

TEST(VectorClock, IncrementMakesStrictlyLater) {
  VectorClock a(3);
  VectorClock b = a;
  b.Increment(1);
  EXPECT_EQ(a.Compare(b), ClockOrder::kBefore);
  EXPECT_EQ(b.Compare(a), ClockOrder::kAfter);
  EXPECT_TRUE(a.HappensBefore(b));
  EXPECT_FALSE(b.HappensBefore(a));
}

TEST(VectorClock, ConcurrentWhenIncomparable) {
  VectorClock a(3), b(3);
  a.Increment(0);
  b.Increment(1);
  EXPECT_EQ(a.Compare(b), ClockOrder::kConcurrent);
  EXPECT_FALSE(a.HappensBefore(b));
  EXPECT_FALSE(b.HappensBefore(a));
}

TEST(VectorClock, MergeIsLeastUpperBound) {
  VectorClock a(3), b(3);
  a.Increment(0);
  a.Increment(0);
  b.Increment(1);
  VectorClock merged = a;
  merged.MergeFrom(b);
  EXPECT_EQ(merged.at(0), 2u);
  EXPECT_EQ(merged.at(1), 1u);
  EXPECT_EQ(merged.at(2), 0u);
  EXPECT_TRUE(a.HappensBefore(merged) ||
              a.Compare(merged) == ClockOrder::kEqual);
  EXPECT_TRUE(b.HappensBefore(merged) ||
              b.Compare(merged) == ClockOrder::kEqual);
}

TEST(VectorClock, CodecRoundTrip) {
  VectorClock clock(5);
  clock.Increment(0);
  clock.Increment(3);
  clock.set(4, 12345678);
  ByteWriter writer;
  clock.Encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = VectorClock::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), clock);
}

// Property sweep: merge is commutative, associative and idempotent
// (join-semilattice laws), and Compare is antisymmetric.
class VectorClockLattice : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VectorClockLattice, SemilatticeLaws) {
  Rng rng(GetParam());
  const std::size_t n = 6;
  auto random_clock = [&] {
    VectorClock clock(n);
    for (std::size_t i = 0; i < n; ++i) clock.set(i, rng.NextBelow(20));
    return clock;
  };
  for (int round = 0; round < 50; ++round) {
    const VectorClock a = random_clock();
    const VectorClock b = random_clock();
    const VectorClock c = random_clock();

    VectorClock ab = a;
    ab.MergeFrom(b);
    VectorClock ba = b;
    ba.MergeFrom(a);
    EXPECT_EQ(ab, ba);  // commutative

    VectorClock ab_c = ab;
    ab_c.MergeFrom(c);
    VectorClock bc = b;
    bc.MergeFrom(c);
    VectorClock a_bc = a;
    a_bc.MergeFrom(bc);
    EXPECT_EQ(ab_c, a_bc);  // associative

    VectorClock aa = a;
    aa.MergeFrom(a);
    EXPECT_EQ(aa, a);  // idempotent

    // Antisymmetry of the order.
    if (a.HappensBefore(b)) EXPECT_FALSE(b.HappensBefore(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockLattice,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cmom::clocks
