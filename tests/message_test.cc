// Tests for message and frame codecs.
#include "mom/message.h"

#include <gtest/gtest.h>

namespace cmom::mom {
namespace {

Message SampleMessage() {
  Message message;
  message.id = MessageId{ServerId(3), 99};
  message.from = AgentId{ServerId(3), 1};
  message.to = AgentId{ServerId(7), 2};
  message.subject = "quote";
  message.payload = Bytes{10, 20, 30};
  return message;
}

TEST(Message, CodecRoundTrip) {
  const Message message = SampleMessage();
  ByteWriter writer;
  message.Encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = Message::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), message);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Message, DestServerComesFromToAgent) {
  EXPECT_EQ(SampleMessage().dest_server(), ServerId(7));
}

TEST(Message, EmptySubjectAndPayload) {
  Message message;
  message.id = MessageId{ServerId(0), 1};
  ByteWriter writer;
  message.Encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = Message::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), message);
}

TEST(DataFrame, SerializeDeserializeRoundTrip) {
  DataFrame frame;
  frame.message = SampleMessage();
  frame.domain = DomainId(4);
  frame.stamp.entries = {{DomainServerId(0), DomainServerId(1), 17}};
  const Bytes bytes = frame.Serialize();
  EXPECT_EQ(bytes.size(), frame.SerializedSize());
  auto decoded = DataFrame::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), frame);
}

TEST(DataFrame, PeekIdentifiesType) {
  DataFrame frame;
  frame.message = SampleMessage();
  frame.domain = DomainId(0);
  EXPECT_EQ(PeekFrameType(frame.Serialize()).value(), FrameType::kData);
  EXPECT_EQ(PeekFrameType(AckFrame{MessageId{ServerId(1), 2}}.Serialize())
                .value(),
            FrameType::kAck);
}

TEST(DataFrame, PeekRejectsGarbage) {
  EXPECT_FALSE(PeekFrameType(Bytes{}).ok());
  EXPECT_FALSE(PeekFrameType(Bytes{0x77}).ok());
}

TEST(DataFrame, DeserializeRejectsAckFrame) {
  const Bytes ack = AckFrame{MessageId{ServerId(1), 2}}.Serialize();
  EXPECT_FALSE(DataFrame::Deserialize(ack).ok());
}

TEST(DataFrame, DeserializeRejectsTruncation) {
  DataFrame frame;
  frame.message = SampleMessage();
  frame.domain = DomainId(1);
  frame.stamp.entries = {{DomainServerId(0), DomainServerId(1), 17}};
  const Bytes bytes = frame.Serialize();
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    Bytes truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(DataFrame::Deserialize(truncated).ok()) << "cut " << cut;
  }
}

TEST(DataFrame, IncarnationRoundTripsOnTheWire) {
  DataFrame frame;
  frame.message = SampleMessage();
  frame.domain = DomainId(2);
  frame.stamp.entries = {{DomainServerId(0), DomainServerId(1), 4}};
  frame.incarnation = 300;  // multi-byte varint
  const Bytes bytes = frame.Serialize();
  EXPECT_EQ(bytes.size(), frame.SerializedSize());
  auto decoded = DataFrame::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().incarnation, 300u);
  EXPECT_EQ(decoded.value(), frame);
}

TEST(DataFrame, ZeroIncarnationKeepsThePreFlowWireImage) {
  // Incarnation 0 means "absent" and is never encoded, so a frame
  // without one is byte-identical to the pre-flow layout -- old stores
  // and old peers decode it unchanged, and the truncation test above
  // stays exhaustive (no optional tail to mistake for a clean end).
  DataFrame with;
  with.message = SampleMessage();
  with.domain = DomainId(2);
  with.incarnation = 7;
  DataFrame without = with;
  without.incarnation = 0;
  EXPECT_EQ(without.Serialize().size() + 1, with.Serialize().size());
  auto decoded = DataFrame::Deserialize(without.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().incarnation, 0u);
}

TEST(AckFrame, RoundTrip) {
  const AckFrame ack{MessageId{ServerId(9), 123456}};
  auto decoded = DeserializeAck(ack.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().messages, ack.messages);
}

TEST(AckFrame, CoalescedRoundTrip) {
  const AckFrame ack{std::vector<MessageId>{MessageId{ServerId(9), 1},
                                            MessageId{ServerId(9), 2},
                                            MessageId{ServerId(3), 77}}};
  auto decoded = DeserializeAck(ack.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().messages, ack.messages);
}

TEST(AckFrame, DeserializeRejectsOverlongCount) {
  // A corrupt count larger than the remaining bytes must be rejected
  // before any allocation proportional to it.
  ByteWriter out;
  out.WriteU8(static_cast<std::uint8_t>(FrameType::kAck));
  out.WriteVarU32(1000000);
  EXPECT_FALSE(DeserializeAck(std::move(out).Take()).ok());
}

TEST(AckFrame, DeserializeRejectsDataFrame) {
  DataFrame frame;
  frame.message = SampleMessage();
  frame.domain = DomainId(0);
  EXPECT_FALSE(DeserializeAck(frame.Serialize()).ok());
}

}  // namespace
}  // namespace cmom::mom
