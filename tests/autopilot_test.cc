// Autopilot unit coverage: EWMA profile semantics, the decision
// journal codec, core-aware deployment scoring, the DomainSplitter
// edge cases the controller hits live (single-agent profiles,
// zero-traffic links, mixed-core pricing), and the controller's
// do-nothing guarantee when no candidate clears the bar.
#include <gtest/gtest.h>

#include <memory>

#include "autopilot/controller.h"
#include "autopilot/profile.h"
#include "autopilot/scorer.h"
#include "common/rng.h"
#include "domains/deployment.h"
#include "domains/splitter.h"
#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/threaded_harness.h"

namespace cmom::autopilot {
namespace {

TEST(LiveTrafficProfileTest, EwmaFoldsDeltasAndDecays) {
  LiveTrafficProfile profile(0.5);
  const ServerId a(0), b(1);

  profile.Ingest(a, {{b, 10}});
  profile.EndWindow();
  EXPECT_DOUBLE_EQ(profile.rate(a, b), 5.0);  // 0.5*0 + 0.5*10

  // Counter unchanged: the link decays instead of double-counting the
  // cumulative value.
  profile.Ingest(a, {{b, 10}});
  profile.EndWindow();
  EXPECT_DOUBLE_EQ(profile.rate(a, b), 2.5);

  profile.Ingest(a, {{b, 30}});  // delta 20
  profile.EndWindow();
  EXPECT_DOUBLE_EQ(profile.rate(a, b), 0.5 * 2.5 + 0.5 * 20);
}

TEST(LiveTrafficProfileTest, CounterResetIsAFreshBaseline) {
  LiveTrafficProfile profile(0.5);
  const ServerId a(0), b(1);
  profile.Ingest(a, {{b, 10}});
  profile.EndWindow();
  ASSERT_DOUBLE_EQ(profile.rate(a, b), 5.0);

  // The server rebooted and its counter restarted at 4: the full value
  // is this window's observation, not a negative delta.
  profile.Ingest(a, {{b, 4}});
  profile.EndWindow();
  EXPECT_DOUBLE_EQ(profile.rate(a, b), 0.5 * 5.0 + 0.5 * 4);
}

TEST(LiveTrafficProfileTest, StaleLinksDecayToZeroAndAreDropped) {
  LiveTrafficProfile profile(0.5);
  const ServerId a(2), b(3);
  profile.Ingest(a, {{b, 100}});
  profile.EndWindow();
  ASSERT_GT(profile.TotalRate(), 0);
  for (int i = 0; i < 64; ++i) profile.EndWindow();
  EXPECT_DOUBLE_EQ(profile.rate(a, b), 0.0);
  EXPECT_DOUBLE_EQ(profile.TotalRate(), 0.0);
}

TEST(LiveTrafficProfileTest, ForgetDropsBothDirections) {
  LiveTrafficProfile profile(0.5);
  const ServerId a(0), b(1), c(2);
  profile.Ingest(a, {{b, 8}});
  profile.Ingest(b, {{a, 6}});
  profile.Ingest(a, {{c, 4}});
  profile.EndWindow();
  profile.Forget(b);
  EXPECT_DOUBLE_EQ(profile.rate(a, b), 0.0);
  EXPECT_DOUBLE_EQ(profile.rate(b, a), 0.0);
  EXPECT_GT(profile.rate(a, c), 0.0);
}

TEST(LiveTrafficProfileTest, SnapshotDropsOutOfRangeServers) {
  LiveTrafficProfile profile(0.0);  // no history: last window only
  profile.Ingest(ServerId(1), {{ServerId(2), 10}});
  profile.Ingest(ServerId(7), {{ServerId(1), 10}});  // outside snapshot
  profile.EndWindow();
  const domains::TrafficProfile snapshot = profile.Snapshot(4);
  EXPECT_DOUBLE_EQ(snapshot.at(1, 2), 10.0);
  EXPECT_DOUBLE_EQ(snapshot.Total(), 10.0);
}

TEST(DecisionCodecTest, RoundTripsEveryField) {
  Decision d;
  d.window = 7;
  d.from_epoch = 3;
  d.to_epoch = 4;
  d.verdict = Verdict::kTaken;
  d.op = OpKind::kMerge;
  d.detail = "merge domain 2 into domain 1";
  d.current_score = 123.5;
  d.candidate_score = 98.25;
  d.reason = "line one\nline two";  // newlines must not break the codec
  CandidateScore good{OpKind::kSplit, "split domain 0 (size 6)", 101.5, true,
                      ""};
  CandidateScore bad{OpKind::kMerge, "merge domain 3 into domain 0", 0, false,
                     "INVALID_ARGUMENT: domain graph has a cycle"};
  d.candidates = {good, bad};

  auto decoded = DecodeDecision(EncodeDecision(d));
  ASSERT_TRUE(decoded.ok()) << decoded.status().to_string();
  const Decision& r = decoded.value();
  EXPECT_EQ(r.window, d.window);
  EXPECT_EQ(r.from_epoch, d.from_epoch);
  EXPECT_EQ(r.to_epoch, d.to_epoch);
  EXPECT_EQ(r.verdict, d.verdict);
  EXPECT_EQ(r.op, d.op);
  EXPECT_EQ(r.detail, d.detail);
  EXPECT_DOUBLE_EQ(r.current_score, d.current_score);
  EXPECT_DOUBLE_EQ(r.candidate_score, d.candidate_score);
  EXPECT_EQ(r.reason, "line one line two");  // sanitized, not lost
  ASSERT_EQ(r.candidates.size(), 2u);
  EXPECT_EQ(r.candidates[0].op, OpKind::kSplit);
  EXPECT_TRUE(r.candidates[0].valid);
  EXPECT_DOUBLE_EQ(r.candidates[0].score, 101.5);
  EXPECT_EQ(r.candidates[1].op, OpKind::kMerge);
  EXPECT_FALSE(r.candidates[1].valid);
  EXPECT_EQ(r.candidates[1].rejection,
            "INVALID_ARGUMENT: domain graph has a cycle");
}

// Two domains bridged by a router; traffic crossing both.
domains::MomConfig TwoDomainChain() {
  domains::MomConfig config;
  for (std::uint16_t s = 0; s < 5; ++s) config.servers.push_back(ServerId(s));
  config.domains.push_back(
      {DomainId(0), {ServerId(0), ServerId(1), ServerId(2)}});
  config.domains.push_back(
      {DomainId(1), {ServerId(2), ServerId(3), ServerId(4)}});
  return config;
}

TEST(ScorerTest, HybridCoreIsCheaperThanMatrixOnTheSameShape) {
  const domains::TrafficProfile traffic = [] {
    domains::TrafficProfile t(5);
    t.set(0, 4, 10.0);  // two hops through the router
    t.set(1, 2, 5.0);   // intra-domain
    return t;
  }();

  domains::MomConfig matrix = TwoDomainChain();
  auto matrix_score = ScoreConfig(matrix, traffic);
  ASSERT_TRUE(matrix_score.ok());

  domains::MomConfig mixed = TwoDomainChain();
  mixed.causal_core_overrides = {
      {DomainId(0), clocks::CausalCoreKind::kHybrid},
      {DomainId(1), clocks::CausalCoreKind::kHybrid}};
  auto mixed_score = ScoreConfig(mixed, traffic);
  ASSERT_TRUE(mixed_score.ok());

  EXPECT_LT(mixed_score.value().clock_cost, matrix_score.value().clock_cost);
  EXPECT_LT(mixed_score.value().stamp_rate, matrix_score.value().stamp_rate);
  ScorerOptions options;
  EXPECT_LT(mixed_score.value().Total(options),
            matrix_score.value().Total(options));
}

TEST(ScorerTest, TrafficOutsideTheConfigIsSkippedNotFatal) {
  domains::TrafficProfile traffic(9);
  traffic.set(0, 4, 3.0);
  traffic.set(0, 8, 50.0);  // server 8 is not in the config
  traffic.set(8, 1, 50.0);
  auto score = ScoreConfig(TwoDomainChain(), traffic);
  ASSERT_TRUE(score.ok()) << score.status().to_string();
  EXPECT_GT(score.value().route_cost, 0);

  domains::TrafficProfile known_only(5);
  known_only.set(0, 4, 3.0);
  auto baseline = ScoreConfig(TwoDomainChain(), known_only);
  ASSERT_TRUE(baseline.ok());
  EXPECT_DOUBLE_EQ(score.value().route_cost, baseline.value().route_cost);
}

TEST(SplitterEdgeTest, SingleServerProfileYieldsOneSingletonDomain) {
  domains::TrafficProfile traffic(1);
  auto config = domains::DomainSplitter::Split(traffic, {});
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  ASSERT_EQ(config.value().domains.size(), 1u);
  EXPECT_EQ(config.value().domains[0].members.size(), 1u);
  EXPECT_TRUE(domains::Deployment::Create(config.value()).ok());
}

TEST(SplitterEdgeTest, ZeroTrafficProfileStillValidates) {
  domains::TrafficProfile traffic(7);  // nobody talks to anybody
  domains::SplitterOptions options;
  options.max_domain_size = 3;
  auto config = domains::DomainSplitter::Split(traffic, options);
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  auto deployment = domains::Deployment::Create(config.value());
  ASSERT_TRUE(deployment.ok()) << deployment.status().to_string();
  // Every server is placed exactly once as an own member.
  EXPECT_EQ(config.value().servers.size(), 7u);
}

// Satellite regression: CostEstimator must price per-core, so turning a
// domain hybrid strictly lowers the estimate (same topology, same
// traffic) and never raises it.
TEST(SplitterEdgeTest, CostEstimatorIsCoreAware) {
  domains::TrafficProfile traffic(5);
  traffic.set(0, 4, 10.0);
  traffic.set(3, 1, 4.0);

  const domains::MomConfig matrix = TwoDomainChain();
  auto matrix_cost = domains::CostEstimator::Estimate(matrix, traffic);
  ASSERT_TRUE(matrix_cost.ok());

  domains::MomConfig mixed = TwoDomainChain();
  mixed.causal_core_overrides = {{DomainId(1),
                                  clocks::CausalCoreKind::kHybrid}};
  auto mixed_cost = domains::CostEstimator::Estimate(mixed, traffic);
  ASSERT_TRUE(mixed_cost.ok());
  EXPECT_LT(mixed_cost.value(), matrix_cost.value());

  // Reduced sits between O(1) hybrid and s^2 matrix.
  domains::MomConfig reduced = TwoDomainChain();
  reduced.causal_core_overrides = {{DomainId(1),
                                    clocks::CausalCoreKind::kReduced}};
  auto reduced_cost = domains::CostEstimator::Estimate(reduced, traffic);
  ASSERT_TRUE(reduced_cost.ok());
  EXPECT_LT(reduced_cost.value(), matrix_cost.value());
  EXPECT_LT(mixed_cost.value(), reduced_cost.value());
}

// When every candidate scores worse than the bar the controller must
// hold steady: many windows of live uniform traffic, zero epochs.
TEST(AutopilotTest, AllCandidatesWorseMeansDoNothing) {
  domains::MomConfig config = domains::topologies::Daisy(4, 3);
  workload::ThreadedHarness harness(config);
  ASSERT_TRUE(harness
                  .Init([](ServerId, mom::AgentServer& server) {
                    server.AttachAgent(
                        0, std::make_unique<workload::SinkAgent>());
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  AutopilotOptions options;
  options.min_improvement = 0.9;  // nothing clears a 90% bar
  Autopilot pilot(&harness, config, 0, options);

  Rng rng(7);
  const auto& servers = config.servers;
  for (int w = 0; w < 5; ++w) {
    for (int s = 0; s < 80; ++s) {
      const ServerId from = servers[rng.NextBelow(servers.size())];
      const ServerId to = servers[rng.NextBelow(servers.size())];
      if (from == to) continue;
      (void)harness.Send(from, 0, to, 0, "bg");
    }
    harness.WaitQuiescent();
    const Decision d = pilot.Tick();
    EXPECT_TRUE(d.verdict == Verdict::kNoCandidate ||
                d.verdict == Verdict::kBelowThreshold)
        << "window " << d.window << ": " << VerdictName(d.verdict) << " ("
        << d.reason << ")";
  }
  EXPECT_EQ(pilot.epochs_taken(), 0u);
  EXPECT_EQ(pilot.epoch(), 0u);
  EXPECT_EQ(pilot.aborts(), 0u);
  harness.HaltAll();
}

}  // namespace
}  // namespace cmom::autopilot
