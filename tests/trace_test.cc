// Tests for the trace recorder, including thread-safety under load.
#include "causality/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace cmom::causality {
namespace {

TEST(TraceRecorder, RecordsInOrder) {
  TraceRecorder recorder;
  recorder.RecordSend(MessageId{ServerId(0), 1}, ServerId(0), ServerId(1),
                      AgentId{ServerId(0), 1}, AgentId{ServerId(1), 1});
  recorder.RecordDeliver(MessageId{ServerId(0), 1}, ServerId(1), ServerId(1),
                         AgentId{ServerId(0), 1}, AgentId{ServerId(1), 1});
  const Trace trace = recorder.Snapshot();
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace[0].kind, EventKind::kSend);
  EXPECT_EQ(trace[1].kind, EventKind::kDeliver);
  EXPECT_EQ(trace[0].message, (MessageId{ServerId(0), 1}));
  EXPECT_EQ(trace[1].process, ServerId(1));
}

TEST(TraceRecorder, SnapshotIsACopy) {
  TraceRecorder recorder;
  recorder.RecordSend(MessageId{ServerId(0), 1}, ServerId(0), ServerId(1),
                      {}, {});
  Trace snapshot = recorder.Snapshot();
  recorder.RecordSend(MessageId{ServerId(0), 2}, ServerId(0), ServerId(1),
                      {}, {});
  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(recorder.size(), 2u);
}

TEST(TraceRecorder, ClearEmpties) {
  TraceRecorder recorder;
  recorder.RecordSend(MessageId{ServerId(0), 1}, ServerId(0), ServerId(1),
                      {}, {});
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(TraceRecorder, ConcurrentRecordingLosesNothing) {
  TraceRecorder recorder;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.RecordSend(
            MessageId{ServerId(static_cast<std::uint16_t>(t)),
                      static_cast<std::uint64_t>(i)},
            ServerId(static_cast<std::uint16_t>(t)), ServerId(0), {}, {});
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(recorder.size(),
            static_cast<std::size_t>(kThreads) * kPerThread);

  // Per-thread order is preserved (each thread's events are FIFO).
  const Trace trace = recorder.Snapshot();
  std::vector<std::uint64_t> next(kThreads, 0);
  for (const TraceEvent& event : trace) {
    const auto t = event.message.origin.value();
    EXPECT_EQ(event.message.seq, next[t]);
    ++next[t];
  }
}

}  // namespace
}  // namespace cmom::causality
