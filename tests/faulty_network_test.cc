// Unit tests for the transport-agnostic fault-injection decorator.
#include "net/faulty_network.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/inproc_network.h"
#include "net/runtime.h"

namespace cmom::net {
namespace {

struct Waiter {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<ServerId, Bytes>> received;

  ReceiveHandler Handler() {
    return [this](ServerId from, Bytes frame) {
      std::lock_guard lock(mutex);
      received.emplace_back(from, std::move(frame));
      cv.notify_all();
    };
  }

  bool WaitForCount(std::size_t count) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return received.size() >= count; });
  }

  std::size_t Count() {
    std::lock_guard lock(mutex);
    return received.size();
  }
};

// Declaration order encodes the destruction contract: endpoints first,
// then the runtime (joins the timer thread), then the decorator, then
// the inner network.
struct Fixture {
  InprocNetwork inner;
  std::unique_ptr<FaultyNetwork> faulty;
  ThreadRuntime runtime;
  std::vector<std::unique_ptr<Endpoint>> endpoints;

  explicit Fixture(FaultyNetworkOptions options, bool with_runtime = true) {
    faulty = std::make_unique<FaultyNetwork>(inner, options,
                                             with_runtime ? &runtime : nullptr);
  }

  Endpoint* Add(std::uint16_t id) {
    endpoints.push_back(faulty->CreateEndpoint(ServerId(id)).value());
    return endpoints.back().get();
  }

  void Drain() {
    // Delayed frames re-enter the inner network when their timer fires,
    // so drain alternates between the two until both are empty.
    while (faulty->pending_delayed() > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    inner.WaitQuiescent();
  }
};

TEST(FaultyNetwork, DropEverything) {
  FaultyNetworkOptions options;
  options.model.drop_probability = 1.0;
  Fixture fix(options, /*with_runtime=*/false);
  Endpoint* a = fix.Add(0);
  Waiter waiter;
  fix.Add(1)->SetReceiveHandler(waiter.Handler());

  for (std::uint8_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  fix.Drain();
  EXPECT_EQ(waiter.Count(), 0u);
  const FaultyNetworkStats stats = fix.faulty->stats();
  EXPECT_EQ(stats.frames_seen, 20u);
  EXPECT_EQ(stats.frames_dropped, 20u);
}

TEST(FaultyNetwork, DuplicateEverything) {
  FaultyNetworkOptions options;
  options.model.duplicate_probability = 1.0;
  Fixture fix(options, /*with_runtime=*/false);
  Endpoint* a = fix.Add(0);
  Waiter waiter;
  fix.Add(1)->SetReceiveHandler(waiter.Handler());

  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(20));
  fix.Drain();
  EXPECT_EQ(waiter.Count(), 20u);
  EXPECT_EQ(fix.faulty->stats().frames_duplicated, 10u);
}

TEST(FaultyNetwork, DelayWithoutReorderingPreservesFifo) {
  FaultyNetworkOptions options;
  options.model.jitter_probability = 0.5;
  options.model.max_jitter = 5 * sim::kMillisecond;
  options.model.allow_reordering = false;
  options.seed = 42;
  Fixture fix(options);
  Endpoint* a = fix.Add(0);
  Waiter waiter;
  fix.Add(1)->SetReceiveHandler(waiter.Handler());

  for (std::uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(100));
  fix.Drain();
  ASSERT_EQ(waiter.Count(), 100u);
  EXPECT_GE(fix.faulty->stats().frames_delayed, 1u);
  // A delayed frame holds back everything sent after it on the link.
  std::lock_guard lock(waiter.mutex);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(waiter.received[i].second[0], i) << "reordered at " << i;
  }
}

TEST(FaultyNetwork, ReorderingDelaysCanOvertake) {
  FaultyNetworkOptions options;
  options.model.jitter_probability = 0.7;
  options.model.max_jitter = 20 * sim::kMillisecond;
  options.model.allow_reordering = true;
  options.seed = 7;
  Fixture fix(options);
  Endpoint* a = fix.Add(0);
  Waiter waiter;
  fix.Add(1)->SetReceiveHandler(waiter.Handler());

  for (std::uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(100));
  fix.Drain();
  // Nothing is lost or duplicated -- delay only reorders.
  ASSERT_EQ(waiter.Count(), 100u);
  std::vector<int> seen(100, 0);
  {
    std::lock_guard lock(waiter.mutex);
    for (auto& [from, frame] : waiter.received) ++seen[frame[0]];
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(FaultyNetwork, SeededFaultStreamIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    FaultyNetworkOptions options;
    options.model.drop_probability = 0.3;
    options.seed = seed;
    Fixture fix(options, /*with_runtime=*/false);
    Endpoint* a = fix.Add(0);
    Waiter waiter;
    fix.Add(1)->SetReceiveHandler(waiter.Handler());
    for (std::uint8_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
    }
    fix.Drain();
    std::vector<std::uint8_t> delivered;
    std::lock_guard lock(waiter.mutex);
    for (auto& [from, frame] : waiter.received) delivered.push_back(frame[0]);
    return delivered;
  };
  const auto first = run(99);
  const auto second = run(99);
  const auto other = run(100);
  EXPECT_EQ(first, second);
  EXPECT_NE(first, other);  // different seed, different fault stream
  EXPECT_FALSE(first.empty());
  EXPECT_LT(first.size(), 64u);  // some frames actually dropped
}

TEST(FaultyNetwork, ForcedDisconnectsAreCountedAndHarmlessOnInproc) {
  FaultyNetworkOptions options;
  options.disconnect_probability = 1.0;
  Fixture fix(options, /*with_runtime=*/false);
  Endpoint* a = fix.Add(0);
  Waiter waiter;
  fix.Add(1)->SetReceiveHandler(waiter.Handler());

  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(10));
  // Inproc has no connections: Disconnect is a no-op, every frame lands.
  EXPECT_EQ(fix.faulty->stats().disconnects_forced, 10u);
  std::lock_guard lock(waiter.mutex);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(waiter.received[i].second[0], i);
  }
}

TEST(FaultyNetwork, DelayedFrameWhoseSenderDiedIsDroppedNotDelivered) {
  FaultyNetworkOptions options;
  options.model.jitter_probability = 1.0;
  options.model.max_jitter = 200 * sim::kMillisecond;
  options.seed = 3;
  Fixture fix(options);
  Waiter waiter;
  fix.Add(1)->SetReceiveHandler(waiter.Handler());
  {
    auto doomed = fix.faulty->CreateEndpoint(ServerId(0)).value();
    ASSERT_TRUE(doomed->Send(ServerId(1), Bytes{1}).ok());
  }  // sender destroyed while its frame sits on the delay timer
  fix.Drain();
  // No crash and, since re-resolution failed, possibly no delivery.
  // Either way the pending counter must reach zero.
  EXPECT_EQ(fix.faulty->pending_delayed(), 0u);
}

}  // namespace
}  // namespace cmom::net
