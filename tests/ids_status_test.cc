// Unit tests for strong id types (common/ids.h) and Status/Result
// (common/status.h).
#include "common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "common/status.h"

namespace cmom {
namespace {

TEST(Ids, DistinctTagTypesDoNotMix) {
  static_assert(!std::is_convertible_v<ServerId, DomainId>);
  static_assert(!std::is_convertible_v<DomainServerId, ServerId>);
  static_assert(!std::is_constructible_v<ServerId, DomainId>);
}

TEST(Ids, OrderingAndEquality) {
  EXPECT_EQ(ServerId(3), ServerId(3));
  EXPECT_NE(ServerId(3), ServerId(4));
  EXPECT_LT(ServerId(3), ServerId(4));
  EXPECT_GT(DomainId(9), DomainId(1));
}

TEST(Ids, HashingWorksInUnorderedContainers) {
  std::unordered_set<ServerId> set;
  for (std::uint16_t i = 0; i < 100; ++i) set.insert(ServerId(i));
  set.insert(ServerId(50));  // duplicate
  EXPECT_EQ(set.size(), 100u);
}

TEST(Ids, AgentIdOrderingIsLexicographic) {
  const AgentId a{ServerId(1), 5};
  const AgentId b{ServerId(2), 0};
  const AgentId c{ServerId(1), 6};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (AgentId{ServerId(1), 5}));
}

TEST(Ids, MessageIdStreamsReadably) {
  std::ostringstream out;
  out << MessageId{ServerId(7), 42};
  EXPECT_EQ(out.str(), "m7:42");
}

TEST(Ids, ToStringHelpers) {
  EXPECT_EQ(to_string(ServerId(3)), "S3");
  EXPECT_EQ(to_string(DomainId(12)), "D12");
}

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  const Status status = Status::NotFound("missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing thing");
  EXPECT_EQ(status.to_string(), "NOT_FOUND: missing thing");
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> result(Status::InvalidArgument("bad"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.value_or(-1), -1);
}

TEST(Result, MoveOnlyValues) {
  Result<std::unique_ptr<int>> result(std::make_unique<int>(9));
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> taken = std::move(result).value();
  EXPECT_EQ(*taken, 9);
}

TEST(Result, ReturnIfErrorMacro) {
  auto passthrough = [](Status status) -> Status {
    CMOM_RETURN_IF_ERROR(status);
    return Status::Internal("reached end");
  };
  EXPECT_EQ(passthrough(Status::DataLoss("x")).code(), StatusCode::kDataLoss);
  EXPECT_EQ(passthrough(Status::Ok()).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace cmom
