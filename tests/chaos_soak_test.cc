// The chaos soak: a deterministic seeded fault schedule (crashes,
// partitions, storage faults that fail-stop their victim, consumer
// throttling) driven against live overload traffic, with the full
// oracle at the end and a CHAOS_soak.json SLO report emitted for CI.
//
// Replay any failure with the seed this test prints:
//   CMOM_SEED=<seed> ctest -R ChaosSoak
#include <gtest/gtest.h>

#include <cstdio>

#include "chaos/orchestrator.h"
#include "common/seed.h"

namespace cmom {
namespace {

TEST(ChaosSoak, ScheduledFaultsLeaveEveryInvariantGreen) {
  chaos::ChaosSoakOptions options;
  options.seed = SeedFromEnv(20260809, "chaos_soak_test");
  options.duration_ms = 2500;
  options.report_path = "CHAOS_soak.json";

  auto result = chaos::RunChaosSoak(options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const chaos::SoakReport& report = result.value();

  // The schedule must have actually injected chaos; a soak that ran
  // clean proves nothing.
  EXPECT_GT(report.crashes, 0u);
  EXPECT_GT(report.restarts, 0u);
  EXPECT_GT(report.partitions, 0u);
  EXPECT_EQ(report.partitions, report.heals);
  EXPECT_GT(report.store_faults_armed, 0u);
  EXPECT_GT(report.frames_partitioned, 0u);
  EXPECT_GT(report.messages_accepted, 100u);

  // Invariants, individually for readable failures.
  EXPECT_TRUE(report.causal) << report.first_violation;
  EXPECT_TRUE(report.exactly_once);
  EXPECT_TRUE(report.zero_loss)
      << "sent " << report.messages_sent << " delivered "
      << report.messages_delivered;
  EXPECT_TRUE(report.bounded_backlog)
      << "consumer peak " << report.peak_consumer_backlog << " (bound "
      << report.consumer_backlog_bound << "), router peak "
      << report.peak_router_backlog << " (bound "
      << report.router_backlog_bound << ")";
  EXPECT_TRUE(report.ok());

  // Latency was measured through the storm.
  EXPECT_GT(report.latency_samples, 0u);
  EXPECT_GE(report.latency_p99_ms, report.latency_p50_ms);

  std::printf("chaos soak: seed=%llu accepted=%llu sent=%llu p50=%.2fms "
              "p99=%.2fms crashes=%llu partitions=%llu store_faults=%llu "
              "fail_stops=%llu\n",
              static_cast<unsigned long long>(report.seed),
              static_cast<unsigned long long>(report.messages_accepted),
              static_cast<unsigned long long>(report.messages_sent),
              report.latency_p50_ms, report.latency_p99_ms,
              static_cast<unsigned long long>(report.crashes),
              static_cast<unsigned long long>(report.partitions),
              static_cast<unsigned long long>(report.store_faults_injected),
              static_cast<unsigned long long>(report.fail_stops));
}

// The same storm with the hybrid buffering core active in every
// domain: constant-size stamps must not cost any reliability under
// crashes, partitions and storage faults.
TEST(ChaosSoak, HybridCoreSurvivesTheSameStorm) {
  chaos::ChaosSoakOptions options;
  options.seed = SeedFromEnv(20260809, "chaos_soak_hybrid_test");
  options.duration_ms = 1500;
  options.causal_core = clocks::CausalCoreKind::kHybrid;

  auto result = chaos::RunChaosSoak(options);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  const chaos::SoakReport& report = result.value();

  EXPECT_GT(report.crashes, 0u);
  EXPECT_GT(report.partitions, 0u);
  EXPECT_GT(report.messages_accepted, 100u);
  EXPECT_TRUE(report.causal) << report.first_violation;
  EXPECT_TRUE(report.exactly_once);
  EXPECT_TRUE(report.zero_loss)
      << "sent " << report.messages_sent << " delivered "
      << report.messages_delivered;
  EXPECT_TRUE(report.ok());
}

}  // namespace
}  // namespace cmom
