// Unit tests for the discrete-event simulator core.
#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmom::sim {
namespace {

TEST(Simulator, StartsIdleAtTimeZero) {
  Simulator simulator;
  EXPECT_EQ(simulator.now(), 0u);
  EXPECT_TRUE(simulator.idle());
  EXPECT_FALSE(simulator.Step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&] { order.push_back(3); });
  simulator.ScheduleAt(10, [&] { order.push_back(1); });
  simulator.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(simulator.RunToCompletion(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.now(), 30u);
}

TEST(Simulator, EqualTimesRunInSchedulingOrder) {
  Simulator simulator;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    simulator.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  simulator.RunToCompletion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, CallbacksMayScheduleMore) {
  Simulator simulator;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) simulator.ScheduleAfter(10, chain);
  };
  simulator.ScheduleAfter(10, chain);
  simulator.RunToCompletion();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(simulator.now(), 50u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(10, [&] { order.push_back(1); });
  simulator.ScheduleAt(20, [&] { order.push_back(2); });
  simulator.ScheduleAt(30, [&] { order.push_back(3); });
  EXPECT_EQ(simulator.RunUntil(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(simulator.now(), 20u);
  EXPECT_EQ(simulator.pending(), 1u);
  simulator.RunToCompletion();
  EXPECT_EQ(order.size(), 3u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator simulator;
  simulator.RunUntil(1000);
  EXPECT_EQ(simulator.now(), 1000u);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator simulator;
  Time observed = 0;
  simulator.ScheduleAt(100, [&] {
    simulator.ScheduleAfter(50, [&] { observed = simulator.now(); });
  });
  simulator.RunToCompletion();
  EXPECT_EQ(observed, 150u);
}

TEST(Simulator, DurationHelpers) {
  EXPECT_EQ(kMillisecond, 1000u * kMicrosecond);
  EXPECT_EQ(kSecond, 1000u * kMillisecond);
  EXPECT_DOUBLE_EQ(ToMilliseconds(2 * kMillisecond + 500 * kMicrosecond),
                   2.5);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator simulator;
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 100; ++i) {
      simulator.ScheduleAt((i * 37) % 50, [&trace, &simulator] {
        trace.push_back(simulator.now());
      });
    }
    simulator.RunToCompletion();
    return trace;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cmom::sim
