// Incremental persistence schema: per-entry store keys, dirty-flagged
// clock images, legacy-blob migration, and the O(1) duplicate-held
// check.  The load-bearing property is recovery equivalence: a server
// recovered from the incremental (delta) image must be byte-identical
// to one recovered from the monolithic full-image rewrite after
// identical traffic -- the cheaper commits change the disk layout, not
// the durable state.
#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using domains::topologies::Flat;
using mom::PersistMode;
using workload::ChatterAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;
using workload::SinkAgent;

SimHarnessOptions FastOptions(PersistMode mode) {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.retransmit_timeout_ns = 100 * sim::kMillisecond;
  options.persist_mode = mode;
  return options;
}

Status VerifyTrace(SimHarness& harness) {
  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  if (!report.causal()) {
    return Status::Internal(report.violations.front().description);
  }
  return checker.CheckExactlyOnce(trace);
}

// Deterministic crash scenario with every queue populated at the crash
// point: S0 -> S1 slow (m1 in S0's QueueOUT, unacked for 400 ms),
// m3 (S2 -> S1, causally after m1 via m2's stamp) held back at S1.
// S1 is crashed mid-traffic and restarted; the snapshot captures each
// server's volatile image right before the crash and S1's right after
// recovery.
struct ScenarioResult {
  Bytes s0_image;
  Bytes s1_image_before;
  Bytes s1_image_after;
  Bytes s2_image;
};

ScenarioResult RunCrashScenario(PersistMode mode) {
  SimHarness harness(Flat(3), FastOptions(mode));
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(1)) {
      server.AttachAgent(1, std::make_unique<SinkAgent>());
    }
  };
  EXPECT_TRUE(harness.Init(install).ok());
  EXPECT_TRUE(harness.BootAll().ok());
  harness.network().SetLinkLatency(ServerId(0), ServerId(1),
                                   400 * sim::kMillisecond);

  EXPECT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "direct").ok());
  EXPECT_TRUE(harness.Send(ServerId(0), 1, ServerId(2), 1, "relay").ok());
  harness.RunUntil(10 * sim::kMillisecond);
  EXPECT_TRUE(harness.Send(ServerId(2), 1, ServerId(1), 1, "indirect").ok());
  harness.RunUntil(50 * sim::kMillisecond);

  EXPECT_EQ(harness.server(ServerId(1)).holdback_size(), 1u);
  EXPECT_GE(harness.server(ServerId(0)).queue_out_size(), 1u);

  ScenarioResult result;
  result.s0_image = harness.server(ServerId(0)).DebugImage();
  result.s1_image_before = harness.server(ServerId(1)).DebugImage();
  result.s2_image = harness.server(ServerId(2)).DebugImage();

  harness.Crash(ServerId(1));
  EXPECT_TRUE(harness.Restart(ServerId(1)).ok());
  result.s1_image_after = harness.server(ServerId(1)).DebugImage();

  harness.Run();
  EXPECT_TRUE(VerifyTrace(harness).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
  return result;
}

TEST(IncrementalPersistence, RecoveryRebuildsTheExactPreCrashImage) {
  const ScenarioResult result = RunCrashScenario(PersistMode::kIncremental);
  // Everything externally visible was committed first, so the per-entry
  // recovery must rebuild the pre-crash state exactly -- including the
  // QueueOUT order and the held-back frame.
  EXPECT_EQ(result.s1_image_before, result.s1_image_after);
}

TEST(IncrementalPersistence, RecoveryIsByteIdenticalToFullImageRewrite) {
  const ScenarioResult incremental =
      RunCrashScenario(PersistMode::kIncremental);
  const ScenarioResult full = RunCrashScenario(PersistMode::kFullImage);
  // The two runs are deterministic and identical on the wire; only the
  // disk layout differs.  Recovery from either layout must produce the
  // same server, byte for byte.
  EXPECT_EQ(incremental.s1_image_after, full.s1_image_after);
  EXPECT_EQ(incremental.s1_image_before, full.s1_image_before);
  EXPECT_EQ(incremental.s0_image, full.s0_image);
  EXPECT_EQ(incremental.s2_image, full.s2_image);
}

TEST(IncrementalPersistence, LegacyStoreMigratesOnFirstIncrementalBoot) {
  SimHarness harness(Flat(3), FastOptions(PersistMode::kFullImage));
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(1)) {
      server.AttachAgent(1, std::make_unique<SinkAgent>());
    }
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());
  harness.network().SetLinkLatency(ServerId(0), ServerId(1),
                                   400 * sim::kMillisecond);

  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "direct").ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(2), 1, "relay").ok());
  harness.RunUntil(10 * sim::kMillisecond);
  ASSERT_TRUE(harness.Send(ServerId(2), 1, ServerId(1), 1, "indirect").ok());
  harness.RunUntil(50 * sim::kMillisecond);
  ASSERT_EQ(harness.server(ServerId(1)).holdback_size(), 1u);

  // The crashed store holds the legacy monolithic blobs.
  const Bytes before = harness.server(ServerId(1)).DebugImage();
  harness.Crash(ServerId(1));
  ASSERT_TRUE(harness.store(ServerId(1)).Get("channel/holdback").has_value());
  ASSERT_TRUE(harness.store(ServerId(1)).Get("channel/clocks").has_value());

  // "Upgrade" the software across the crash: the first incremental Boot
  // migrates the store to per-entry keys, once.
  harness.set_persist_mode(PersistMode::kIncremental);
  ASSERT_TRUE(harness.Restart(ServerId(1)).ok());

  EXPECT_EQ(harness.server(ServerId(1)).DebugImage(), before);
  EXPECT_EQ(harness.server(ServerId(1)).holdback_size(), 1u);
  EXPECT_FALSE(harness.store(ServerId(1)).Get("channel/clocks").has_value());
  EXPECT_FALSE(harness.store(ServerId(1)).Get("channel/qout").has_value());
  EXPECT_FALSE(harness.store(ServerId(1)).Get("engine/qin").has_value());
  EXPECT_FALSE(harness.store(ServerId(1)).Get("channel/holdback").has_value());
  EXPECT_EQ(harness.store(ServerId(1)).Keys("hold/").size(), 1u);
  EXPECT_FALSE(harness.store(ServerId(1)).Keys("clk/").empty());

  // A second crash exercises recovery from the migrated store itself.
  harness.Crash(ServerId(1));
  ASSERT_TRUE(harness.Restart(ServerId(1)).ok());
  EXPECT_EQ(harness.server(ServerId(1)).DebugImage(), before);

  harness.Run();
  EXPECT_TRUE(VerifyTrace(harness).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

TEST(IncrementalPersistence, DowngradeFoldsPerEntryKeysBackIntoBlobs) {
  SimHarness harness(Flat(2), FastOptions(PersistMode::kIncremental));
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "a").ok());
  harness.Run();

  harness.Crash(ServerId(0));
  harness.set_persist_mode(PersistMode::kFullImage);
  ASSERT_TRUE(harness.Restart(ServerId(0)).ok());
  harness.Run();

  EXPECT_TRUE(harness.store(ServerId(0)).Keys("clk/").empty());
  EXPECT_TRUE(harness.store(ServerId(0)).Keys("qout/").empty());
  EXPECT_TRUE(harness.store(ServerId(0)).Get("channel/clocks").has_value());

  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "b").ok());
  harness.Run();
  EXPECT_TRUE(VerifyTrace(harness).ok());
}

TEST(IncrementalPersistence, DrainedBusLeavesNoQueueKeysBehind) {
  auto config = Flat(3);
  SimHarness harness(config, FastOptions(PersistMode::kIncremental));
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  auto install = [&](ServerId id, mom::AgentServer& server) {
    server.AttachAgent(
        1, std::make_unique<ChatterAgent>(100 + id.value(), peers));
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          ChatterAgent::MakeChatPayload(5))
                    .ok());
  }
  harness.Run();
  ASSERT_TRUE(harness.CheckQuiescent().ok());
  EXPECT_TRUE(VerifyTrace(harness).ok());

  // Every queue entry that was written was also deleted; only the
  // steady-state keys (meta, clocks, agents) remain.
  for (ServerId id : config.servers) {
    EXPECT_TRUE(harness.store(id).Keys("qout/").empty()) << to_string(id);
    EXPECT_TRUE(harness.store(id).Keys("qin/").empty()) << to_string(id);
    EXPECT_TRUE(harness.store(id).Keys("hold/").empty()) << to_string(id);
    EXPECT_TRUE(harness.store(id).Get("meta").has_value()) << to_string(id);
    EXPECT_FALSE(harness.store(id).Keys("clk/").empty()) << to_string(id);
  }
}

TEST(IncrementalPersistence, RetransmittedHeldFrameIsDroppedNotReHeld) {
  // m3 is held at S1; S2 crashes before S1's ack reaches it and, on
  // restart, retransmits m3 while the original copy is still held.
  // The MessageId index must recognize the copy in O(1) and drop it --
  // the hold-back queue never holds the same message twice.
  SimHarness harness(Flat(3), FastOptions(PersistMode::kIncremental));
  SinkAgent* sink = nullptr;
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(1)) {
      auto agent = std::make_unique<SinkAgent>();
      sink = agent.get();
      server.AttachAgent(1, std::move(agent));
    }
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());
  harness.network().SetLinkLatency(ServerId(0), ServerId(1),
                                   400 * sim::kMillisecond);
  // Slow ack path S1 -> S2 so S2 can crash with the ack in flight.
  harness.network().SetLinkLatency(ServerId(1), ServerId(2),
                                   100 * sim::kMillisecond);

  const MessageId m1 =
      harness.Send(ServerId(0), 1, ServerId(1), 1, "direct").value();
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(2), 1, "relay").ok());
  harness.RunUntil(10 * sim::kMillisecond);
  const MessageId m3 =
      harness.Send(ServerId(2), 1, ServerId(1), 1, "indirect").value();
  harness.RunUntil(50 * sim::kMillisecond);
  ASSERT_EQ(harness.server(ServerId(1)).holdback_size(), 1u);

  // The ack (due at S2 around t=110ms) dies with S2.
  harness.Crash(ServerId(2));
  harness.RunUntil(150 * sim::kMillisecond);
  ASSERT_TRUE(harness.Restart(ServerId(2)).ok());  // resends m3 on Boot
  harness.Run();

  ASSERT_NE(sink, nullptr);
  ASSERT_EQ(sink->received(), 2u);
  EXPECT_EQ(sink->order()[0], m1);
  EXPECT_EQ(sink->order()[1], m3);
  const mom::ServerStats stats = harness.server(ServerId(1)).stats();
  EXPECT_GE(stats.duplicates_dropped, 1u);
  EXPECT_EQ(stats.holdback_peak, 1u);  // the copy was never re-held
  EXPECT_TRUE(VerifyTrace(harness).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

TEST(IncrementalPersistence, CleanClocksAreNotRewritten) {
  // An ack-only commit releases a QueueOUT entry but advances no clock;
  // with dirty tracking the clock image must not be part of that
  // commit.  Observable: at quiescence the store's clock keys were
  // written far fewer times than there were commits.
  SimHarness harness(Flat(2), FastOptions(PersistMode::kIncremental));
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "x").ok());
    harness.Run();
  }
  const mom::ServerStats stats = harness.server(ServerId(0)).stats();
  // Sender commits: 10 sends (clock dirty) + 10 ack releases (clock
  // clean).  Full-image persistence would have written the clock image
  // in all of them.
  EXPECT_GE(stats.commits, 20u);
  // The ack-release commits stage exactly one deletion; their commit
  // bytes are just the deleted key's name, far below a clock image.
  EXPECT_GE(stats.commit_bytes_hist.count, 20u);
  std::uint64_t tiny_commits = 0;
  for (std::size_t b = 0; b < 7; ++b) {  // commits under 64 bytes
    tiny_commits += stats.commit_bytes_hist.buckets[b];
  }
  EXPECT_GE(tiny_commits, 10u);
}

}  // namespace
}  // namespace cmom
