// Tests for the flow-control subsystem (src/flow): credit window
// bookkeeping, deficit-round-robin fairness, engine admission control,
// dead-letter records, the AckFrame credit trailer, and the end-to-end
// behavior of a credit-gated bus under tiny watermarks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "domains/topologies.h"
#include "flow/admission.h"
#include "flow/credits.h"
#include "flow/dead_letter.h"
#include "flow/drr.h"
#include "mom/message.h"
#include "pubsub/queue.h"
#include "workload/agents.h"
#include "workload/threaded_harness.h"

namespace cmom {
namespace {

using flow::Admission;
using flow::CreditReceiverLink;
using flow::CreditSenderLink;
using flow::FlowOptions;
using flow::Priority;

// ---------------------------------------------------------------------
// Credit links
// ---------------------------------------------------------------------

TEST(Credits, SenderAdmitsUntilInitialWindowExhausts) {
  CreditSenderLink link(3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(link.CanAdmit());
    link.Admit();
  }
  EXPECT_FALSE(link.CanAdmit());
  EXPECT_EQ(link.admitted(), 3u);
  EXPECT_EQ(link.outstanding(), 0u);
  // Nothing blocked yet, so the link is not "paused" (paused means
  // frames are waiting on credit, not merely that the window is full).
  EXPECT_FALSE(link.paused());
  link.Block(MessageId{ServerId(1), 7});
  EXPECT_TRUE(link.paused());
}

TEST(Credits, GrantsAreMonotoneAndIdempotent) {
  CreditSenderLink link(2);
  link.Admit();
  link.Admit();
  link.Block(MessageId{ServerId(1), 1});

  // A stale (smaller or equal) grant neither shrinks the window nor
  // reports new headroom -- reordered and duplicated acks are no-ops.
  EXPECT_FALSE(link.Grant(1));
  EXPECT_FALSE(link.Grant(2));
  EXPECT_EQ(link.limit(), 2u);
  EXPECT_TRUE(link.paused());

  // A larger grant opens headroom for the blocked frame.
  EXPECT_TRUE(link.Grant(5));
  EXPECT_EQ(link.limit(), 5u);
  MessageId out;
  ASSERT_TRUE(link.NextReleasable(out));
  EXPECT_EQ(out, (MessageId{ServerId(1), 1}));
  link.Admit();
  EXPECT_FALSE(link.NextReleasable(out));  // blocked queue drained
  // Re-applying the same grant is harmless.
  EXPECT_FALSE(link.Grant(5));
}

TEST(Credits, BlockedFramesReleaseInFifoOrder) {
  CreditSenderLink link(0);
  link.Block(MessageId{ServerId(2), 1});
  link.Block(MessageId{ServerId(2), 2});
  link.Block(MessageId{ServerId(2), 3});
  EXPECT_EQ(link.blocked_count(), 3u);
  EXPECT_TRUE(link.Grant(2));
  MessageId out;
  ASSERT_TRUE(link.NextReleasable(out));
  EXPECT_EQ(out.seq, 1u);
  link.Admit();
  ASSERT_TRUE(link.NextReleasable(out));
  EXPECT_EQ(out.seq, 2u);
  link.Admit();
  // Window exhausted again: the third frame stays blocked.
  EXPECT_FALSE(link.NextReleasable(out));
  EXPECT_EQ(link.blocked_count(), 1u);
}

TEST(Credits, ForceReleaseBypassesTheWindow) {
  // Fences and the liveness probe emit blocked frames regardless of
  // credit, so a stalled peer can never wedge a reconfiguration.
  CreditSenderLink link(0);
  link.Block(MessageId{ServerId(3), 1});
  link.Block(MessageId{ServerId(3), 2});
  MessageId out;
  ASSERT_TRUE(link.ForceRelease(out));
  EXPECT_EQ(out.seq, 1u);
  ASSERT_TRUE(link.ForceRelease(out));
  EXPECT_EQ(out.seq, 2u);
  EXPECT_FALSE(link.ForceRelease(out));
}

TEST(Credits, RetireDropsARetiredBlockedFrame) {
  CreditSenderLink link(0);
  link.Block(MessageId{ServerId(4), 1});
  link.Block(MessageId{ServerId(4), 2});
  link.Retire(MessageId{ServerId(4), 1});
  EXPECT_EQ(link.blocked_count(), 1u);
  MessageId out;
  ASSERT_TRUE(link.ForceRelease(out));
  EXPECT_EQ(out.seq, 2u);
}

TEST(Credits, RetireResolvesAnInFlightEmission) {
  CreditSenderLink link(/*initial_credit=*/8);
  link.Admit();
  link.Admit();
  EXPECT_EQ(link.inflight(), 2u);
  link.Retire(MessageId{ServerId(4), 1});
  EXPECT_EQ(link.inflight(), 1u);
  // A blocked (never emitted) entry retires from the queue instead.
  link.Block(MessageId{ServerId(4), 7});
  link.Retire(MessageId{ServerId(4), 7});
  EXPECT_EQ(link.inflight(), 1u);
  EXPECT_EQ(link.blocked_count(), 0u);
}

TEST(Credits, ReconcileFirstContactAdoptsAbsolutely) {
  // First ack from a peer this boot (peer_session 0 -> S): the grant
  // replaces the assumed initial credit outright, and the admission
  // count is rebuilt from the receiver's authoritative accepted count
  // plus our in-flight emissions.
  CreditSenderLink link(/*initial_credit=*/4);
  for (int i = 0; i < 3; ++i) link.Admit();  // emitted on initial credit
  // Peer has accepted 1 of the 3; the ack retiring it ran first.
  link.Retire(MessageId{ServerId(1), 1});
  EXPECT_FALSE(link.Reconcile(/*session=*/7, /*accepted=*/1, /*granted=*/2));
  EXPECT_EQ(link.peer_session(), 7u);
  EXPECT_EQ(link.limit(), 2u);  // absolute adopt, below initial credit
  EXPECT_EQ(link.admitted(), 3u);  // 1 accepted + 2 in flight
  EXPECT_FALSE(link.CanAdmit());   // 3 admitted >= limit 2: backpressure
  // Same session afterwards: a stale (reordered) accepted count only
  // takes the monotone grant.
  EXPECT_FALSE(link.Reconcile(7, 0, 1));
  EXPECT_EQ(link.limit(), 2u);
  EXPECT_EQ(link.admitted(), 3u);
  link.Block(MessageId{ServerId(1), 9});
  EXPECT_TRUE(link.Reconcile(7, 1, 5));
  EXPECT_EQ(link.limit(), 5u);
}

TEST(Credits, ReconcileRepairsRunawayAfterReceiverRestart) {
  // The receiver restarted: its accepted numbering starts over, and it
  // re-counts retransmitted in-flight entries its new numbering never
  // saw.  Dead-reckoning admitted through the restart (keeping it, or
  // zeroing it) leaves the two counters permanently offset; rebuilding
  // it as accepted + inflight re-pairs them exactly.
  CreditSenderLink link(/*initial_credit=*/4);
  ASSERT_FALSE(link.Reconcile(/*session=*/3, /*accepted=*/0,
                              /*granted=*/1000));
  for (int i = 0; i < 900; ++i) link.Admit();
  for (std::uint64_t s = 1; s <= 890; ++s) {
    link.Retire(MessageId{ServerId(2), s});  // 890 acked, 10 in flight
  }
  link.Block(MessageId{ServerId(2), 1000});

  // New incarnation: it has re-accepted 4 of our 10 retransmitted
  // in-flight entries so far and grants a small cumulative window.
  EXPECT_TRUE(link.Reconcile(/*session=*/4, /*accepted=*/4, /*granted=*/20));
  EXPECT_EQ(link.peer_session(), 4u);
  EXPECT_EQ(link.limit(), 20u);
  EXPECT_EQ(link.admitted(), 14u);  // 4 accepted + 10 in flight
  MessageId out;
  EXPECT_TRUE(link.NextReleasable(out));  // link is live again

  // A reordered straggler grant from the dead incarnation is ignored:
  // incarnations are monotone, so it can never roll the link back.
  EXPECT_FALSE(link.Reconcile(/*session=*/3, /*accepted=*/900,
                              /*granted=*/2000));
  EXPECT_EQ(link.peer_session(), 4u);
  EXPECT_EQ(link.limit(), 20u);
}

TEST(Credits, ReconcileHealsWedgeAfterOwnRestartDuplicates) {
  // A restarted SENDER re-emits its recovered QueueOUT (all counted as
  // in-flight admissions), but the surviving receiver holds most of
  // them durably and never re-accepts the duplicates.  As the
  // duplicate re-acks retire the entries, reconciliation shrinks
  // admitted back toward accepted and the window reopens -- no
  // permanent wedge.
  CreditSenderLink link(/*initial_credit=*/16);
  for (int i = 0; i < 100; ++i) link.Admit();  // boot resume re-emissions
  EXPECT_EQ(link.inflight(), 100u);

  // Receiver re-accepted only 5 (the rest were durable duplicates);
  // window is 32.  Before any retirements the link is conservatively
  // paused...
  EXPECT_FALSE(link.Reconcile(/*session=*/9, /*accepted=*/5,
                              /*granted=*/37));
  EXPECT_EQ(link.admitted(), 105u);
  EXPECT_FALSE(link.CanAdmit());

  // ...but the duplicate re-acks retire the in-flight entries, and the
  // next reconciliation converges admitted to accepted: full headroom.
  for (std::uint64_t s = 1; s <= 100; ++s) {
    link.Retire(MessageId{ServerId(5), s});
  }
  EXPECT_FALSE(link.Reconcile(/*session=*/9, /*accepted=*/5,
                              /*granted=*/37));
  EXPECT_EQ(link.admitted(), 5u);
  EXPECT_TRUE(link.CanAdmit());
}

TEST(Credits, RetireIsO1ForNeverBlockedIds) {
  // Every ack retirement calls Retire; ids that were never blocked (the
  // overwhelmingly common case) must not scan the blocked queue.  The
  // membership index keeps the queue and set in sync across every
  // release path.
  CreditSenderLink link(0);
  link.Block(MessageId{ServerId(4), 1});
  link.Block(MessageId{ServerId(4), 2});
  link.Retire(MessageId{ServerId(4), 99});  // never blocked: no-op
  EXPECT_EQ(link.blocked_count(), 2u);
  MessageId out;
  ASSERT_TRUE(link.ForceRelease(out));
  link.Retire(out);  // already released: resolves the emission
  EXPECT_EQ(link.blocked_count(), 1u);
  link.Retire(MessageId{ServerId(4), 2});
  EXPECT_EQ(link.blocked_count(), 0u);
}

TEST(Credits, ReceiverObserveSessionRestartsCountingOnSenderReboot) {
  CreditReceiverLink link(/*initial_credit=*/4);
  link.ObserveSession(5);
  EXPECT_EQ(link.sender_session(), 5u);
  // First observation keeps the initial advertisement assumption.
  EXPECT_EQ(link.advertised(), 4u);
  for (int i = 0; i < 10; ++i) link.Accept();
  EXPECT_EQ(link.ComputeGrant(/*backlog=*/0, /*high_watermark=*/8), 18u);

  // Stragglers from the dead incarnation are no-ops.
  link.ObserveSession(4);
  EXPECT_EQ(link.sender_session(), 5u);
  EXPECT_EQ(link.accepted(), 10u);

  // The sender rebooted: it admits from zero, so accepted and the
  // advertisement monotonicity start over -- the next grant is window-
  // sized instead of being pinned at the old cumulative high-water.
  link.ObserveSession(6);
  EXPECT_EQ(link.sender_session(), 6u);
  EXPECT_EQ(link.accepted(), 0u);
  EXPECT_EQ(link.ComputeGrant(/*backlog=*/0, /*high_watermark=*/8), 8u);
}

TEST(Credits, ReceiverGrantTracksBacklogAndStaysMonotone) {
  CreditReceiverLink link(4);
  EXPECT_EQ(link.advertised(), 4u);

  // Empty backlog: full window on top of what was accepted.
  for (int i = 0; i < 3; ++i) link.Accept();
  EXPECT_EQ(link.ComputeGrant(/*backlog=*/0, /*high_watermark=*/8), 11u);

  // Backlog at the high watermark: zero window.  The grant must not
  // regress below the previous advertisement even though the window
  // collapsed -- cumulative grants never shrink.
  EXPECT_EQ(link.ComputeGrant(/*backlog=*/8, /*high_watermark=*/8), 11u);
  EXPECT_EQ(link.advertised(), 11u);

  // Once accepted catches up with the advertisement the sender may be
  // out of headroom -- that is when a credit-only refresh is worth it.
  EXPECT_FALSE(link.MaybePaused());
  for (int i = 0; i < 8; ++i) link.Accept();
  EXPECT_EQ(link.accepted(), 11u);
  EXPECT_TRUE(link.MaybePaused());
  EXPECT_EQ(link.ComputeGrant(/*backlog=*/2, /*high_watermark=*/8), 17u);
  EXPECT_FALSE(link.MaybePaused());
}

// ---------------------------------------------------------------------
// Deficit round robin
// ---------------------------------------------------------------------

TEST(Drr, FairShareAcrossAHotAndAQuietDomain) {
  flow::DrrScheduler<int> drr(/*quantum=*/2);
  for (int i = 0; i < 20; ++i) drr.Push(DomainId(0), i);  // hot
  for (int i = 100; i < 104; ++i) drr.Push(DomainId(1), i);  // quiet
  ASSERT_EQ(drr.size(), 24u);
  EXPECT_EQ(drr.queue_count(), 2u);

  // One round of budget 8: each domain gets its quantum per round, so
  // the quiet domain is served in the same rounds as the hot one
  // instead of waiting behind its 20-message burst.
  std::vector<std::pair<DomainId, int>> popped;
  std::uint64_t rounds = 0;
  const std::size_t n = drr.Drain(
      8, [&](DomainId d, int v) { popped.emplace_back(d, v); }, &rounds);
  EXPECT_EQ(n, 8u);
  EXPECT_EQ(rounds, 2u);
  std::size_t quiet = 0;
  for (const auto& [d, v] : popped) {
    if (d == DomainId(1)) ++quiet;
  }
  EXPECT_EQ(quiet, 4u);  // the quiet domain fully drained in 2 rounds
}

TEST(Drr, PerDomainFifoOrderIsPreserved) {
  flow::DrrScheduler<int> drr(/*quantum=*/3);
  for (int i = 0; i < 9; ++i) drr.Push(DomainId(i % 3), i);
  std::map<std::uint16_t, std::vector<int>> by_domain;
  drr.Drain(100, [&](DomainId d, int v) { by_domain[d.value()].push_back(v); });
  for (const auto& [d, values] : by_domain) {
    ASSERT_EQ(values.size(), 3u);
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end()))
        << "domain " << d << " reordered its own items";
  }
  EXPECT_TRUE(drr.empty());
}

TEST(Drr, EmptyQueueDoesNotBankDeficitForLaterBursts) {
  flow::DrrScheduler<int> drr(/*quantum=*/1);
  drr.Push(DomainId(0), 0);
  drr.Drain(10, [](DomainId, int) {});
  // Domain 1 idles through many rounds of domain-0 traffic...
  for (int i = 0; i < 50; ++i) {
    drr.Push(DomainId(0), i);
    drr.Drain(10, [](DomainId, int) {});
  }
  // ...then bursts.  With a banked deficit it could now forward its
  // whole burst in one round; the reset caps it at the quantum.
  for (int i = 0; i < 10; ++i) drr.Push(DomainId(1), i);
  for (int i = 0; i < 10; ++i) drr.Push(DomainId(0), 100 + i);
  std::vector<DomainId> order;
  drr.Drain(4, [&](DomainId d, int) { order.push_back(d); });
  ASSERT_EQ(order.size(), 4u);
  // Two rounds of budget 2: strict alternation, no banked burst.
  std::size_t from_d1 = 0;
  for (DomainId d : order) {
    if (d == DomainId(1)) ++from_d1;
  }
  EXPECT_EQ(from_d1, 2u);
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(Admission, ControlSubjectsAlwaysAdmit) {
  EXPECT_EQ(flow::ClassifyPriority("queue.listen"), Priority::kControl);
  EXPECT_EQ(flow::ClassifyPriority("queue.ignore"), Priority::kControl);
  EXPECT_EQ(flow::ClassifyPriority("topic.subscribe"), Priority::kControl);
  EXPECT_EQ(flow::ClassifyPriority("topic.unsubscribe"), Priority::kControl);
  EXPECT_EQ(flow::ClassifyPriority("control.anything"), Priority::kControl);
  EXPECT_EQ(flow::ClassifyPriority("queue.put"), Priority::kData);
  EXPECT_EQ(flow::ClassifyPriority("topic.publish"), Priority::kData);
  EXPECT_EQ(flow::ClassifyPriority("chat"), Priority::kData);

  FlowOptions options;
  options.engine_admit_high = 4;
  options.out_admit_high = 4;
  options.wait_queue_max = 2;
  // Control is admitted even over every threshold with a full wait
  // queue: quiesce must be able to drain a saturated server.
  EXPECT_EQ(flow::AdmitSend(Priority::kControl, 100, 100, 2, true,
                            /*sender_has_deferred=*/false, options),
            Admission::kAdmit);
}

TEST(Admission, ControlDefersBehindTheSameAgentsParkedSends) {
  FlowOptions options;
  options.engine_admit_high = 4;
  options.out_admit_high = 4;
  options.wait_queue_max = 2;
  // Per-sender FIFO: a control send from an agent whose earlier data
  // sends are already parked must queue behind them -- admitting it
  // would process one producer's sends out of call order.  It defers
  // even with the wait queue at (or over) its cap: control is delayed,
  // never shed.
  EXPECT_EQ(flow::AdmitSend(Priority::kControl, 0, 0, 1, true,
                            /*sender_has_deferred=*/true, options),
            Admission::kDefer);
  EXPECT_EQ(flow::AdmitSend(Priority::kControl, 100, 100, 2, true,
                            /*sender_has_deferred=*/true, options),
            Admission::kDefer);
}

TEST(Admission, DataDefersOverHighAndLatchesUntilWaitQueueDrains) {
  FlowOptions options;
  options.engine_admit_high = 4;
  options.engine_admit_low = 2;
  options.out_admit_high = 8;
  options.wait_queue_max = 3;

  // Under both thresholds, not deferring: admit.
  EXPECT_EQ(flow::AdmitSend(Priority::kData, 3, 0, 0, false, false, options),
            Admission::kAdmit);
  // Engine backlog at high: defer.
  EXPECT_EQ(flow::AdmitSend(Priority::kData, 4, 0, 0, false, false, options),
            Admission::kDefer);
  // QueueOUT backlog alone is enough (end-to-end backpressure from a
  // credit-paused link).
  EXPECT_EQ(flow::AdmitSend(Priority::kData, 0, 8, 0, false, false, options),
            Admission::kDefer);
  // Hysteresis: while earlier sends still wait, new data sends keep
  // deferring even with the backlog back under the threshold --
  // admitting them would jump the FIFO.
  EXPECT_EQ(flow::AdmitSend(Priority::kData, 0, 0, 1, true, false, options),
            Admission::kDefer);
  // Wait queue full: reject (kOverloaded to the caller).
  EXPECT_EQ(flow::AdmitSend(Priority::kData, 4, 0, 3, true, false, options),
            Admission::kReject);

  // Wait-queue release needs the engine under the LOW threshold.
  EXPECT_FALSE(flow::ShouldDrainWaitQueue(3, 0, options));
  EXPECT_TRUE(flow::ShouldDrainWaitQueue(2, 0, options));
  EXPECT_FALSE(flow::ShouldDrainWaitQueue(2, 8, options));
}

TEST(Admission, DisabledFlowAdmitsEverything) {
  FlowOptions options;
  options.enabled = false;
  options.engine_admit_high = 1;
  options.out_admit_high = 1;
  options.wait_queue_max = 0;
  EXPECT_EQ(flow::AdmitSend(Priority::kData, 1000, 1000, 1000, true, false, options),
            Admission::kAdmit);
}

// ---------------------------------------------------------------------
// Dead-letter records
// ---------------------------------------------------------------------

TEST(DeadLetter, KeyRoundTripsAndSortsInSequenceOrder) {
  const std::string a = flow::DeadLetterKey(9);
  const std::string b = flow::DeadLetterKey(10);
  const std::string c = flow::DeadLetterKey(0x1234567890abcdefull);
  EXPECT_LT(a, b);  // fixed-width hex: lexicographic == numeric
  EXPECT_LT(b, c);
  std::uint64_t seq = 0;
  ASSERT_TRUE(flow::ParseDeadLetterKey(a, seq));
  EXPECT_EQ(seq, 9u);
  ASSERT_TRUE(flow::ParseDeadLetterKey(c, seq));
  EXPECT_EQ(seq, 0x1234567890abcdefull);
  EXPECT_FALSE(flow::ParseDeadLetterKey("dlq/", seq));
  EXPECT_FALSE(flow::ParseDeadLetterKey("dlq/zz", seq));
  EXPECT_FALSE(flow::ParseDeadLetterKey("qin/0000000000000001", seq));
}

TEST(DeadLetter, RecordRoundTripsAndRejectsTruncation) {
  flow::DeadLetterRecord record;
  record.reason = "queue depth limit at a0.10";
  record.id = MessageId{ServerId(2), 77};
  record.from = AgentId{ServerId(2), 12};
  record.to = AgentId{ServerId(0), 10};
  record.subject = "queue.put";
  record.payload = Bytes{1, 2, 3, 4};

  const Bytes bytes = record.Serialize();
  auto decoded = flow::DeadLetterRecord::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), record);

  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    auto truncated = flow::DeadLetterRecord::Deserialize(
        std::span<const std::uint8_t>(bytes.data(), cut));
    EXPECT_FALSE(truncated.ok()) << "decoded from " << cut << " bytes";
  }
}

// ---------------------------------------------------------------------
// AckFrame credit trailer
// ---------------------------------------------------------------------

TEST(AckFrameCredit, CreditRoundTripsOnTheWire) {
  mom::AckFrame ack;
  ack.messages = {MessageId{ServerId(1), 3}, MessageId{ServerId(2), 9}};
  ack.has_credit = true;
  ack.credit = 300;  // multi-byte varint
  auto decoded = mom::DeserializeAck(ack.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().messages, ack.messages);
  EXPECT_TRUE(decoded.value().has_credit);
  EXPECT_EQ(decoded.value().credit, 300u);
}

TEST(AckFrameCredit, CreditOnlyAckCarriesNoIds) {
  mom::AckFrame ack;
  ack.has_credit = true;
  ack.credit = 42;
  auto decoded = mom::DeserializeAck(ack.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().messages.empty());
  EXPECT_EQ(decoded.value().credit, 42u);
}

TEST(AckFrameCredit, PreFlowFrameWithoutTrailerDecodesAsNoCredit) {
  // A frame from a pre-flow encoder ends right after the ids.  The
  // modern encoder always appends the flags byte, so strip it to
  // reconstruct the legacy wire image.
  mom::AckFrame ack(MessageId{ServerId(5), 1});
  Bytes legacy = ack.Serialize();
  ASSERT_EQ(legacy.back(), 0);  // flags byte: no credit
  legacy.pop_back();
  auto decoded = mom::DeserializeAck(legacy);
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().has_credit);
  EXPECT_EQ(decoded.value().messages.size(), 1u);
}

TEST(AckFrameCredit, TruncatedCreditVarintIsDataLoss) {
  mom::AckFrame ack;
  ack.has_credit = true;
  ack.credit = 1u << 20;  // 3-byte varint
  Bytes bytes = ack.Serialize();
  bytes.pop_back();
  EXPECT_FALSE(mom::DeserializeAck(bytes).ok());
}

TEST(AckFrameCredit, SessionAndEchoRoundTripOnTheWire) {
  mom::AckFrame ack(MessageId{ServerId(3), 8});
  ack.has_credit = true;
  ack.credit = 17;
  ack.has_session = true;
  ack.session = 5;
  ack.echo = 300;       // multi-byte varint
  ack.accepted = 4096;  // receiver's authoritative accepted count
  auto decoded = mom::DeserializeAck(ack.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().has_session);
  EXPECT_EQ(decoded.value().session, 5u);
  EXPECT_EQ(decoded.value().echo, 300u);
  EXPECT_EQ(decoded.value().accepted, 4096u);
  EXPECT_TRUE(decoded.value().has_credit);
  EXPECT_EQ(decoded.value().credit, 17u);
}

TEST(AckFrameCredit, SessionWithoutCreditRoundTrips) {
  // The flag bits are independent: a session-stamped ack need not carry
  // a grant (pure retirement ack from a flow-enabled server).
  mom::AckFrame ack(MessageId{ServerId(3), 8});
  ack.has_session = true;
  ack.session = 2;
  ack.echo = 0;  // sender incarnation not yet observed
  auto decoded = mom::DeserializeAck(ack.Serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded.value().has_credit);
  EXPECT_TRUE(decoded.value().has_session);
  EXPECT_EQ(decoded.value().session, 2u);
  EXPECT_EQ(decoded.value().echo, 0u);
}

TEST(AckFrameCredit, TruncatedSessionTrailerIsDataLoss) {
  mom::AckFrame ack;
  ack.has_credit = true;
  ack.credit = 9;
  ack.has_session = true;
  ack.session = 1u << 20;  // 3-byte varint
  ack.echo = 1u << 20;
  const Bytes bytes = ack.Serialize();
  // Every cut that removes part of the credit/session trailer must
  // fail loudly rather than decode a garbage window.
  const Bytes base = mom::AckFrame{}.Serialize();
  for (std::size_t cut = base.size(); cut < bytes.size(); ++cut) {
    auto truncated = mom::DeserializeAck(
        std::span<const std::uint8_t>(bytes.data(), cut));
    EXPECT_FALSE(truncated.ok()) << "decoded from " << cut << " bytes";
  }
}

// ---------------------------------------------------------------------
// Bounded pubsub queue -> persistent dead letters
// ---------------------------------------------------------------------

constexpr std::uint32_t kQueueLocal = 10;
constexpr std::uint32_t kWorkerLocal = 11;
constexpr std::uint32_t kProducerLocal = 12;

TEST(FlowEndToEnd, BoundedQueueOverflowsToPersistentDeadLetters) {
  workload::ThreadedHarness harness(domains::topologies::Flat(2));
  pubsub::QueueAgent* queue = nullptr;
  workload::SinkAgent* worker = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent =
                          std::make_unique<pubsub::QueueAgent>(/*max_depth=*/2);
                      queue = agent.get();
                      server.AttachAgent(kQueueLocal, std::move(agent));
                    }
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<workload::SinkAgent>();
                      worker = agent.get();
                      server.AttachAgent(kWorkerLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  const AgentId queue_id{ServerId(0), kQueueLocal};
  // No consumer listening: the first two puts buffer, the rest dead-
  // letter.  Every put is still accepted by the bus (exactly-once
  // delivery to the queue agent); shedding is the agent's decision.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(pubsub::Put(harness.server(ServerId(1)),
                            AgentId{ServerId(1), kProducerLocal}, queue_id,
                            "task" + std::to_string(i))
                    .ok());
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  ASSERT_NE(queue, nullptr);
  EXPECT_EQ(queue->buffered(), 2u);
  EXPECT_EQ(queue->dead_lettered(), 3u);
  EXPECT_EQ(harness.server(ServerId(0)).stats().dead_letters, 3u);
  EXPECT_EQ(harness.server(ServerId(0)).flow_status().dead_letters, 3u);

  // The records are durable, sequenced, and carry the shed message.
  mom::Store* store = harness.StoreOf(ServerId(0));
  ASSERT_NE(store, nullptr);
  const auto keys = store->Keys(flow::kDeadLetterKeyPrefix);
  ASSERT_EQ(keys.size(), 3u);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    std::uint64_t seq = 0;
    ASSERT_TRUE(flow::ParseDeadLetterKey(keys[i], seq));
    EXPECT_EQ(seq, i + 1);  // dlq/ sequence starts at 1
    auto bytes = store->Get(keys[i]);
    ASSERT_TRUE(bytes.has_value());
    auto record = flow::DeadLetterRecord::Deserialize(*bytes);
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record.value().subject, pubsub::kQueuePut);
    EXPECT_FALSE(record.value().reason.empty());
    EXPECT_EQ(record.value().to, queue_id);
  }
}

TEST(FlowEndToEnd, DeadLetterCountSurvivesCrashAndSequenceContinues) {
  workload::ThreadedHarness harness(domains::topologies::Flat(2));
  pubsub::QueueAgent* queue = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent =
                          std::make_unique<pubsub::QueueAgent>(/*max_depth=*/1);
                      queue = agent.get();
                      server.AttachAgent(kQueueLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  const AgentId queue_id{ServerId(0), kQueueLocal};
  auto put = [&](const std::string& name) {
    ASSERT_TRUE(pubsub::Put(harness.server(ServerId(1)),
                            AgentId{ServerId(1), kProducerLocal}, queue_id,
                            name)
                    .ok());
  };
  put("a");
  put("b");  // sheds: depth limit 1
  harness.WaitQuiescent();
  EXPECT_EQ(queue->dead_lettered(), 1u);

  harness.Crash(ServerId(0));
  ASSERT_TRUE(harness.Restart(ServerId(0)).ok());
  harness.WaitQuiescent();
  // The counter is part of the queue agent's durable image...
  EXPECT_EQ(queue->dead_lettered(), 1u);

  put("c");  // sheds again after recovery
  harness.WaitQuiescent();
  harness.HaltAll();
  EXPECT_EQ(queue->dead_lettered(), 2u);
  // ...and the dlq/ sequence resumed past the pre-crash record instead
  // of overwriting it.
  const auto keys = harness.StoreOf(ServerId(0))->Keys(flow::kDeadLetterKeyPrefix);
  EXPECT_EQ(keys.size(), 2u);
}

// ---------------------------------------------------------------------
// End-to-end credit gating under tiny watermarks
// ---------------------------------------------------------------------

// Burns a fixed wall-clock service time per message so the receiver's
// backlog actually builds and the credit window engages.
class SlowSink final : public mom::Agent {
 public:
  explicit SlowSink(std::uint64_t service_us) : service_us_(service_us) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    (void)message;
    std::this_thread::sleep_for(std::chrono::microseconds(service_us_));
    seen_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t seen() const {
    return seen_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t service_us_;
  std::atomic<std::uint64_t> seen_{0};
};

FlowOptions TinyWatermarks() {
  FlowOptions flow;
  flow.high_watermark = 8;
  flow.low_watermark = 2;
  flow.initial_credit = 4;
  flow.drr_quantum = 2;
  flow.engine_admit_high = 64;
  flow.engine_admit_low = 16;
  flow.out_admit_high = 128;
  flow.wait_queue_max = 4096;
  return flow;
}

TEST(FlowEndToEnd, CreditsGateAdmissionWithoutLosingOrReordering) {
  workload::ThreadedHarnessOptions options;
  options.flow = TinyWatermarks();
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Flat(2), options);
  SlowSink* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<SlowSink>(500);
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  constexpr int kMessages = 120;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(
        harness.Send(ServerId(0), 2, ServerId(1), 1, "burst").ok());
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  // The burst (120) dwarfs the initial credit (4) against a 500us/msg
  // consumer, so the sender must have paused at least once...
  const auto stats = harness.server(ServerId(0)).stats();
  EXPECT_GT(stats.credit_blocked, 0u);
  // ...yet nothing is lost, duplicated or reordered.
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->seen(), static_cast<std::uint64_t>(kMessages));
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());

  // At quiescence every gauge returns to zero: no frame stuck behind a
  // window, no credit leak.
  for (ServerId id : {ServerId(0), ServerId(1)}) {
    const auto flow = harness.server(id).flow_status();
    EXPECT_EQ(flow.paused_links, 0u) << "server " << id;
    EXPECT_EQ(flow.blocked_messages, 0u) << "server " << id;
    EXPECT_EQ(flow.staged_forwards, 0u) << "server " << id;
    EXPECT_EQ(flow.wait_queue, 0u) << "server " << id;
  }
}

TEST(FlowEndToEnd, AdmissionDefersLocalSendsAndDeliversThemAll) {
  workload::ThreadedHarnessOptions options;
  options.flow = TinyWatermarks();
  // Aggressive: QueueOUT over 8 entries parks new data sends on the
  // wait queue, which releases as the credit-gated link drains.
  options.flow.out_admit_high = 8;
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Flat(2), options);
  SlowSink* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<SlowSink>(300);
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  constexpr int kMessages = 150;
  int accepted = 0;
  for (int i = 0; i < kMessages; ++i) {
    auto sent = harness.Send(ServerId(0), 2, ServerId(1), 1, "pressed");
    if (sent.ok()) {
      ++accepted;
    } else {
      // The bounded wait queue may shed under this much overdrive; a
      // shed is a clean typed refusal, not a failure.
      EXPECT_EQ(sent.status().code(), StatusCode::kOverloaded);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  const auto stats = harness.server(ServerId(0)).stats();
  EXPECT_GT(stats.sends_deferred, 0u);
  EXPECT_EQ(stats.sends_shed,
            static_cast<std::uint64_t>(kMessages - accepted));
  // Every ACCEPTED send is delivered exactly once; sheds were refused
  // up front, so nothing silently vanished in between.
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->seen(), static_cast<std::uint64_t>(accepted));
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
}

TEST(FlowEndToEnd, FenceDrainsThroughAPausedCreditWindow) {
  // A reconfiguration fence must never deadlock behind flow control:
  // quiesce force-releases blocked frames, so a saturated, credit-
  // paused sender still drains.
  workload::ThreadedHarnessOptions options;
  options.flow = TinyWatermarks();
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Flat(2), options);
  SlowSink* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<SlowSink>(500);
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  constexpr int kMessages = 60;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(1), 1, "pre-fence").ok());
  }
  // Fence immediately, while most of the burst is still credit-blocked
  // in the sender's QueueOUT (initial credit 4 against a slow sink).
  harness.server(ServerId(0)).BeginFence();
  bool drained = false;
  for (int i = 0; i < 10000; ++i) {
    if (harness.server(ServerId(0)).fence_status().drained) {
      drained = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(drained) << "fence wedged behind a credit window";
  harness.server(ServerId(0)).LiftFence();
  harness.WaitQuiescent();
  harness.HaltAll();

  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->seen(), static_cast<std::uint64_t>(kMessages));
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
}

// ---------------------------------------------------------------------
// Restart renegotiation (incarnation/session protocol)
// ---------------------------------------------------------------------

TEST(FlowEndToEnd, ReceiverRestartRenegotiatesTheCreditWindow) {
  // A restarted receiver counts accepted frames from zero, so its
  // cumulative grants drop far below the surviving sender's limit.
  // Without session renegotiation the link wedges: every grant is below
  // the old high-water, and only the liveness probe moves one frame per
  // retransmit timeout.  With it, the first ack from the new
  // incarnation rebases the window and traffic flows normally -- which
  // the probe counter makes observable (a wedge needs roughly one
  // probe per message; a renegotiated link needs almost none).
  workload::ThreadedHarnessOptions options;
  options.flow = TinyWatermarks();
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Flat(2), options);
  SlowSink* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<SlowSink>(300);
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Drive the receiver's cumulative numbering well past the initial
  // credit, then take it down.
  constexpr int kPreCrash = 40;
  for (int i = 0; i < kPreCrash; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(1), 1, "pre").ok());
  }
  harness.WaitQuiescent();
  harness.Crash(ServerId(1));
  ASSERT_TRUE(harness.Restart(ServerId(1)).ok());  // re-attaches a fresh sink

  constexpr int kPostCrash = 40;
  for (int i = 0; i < kPostCrash; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(1), 1, "post").ok());
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  // The post-restart burst arrived in full at the new agent instance...
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->seen(), static_cast<std::uint64_t>(kPostCrash));
  // ...exactly once and causally across the whole trace...
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
  // ...and it flowed through a renegotiated window, not a probe crawl.
  EXPECT_LT(harness.server(ServerId(0)).stats().credit_probes, 10u);
  for (ServerId id : {ServerId(0), ServerId(1)}) {
    const auto flow = harness.server(id).flow_status();
    EXPECT_EQ(flow.paused_links, 0u) << "server " << id;
    EXPECT_EQ(flow.blocked_messages, 0u) << "server " << id;
  }
}

TEST(FlowEndToEnd, SenderRestartDoesNotInheritTheDeadWindow) {
  // The inverse failure: a restarted sender counts admissions from zero
  // while the receiver's cumulative grant already stands at the
  // pre-crash total -- taken at face value that grant is an effectively
  // unbounded window, defeating flow control entirely.  The receiver
  // must instead restart its accepted count when it observes the new
  // sender incarnation, so the rebooted sender is paced by a fresh
  // window-sized grant (observable as credit blocking on a burst that
  // fits comfortably inside the stale grant).
  workload::ThreadedHarnessOptions options;
  options.flow = TinyWatermarks();
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Flat(2), options);
  SlowSink* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<SlowSink>(300);
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Push the receiver's cumulative grant to ~60 + window.
  constexpr int kPreCrash = 60;
  for (int i = 0; i < kPreCrash; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(1), 1, "pre").ok());
  }
  harness.WaitQuiescent();
  harness.Crash(ServerId(0));
  ASSERT_TRUE(harness.Restart(ServerId(0)).ok());

  // 40 messages sit far inside the stale cumulative grant (~68) but far
  // outside a fresh window (high_watermark 8): a correctly re-paced
  // sender must block at least once against the slow sink.
  constexpr int kPostCrash = 40;
  for (int i = 0; i < kPostCrash; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(1), 1, "post").ok());
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  // Stats reset with the restart, so this counts post-restart blocking
  // only: zero here would mean the dead incarnation's grant was honored.
  EXPECT_GT(harness.server(ServerId(0)).stats().credit_blocked, 0u);
  // The sharper signal is on the receiver: honoring the stale ~68-frame
  // grant would let the whole post-restart burst land at once, spiking
  // the backlog high-water far past the 8-frame watermark.  A re-paced
  // sender keeps it near the watermark (plus coalescing slack).
  EXPECT_LT(harness.server(ServerId(1)).stats().backlog_peak, 24u);
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->seen(),
            static_cast<std::uint64_t>(kPreCrash + kPostCrash));
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
}

// Records the arrival order of subjects at one agent.
class OrderRecorder final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    const std::lock_guard<std::mutex> lock(mutex_);
    subjects_.push_back(message.subject);
  }

  [[nodiscard]] std::vector<std::string> subjects() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return subjects_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> subjects_;
};

TEST(FlowEndToEnd, ControlSendQueuesBehindTheSameAgentsParkedDataSends) {
  // Control-class subjects skip overload shedding, but they must not
  // skip the same agent's parked data sends: a producer that publishes
  // then unsubscribes expects those to apply in call order even when
  // the publishes are sitting on the wait queue.  The control send
  // queues behind them, so the recorder sees it last.
  workload::ThreadedHarnessOptions options;
  options.flow = TinyWatermarks();
  // Any QueueOUT backlog parks further data sends on the wait queue,
  // so the burst below reliably has parked sends when the control
  // subject arrives.
  options.flow.out_admit_high = 1;
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Flat(2), options);
  OrderRecorder* recorder = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<OrderRecorder>();
                      recorder = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  constexpr int kData = 20;
  for (int i = 0; i < kData; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(1), 1, "queue.put").ok());
  }
  // Control-class subject from the SAME producer agent, issued while
  // its data sends are still parked.
  ASSERT_TRUE(
      harness.Send(ServerId(0), 2, ServerId(1), 1, "topic.unsubscribe").ok());
  harness.WaitQuiescent();
  harness.HaltAll();

  ASSERT_NE(recorder, nullptr);
  const auto subjects = recorder->subjects();
  ASSERT_EQ(subjects.size(), static_cast<std::size_t>(kData) + 1);
  // Call order survived overload: every data send first, control last.
  EXPECT_EQ(subjects.back(), "topic.unsubscribe");
  for (int i = 0; i < kData; ++i) EXPECT_EQ(subjects[i], "queue.put");
}

}  // namespace
}  // namespace cmom
