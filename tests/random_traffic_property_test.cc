// The central property test: randomized branching chatter over every
// canonical acyclic topology, with and without modeled processing
// costs, always yields a trace that is causal and exactly-once, and
// the bus reaches quiescence (no stuck hold-back entries, no pending
// acknowledgments).
//
// This is the executable form of the theorem's "easy" direction plus
// the implementation's reliability contract, swept across topologies
// and seeds.
#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using workload::ChatterAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;

enum class Topology { kFlat, kBus, kDaisy, kTree };

domains::MomConfig MakeTopology(Topology topology) {
  switch (topology) {
    case Topology::kFlat: return domains::topologies::Flat(6);
    case Topology::kBus: return domains::topologies::Bus(3, 3);
    case Topology::kDaisy: return domains::topologies::Daisy(3, 4);
    case Topology::kTree: return domains::topologies::Tree(2, 4, 2);
  }
  return {};
}

const char* Name(Topology topology) {
  switch (topology) {
    case Topology::kFlat: return "flat";
    case Topology::kBus: return "bus";
    case Topology::kDaisy: return "daisy";
    case Topology::kTree: return "tree";
  }
  return "?";
}

class RandomTraffic
    : public ::testing::TestWithParam<
          std::tuple<Topology, std::uint64_t, bool>> {};

TEST_P(RandomTraffic, CausalExactlyOnceQuiescent) {
  const auto& [topology, seed, with_costs] = GetParam();
  auto config = MakeTopology(topology);

  SimHarnessOptions options;
  options.simulate_processing_costs = with_costs;
  SimHarness harness(config, options);

  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(
                        1, std::make_unique<ChatterAgent>(
                               seed * 1000 + id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Several independent chat storms, plus direct injected traffic from
  // every server (same-sender ordering pressure).
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          ChatterAgent::MakeChatPayload(5))
                    .ok());
    for (std::uint32_t burst = 0; burst < 3; ++burst) {
      const auto dest = config.servers[(id.value() * 7 + burst * 3 + 1) %
                                       config.servers.size()];
      ASSERT_TRUE(harness.Send(id, 1, dest, 1, workload::kChat,
                               ChatterAgent::MakeChatPayload(1))
                      .ok());
    }
  }
  harness.Run();

  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal()) << Name(topology) << " seed " << seed << ": "
                               << report.violations.front().description;
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
  EXPECT_EQ(report.messages_sent, report.messages_delivered);
  EXPECT_GT(report.messages_sent, 4u * config.servers.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RandomTraffic,
    ::testing::Combine(::testing::Values(Topology::kFlat, Topology::kBus,
                                         Topology::kDaisy, Topology::kTree),
                       ::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(Name(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_costs" : "_fast");
    });

// Deterministic replay: the same topology and seeds produce the exact
// same trace, event for event.
TEST(RandomTraffic, FullyDeterministic) {
  auto run = [] {
    auto config = domains::topologies::Bus(2, 3);
    SimHarnessOptions options;
    options.simulate_processing_costs = true;
    SimHarness harness(config, options);
    std::vector<AgentId> peers;
    for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
    EXPECT_TRUE(harness
                    .Init([&](ServerId id, mom::AgentServer& server) {
                      server.AttachAgent(1, std::make_unique<ChatterAgent>(
                                                id.value() + 7, peers));
                    })
                    .ok());
    EXPECT_TRUE(harness.BootAll().ok());
    for (ServerId id : config.servers) {
      (void)harness.Send(id, 1, id, 1, workload::kChat,
                         ChatterAgent::MakeChatPayload(4));
    }
    harness.Run();
    return harness.trace().Snapshot();
  };
  const causality::Trace first = run();
  const causality::Trace second = run();
  ASSERT_EQ(first.size(), second.size());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace cmom
