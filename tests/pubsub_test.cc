// Tests for the topic-based publish/subscribe layer: fan-out, durable
// subscriptions, per-topic total order, and global causal order across
// topics on a multi-domain bus.
#include "pubsub/topic.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom::pubsub {
namespace {

using workload::SimHarness;
using workload::SimHarnessOptions;

SimHarnessOptions FastOptions() {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  return options;
}

// Records the events it receives, in order.
class RecordingSubscriber final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    auto event = DecodeEvent(message);
    if (event.ok()) events_.push_back(std::move(event).value());
  }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
};

constexpr std::uint32_t kTopicLocal = 10;
constexpr std::uint32_t kSubLocal = 11;
constexpr std::uint32_t kPubLocal = 12;

TEST(PubSub, PayloadCodecsRoundTrip) {
  const AgentId id{ServerId(3), 7};
  EXPECT_EQ(DecodeAgentIdPayload(EncodeAgentIdPayload(id)).value(), id);
}

TEST(PubSub, FanOutToAllSubscribers) {
  // Topic on S0 (backbone router); subscribers on S1, S4, S5 across
  // two leaf domains.
  auto config = domains::topologies::Bus(2, 3);
  SimHarness harness(config, FastOptions());
  std::vector<RecordingSubscriber*> subs;
  TopicAgent* topic = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent = std::make_unique<TopicAgent>();
                      topic = agent.get();
                      server.AttachAgent(kTopicLocal, std::move(agent));
                    }
                    if (id == ServerId(1) || id == ServerId(4) ||
                        id == ServerId(5)) {
                      auto agent = std::make_unique<RecordingSubscriber>();
                      subs.push_back(agent.get());
                      server.AttachAgent(kSubLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  const AgentId topic_id{ServerId(0), kTopicLocal};
  for (ServerId sub_server : {ServerId(1), ServerId(4), ServerId(5)}) {
    ASSERT_TRUE(Subscribe(harness.server(sub_server),
                          AgentId{sub_server, kSubLocal}, topic_id)
                    .ok());
  }
  harness.Run();
  ASSERT_NE(topic, nullptr);
  EXPECT_EQ(topic->subscribers().size(), 3u);

  ASSERT_TRUE(Publish(harness.server(ServerId(1)),
                      AgentId{ServerId(1), kPubLocal}, topic_id, "tick",
                      Bytes{42})
                  .ok());
  harness.Run();
  for (RecordingSubscriber* sub : subs) {
    ASSERT_EQ(sub->events().size(), 1u);
    EXPECT_EQ(sub->events()[0].name, "tick");
    EXPECT_EQ(sub->events()[0].body, Bytes{42});
    EXPECT_EQ(sub->events()[0].publisher,
              (AgentId{ServerId(1), kPubLocal}));
  }
}

TEST(PubSub, DuplicateSubscribeIsIdempotent) {
  SimHarness harness(domains::topologies::Flat(2), FastOptions());
  TopicAgent* topic = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent = std::make_unique<TopicAgent>();
                      topic = agent.get();
                      server.AttachAgent(kTopicLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  const AgentId topic_id{ServerId(0), kTopicLocal};
  const AgentId sub{ServerId(1), kSubLocal};
  ASSERT_TRUE(Subscribe(harness.server(ServerId(1)), sub, topic_id).ok());
  ASSERT_TRUE(Subscribe(harness.server(ServerId(1)), sub, topic_id).ok());
  harness.Run();
  EXPECT_EQ(topic->subscribers().size(), 1u);
}

TEST(PubSub, UnsubscribeStopsDelivery) {
  SimHarness harness(domains::topologies::Flat(2), FastOptions());
  TopicAgent* topic = nullptr;
  RecordingSubscriber* sub = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent = std::make_unique<TopicAgent>();
                      topic = agent.get();
                      server.AttachAgent(kTopicLocal, std::move(agent));
                    } else {
                      auto agent = std::make_unique<RecordingSubscriber>();
                      sub = agent.get();
                      server.AttachAgent(kSubLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  const AgentId topic_id{ServerId(0), kTopicLocal};
  const AgentId sub_id{ServerId(1), kSubLocal};
  ASSERT_TRUE(Subscribe(harness.server(ServerId(1)), sub_id, topic_id).ok());
  harness.Run();
  ASSERT_TRUE(Publish(harness.server(ServerId(0)),
                      AgentId{ServerId(0), kPubLocal}, topic_id, "one")
                  .ok());
  harness.Run();
  ASSERT_TRUE(
      Unsubscribe(harness.server(ServerId(1)), sub_id, topic_id).ok());
  harness.Run();
  ASSERT_TRUE(Publish(harness.server(ServerId(0)),
                      AgentId{ServerId(0), kPubLocal}, topic_id, "two")
                  .ok());
  harness.Run();
  ASSERT_EQ(sub->events().size(), 1u);
  EXPECT_EQ(sub->events()[0].name, "one");
  EXPECT_TRUE(topic->subscribers().empty());
}

TEST(PubSub, PerTopicTotalOrderAcrossPublishers) {
  // Two publishers race; every subscriber must see the same order.
  auto config = domains::topologies::Bus(2, 3);
  SimHarness harness(config, FastOptions());
  std::vector<RecordingSubscriber*> subs;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      server.AttachAgent(kTopicLocal,
                                         std::make_unique<TopicAgent>());
                    }
                    if (id == ServerId(2) || id == ServerId(5)) {
                      auto agent = std::make_unique<RecordingSubscriber>();
                      subs.push_back(agent.get());
                      server.AttachAgent(kSubLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  const AgentId topic_id{ServerId(0), kTopicLocal};
  for (ServerId sub_server : {ServerId(2), ServerId(5)}) {
    ASSERT_TRUE(Subscribe(harness.server(sub_server),
                          AgentId{sub_server, kSubLocal}, topic_id)
                    .ok());
  }
  harness.Run();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(Publish(harness.server(ServerId(1)),
                        AgentId{ServerId(1), kPubLocal}, topic_id,
                        "a" + std::to_string(i))
                    .ok());
    ASSERT_TRUE(Publish(harness.server(ServerId(4)),
                        AgentId{ServerId(4), kPubLocal}, topic_id,
                        "b" + std::to_string(i))
                    .ok());
  }
  harness.Run();
  ASSERT_EQ(subs.size(), 2u);
  ASSERT_EQ(subs[0]->events().size(), 10u);
  ASSERT_EQ(subs[1]->events().size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(subs[0]->events()[i].name, subs[1]->events()[i].name)
        << "diverged at " << i;
  }
}

// An agent that, on a "go" message, subscribes to a topic and then
// publishes from inside reactions -- the in-reaction helper variants.
class ReactivePublisher final : public mom::Agent {
 public:
  explicit ReactivePublisher(AgentId topic) : topic_(topic) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    if (message.subject == "go") {
      SubscribeFrom(ctx, topic_);
      PublishFrom(ctx, topic_, "from-reaction", Bytes{7});
      return;
    }
    auto event = DecodeEvent(message);
    if (event.ok()) ++events_;
  }
  [[nodiscard]] std::size_t events() const { return events_; }

 private:
  AgentId topic_;
  std::size_t events_ = 0;
};

TEST(PubSub, InReactionSubscribeAndPublish) {
  SimHarness harness(domains::topologies::Flat(2), FastOptions());
  ReactivePublisher* publisher = nullptr;
  const AgentId topic_id{ServerId(0), kTopicLocal};
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      server.AttachAgent(kTopicLocal,
                                         std::make_unique<TopicAgent>());
                    } else {
                      auto agent =
                          std::make_unique<ReactivePublisher>(topic_id);
                      publisher = agent.get();
                      server.AttachAgent(kSubLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(1), kSubLocal, ServerId(1), kSubLocal,
                           "go")
                  .ok());
  harness.Run();
  // The subscribe and the publish left the same reaction atomically and
  // in order, so the publisher received its own event.
  ASSERT_NE(publisher, nullptr);
  EXPECT_EQ(publisher->events(), 1u);
}

TEST(PubSub, SubscriberListSurvivesTopicCrash) {
  SimHarness harness(domains::topologies::Flat(2), FastOptions());
  RecordingSubscriber* sub = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      server.AttachAgent(kTopicLocal,
                                         std::make_unique<TopicAgent>());
                    } else {
                      auto agent = std::make_unique<RecordingSubscriber>();
                      sub = agent.get();
                      server.AttachAgent(kSubLocal, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  const AgentId topic_id{ServerId(0), kTopicLocal};
  ASSERT_TRUE(Subscribe(harness.server(ServerId(1)),
                        AgentId{ServerId(1), kSubLocal}, topic_id)
                  .ok());
  harness.Run();

  harness.Crash(ServerId(0));
  ASSERT_TRUE(harness.Restart(ServerId(0)).ok());
  harness.Run();

  ASSERT_TRUE(Publish(harness.server(ServerId(0)),
                      AgentId{ServerId(0), kPubLocal}, topic_id,
                      "after-crash")
                  .ok());
  harness.Run();
  ASSERT_NE(sub, nullptr);
  ASSERT_EQ(sub->events().size(), 1u);
  EXPECT_EQ(sub->events()[0].name, "after-crash");
}

}  // namespace
}  // namespace cmom::pubsub
