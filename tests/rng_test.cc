// Unit and property tests for the deterministic RNG (common/rng.h).
#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

namespace cmom {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(12345), b(12345);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() != b.NextU64()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBelow(bound), bound);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, BoolRespectsProbabilityRoughly) {
  Rng rng(4);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.NextBool(0.25)) ++trues;
  }
  EXPECT_NEAR(trues, 2500, 200);
}

TEST(Rng, ZipfSkewsTowardSmallRanks) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.NextZipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[9]);
  EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 10000);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(5);
  std::vector<int> items(50);
  std::iota(items.begin(), items.end(), 0);
  auto original = items;
  rng.Shuffle(items);
  EXPECT_NE(items, original);  // astronomically unlikely to be identity
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(42);
  Rng child = parent.Fork();
  // Parent's continued stream should not equal the child's.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextU64() == child.NextU64()) ++same;
  }
  EXPECT_LT(same, 5);
}

// Determinism sweep: the same seed must reproduce the same sequence
// across test invocations (hard-coded golden values guard against
// accidental algorithm changes that would break replayability).
TEST(Rng, GoldenSequence) {
  Rng rng(0);
  EXPECT_EQ(rng.NextU64(), 7960286522194355700ull);
  EXPECT_EQ(rng.NextU64(), 487617019471545679ull);
  EXPECT_EQ(rng.NextU64(), 17909611376780542444ull);
}

class RngRangeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngRangeSweep, UniformishOverSmallBound) {
  const std::uint64_t bound = GetParam();
  Rng rng(bound * 31 + 1);
  std::vector<int> counts(bound, 0);
  const int samples = 2000 * static_cast<int>(bound);
  for (int i = 0; i < samples; ++i) ++counts[rng.NextBelow(bound)];
  for (std::uint64_t v = 0; v < bound; ++v) {
    EXPECT_NEAR(counts[v], 2000, 350) << "bound " << bound << " value " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, RngRangeSweep,
                         ::testing::Values(2, 3, 5, 7, 16));

}  // namespace
}  // namespace cmom
