// Acceptance sweep for transport-level fault injection: a seeded
// FaultyNetwork (frame drops, duplicates, delay, forced disconnects)
// over BOTH real transports -- in-process queues and TCP loopback
// sockets -- must leave exactly-once causal delivery intact on a 3x3
// bus.  The wall-clock counterpart of the simulated fault sweeps in
// fault_injection_test.cc, and the test the supervised TCP transport
// (reconnect + outage buffering) exists to pass.
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "causality/checker.h"
#include "common/seed.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "net/faulty_network.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"
#include "workload/threaded_harness.h"

namespace cmom {
namespace {

using workload::ChatterAgent;

// The fault mix every sweep runs: at or above the floor the acceptance
// criteria demand (drop >= 5%, duplicate >= 2%, forced disconnects).
net::FaultyNetworkOptions SweepFaults(std::uint64_t seed) {
  net::FaultyNetworkOptions fault;
  fault.model.drop_probability = 0.08;
  fault.model.duplicate_probability = 0.04;
  fault.model.jitter_probability = 0.15;
  fault.model.max_jitter = 10 * sim::kMillisecond;
  fault.disconnect_probability = 0.03;
  // CMOM_SEED overrides the sweep parameter for targeted replay.
  fault.seed = SeedFromEnv(seed, "transport_fault_sweep_test");
  return fault;
}

void CheckInjectionFloor(const net::FaultyNetworkStats& stats) {
  // The sweep must have actually exercised every fault class.
  EXPECT_GE(stats.frames_seen, 100u);
  EXPECT_GE(stats.frames_dropped, 5u);
  EXPECT_GE(stats.frames_duplicated, 2u);
  EXPECT_GE(stats.disconnects_forced, 3u);
}

class TransportFaultSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransportFaultSweep, InprocChatterStaysCausalAndExactlyOnce) {
  const std::uint64_t seed = GetParam();
  auto config = domains::topologies::Bus(3, 3);
  workload::ThreadedHarnessOptions options;
  options.retransmit_timeout_ns = 60ull * 1000 * 1000;
  options.fault = SweepFaults(seed);

  workload::ThreadedHarness harness(config, options);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(1, std::make_unique<ChatterAgent>(
                                              seed * 131 + id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          ChatterAgent::MakeChatPayload(4))
                    .ok());
  }
  harness.WaitQuiescent();

  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << (report.violations.empty()
              ? ""
              : report.violations.front().description);
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_GT(report.messages_delivered, config.servers.size());
  ASSERT_NE(harness.faulty_network(), nullptr);
  CheckInjectionFloor(harness.faulty_network()->stats());
}

// TCP cluster with the fault decorator between the servers and the real
// sockets.  Member order is the destruction contract: servers first,
// then endpoints, then the runtime (before the decorator, so no delay
// callback outlives it), then the decorator, then the inner network.
struct FaultyTcpCluster {
  domains::Deployment deployment;
  net::TcpNetwork tcp;
  std::unique_ptr<net::FaultyNetwork> faulty;
  net::ThreadRuntime runtime;
  causality::TraceRecorder trace;
  std::vector<std::unique_ptr<mom::InMemoryStore>> stores;
  std::vector<std::unique_ptr<net::Endpoint>> endpoints;
  std::vector<std::unique_ptr<mom::AgentServer>> servers;

  FaultyTcpCluster(const domains::MomConfig& config, std::uint16_t base_port,
                   net::FaultyNetworkOptions fault)
      : deployment(domains::Deployment::Create(config).value()),
        tcp(base_port) {
    faulty = std::make_unique<net::FaultyNetwork>(tcp, fault, &runtime);
  }

  ~FaultyTcpCluster() {
    for (auto& server : servers) server->Shutdown();
  }

  void Build(
      const std::function<void(ServerId, mom::AgentServer&)>& installer) {
    for (ServerId id : deployment.servers()) {
      endpoints.push_back(faulty->CreateEndpoint(id).value());
      stores.push_back(std::make_unique<mom::InMemoryStore>());
      mom::AgentServerOptions options;
      options.trace = &trace;
      options.retransmit_timeout_ns = 100ull * 1000 * 1000;
      servers.push_back(std::make_unique<mom::AgentServer>(
          deployment, id, endpoints.back().get(), &runtime,
          stores.back().get(), options));
      if (installer) installer(id, *servers.back());
    }
    for (auto& server : servers) ASSERT_TRUE(server->Boot().ok());
  }

  void WaitQuiescent() {
    int stable = 0;
    while (stable < 3) {
      bool idle = faulty->pending_delayed() == 0;
      for (auto& server : servers) {
        if (!server->Idle() || server->queue_out_size() != 0 ||
            server->holdback_size() != 0) {
          idle = false;
          break;
        }
      }
      // A late (duplicate) ACK may still sit in a supervised outbox
      // waiting out a reconnect; require the transport drained too.
      for (auto& endpoint : endpoints) {
        if (endpoint->stats().outbox_frames != 0) {
          idle = false;
          break;
        }
      }
      stable = idle ? stable + 1 : 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
};

TEST_P(TransportFaultSweep, TcpChatterStaysCausalAndExactlyOnce) {
  const std::uint64_t seed = GetParam();
  auto config = domains::topologies::Bus(3, 3);  // 9 servers
  const std::uint16_t base_port =
      static_cast<std::uint16_t>(24000 + 100 * (seed % 8));
  FaultyTcpCluster cluster(config, base_port, SweepFaults(seed));
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  cluster.Build([&](ServerId id, mom::AgentServer& server) {
    server.AttachAgent(1, std::make_unique<ChatterAgent>(
                              seed * 131 + id.value(), peers));
  });
  for (ServerId id : config.servers) {
    ASSERT_TRUE(cluster.servers[id.value()]
                    ->SendMessage(AgentId{id, 1}, AgentId{id, 1},
                                  workload::kChat,
                                  ChatterAgent::MakeChatPayload(4))
                    .ok());
  }

  // On top of the probabilistic disconnects, sever live connections by
  // hand while the storm is in flight: at least three forced disconnect
  // events are guaranteed regardless of the RNG.
  for (int round = 0; round < 3; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    for (std::size_t i = 0; i < cluster.endpoints.size(); ++i) {
      const std::size_t next = (i + 1) % cluster.endpoints.size();
      cluster.endpoints[i]->Disconnect(
          ServerId(static_cast<std::uint16_t>(next)));
    }
  }
  cluster.WaitQuiescent();

  causality::CausalityChecker checker(
      std::vector<ServerId>(config.servers.begin(), config.servers.end()));
  const causality::Trace trace = cluster.trace.Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << (report.violations.empty()
              ? ""
              : report.violations.front().description);
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_GT(report.messages_delivered, config.servers.size());
  CheckInjectionFloor(cluster.faulty->stats());

  // The supervised transport had to reconnect around the injected
  // disconnects without losing buffered frames.
  net::TransportStats total;
  for (auto& endpoint : cluster.endpoints) {
    const net::TransportStats stats = endpoint->stats();
    total.reconnects += stats.reconnects;
    total.forced_disconnects += stats.forced_disconnects;
    total.frames_buffered += stats.frames_buffered;
    total.outbox_frames += stats.outbox_frames;
  }
  EXPECT_GE(total.forced_disconnects, 3u);
  EXPECT_GE(total.reconnects, 1u);
  EXPECT_EQ(total.outbox_frames, 0u);  // everything flushed
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportFaultSweep, ::testing::Values(1, 2),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cmom
