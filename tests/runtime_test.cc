// Tests for the time/deferred-execution runtimes.
#include "net/runtime.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace cmom::net {
namespace {

TEST(SimRuntime, NowTracksSimulator) {
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  EXPECT_EQ(runtime.NowNs(), 0u);
  simulator.ScheduleAt(500, [] {});
  simulator.RunToCompletion();
  EXPECT_EQ(runtime.NowNs(), 500u);
}

TEST(SimRuntime, AfterDefersOntoTheEventLoop) {
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  std::vector<std::uint64_t> fired_at;
  runtime.After(100, [&] { fired_at.push_back(simulator.now()); });
  runtime.After(50, [&] { fired_at.push_back(simulator.now()); });
  EXPECT_TRUE(fired_at.empty());  // never inline
  simulator.RunToCompletion();
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{50, 100}));
}

TEST(SimRuntime, EqualDelaysFireInFifoOrder) {
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    runtime.After(10, [&order, i] { order.push_back(i); });
  }
  simulator.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadRuntime, NowIsMonotonic) {
  ThreadRuntime runtime;
  const std::uint64_t a = runtime.NowNs();
  const std::uint64_t b = runtime.NowNs();
  EXPECT_LE(a, b);
}

TEST(ThreadRuntime, AfterFiresApproximatelyOnTime) {
  ThreadRuntime runtime;
  std::mutex mutex;
  std::condition_variable cv;
  bool fired = false;
  const std::uint64_t start = runtime.NowNs();
  std::uint64_t fired_at = 0;
  runtime.After(20 * 1000 * 1000, [&] {  // 20 ms
    std::lock_guard lock(mutex);
    fired = true;
    fired_at = runtime.NowNs();
    cv.notify_one();
  });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return fired; }));
  EXPECT_GE(fired_at - start, 20ull * 1000 * 1000);
  EXPECT_LT(fired_at - start, 2ull * 1000 * 1000 * 1000);
}

TEST(ThreadRuntime, MultipleTimersAllFire) {
  ThreadRuntime runtime;
  std::atomic<int> fired{0};
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < 10; ++i) {
    runtime.After(static_cast<std::uint64_t>(i) * 1000 * 1000, [&] {
      if (++fired == 10) {
        // Notify under the lock: the waiter may only destroy the cv
        // after notify_one has returned.
        std::lock_guard lock(mutex);
        cv.notify_one();
      }
    });
  }
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return fired.load() == 10; }));
}

TEST(ThreadRuntime, DestructionWithPendingTimersIsSafe) {
  // A timer far in the future must not block or crash teardown.
  auto runtime = std::make_unique<ThreadRuntime>();
  runtime->After(3600ull * 1000 * 1000 * 1000, [] { ADD_FAILURE(); });
  runtime.reset();  // must return promptly without firing
  SUCCEED();
}

TEST(Executor, SimRuntimeHasNone) {
  // The deterministic runtime cannot host real parallelism: the engine
  // falls back to inline execution (and bit-identical traces).
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  EXPECT_EQ(runtime.MakeExecutor(4), nullptr);
}

TEST(Executor, ThreadRuntimeBuildsRequestedLanes) {
  ThreadRuntime runtime;
  auto executor = runtime.MakeExecutor(3);
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->worker_count(), 3u);
  // Degenerate request still yields a working single lane.
  EXPECT_EQ(runtime.MakeExecutor(0)->worker_count(), 1u);
}

TEST(Executor, LanePreservesFifoOrder) {
  // The per-agent ordering guarantee of the sharded engine reduces to
  // this: one lane runs its tasks strictly in Post() order.
  ThreadPoolExecutor executor(4);
  std::vector<int> order;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  for (int i = 0; i < 200; ++i) {
    executor.Post(2, [&, i] {
      std::lock_guard lock(mutex);
      order.push_back(i);
      if (i == 199) {
        done = true;
        cv.notify_one();
      }
    });
  }
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, LanesRunConcurrently) {
  // Lane 1 can only finish if lane 0 is genuinely a different thread:
  // lane 0 blocks until lane 1's task has started.
  ThreadPoolExecutor executor(2);
  std::mutex mutex;
  std::condition_variable cv;
  bool lane1_started = false;
  bool lane0_finished = false;
  executor.Post(0, [&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return lane1_started; });
    lane0_finished = true;
    cv.notify_all();
  });
  executor.Post(1, [&] {
    std::lock_guard lock(mutex);
    lane1_started = true;
    cv.notify_all();
  });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return lane0_finished; }));
}

TEST(Executor, PendingCountSeesQueuedTasks) {
  ThreadPoolExecutor executor(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  bool blocked = false;
  executor.Post(0, [&] {
    std::unique_lock lock(mutex);
    blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(5), [&] { return blocked; }));
  }
  for (int i = 0; i < 5; ++i) executor.Post(0, [] {});
  // Lanes wrap modulo worker_count, so lane 7 is lane 0 here.
  EXPECT_EQ(executor.PendingCount(7), 5u);
  {
    std::lock_guard lock(mutex);
    release = true;
    cv.notify_all();
  }
}

TEST(Executor, FullRingSpillsToOverflowAndPreservesFifo) {
  // Ring capacity 4; the consumer is parked on a blocked task while 64
  // more are posted, so most spill past the ring into the overflow
  // queue.  Post must never block (a blocking Post would deadlock the
  // commit stage against the server lock), and the drain must replay
  // ring + overflow in exact post order.
  ThreadPoolExecutor executor(1, /*ring_capacity=*/4);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  bool blocked = false;
  bool done = false;
  std::vector<int> order;
  executor.Post(0, [&] {
    std::unique_lock lock(mutex);
    blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(5), [&] { return blocked; }));
  }
  for (int i = 0; i < 64; ++i) {
    executor.Post(0, [&, i] {
      std::lock_guard lock(mutex);
      order.push_back(i);
      if (i == 63) {
        done = true;
        cv.notify_all();
      }
    });
  }
  // O(1) read off the ring indices + overflow count, no lane lock.
  EXPECT_EQ(executor.PendingCount(0), 64u);
  {
    std::lock_guard lock(mutex);
    release = true;
    cv.notify_all();
  }
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  ASSERT_EQ(order.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
  const Executor::LaneStats stats = executor.GetLaneStats(0);
  EXPECT_EQ(stats.posts, 65u);
  EXPECT_GT(stats.overflow_posts, 0u);
  EXPECT_GT(stats.stall_ns.count, 0u);
}

TEST(Executor, ConcurrentProducersKeepPerProducerFifo) {
  // Four producer threads hammer one small lane concurrently, so the
  // run exercises ring wrap, CAS contention on the tail, overflow
  // spill and the re-splice back into the ring.  The total must match
  // and each producer's tasks must run in its own post order (the
  // engine's per-agent FIFO reduces to exactly this).  The TSan CI job
  // runs this test for the memory-ordering proof.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  ThreadPoolExecutor executor(1, /*ring_capacity=*/8);
  std::array<std::vector<int>, kProducers> seen;
  std::atomic<int> remaining{kProducers * kPerProducer};
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        executor.Post(0, [&, p, i] {
          // Single consumer thread: no lock needed for seen[].
          seen[static_cast<std::size_t>(p)].push_back(i);
          if (remaining.fetch_sub(1) == 1) {
            std::lock_guard lock(mutex);
            cv.notify_all();
          }
        });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                          [&] { return remaining.load() == 0; }));
  lock.unlock();
  for (int p = 0; p < kProducers; ++p) {
    const std::vector<int>& mine = seen[static_cast<std::size_t>(p)];
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(kPerProducer));
    for (int i = 0; i < kPerProducer; ++i) EXPECT_EQ(mine[i], i);
  }
  const Executor::LaneStats stats = executor.GetLaneStats(0);
  EXPECT_EQ(stats.posts,
            static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

}  // namespace
}  // namespace cmom::net
