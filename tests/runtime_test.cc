// Tests for the time/deferred-execution runtimes.
#include "net/runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace cmom::net {
namespace {

TEST(SimRuntime, NowTracksSimulator) {
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  EXPECT_EQ(runtime.NowNs(), 0u);
  simulator.ScheduleAt(500, [] {});
  simulator.RunToCompletion();
  EXPECT_EQ(runtime.NowNs(), 500u);
}

TEST(SimRuntime, AfterDefersOntoTheEventLoop) {
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  std::vector<std::uint64_t> fired_at;
  runtime.After(100, [&] { fired_at.push_back(simulator.now()); });
  runtime.After(50, [&] { fired_at.push_back(simulator.now()); });
  EXPECT_TRUE(fired_at.empty());  // never inline
  simulator.RunToCompletion();
  EXPECT_EQ(fired_at, (std::vector<std::uint64_t>{50, 100}));
}

TEST(SimRuntime, EqualDelaysFireInFifoOrder) {
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    runtime.After(10, [&order, i] { order.push_back(i); });
  }
  simulator.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadRuntime, NowIsMonotonic) {
  ThreadRuntime runtime;
  const std::uint64_t a = runtime.NowNs();
  const std::uint64_t b = runtime.NowNs();
  EXPECT_LE(a, b);
}

TEST(ThreadRuntime, AfterFiresApproximatelyOnTime) {
  ThreadRuntime runtime;
  std::mutex mutex;
  std::condition_variable cv;
  bool fired = false;
  const std::uint64_t start = runtime.NowNs();
  std::uint64_t fired_at = 0;
  runtime.After(20 * 1000 * 1000, [&] {  // 20 ms
    std::lock_guard lock(mutex);
    fired = true;
    fired_at = runtime.NowNs();
    cv.notify_one();
  });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return fired; }));
  EXPECT_GE(fired_at - start, 20ull * 1000 * 1000);
  EXPECT_LT(fired_at - start, 2ull * 1000 * 1000 * 1000);
}

TEST(ThreadRuntime, MultipleTimersAllFire) {
  ThreadRuntime runtime;
  std::atomic<int> fired{0};
  std::mutex mutex;
  std::condition_variable cv;
  for (int i = 0; i < 10; ++i) {
    runtime.After(static_cast<std::uint64_t>(i) * 1000 * 1000, [&] {
      if (++fired == 10) {
        // Notify under the lock: the waiter may only destroy the cv
        // after notify_one has returned.
        std::lock_guard lock(mutex);
        cv.notify_one();
      }
    });
  }
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return fired.load() == 10; }));
}

TEST(ThreadRuntime, DestructionWithPendingTimersIsSafe) {
  // A timer far in the future must not block or crash teardown.
  auto runtime = std::make_unique<ThreadRuntime>();
  runtime->After(3600ull * 1000 * 1000 * 1000, [] { ADD_FAILURE(); });
  runtime.reset();  // must return promptly without firing
  SUCCEED();
}

TEST(Executor, SimRuntimeHasNone) {
  // The deterministic runtime cannot host real parallelism: the engine
  // falls back to inline execution (and bit-identical traces).
  sim::Simulator simulator;
  SimRuntime runtime(simulator);
  EXPECT_EQ(runtime.MakeExecutor(4), nullptr);
}

TEST(Executor, ThreadRuntimeBuildsRequestedLanes) {
  ThreadRuntime runtime;
  auto executor = runtime.MakeExecutor(3);
  ASSERT_NE(executor, nullptr);
  EXPECT_EQ(executor->worker_count(), 3u);
  // Degenerate request still yields a working single lane.
  EXPECT_EQ(runtime.MakeExecutor(0)->worker_count(), 1u);
}

TEST(Executor, LanePreservesFifoOrder) {
  // The per-agent ordering guarantee of the sharded engine reduces to
  // this: one lane runs its tasks strictly in Post() order.
  ThreadPoolExecutor executor(4);
  std::vector<int> order;
  std::mutex mutex;
  std::condition_variable cv;
  bool done = false;
  for (int i = 0; i < 200; ++i) {
    executor.Post(2, [&, i] {
      std::lock_guard lock(mutex);
      order.push_back(i);
      if (i == 199) {
        done = true;
        cv.notify_one();
      }
    });
  }
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] { return done; }));
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
}

TEST(Executor, LanesRunConcurrently) {
  // Lane 1 can only finish if lane 0 is genuinely a different thread:
  // lane 0 blocks until lane 1's task has started.
  ThreadPoolExecutor executor(2);
  std::mutex mutex;
  std::condition_variable cv;
  bool lane1_started = false;
  bool lane0_finished = false;
  executor.Post(0, [&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return lane1_started; });
    lane0_finished = true;
    cv.notify_all();
  });
  executor.Post(1, [&] {
    std::lock_guard lock(mutex);
    lane1_started = true;
    cv.notify_all();
  });
  std::unique_lock lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return lane0_finished; }));
}

TEST(Executor, PendingCountSeesQueuedTasks) {
  ThreadPoolExecutor executor(1);
  std::mutex mutex;
  std::condition_variable cv;
  bool release = false;
  bool blocked = false;
  executor.Post(0, [&] {
    std::unique_lock lock(mutex);
    blocked = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(
        cv.wait_for(lock, std::chrono::seconds(5), [&] { return blocked; }));
  }
  for (int i = 0; i < 5; ++i) executor.Post(0, [] {});
  // Lanes wrap modulo worker_count, so lane 7 is lane 0 here.
  EXPECT_EQ(executor.PendingCount(7), 5u);
  {
    std::lock_guard lock(mutex);
    release = true;
    cv.notify_all();
  }
}

}  // namespace
}  // namespace cmom::net
