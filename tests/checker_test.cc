// Tests for the offline causality oracle on hand-built traces.
#include "causality/checker.h"

#include <gtest/gtest.h>

namespace cmom::causality {
namespace {

ServerId S(std::uint16_t v) { return ServerId(v); }
AgentId A(std::uint16_t server, std::uint32_t local) {
  return AgentId{S(server), local};
}
MessageId M(std::uint16_t origin, std::uint64_t seq) {
  return MessageId{S(origin), seq};
}

TraceEvent Send(MessageId id, std::uint16_t at, std::uint16_t dest) {
  return {EventKind::kSend, id, S(at), S(dest), A(at, 1), A(dest, 1)};
}
TraceEvent Deliver(MessageId id, std::uint16_t at, std::uint16_t origin) {
  return {EventKind::kDeliver, id, S(at), S(at), A(origin, 1), A(at, 1)};
}

CausalityChecker MakeChecker(std::uint16_t n) {
  std::vector<ServerId> servers;
  for (std::uint16_t i = 0; i < n; ++i) servers.push_back(S(i));
  return CausalityChecker(std::move(servers));
}

TEST(Checker, EmptyTraceIsCausal) {
  auto report = MakeChecker(2).CheckCausalDelivery({});
  EXPECT_TRUE(report.causal());
  EXPECT_EQ(report.messages_sent, 0u);
}

TEST(Checker, SameSenderFifoViolationDetected) {
  // S0 sends m1 then m2 to S1; S1 delivers m2 first.
  Trace trace = {
      Send(M(0, 1), 0, 1),
      Send(M(0, 2), 0, 1),
      Deliver(M(0, 2), 1, 0),
      Deliver(M(0, 1), 1, 0),
  };
  auto report = MakeChecker(2).CheckCausalDelivery(trace);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].earlier, M(0, 1));
  EXPECT_EQ(report.violations[0].later, M(0, 2));
  EXPECT_EQ(report.violations[0].process, S(1));
}

TEST(Checker, SameSenderFifoOrderPasses) {
  Trace trace = {
      Send(M(0, 1), 0, 1),
      Send(M(0, 2), 0, 1),
      Deliver(M(0, 1), 1, 0),
      Deliver(M(0, 2), 1, 0),
  };
  EXPECT_TRUE(MakeChecker(2).CheckCausalDelivery(trace).causal());
}

TEST(Checker, TransitiveChainViolationDetected) {
  // The Figure 4(b) shape: S0 sends n to S2, then m1 to S1; S1 receives
  // m1 and sends m2 to S2.  n causally precedes m2, so delivering m2
  // before n at S2 is a violation.
  Trace trace = {
      Send(M(0, 1), 0, 2),     // n
      Send(M(0, 2), 0, 1),     // m1
      Deliver(M(0, 2), 1, 0),  //
      Send(M(1, 1), 1, 2),     // m2 (after receiving m1)
      Deliver(M(1, 1), 2, 1),  // m2 before n: violation
      Deliver(M(0, 1), 2, 0),
  };
  auto report = MakeChecker(3).CheckCausalDelivery(trace);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].earlier, M(0, 1));
  EXPECT_EQ(report.violations[0].later, M(1, 1));
}

TEST(Checker, ConcurrentMessagesDeliverInAnyOrder) {
  // S0 and S1 send to S2 concurrently; either order is fine.
  Trace trace = {
      Send(M(0, 1), 0, 2),
      Send(M(1, 1), 1, 2),
      Deliver(M(1, 1), 2, 1),
      Deliver(M(0, 1), 2, 0),
  };
  EXPECT_TRUE(MakeChecker(3).CheckCausalDelivery(trace).causal());
}

TEST(Checker, ViolationRequiresSameDestination) {
  // Causally ordered messages to DIFFERENT processes have no delivery
  // order constraint.
  Trace trace = {
      Send(M(0, 1), 0, 1),
      Send(M(0, 2), 0, 2),
      Deliver(M(0, 2), 2, 0),
      Deliver(M(0, 1), 1, 0),
  };
  EXPECT_TRUE(MakeChecker(3).CheckCausalDelivery(trace).causal());
}

TEST(Checker, MaxViolationsCapsTheReport) {
  Trace trace;
  for (std::uint64_t i = 1; i <= 10; ++i) trace.push_back(Send(M(0, i), 0, 1));
  for (std::uint64_t i = 10; i >= 1; --i) {
    trace.push_back(Deliver(M(0, i), 1, 0));
  }
  auto report = MakeChecker(2).CheckCausalDelivery(trace, 3);
  EXPECT_EQ(report.violations.size(), 3u);
  EXPECT_FALSE(report.causal());
}

TEST(Checker, ExactlyOncePassesOnCleanTrace) {
  Trace trace = {
      Send(M(0, 1), 0, 1),
      Deliver(M(0, 1), 1, 0),
  };
  EXPECT_TRUE(MakeChecker(2).CheckExactlyOnce(trace).ok());
}

TEST(Checker, ExactlyOnceCatchesLoss) {
  Trace trace = {Send(M(0, 1), 0, 1)};
  const Status status = MakeChecker(2).CheckExactlyOnce(trace);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDataLoss);
}

TEST(Checker, ExactlyOnceCatchesDuplicateDelivery) {
  Trace trace = {
      Send(M(0, 1), 0, 1),
      Deliver(M(0, 1), 1, 0),
      Deliver(M(0, 1), 1, 0),
  };
  EXPECT_FALSE(MakeChecker(2).CheckExactlyOnce(trace).ok());
}

TEST(Checker, ExactlyOnceCatchesGhostDelivery) {
  Trace trace = {Deliver(M(0, 7), 1, 0)};
  EXPECT_FALSE(MakeChecker(2).CheckExactlyOnce(trace).ok());
}

TEST(Checker, ExactlyOnceCatchesDuplicateSend) {
  Trace trace = {Send(M(0, 1), 0, 1), Send(M(0, 1), 0, 1)};
  EXPECT_FALSE(MakeChecker(2).CheckExactlyOnce(trace).ok());
}

TEST(Checker, CountsSendsAndDeliveries) {
  Trace trace = {
      Send(M(0, 1), 0, 1),
      Send(M(0, 2), 0, 1),
      Deliver(M(0, 1), 1, 0),
  };
  auto report = MakeChecker(2).CheckCausalDelivery(trace);
  EXPECT_EQ(report.messages_sent, 2u);
  EXPECT_EQ(report.messages_delivered, 1u);
}

}  // namespace
}  // namespace cmom::causality
