// Full middleware over real TCP loopback sockets: the closest analogue
// of the paper's multi-host deployment.  Messages route across domains
// through causal router-servers, with the oracle checking the result.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "causality/checker.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"

namespace cmom {
namespace {

struct TcpCluster {
  domains::Deployment deployment;
  net::TcpNetwork network;
  net::ThreadRuntime runtime;
  causality::TraceRecorder trace;
  std::vector<std::unique_ptr<mom::InMemoryStore>> stores;
  std::vector<std::unique_ptr<net::Endpoint>> endpoints;
  std::vector<std::unique_ptr<mom::AgentServer>> servers;

  TcpCluster(const domains::MomConfig& config, std::uint16_t base_port)
      : deployment(domains::Deployment::Create(config).value()),
        network(base_port) {}

  void Build(
      const std::function<void(ServerId, mom::AgentServer&)>& installer) {
    for (ServerId id : deployment.servers()) {
      endpoints.push_back(network.CreateEndpoint(id).value());
      stores.push_back(std::make_unique<mom::InMemoryStore>());
      mom::AgentServerOptions options;
      options.trace = &trace;
      options.retransmit_timeout_ns = 200ull * 1000 * 1000;
      servers.push_back(std::make_unique<mom::AgentServer>(
          deployment, id, endpoints.back().get(), &runtime,
          stores.back().get(), options));
      if (installer) installer(id, *servers.back());
    }
    for (auto& server : servers) ASSERT_TRUE(server->Boot().ok());
  }

  mom::AgentServer& server(std::uint16_t id) { return *servers[id]; }

  void WaitQuiescent() {
    int stable = 0;
    while (stable < 3) {
      bool idle = true;
      for (auto& server : servers) {
        // Everything processed AND acknowledged: a frame may still sit
        // in a supervised outbox waiting out a reconnect backoff, in
        // which case its QueueOUT entry is unacknowledged too.
        if (!server->Idle() || server->queue_out_size() != 0 ||
            server->holdback_size() != 0) {
          idle = false;
          break;
        }
      }
      for (auto& endpoint : endpoints) {
        if (endpoint->stats().outbox_frames != 0) {
          idle = false;
          break;
        }
      }
      stable = idle ? stable + 1 : 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }

  void ShutdownAll() {
    for (auto& server : servers) server->Shutdown();
  }
};

TEST(TcpMom, RoutedCausalDeliveryOverLoopback) {
  // Bus(2,2): S0,S1 in leaf 1; S2,S3 in leaf 2; backbone {S0, S2}.
  TcpCluster cluster(domains::topologies::Bus(2, 2), 22100);
  workload::EchoAgent* echo = nullptr;
  cluster.Build([&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(3)) {
      auto agent = std::make_unique<workload::EchoAgent>();
      echo = agent.get();
      server.AttachAgent(1, std::move(agent));
    }
  });

  // S1 -> S3 crosses two routers; the pong comes all the way back.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.server(1)
                    .SendMessage(AgentId{ServerId(1), 7},
                                 AgentId{ServerId(3), 1}, workload::kPing)
                    .ok());
  }
  cluster.WaitQuiescent();
  EXPECT_EQ(echo->pings_seen(), 10u);

  causality::CausalityChecker checker(
      {ServerId(0), ServerId(1), ServerId(2), ServerId(3)});
  const causality::Trace trace = cluster.trace.Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_GE(cluster.server(0).stats().messages_forwarded, 10u);
  cluster.ShutdownAll();
}

TEST(TcpMom, ChatterOverLoopbackStaysCausal) {
  auto config = domains::topologies::Daisy(2, 3);  // 5 servers
  TcpCluster cluster(config, 22200);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  cluster.Build([&](ServerId id, mom::AgentServer& server) {
    server.AttachAgent(1, std::make_unique<workload::ChatterAgent>(
                              id.value() + 17, peers));
  });
  for (ServerId id : config.servers) {
    ASSERT_TRUE(cluster.server(id.value())
                    .SendMessage(AgentId{id, 1}, AgentId{id, 1},
                                 workload::kChat,
                                 workload::ChatterAgent::MakeChatPayload(4))
                    .ok());
  }
  cluster.WaitQuiescent();

  causality::CausalityChecker checker(
      std::vector<ServerId>(config.servers.begin(), config.servers.end()));
  const causality::Trace trace = cluster.trace.Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << (report.violations.empty()
              ? ""
              : report.violations.front().description);
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  cluster.ShutdownAll();
}

// Forced connection kills under routed traffic: the supervised
// transport reconnects and flushes its outage buffer, so the bus never
// loses or doubles a message even while every link is being severed.
TEST(TcpMom, RoutedDeliverySurvivesForcedDisconnects) {
  TcpCluster cluster(domains::topologies::Bus(2, 2), 22300);
  workload::EchoAgent* echo = nullptr;
  cluster.Build([&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(3)) {
      auto agent = std::make_unique<workload::EchoAgent>();
      echo = agent.get();
      server.AttachAgent(1, std::move(agent));
    }
  });

  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(cluster.server(1)
                    .SendMessage(AgentId{ServerId(1), 7},
                                 AgentId{ServerId(3), 1}, workload::kPing)
                    .ok());
    if (i % 5 == 2) {
      // Wait for this ping to land so the routing path's connections
      // are provably established before we sever them.
      while (echo->pings_seen() < static_cast<std::size_t>(i) + 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      // Sever every link of the routing path, both directions.
      for (std::uint16_t from = 0; from < 4; ++from) {
        for (std::uint16_t to = 0; to < 4; ++to) {
          if (from != to) {
            cluster.endpoints[from]->Disconnect(ServerId(to));
          }
        }
      }
    }
  }
  cluster.WaitQuiescent();
  EXPECT_EQ(echo->pings_seen(), 30u);

  causality::CausalityChecker checker(
      {ServerId(0), ServerId(1), ServerId(2), ServerId(3)});
  const causality::Trace trace = cluster.trace.Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());

  std::uint64_t forced = 0;
  std::uint64_t reconnects = 0;
  for (auto& endpoint : cluster.endpoints) {
    forced += endpoint->stats().forced_disconnects;
    reconnects += endpoint->stats().reconnects;
  }
  EXPECT_GE(forced, 3u);
  EXPECT_GE(reconnects, 1u);
  cluster.ShutdownAll();
}

}  // namespace
}  // namespace cmom
