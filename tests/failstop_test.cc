// Fail-stop durability: a server whose store refuses a commit must
// halt -- reject new work with a typed kFailStop status, emit nothing,
// accept nothing -- instead of logging and carrying on with state the
// disk never saw.  A restart over the same durable directory must then
// recover the exact pre-failure image, and retransmission must deliver
// what the failed transaction swallowed.
//
// The kFailStop assertions are the regression guard for the old
// log-and-continue behavior: under it the send after the injected
// failure succeeded and the durable image silently diverged.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "causality/checker.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/faulty_store.h"
#include "mom/file_store.h"
#include "net/sim_network.h"
#include "workload/agents.h"

namespace cmom {
namespace {

namespace fs = std::filesystem;

class FailStopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cmom_failstop_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(FailStopTest, CommitFailureHaltsServerAndRestartRecoversExactImage) {
  auto config = domains::topologies::Flat(2);
  auto deployment = domains::Deployment::Create(config).value();

  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});
  causality::TraceRecorder trace;

  auto endpoint0 = network.CreateEndpoint(ServerId(0)).value();
  auto endpoint1 = network.CreateEndpoint(ServerId(1)).value();
  auto store0 = mom::FileStore::Open(dir_ / "s0").value();
  auto store1 = mom::FileStore::Open(dir_ / "s1").value();
  // The victim's disk, behind the fault decorator.
  auto faulty1 = std::make_unique<mom::FaultyStore>(*store1);

  mom::AgentServerOptions options;
  options.trace = &trace;
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;

  workload::EchoAgent* echo = nullptr;
  auto server0 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(0), endpoint0.get(), &runtime, store0.get(),
      options);
  auto server1 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(1), endpoint1.get(), &runtime, faulty1.get(),
      options);
  {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    server1->AttachAgent(1, std::move(agent));
  }
  ASSERT_TRUE(server0->Boot().ok());
  ASSERT_TRUE(server1->Boot().ok());

  // Healthy traffic first, so the pre-failure image is non-trivial.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server0
                    ->SendMessage(AgentId{ServerId(0), 7},
                                  AgentId{ServerId(1), 1}, workload::kPing)
                    .ok());
  }
  simulator.RunToCompletion();
  EXPECT_EQ(echo->pings_seen(), 5u);
  ASSERT_TRUE(server1->health().ok());
  const Bytes image_before = server1->DebugImage();

  // Arm: the victim's very next commit reports ENOSPC.
  faulty1->FailAfterCommits(1);
  ASSERT_TRUE(server0
                  ->SendMessage(AgentId{ServerId(0), 7},
                                AgentId{ServerId(1), 1}, workload::kPing)
                  .ok());
  simulator.RunUntil(simulator.now() + 50ull * 1000 * 1000);

  // The victim halted on the failed commit...
  EXPECT_EQ(server1->health().code(), StatusCode::kFailStop);
  EXPECT_EQ(faulty1->stats().faults_injected, 1u);
  // ...and rejects new work with the typed status (this line fails
  // against log-and-continue, which would accept the send).
  const auto rejected = server1->SendMessage(
      AgentId{ServerId(1), 1}, AgentId{ServerId(0), 7}, workload::kPing);
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailStop);
  // The swallowed message is still unacknowledged at the sender.
  EXPECT_EQ(server0->queue_out_size(), 1u);
  // The oracle saw no phantom events from the failed transaction: the
  // victim's trace stops at the five committed deliveries.
  EXPECT_EQ(echo->pings_seen(), 5u);

  // Crash the halted incarnation (Halt per harness convention: joins
  // workers, bars timers) and reboot from the same durable directory.
  server1->Halt();
  server1.reset();
  faulty1.reset();
  store1.reset();

  store1 = mom::FileStore::Open(dir_ / "s1").value();
  server1 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(1), endpoint1.get(), &runtime, store1.get(),
      options);
  {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    server1->AttachAgent(1, std::move(agent));
  }
  ASSERT_TRUE(server1->Boot().ok());

  // Recovery lands exactly on the pre-failure image, byte for byte:
  // the failed transaction left no trace on disk.
  EXPECT_EQ(server1->DebugImage(), image_before);
  EXPECT_EQ(echo->pings_seen(), 5u);

  // Retransmission re-delivers the swallowed message; nothing is lost
  // or doubled across the fail-stop.
  simulator.RunToCompletion();
  EXPECT_EQ(echo->pings_seen(), 6u);
  EXPECT_EQ(server0->queue_out_size(), 0u);

  causality::CausalityChecker checker({ServerId(0), ServerId(1)});
  const auto snapshot = trace.Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(snapshot).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(snapshot).ok());
  server0->Shutdown();
  server1->Shutdown();
}

TEST_F(FailStopTest, ControlRecordWriteSurfacesFailStopToCaller) {
  // ApplyControlRecord blocks on its commit; with the store armed the
  // caller gets the halt status back instead of a silent no-op.  Uses
  // the in-memory store (ApplyControlRecord requires a wall-clock
  // runtime in general, but here the work item runs inline on Post).
  auto config = domains::topologies::Flat(1);
  auto deployment = domains::Deployment::Create(config).value();

  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});

  auto endpoint = network.CreateEndpoint(ServerId(0)).value();
  mom::InMemoryStore inner;
  mom::FaultyStore store(inner);

  auto server = std::make_unique<mom::AgentServer>(
      deployment, ServerId(0), endpoint.get(), &runtime, &store,
      mom::AgentServerOptions{});
  ASSERT_TRUE(server->Boot().ok());

  ASSERT_TRUE(server->ApplyControlRecord("ctrl/ok", Bytes{1}).ok());

  store.FailAfterCommits(1);
  const Status failed = server->ApplyControlRecord("ctrl/doomed", Bytes{2});
  EXPECT_EQ(failed.code(), StatusCode::kFailStop);
  EXPECT_EQ(server->health().code(), StatusCode::kFailStop);
  // Once halted, further control writes are rejected up front.
  EXPECT_EQ(server->ApplyControlRecord("ctrl/late", Bytes{3}).code(),
            StatusCode::kFailStop);
  server->Shutdown();
}

}  // namespace
}  // namespace cmom
