// Chaos-labeled soak: a slow consumer under sustained multi-domain
// overdrive, with a sampler thread asserting that every durable backlog
// the flow subsystem bounds actually stays bounded while the storm
// runs, and that after the producers stop the bus catches up with zero
// loss.  This is the overload.conf scenario from bench/flow_control.cc
// turned into pass/fail assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iterator>
#include <thread>
#include <vector>

#include "common/status.h"
#include "domains/config.h"
#include "mom/agent.h"
#include "workload/threaded_harness.h"

namespace cmom {
namespace {

// Mirrors examples/configs/overload.conf: two producer-edge domains
// funnel through the single router-server S3 into the consumer domain.
const std::uint16_t kProducers[] = {0, 1, 2, 4, 5, 6};
constexpr std::uint16_t kRouter = 3;
constexpr std::uint16_t kConsumer = 7;

domains::MomConfig OverloadConfig() {
  domains::MomConfig config;
  for (std::uint16_t s = 0; s < 8; ++s) config.servers.push_back(ServerId(s));
  config.domains.push_back(
      {DomainId(0), {ServerId(0), ServerId(1), ServerId(2), ServerId(3)}});
  config.domains.push_back(
      {DomainId(1), {ServerId(3), ServerId(4), ServerId(5), ServerId(6)}});
  config.domains.push_back({DomainId(2), {ServerId(3), ServerId(7)}});
  return config;
}

class SlowConsumer final : public mom::Agent {
 public:
  explicit SlowConsumer(std::uint64_t service_us) : service_us_(service_us) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    (void)message;
    std::this_thread::sleep_for(std::chrono::microseconds(service_us_));
    seen_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t seen() const {
    return seen_.load(std::memory_order_relaxed);
  }

 private:
  std::uint64_t service_us_;
  std::atomic<std::uint64_t> seen_{0};
};

TEST(FlowSoak, SlowConsumerBacklogsStayUnderWatermarksWithZeroLoss) {
  constexpr std::size_t kHighWatermark = 64;
  constexpr int kPerProducer = 300;
  constexpr std::uint64_t kServiceUs = 200;

  workload::ThreadedHarnessOptions options;
  options.retransmit_timeout_ns = 200ull * 1000 * 1000;
  options.flow.high_watermark = kHighWatermark;
  options.flow.low_watermark = 16;
  options.flow.initial_credit = 16;
  options.flow.drr_quantum = 4;
  options.flow.engine_admit_high = kHighWatermark;
  options.flow.engine_admit_low = 16;
  options.flow.out_admit_high = kHighWatermark;
  options.flow.wait_queue_max = 64;

  workload::ThreadedHarness harness(OverloadConfig(), options);
  SlowConsumer* consumer = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(kConsumer)) {
                      auto agent = std::make_unique<SlowConsumer>(kServiceUs);
                      consumer = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // What "bounded" means here:
  //  - the consumer's durable backlog is capped by its one uplink's
  //    credit window plus frames already granted before the window
  //    closed;
  //  - the router's backlog (including its own credit-blocked QueueOUT
  //    and the DRR stage) is capped by one window per upstream link
  //    plus its own downlink window.
  // The +64 slack absorbs in-flight frames the sampler cannot see
  // atomically with the queues.
  constexpr std::size_t kUplinks = 6;
  constexpr std::size_t kConsumerBound = kHighWatermark + 64;
  constexpr std::size_t kRouterBound = (kUplinks + 1) * kHighWatermark + 64;

  std::atomic<bool> sampling{true};
  std::atomic<std::size_t> consumer_peak{0};
  std::atomic<std::size_t> router_peak{0};
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      const auto cf = harness.server(ServerId(kConsumer)).fence_status();
      const std::size_t consumer_backlog = cf.queue_in + cf.holdback +
                                           cf.inflight;
      const auto rf = harness.server(ServerId(kRouter)).fence_status();
      const auto rflow = harness.server(ServerId(kRouter)).flow_status();
      const std::size_t router_backlog = rf.queue_in + rf.holdback +
                                         rf.inflight + rf.queue_out +
                                         rflow.staged_forwards;
      if (consumer_backlog > consumer_peak.load()) {
        consumer_peak.store(consumer_backlog);
      }
      if (router_backlog > router_peak.load()) {
        router_peak.store(router_backlog);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Six producer threads offer far more than the consumer can drain;
  // overdrive the admission layer cannot absorb comes back as a typed
  // kOverloaded shed, and the producer retries after a pause.
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (std::uint16_t p : kProducers) {
    producers.emplace_back([&, p] {
      const AgentId target{ServerId(kConsumer), 1};
      for (int i = 0; i < kPerProducer; ++i) {
        for (;;) {
          auto sent = harness.Send(ServerId(p), 2, target.server, target.local,
                                   "soak");
          if (sent.ok()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          ASSERT_EQ(sent.status().code(), StatusCode::kOverloaded);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (auto& thread : producers) thread.join();

  // Catch-up: the storm is over; the bus must drain completely.
  harness.WaitQuiescent();
  sampling.store(false);
  sampler.join();
  harness.HaltAll();

  // Bounded while the storm ran.
  EXPECT_LE(consumer_peak.load(), kConsumerBound);
  EXPECT_LE(router_peak.load(), kRouterBound);

  // Zero loss after catch-up: every accepted send was delivered...
  ASSERT_NE(consumer, nullptr);
  EXPECT_EQ(consumer->seen(), accepted.load());
  EXPECT_EQ(accepted.load(),
            static_cast<std::uint64_t>(std::size(kProducers)) * kPerProducer);

  // ...exactly once and in causal order.
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << (report.violations.empty() ? ""
                                    : report.violations.front().description);

  // The soak only proves something if the flow machinery was actually
  // exercised: credits paused at least one link and the router's fair
  // scheduler forwarded staged traffic.
  std::uint64_t blocked = 0;
  for (std::uint16_t p : kProducers) {
    blocked += harness.server(ServerId(p)).stats().credit_blocked;
  }
  blocked += harness.server(ServerId(kRouter)).stats().credit_blocked;
  EXPECT_GT(blocked, 0u);
  EXPECT_GT(harness.server(ServerId(kRouter)).stats().drr_forwarded, 0u);

  // And at quiescence nothing is left behind a window anywhere.
  for (std::uint16_t s = 0; s < 8; ++s) {
    const auto fs = harness.server(ServerId(s)).flow_status();
    EXPECT_EQ(fs.blocked_messages, 0u) << "server " << s;
    EXPECT_EQ(fs.wait_queue, 0u) << "server " << s;
    EXPECT_EQ(fs.staged_forwards, 0u) << "server " << s;
  }
}

}  // namespace
}  // namespace cmom
