// Tests for the text configuration format.
#include "domains/config_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "domains/deployment.h"
#include "domains/topologies.h"

namespace cmom::domains {
namespace {

TEST(ConfigIo, ParsesTheFigure2File) {
  const char* text = R"(
# an 8-server MOM, Figure 2 of the paper
servers = 1 2 3 4 5 6 7 8
stamp_mode = updates
domain 0 = 1 2 3
domain 1 = 4 5
domain 2 = 7 8
domain 3 = 3 5 6 7
)";
  auto config = ParseMomConfig(text);
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config.value().servers.size(), 8u);
  EXPECT_EQ(config.value().domains.size(), 4u);
  EXPECT_EQ(config.value().stamp_mode, clocks::StampMode::kUpdates);
  EXPECT_FALSE(config.value().allow_cyclic_domain_graph);
  EXPECT_TRUE(Deployment::Create(config.value()).ok());
}

TEST(ConfigIo, DenseServerShorthand) {
  auto config = ParseMomConfig("servers = 5\ndomain 0 = 0 1 2 3 4\n");
  ASSERT_TRUE(config.ok());
  ASSERT_EQ(config.value().servers.size(), 5u);
  EXPECT_EQ(config.value().servers[4], ServerId(4));
}

TEST(ConfigIo, FullMatrixModeAndCyclicFlag) {
  auto config = ParseMomConfig(
      "servers = 2\nstamp_mode = full\nallow_cyclic = true\n"
      "domain 0 = 0 1\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().stamp_mode, clocks::StampMode::kFullMatrix);
  EXPECT_TRUE(config.value().allow_cyclic_domain_graph);
}

TEST(ConfigIo, CausalCoreDefaultAndOverrides) {
  auto config = ParseMomConfig(
      "servers = 6\n"
      "causal_core = hybrid\n"
      "causal_core 1 = reduced\n"
      "domain 0 = 0 1 2\n"
      "domain 1 = 2 3 4\n"
      "domain 2 = 4 5\n");
  ASSERT_TRUE(config.ok()) << config.status();
  EXPECT_EQ(config.value().causal_core, clocks::CausalCoreKind::kHybrid);
  EXPECT_EQ(config.value().CoreFor(DomainId(0)),
            clocks::CausalCoreKind::kHybrid);
  EXPECT_EQ(config.value().CoreFor(DomainId(1)),
            clocks::CausalCoreKind::kReduced);

  // Format -> parse round trip preserves both the default and the
  // override, and omitting the key means matrix.
  const std::string text = FormatMomConfig(config.value());
  auto reparsed = ParseMomConfig(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(reparsed.value().causal_core, clocks::CausalCoreKind::kHybrid);
  EXPECT_EQ(reparsed.value().CoreFor(DomainId(1)),
            clocks::CausalCoreKind::kReduced);
  auto plain = ParseMomConfig("servers = 2\ndomain 0 = 0 1\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().causal_core, clocks::CausalCoreKind::kMatrix);
  EXPECT_TRUE(plain.value().causal_core_overrides.empty());
}

TEST(ConfigIo, CausalCoreErrors) {
  // Unknown kinds, duplicate overrides and malformed lines are
  // rejected with the line number.
  EXPECT_FALSE(ParseMomConfig("servers = 2\ncausal_core = vector\n"
                              "domain 0 = 0 1\n")
                   .ok());
  EXPECT_FALSE(ParseMomConfig("servers = 2\ncausal_core 0 = matrix\n"
                              "causal_core 0 = hybrid\ndomain 0 = 0 1\n")
                   .ok());
  EXPECT_FALSE(
      ParseMomConfig("servers = 2\ncausal_core 0 =\ndomain 0 = 0 1\n").ok());
}

TEST(ConfigIo, ErrorsCarryLineNumbers) {
  auto missing = ParseMomConfig("domain 0 = 0\n");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("servers"), std::string::npos);

  auto bad_token = ParseMomConfig("servers = x\n");
  ASSERT_FALSE(bad_token.ok());
  EXPECT_NE(bad_token.status().message().find("line 1"), std::string::npos);

  auto unknown = ParseMomConfig("servers = 2\nfrobnicate = 1\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseMomConfig("servers = 2\nservers = 2\n").ok());
  EXPECT_FALSE(ParseMomConfig("servers = 2\ndomain 0 = \n").ok());
  EXPECT_FALSE(ParseMomConfig("servers = 2\nstamp_mode = vector\n").ok());
  EXPECT_FALSE(ParseMomConfig("servers = 2\nallow_cyclic = maybe\n").ok());
}

TEST(ConfigIo, RoundTripsEveryCanonicalTopology) {
  for (const MomConfig& original :
       {topologies::Flat(5), topologies::Bus(3, 4), topologies::Daisy(4, 3),
        topologies::Tree(2, 4, 2), topologies::Ring(3, 3)}) {
    const std::string text = FormatMomConfig(original);
    auto parsed = ParseMomConfig(text);
    ASSERT_TRUE(parsed.ok()) << text << "\n" << parsed.status();
    EXPECT_EQ(parsed.value().servers, original.servers);
    EXPECT_EQ(parsed.value().stamp_mode, original.stamp_mode);
    EXPECT_EQ(parsed.value().allow_cyclic_domain_graph,
              original.allow_cyclic_domain_graph);
    ASSERT_EQ(parsed.value().domains.size(), original.domains.size());
    for (std::size_t d = 0; d < original.domains.size(); ++d) {
      EXPECT_EQ(parsed.value().domains[d].id, original.domains[d].id);
      EXPECT_EQ(parsed.value().domains[d].members,
                original.domains[d].members);
    }
  }
}

TEST(ConfigIo, NonDenseIdsFormatAsExplicitList) {
  MomConfig config;
  config.servers = {ServerId(3), ServerId(7)};
  config.domains = {{DomainId(0), {ServerId(3), ServerId(7)}}};
  const std::string text = FormatMomConfig(config);
  EXPECT_NE(text.find("servers = 3 7"), std::string::npos);
  auto parsed = ParseMomConfig(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().servers, config.servers);
}

TEST(ConfigIo, TrafficProfileRoundTrip) {
  TrafficProfile traffic(4);
  traffic.set(0, 1, 12.5);
  traffic.set(2, 3, 0.25);
  traffic.set(3, 0, 100);
  const std::string text = FormatTrafficProfile(traffic);
  auto parsed = ParseTrafficProfile(text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().server_count(), 4u);
  EXPECT_DOUBLE_EQ(parsed.value().at(0, 1), 12.5);
  EXPECT_DOUBLE_EQ(parsed.value().at(2, 3), 0.25);
  EXPECT_DOUBLE_EQ(parsed.value().at(3, 0), 100);
  EXPECT_DOUBLE_EQ(parsed.value().Total(), traffic.Total());
}

TEST(ConfigIo, TrafficProfileParsing) {
  auto parsed = ParseTrafficProfile("# comment\n0 1 5\n1 0 2.5\n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().server_count(), 2u);
  EXPECT_DOUBLE_EQ(parsed.value().Between(0, 1), 7.5);

  EXPECT_FALSE(ParseTrafficProfile("0 1\n").ok());
  EXPECT_FALSE(ParseTrafficProfile("0 1 abc\n").ok());
  EXPECT_FALSE(ParseTrafficProfile("0 1 -3\n").ok());
  // Repeated pairs accumulate.
  auto repeated = ParseTrafficProfile("0 1 5\n0 1 5\n");
  ASSERT_TRUE(repeated.ok());
  EXPECT_DOUBLE_EQ(repeated.value().at(0, 1), 10);
}

TEST(ConfigIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "cmom_config_io.cfg")
          .string();
  const MomConfig original = topologies::Bus(2, 3);
  ASSERT_TRUE(SaveMomConfig(original, path).ok());
  auto loaded = LoadMomConfig(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().servers, original.servers);
  std::filesystem::remove(path);

  EXPECT_FALSE(LoadMomConfig("/nonexistent/path.cfg").ok());
  EXPECT_FALSE(LoadTrafficProfile("/nonexistent/traffic.txt").ok());
}

}  // namespace
}  // namespace cmom::domains
