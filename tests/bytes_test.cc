// Unit tests for the serialization primitives (common/bytes.h) and the
// CRC helper: round trips, boundary encodings, and truncation handling.
#include "common/bytes.h"

#include <gtest/gtest.h>

#include "common/crc32.h"

namespace cmom {
namespace {

TEST(ByteWriter, FixedWidthRoundTrip) {
  ByteWriter writer;
  writer.WriteU8(0xAB);
  writer.WriteU16(0xBEEF);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);

  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU16().value(), 0xBEEF);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteWriter, VarintBoundaries) {
  const std::uint64_t values[] = {0,    1,    127,        128,
                                  129,  255,  16383,      16384,
                                  1u << 21,   (1ull << 35) + 7,
                                  ~0ull};
  for (std::uint64_t value : values) {
    ByteWriter writer;
    writer.WriteVarU64(value);
    ByteReader reader(writer.buffer());
    auto read = reader.ReadVarU64();
    ASSERT_TRUE(read.ok()) << value;
    EXPECT_EQ(read.value(), value);
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST(ByteWriter, SmallVarintsAreOneByte) {
  for (std::uint64_t value = 0; value < 128; ++value) {
    ByteWriter writer;
    writer.WriteVarU64(value);
    EXPECT_EQ(writer.size(), 1u);
  }
}

TEST(ByteWriter, StringAndBytesRoundTrip) {
  ByteWriter writer;
  writer.WriteString("hello middleware");
  writer.WriteBytes(Bytes{1, 2, 3, 4, 5});
  writer.WriteString("");

  ByteReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadString().value(), "hello middleware");
  EXPECT_EQ(reader.ReadBytes().value(), (Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_TRUE(reader.exhausted());
}

TEST(ByteReader, TruncatedFixedWidthIsDataLoss) {
  Bytes buffer{0x01, 0x02};
  ByteReader reader(buffer);
  auto value = reader.ReadU32();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kDataLoss);
}

TEST(ByteReader, TruncatedVarintIsDataLoss) {
  Bytes buffer{0x80, 0x80};  // continuation bits with no terminator
  ByteReader reader(buffer);
  auto value = reader.ReadVarU64();
  ASSERT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kDataLoss);
}

TEST(ByteReader, OverlongVarintIsDataLoss) {
  Bytes buffer(11, 0xFF);  // 11 continuation bytes > 64 bits
  ByteReader reader(buffer);
  auto value = reader.ReadVarU64();
  ASSERT_FALSE(value.ok());
}

TEST(ByteReader, TruncatedByteStringIsDataLoss) {
  ByteWriter writer;
  writer.WriteVarU64(100);  // claims 100 bytes follow
  writer.WriteU8(1);
  ByteReader reader(writer.buffer());
  auto bytes = reader.ReadBytes();
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), StatusCode::kDataLoss);
}

TEST(Crc32, KnownVector) {
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(data), 0xCBF43926u);  // the standard check value
}

TEST(Crc32, DetectsBitFlip) {
  Bytes data{'c', 'a', 'u', 's', 'a', 'l'};
  const std::uint32_t original = Crc32(data);
  data[2] ^= 0x01;
  EXPECT_NE(Crc32(data), original);
}

}  // namespace
}  // namespace cmom
