// Unit tests for the FaultyStore decorator: armed and probabilistic
// commit failures, write poisoning, and the guarantee that an injected
// failure leaves the inner store exactly at its previous committed
// state.
#include "mom/faulty_store.h"

#include <gtest/gtest.h>

#include "mom/store.h"

namespace cmom::mom {
namespace {

Bytes B(std::initializer_list<std::uint8_t> bytes) { return Bytes(bytes); }

TEST(FaultyStore, TransparentWhenDisarmed) {
  InMemoryStore inner;
  FaultyStore store(inner);
  store.Put("k", B({1}));
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(*store.Get("k"), B({1}));
  EXPECT_EQ(*inner.Get("k"), B({1}));
  EXPECT_EQ(store.stats().commits, 1u);
  EXPECT_EQ(store.stats().faults_injected, 0u);
}

TEST(FaultyStore, FailAfterCommitsFiresOnTheNthCommitOnly) {
  InMemoryStore inner;
  FaultyStore store(inner);
  store.FailAfterCommits(2);

  store.Put("a", B({1}));
  ASSERT_TRUE(store.Commit().ok());  // 1st: still fine

  store.Put("b", B({2}));
  const Status failed = store.Commit();  // 2nd: injected failure
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.stats().faults_injected, 1u);

  // The inner store is exactly at the previous committed state: "a"
  // committed, "b" still staged (visible through the cache until the
  // fail-stop path rolls it back).
  store.Rollback();
  EXPECT_EQ(*store.Get("a"), B({1}));
  EXPECT_FALSE(store.Get("b").has_value());

  // One-shot: the countdown is spent.
  store.Put("c", B({3}));
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(*store.Get("c"), B({3}));
}

TEST(FaultyStore, PoisonedWriteFailsItsCommitAndRollbackClears) {
  InMemoryStore inner;
  FaultyStoreOptions options;
  options.write_failure_probability = 1.0;  // every write poisons
  FaultyStore store(inner, options);

  store.Put("k", B({1}));
  EXPECT_EQ(store.Commit().code(), StatusCode::kUnavailable);
  store.Rollback();
  EXPECT_FALSE(store.Get("k").has_value());

  // Rollback cleared the poison; a clean transaction commits once the
  // probabilities are disarmed.
  store.Disarm();
  store.Put("k", B({2}));
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(*store.Get("k"), B({2}));
}

TEST(FaultyStore, ProbabilisticCommitFailureIsSeededAndDeterministic) {
  auto count_faults = [](std::uint64_t seed) {
    InMemoryStore inner;
    FaultyStoreOptions options;
    options.commit_failure_probability = 0.5;
    options.seed = seed;
    FaultyStore store(inner, options);
    for (int i = 0; i < 64; ++i) {
      store.Put("k", B({static_cast<std::uint8_t>(i)}));
      if (!store.Commit().ok()) store.Rollback();
    }
    return store.stats().faults_injected;
  };
  const std::uint64_t faults = count_faults(7);
  EXPECT_GT(faults, 0u);
  EXPECT_LT(faults, 64u);
  EXPECT_EQ(faults, count_faults(7));  // same seed, same stream
}

TEST(FaultyStore, DisarmClearsArmedCountdown) {
  InMemoryStore inner;
  FaultyStore store(inner);
  store.FailAfterCommits(1);
  store.Disarm();
  store.Put("k", B({1}));
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.stats().faults_injected, 0u);
}

}  // namespace
}  // namespace cmom::mom
