// Tests for the TCP loopback transport.
#include "net/tcp_network.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace cmom::net {
namespace {

// Each test gets its own port range to avoid clashes between tests
// run in one ctest invocation.
std::uint16_t NextBasePort() {
  static std::atomic<std::uint16_t> next{42000};
  return next.fetch_add(50);
}

struct Waiter {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<ServerId, Bytes>> received;

  ReceiveHandler Handler() {
    return [this](ServerId from, Bytes frame) {
      std::lock_guard lock(mutex);
      received.emplace_back(from, std::move(frame));
      cv.notify_all();
    };
  }

  bool WaitForCount(std::size_t count) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return received.size() >= count; });
  }
};

TEST(TcpNetwork, DeliversFrames) {
  TcpNetwork network(NextBasePort());
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());

  ASSERT_TRUE(a->Send(ServerId(1), Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(waiter.WaitForCount(1));
  EXPECT_EQ(waiter.received[0].first, ServerId(0));
  EXPECT_EQ(waiter.received[0].second, (Bytes{1, 2, 3}));
}

TEST(TcpNetwork, FifoOrderOverOneConnection) {
  TcpNetwork network(NextBasePort());
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());

  for (std::uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(100));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(waiter.received[i].second[0], i);
  }
}

TEST(TcpNetwork, LargeFramesSurviveChunkedReads) {
  TcpNetwork network(NextBasePort());
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());

  Bytes big(512 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(a->Send(ServerId(1), big).ok());
  ASSERT_TRUE(waiter.WaitForCount(1));
  EXPECT_EQ(waiter.received[0].second, big);
}

TEST(TcpNetwork, EmptyPayloadFrame) {
  TcpNetwork network(NextBasePort());
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());
  ASSERT_TRUE(a->Send(ServerId(1), Bytes{}).ok());
  ASSERT_TRUE(waiter.WaitForCount(1));
  EXPECT_TRUE(waiter.received[0].second.empty());
}

TEST(TcpNetwork, ManyPeersIntoOneReceiver) {
  TcpNetwork network(NextBasePort());
  auto hub = network.CreateEndpoint(ServerId(0)).value();
  Waiter waiter;
  hub->SetReceiveHandler(waiter.Handler());

  std::vector<std::unique_ptr<Endpoint>> peers;
  for (std::uint16_t i = 1; i <= 5; ++i) {
    peers.push_back(network.CreateEndpoint(ServerId(i)).value());
  }
  for (auto& peer : peers) {
    ASSERT_TRUE(peer->Send(ServerId(0),
                           Bytes{static_cast<std::uint8_t>(
                               peer->self().value())})
                    .ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(5));
  // Each sender id appears exactly once.
  std::vector<int> seen(6, 0);
  for (auto& [from, frame] : waiter.received) {
    EXPECT_EQ(from.value(), frame[0]);
    ++seen[from.value()];
  }
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(seen[i], 1);
}

TEST(TcpNetwork, SendToUnboundPortFails) {
  TcpNetwork network(NextBasePort());
  auto a = network.CreateEndpoint(ServerId(0)).value();
  const Status status = a->Send(ServerId(40), Bytes{1});
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace cmom::net
