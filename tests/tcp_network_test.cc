// Tests for the TCP loopback transport.
#include "net/tcp_network.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace cmom::net {
namespace {

// Each test gets its own literal port range: ctest runs every test in
// its own process (a static counter would restart at the same value)
// and may run them in parallel.

struct Waiter {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::pair<ServerId, Bytes>> received;

  ReceiveHandler Handler() {
    return [this](ServerId from, Bytes frame) {
      std::lock_guard lock(mutex);
      received.emplace_back(from, std::move(frame));
      cv.notify_all();
    };
  }

  bool WaitForCount(std::size_t count) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return received.size() >= count; });
  }
};

TEST(TcpNetwork, DeliversFrames) {
  TcpNetwork network(21000);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());

  ASSERT_TRUE(a->Send(ServerId(1), Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(waiter.WaitForCount(1));
  EXPECT_EQ(waiter.received[0].first, ServerId(0));
  EXPECT_EQ(waiter.received[0].second, (Bytes{1, 2, 3}));
}

TEST(TcpNetwork, FifoOrderOverOneConnection) {
  TcpNetwork network(21050);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());

  for (std::uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(100));
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(waiter.received[i].second[0], i);
  }
}

TEST(TcpNetwork, LargeFramesSurviveChunkedReads) {
  TcpNetwork network(21100);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());

  Bytes big(512 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(a->Send(ServerId(1), big).ok());
  ASSERT_TRUE(waiter.WaitForCount(1));
  EXPECT_EQ(waiter.received[0].second, big);
}

TEST(TcpNetwork, EmptyPayloadFrame) {
  TcpNetwork network(21150);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());
  ASSERT_TRUE(a->Send(ServerId(1), Bytes{}).ok());
  ASSERT_TRUE(waiter.WaitForCount(1));
  EXPECT_TRUE(waiter.received[0].second.empty());
}

TEST(TcpNetwork, ManyPeersIntoOneReceiver) {
  TcpNetwork network(21200);
  auto hub = network.CreateEndpoint(ServerId(0)).value();
  Waiter waiter;
  hub->SetReceiveHandler(waiter.Handler());

  std::vector<std::unique_ptr<Endpoint>> peers;
  for (std::uint16_t i = 1; i <= 5; ++i) {
    peers.push_back(network.CreateEndpoint(ServerId(i)).value());
  }
  for (auto& peer : peers) {
    ASSERT_TRUE(peer->Send(ServerId(0),
                           Bytes{static_cast<std::uint8_t>(
                               peer->self().value())})
                    .ok());
  }
  ASSERT_TRUE(waiter.WaitForCount(5));
  // Each sender id appears exactly once.
  std::vector<int> seen(6, 0);
  for (auto& [from, frame] : waiter.received) {
    EXPECT_EQ(from.value(), frame[0]);
    ++seen[from.value()];
  }
  for (int i = 1; i <= 5; ++i) EXPECT_EQ(seen[i], 1);
}

// With supervision, sending to a peer that is not up yet succeeds and
// buffers: the outbox flushes once the peer appears.
TEST(TcpNetwork, BuffersUntilPeerAppears) {
  TcpNetwork network(21250);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  // Give the supervisor time to fail at least one connect attempt.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_GE(a->stats().connect_failures, 1u);
  EXPECT_EQ(a->stats().frames_sent, 0u);
  EXPECT_GE(a->stats().outbox_frames, 10u);

  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());
  ASSERT_TRUE(waiter.WaitForCount(10));
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(waiter.received[i].second[0], i);
  }
  EXPECT_GE(a->stats().connects, 1u);
  EXPECT_GE(a->stats().frames_buffered, 10u);
  EXPECT_EQ(a->stats().outbox_frames, 0u);
}

// The outbox is bounded: overflow rejects the frame with Unavailable
// (the Channel's retransmission owns recovery from there) and keeps
// what was already buffered.
// Overflow is backpressure, not link death: the caller must be able to
// tell "slow down" (kOverloaded, retry later) apart from "peer gone"
// (kUnavailable) and "endpoint stopped" (kFailedPrecondition), because
// flow control pauses on the former and supervision handles the rest.
TEST(TcpNetwork, OutboxOverflowReturnsOverloaded) {
  TcpNetworkOptions options;
  options.outbox_max_frames = 4;
  TcpNetwork network(21300, options);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  // No peer listening on ServerId(1): everything buffers.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{1}).ok());
  }
  const Status status = a->Send(ServerId(1), Bytes{1});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOverloaded);
  EXPECT_NE(status.code(), StatusCode::kUnavailable);
  EXPECT_GE(a->stats().frames_dropped, 1u);
  EXPECT_EQ(a->stats().outbox_frames, 4u);

  // A disconnect does NOT surface as overload: the supervised link
  // keeps buffering (below the cap) and reports success.
  a->Disconnect(ServerId(1));
  const Status after_disconnect = a->Send(ServerId(1), Bytes{1});
  EXPECT_EQ(after_disconnect.code(), StatusCode::kOverloaded);  // still full
}

// Satellite: an endpoint restarted on the same port receives the
// frames buffered during its outage exactly once, in order.
TEST(TcpNetwork, PeerRestartOnSamePortDeliversExactlyOnce) {
  const std::uint16_t base = 21350;
  TcpNetwork network(base);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  Waiter waiter;
  {
    auto b = network.CreateEndpoint(ServerId(1)).value();
    b->SetReceiveHandler(waiter.Handler());
    for (std::uint8_t i = 0; i < 50; ++i) {
      ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
    }
    ASSERT_TRUE(waiter.WaitForCount(50));
    // Sever the live connection first (deterministically counted), then
    // crash the peer for real.
    a->Disconnect(ServerId(1));
  }  // peer crashes

  // Frames sent into the outage buffer in the supervised outbox.
  for (std::uint8_t i = 50; i < 100; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }

  auto b = network.CreateEndpoint(ServerId(1)).value();  // same port
  b->SetReceiveHandler(waiter.Handler());
  ASSERT_TRUE(waiter.WaitForCount(100));
  ASSERT_EQ(waiter.received.size(), 100u);  // exactly once: no extras
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(waiter.received[i].second[0], i);
  }
  const TransportStats stats = a->stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_GE(stats.forced_disconnects, 1u);
  EXPECT_EQ(stats.outbox_frames, 0u);
}

// Forced disconnects mid-stream (the FaultyNetwork primitive) lose and
// duplicate nothing: unwritten frames survive in the outbox and a
// partially-written frame is rewritten from its first byte.
TEST(TcpNetwork, ForcedDisconnectsLoseNothing) {
  TcpNetwork network(21400);
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  Waiter waiter;
  b->SetReceiveHandler(waiter.Handler());

  for (int i = 0; i < 200; ++i) {
    Bytes frame(3);
    frame[0] = static_cast<std::uint8_t>(i & 0xff);
    frame[1] = static_cast<std::uint8_t>(i >> 8);
    frame[2] = 0x5a;
    ASSERT_TRUE(a->Send(ServerId(1), std::move(frame)).ok());
    if (i % 50 == 25) {
      // Wait until this frame arrived, so the connection is provably
      // live and the kill severs an established link.
      ASSERT_TRUE(waiter.WaitForCount(static_cast<std::size_t>(i) + 1));
      a->Disconnect(ServerId(1));
    }
  }
  ASSERT_TRUE(waiter.WaitForCount(200));
  ASSERT_EQ(waiter.received.size(), 200u);
  for (std::size_t i = 0; i < 200; ++i) {
    const Bytes& frame = waiter.received[i].second;
    ASSERT_EQ(frame.size(), 3u);
    const std::size_t seq = frame[0] | (static_cast<std::size_t>(frame[1]) << 8);
    EXPECT_EQ(seq, i);  // FIFO preserved across reconnects
  }
  EXPECT_GE(a->stats().forced_disconnects, 1u);
  EXPECT_GE(a->stats().reconnects, 1u);
}

}  // namespace
}  // namespace cmom::net
