// Tests for the workload agents (echo, drivers, chatter), including
// persistent-state round trips.
#include "workload/agents.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/sim_harness.h"

namespace cmom::workload {
namespace {

using domains::topologies::Flat;

SimHarnessOptions FastOptions() {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  return options;
}

TEST(EchoAgent, StateRoundTrip) {
  EchoAgent agent;
  ByteWriter writer;
  agent.EncodeState(writer);
  EchoAgent restored;
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(restored.DecodeState(reader).ok());
  EXPECT_EQ(restored.pings_seen(), agent.pings_seen());
}

TEST(PingPongDriver, CompletesConfiguredRounds) {
  SimHarness harness(Flat(2), FastOptions());
  PingPongDriver* driver = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent = std::make_unique<PingPongDriver>(
                          AgentId{ServerId(1), 1}, 7);
                      driver = agent.get();
                      server.AttachAgent(2, std::move(agent));
                    } else {
                      server.AttachAgent(1, std::make_unique<EchoAgent>());
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(0), 2, kStart).ok());
  harness.Run();
  ASSERT_NE(driver, nullptr);
  EXPECT_TRUE(driver->done());
  EXPECT_EQ(driver->round_trip_ns().size(), 7u);
  for (std::uint64_t rtt : driver->round_trip_ns()) EXPECT_GT(rtt, 0u);
}

TEST(PingPongDriver, StateRoundTrip) {
  PingPongDriver driver(AgentId{ServerId(1), 1}, 5);
  ByteWriter writer;
  driver.EncodeState(writer);
  PingPongDriver restored(AgentId{ServerId(1), 1}, 5);
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(restored.DecodeState(reader).ok());
  EXPECT_EQ(restored.done(), driver.done());
  EXPECT_EQ(restored.round_trip_ns(), driver.round_trip_ns());
}

TEST(BroadcastDriver, WaitsForAllPongsEachRound) {
  SimHarness harness(Flat(4), FastOptions());
  BroadcastDriver* driver = nullptr;
  std::vector<AgentId> targets = {AgentId{ServerId(1), 1},
                                  AgentId{ServerId(2), 1},
                                  AgentId{ServerId(3), 1}};
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent =
                          std::make_unique<BroadcastDriver>(targets, 4);
                      driver = agent.get();
                      server.AttachAgent(2, std::move(agent));
                    } else {
                      server.AttachAgent(1, std::make_unique<EchoAgent>());
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(0), 2, kStart).ok());
  harness.Run();
  ASSERT_NE(driver, nullptr);
  EXPECT_TRUE(driver->done());
  EXPECT_EQ(driver->round_trip_ns().size(), 4u);
  // 4 rounds * 3 targets pings each, all echoed.
  EXPECT_EQ(harness.server(ServerId(0)).stats().messages_sent, 13u);
}

TEST(ChatterAgent, PayloadHopsDecrementToZero) {
  SimHarness harness(Flat(3), FastOptions());
  std::vector<ChatterAgent*> chatters;
  std::vector<AgentId> peers = {AgentId{ServerId(0), 1},
                                AgentId{ServerId(1), 1},
                                AgentId{ServerId(2), 1}};
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    auto agent = std::make_unique<ChatterAgent>(
                        id.value() + 1, peers);
                    chatters.push_back(agent.get());
                    server.AttachAgent(1, std::move(agent));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness
                  .Send(ServerId(0), 1, ServerId(1), 1, kChat,
                        ChatterAgent::MakeChatPayload(3))
                  .ok());
  harness.Run();  // must terminate: hops strictly decrease
  std::uint64_t total = 0;
  for (ChatterAgent* chatter : chatters) total += chatter->received();
  EXPECT_GE(total, 1u);
  // With fanout 1-2 and 3 hops the storm is bounded by 1+2+4+8.
  EXPECT_LE(total, 15u);
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

TEST(ChatterAgent, StateRoundTripPreservesRngStream) {
  std::vector<AgentId> peers = {AgentId{ServerId(0), 1}};
  ChatterAgent agent(42, peers);
  ByteWriter writer;
  agent.EncodeState(writer);
  ChatterAgent restored(0, peers);
  ByteReader reader(writer.buffer());
  ASSERT_TRUE(restored.DecodeState(reader).ok());
  ByteWriter again;
  restored.EncodeState(again);
  EXPECT_EQ(writer.buffer(), again.buffer());
}

}  // namespace
}  // namespace cmom::workload
