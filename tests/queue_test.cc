// Tests for the point-to-point queue destination.
#include "pubsub/queue.h"

#include <gtest/gtest.h>

#include <set>

#include "domains/topologies.h"
#include "workload/sim_harness.h"

namespace cmom::pubsub {
namespace {

using workload::SimHarness;
using workload::SimHarnessOptions;

SimHarnessOptions FastOptions() {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  return options;
}

constexpr std::uint32_t kQueueLocal = 10;
constexpr std::uint32_t kWorkerLocal = 11;
constexpr std::uint32_t kProducerLocal = 12;

class WorkerAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    auto task = DecodeTask(message);
    if (task.ok()) tasks_.push_back(std::move(task).value());
  }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

 private:
  std::vector<Task> tasks_;
};

struct QueueFixture {
  SimHarness harness;
  QueueAgent* queue = nullptr;
  std::vector<WorkerAgent*> workers;
  AgentId queue_id{ServerId(0), kQueueLocal};

  explicit QueueFixture(std::size_t worker_count)
      : harness(domains::topologies::Bus(2, 3), FastOptions()) {
    const std::vector<ServerId> worker_servers = {ServerId(1), ServerId(4),
                                                  ServerId(5)};
    // Capture by value: the harness re-runs the installer on Restart,
    // long after this constructor's locals are gone.
    Status status = harness.Init(
        [this, worker_count, worker_servers](ServerId id,
                                             mom::AgentServer& server) {
          if (id == ServerId(0)) {
            auto agent = std::make_unique<QueueAgent>();
            queue = agent.get();
            server.AttachAgent(kQueueLocal, std::move(agent));
          }
          for (std::size_t w = 0; w < worker_count; ++w) {
            if (id == worker_servers[w]) {
              auto agent = std::make_unique<WorkerAgent>();
              workers.push_back(agent.get());
              server.AttachAgent(kWorkerLocal, std::move(agent));
            }
          }
        });
    EXPECT_TRUE(status.ok());
    EXPECT_TRUE(harness.BootAll().ok());
  }

  void ListenAll() {
    const std::vector<ServerId> worker_servers = {ServerId(1), ServerId(4),
                                                  ServerId(5)};
    for (std::size_t w = 0; w < workers.size(); ++w) {
      ASSERT_TRUE(Listen(harness.server(worker_servers[w]),
                         AgentId{worker_servers[w], kWorkerLocal}, queue_id)
                      .ok());
    }
    harness.Run();
  }

  void PutTasks(int count) {
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(Put(harness.server(ServerId(2)),
                      AgentId{ServerId(2), kProducerLocal}, queue_id,
                      "task" + std::to_string(i))
                      .ok());
    }
    harness.Run();
  }
};

TEST(Queue, RoundRobinAcrossConsumers) {
  QueueFixture fx(3);
  fx.ListenAll();
  fx.PutTasks(9);
  ASSERT_EQ(fx.workers.size(), 3u);
  for (WorkerAgent* worker : fx.workers) {
    EXPECT_EQ(worker->tasks().size(), 3u);
  }
  EXPECT_EQ(fx.queue->dispatched(), 9u);
  EXPECT_EQ(fx.queue->buffered(), 0u);
}

TEST(Queue, EachTaskGoesToExactlyOneConsumer) {
  QueueFixture fx(3);
  fx.ListenAll();
  fx.PutTasks(10);
  std::set<std::string> names;
  std::size_t total = 0;
  for (WorkerAgent* worker : fx.workers) {
    for (const Task& task : worker->tasks()) {
      names.insert(task.name);
      ++total;
      EXPECT_EQ(task.producer, (AgentId{ServerId(2), kProducerLocal}));
    }
  }
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(names.size(), 10u);  // no duplicates across workers
}

TEST(Queue, BuffersUntilAConsumerListens) {
  QueueFixture fx(1);
  fx.PutTasks(5);
  EXPECT_EQ(fx.queue->buffered(), 5u);
  EXPECT_TRUE(fx.workers[0]->tasks().empty());

  fx.ListenAll();
  EXPECT_EQ(fx.queue->buffered(), 0u);
  EXPECT_EQ(fx.workers[0]->tasks().size(), 5u);
  // Buffered tasks flush in put order.
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fx.workers[0]->tasks()[i].name, "task" + std::to_string(i));
  }
}

TEST(Queue, IgnoreStopsDispatchToThatConsumer) {
  QueueFixture fx(2);
  fx.ListenAll();
  fx.PutTasks(4);
  const std::size_t before = fx.workers[1]->tasks().size();
  ASSERT_TRUE(Ignore(fx.harness.server(ServerId(4)),
                     AgentId{ServerId(4), kWorkerLocal}, fx.queue_id)
                  .ok());
  fx.harness.Run();
  fx.PutTasks(4);
  EXPECT_EQ(fx.workers[1]->tasks().size(), before);  // nothing new
  EXPECT_EQ(fx.workers[0]->tasks().size(), 2u + 4u);
}

TEST(Queue, PerConsumerOrderFollowsPutOrder) {
  QueueFixture fx(2);
  fx.ListenAll();
  fx.PutTasks(10);
  for (WorkerAgent* worker : fx.workers) {
    int last = -1;
    for (const Task& task : worker->tasks()) {
      const int n = std::stoi(task.name.substr(4));
      EXPECT_GT(n, last);
      last = n;
    }
  }
}

TEST(Queue, StateSurvivesCrash) {
  QueueFixture fx(1);
  fx.PutTasks(3);  // buffered, no consumer yet
  EXPECT_EQ(fx.queue->buffered(), 3u);

  fx.harness.Crash(ServerId(0));
  ASSERT_TRUE(fx.harness.Restart(ServerId(0)).ok());
  fx.harness.Run();

  fx.ListenAll();
  EXPECT_EQ(fx.workers[0]->tasks().size(), 3u);  // backlog survived
}

TEST(Queue, DecodeTaskRejectsForeignSubjects) {
  mom::Message message;
  message.subject = "something-else";
  EXPECT_FALSE(DecodeTask(message).ok());
}

}  // namespace
}  // namespace cmom::pubsub
