// Tests for the vector-clock causal-broadcast baseline.
#include "clocks/cbcast.h"

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.h"

namespace cmom::clocks {
namespace {

TEST(Cbcast, InOrderBroadcastsDeliver) {
  CbcastNode sender(0, 3);
  CbcastNode receiver(1, 3);
  for (int i = 0; i < 5; ++i) {
    const VectorClock stamp = sender.PrepareBroadcast();
    ASSERT_EQ(receiver.Check(0, stamp), CheckResult::kDeliver);
    receiver.Commit(0, stamp);
  }
  EXPECT_EQ(receiver.clock().at(0), 5u);
}

TEST(Cbcast, FifoGapHolds) {
  CbcastNode sender(0, 2);
  CbcastNode receiver(1, 2);
  const VectorClock first = sender.PrepareBroadcast();
  const VectorClock second = sender.PrepareBroadcast();
  EXPECT_EQ(receiver.Check(0, second), CheckResult::kHold);
  receiver.Commit(0, first);
  EXPECT_EQ(receiver.Check(0, second), CheckResult::kDeliver);
}

TEST(Cbcast, DuplicateDetected) {
  CbcastNode sender(0, 2);
  CbcastNode receiver(1, 2);
  const VectorClock stamp = sender.PrepareBroadcast();
  ASSERT_EQ(receiver.Check(0, stamp), CheckResult::kDeliver);
  receiver.Commit(0, stamp);
  EXPECT_EQ(receiver.Check(0, stamp), CheckResult::kDuplicate);
}

TEST(Cbcast, CausalTriangleHolds) {
  // a broadcasts m1; c receives m1 then broadcasts m2; at b, m2 before
  // m1 must hold.
  CbcastNode a(0, 3), b(1, 3), c(2, 3);
  const VectorClock m1 = a.PrepareBroadcast();
  ASSERT_EQ(c.Check(0, m1), CheckResult::kDeliver);
  c.Commit(0, m1);
  const VectorClock m2 = c.PrepareBroadcast();

  EXPECT_EQ(b.Check(2, m2), CheckResult::kHold);
  ASSERT_EQ(b.Check(0, m1), CheckResult::kDeliver);
  b.Commit(0, m1);
  EXPECT_EQ(b.Check(2, m2), CheckResult::kDeliver);
  b.Commit(2, m2);
}

TEST(Cbcast, ConcurrentBroadcastsDeliverEitherOrder) {
  CbcastNode a(0, 3), b(1, 3), c(2, 3);
  const VectorClock from_a = a.PrepareBroadcast();
  const VectorClock from_b = b.PrepareBroadcast();
  ASSERT_EQ(c.Check(1, from_b), CheckResult::kDeliver);
  c.Commit(1, from_b);
  ASSERT_EQ(c.Check(0, from_a), CheckResult::kDeliver);
  c.Commit(0, from_a);
}

// Property: under random per-link-FIFO interleavings, delivery order at
// every node respects the causal order of broadcasts (checked against
// vector-timestamp comparison of the stamps themselves).
class CbcastStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CbcastStorm, AlwaysCausal) {
  const std::size_t n = 4;
  std::vector<CbcastNode> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.emplace_back(i, n);
  // links[s][r]: FIFO queue of stamps from s to r.
  std::deque<VectorClock> links[4][4];
  std::vector<std::vector<VectorClock>> delivered(n);

  Rng rng(GetParam());
  for (int step = 0; step < 500; ++step) {
    if (rng.NextBool(0.4)) {
      const std::size_t sender = rng.NextBelow(n);
      const VectorClock stamp = nodes[sender].PrepareBroadcast();
      for (std::size_t r = 0; r < n; ++r) {
        if (r != sender) links[sender][r].push_back(stamp);
      }
    } else {
      const std::size_t s = rng.NextBelow(n);
      const std::size_t r = rng.NextBelow(n);
      if (s == r || links[s][r].empty()) continue;
      const VectorClock& head = links[s][r].front();
      if (nodes[r].Check(s, head) == CheckResult::kDeliver) {
        nodes[r].Commit(s, head);
        delivered[r].push_back(head);
        links[s][r].pop_front();
      }
    }
  }
  // Delivery order extends causal (vector) order at every node.
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t i = 0; i < delivered[r].size(); ++i) {
      for (std::size_t j = i + 1; j < delivered[r].size(); ++j) {
        EXPECT_FALSE(delivered[r][j].HappensBefore(delivered[r][i]))
            << "node " << r << ": delivery " << j << " precedes " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CbcastStorm,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Cbcast, StampSizeIsLinearInGroup) {
  for (std::size_t n : {4u, 16u, 64u}) {
    CbcastNode node(0, n);
    const VectorClock stamp = node.PrepareBroadcast();
    ByteWriter writer;
    stamp.Encode(writer);
    // n entries of 1 byte (small counters) + length prefix.
    EXPECT_GE(writer.size(), n);
    EXPECT_LE(writer.size(), n + 3);
  }
}

}  // namespace
}  // namespace cmom::clocks
