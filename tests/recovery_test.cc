// Crash/recovery tests: the transactional protocol of Section 5 must
// deliver exactly once, in causal order, across server crashes, lost
// frames and restarts from the persistent store.
#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using domains::topologies::Bus;
using domains::topologies::Flat;
using workload::ChatterAgent;
using workload::EchoAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;
using workload::SinkAgent;

SimHarnessOptions FastOptions() {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.retransmit_timeout_ns = 100 * sim::kMillisecond;
  return options;
}

Status VerifyTrace(SimHarness& harness) {
  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  if (!report.causal()) {
    return Status::Internal(report.violations.front().description);
  }
  return checker.CheckExactlyOnce(trace);
}

TEST(Recovery, FrameLostToCrashedServerIsRetransmitted) {
  SimHarness harness(Flat(2), FastOptions());
  SinkAgent* sink = nullptr;
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(1)) {
      auto agent = std::make_unique<SinkAgent>();
      sink = agent.get();
      server.AttachAgent(1, std::move(agent));
    }
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Crash the receiver immediately; the in-flight frame is dropped.
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "payload").ok());
  harness.Crash(ServerId(1));
  harness.RunUntil(50 * sim::kMillisecond);
  EXPECT_EQ(harness.server(ServerId(0)).queue_out_size(), 1u);  // unacked

  ASSERT_TRUE(harness.Restart(ServerId(1)).ok());
  harness.Run();  // retransmission timer fires, delivery completes

  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->received(), 1u);
  EXPECT_EQ(harness.server(ServerId(0)).queue_out_size(), 0u);
  EXPECT_GE(harness.server(ServerId(0)).stats().retransmissions, 1u);
  EXPECT_TRUE(VerifyTrace(harness).ok());
}

TEST(Recovery, AgentStateSurvivesCrash) {
  SimHarness harness(Flat(2), FastOptions());
  EchoAgent* echo = nullptr;
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(1)) {
      auto agent = std::make_unique<EchoAgent>();
      echo = agent.get();
      server.AttachAgent(1, std::move(agent));
    }
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        harness.Send(ServerId(0), 7, ServerId(1), 1, workload::kPing).ok());
  }
  harness.Run();
  EXPECT_EQ(echo->pings_seen(), 3u);

  harness.Crash(ServerId(1));
  ASSERT_TRUE(harness.Restart(ServerId(1)).ok());
  harness.Run();
  // The reattached agent decoded its persistent counter.
  EXPECT_EQ(echo->pings_seen(), 3u);

  ASSERT_TRUE(
      harness.Send(ServerId(0), 7, ServerId(1), 1, workload::kPing).ok());
  harness.Run();
  EXPECT_EQ(echo->pings_seen(), 4u);
}

TEST(Recovery, MessageIdsAreNotReusedAfterCrash) {
  SimHarness harness(Flat(2), FastOptions());
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  const MessageId before =
      harness.Send(ServerId(0), 1, ServerId(1), 1, "a").value();
  harness.Run();
  harness.Crash(ServerId(0));
  ASSERT_TRUE(harness.Restart(ServerId(0)).ok());
  harness.Run();
  const MessageId after =
      harness.Send(ServerId(0), 1, ServerId(1), 1, "b").value();
  harness.Run();
  EXPECT_GT(after.seq, before.seq);
  EXPECT_TRUE(VerifyTrace(harness).ok());
}

TEST(Recovery, HeldBackMessageSurvivesCrash) {
  // Triangle: S0 -> S1 (m1, slow link), S0 -> S2 (m2), S2's reaction
  // sends m3 to S1.  m3 arrives first and is held.  S1 crashes with m3
  // in the hold-back queue; after recovery m1 arrives, and m3 must
  // still be delivered -- after m1.
  SimHarness harness(Flat(3), FastOptions());
  SinkAgent* sink = nullptr;
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(1)) {
      auto agent = std::make_unique<SinkAgent>();
      sink = agent.get();
      server.AttachAgent(1, std::move(agent));
    }
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());
  harness.network().SetLinkLatency(ServerId(0), ServerId(1),
                                   400 * sim::kMillisecond);

  const MessageId m1 =
      harness.Send(ServerId(0), 1, ServerId(1), 1, "direct").value();
  ASSERT_TRUE(
      harness.Send(ServerId(0), 1, ServerId(2), 1, "relay").ok());  // m2
  harness.RunUntil(10 * sim::kMillisecond);  // m2 delivered at S2
  // m3: S2 -> S1, causally after m2, whose stamp carries S2's knowledge
  // of m1 (learned from m2's stamp) -- so S1 must hold m3 back.
  const MessageId m3 =
      harness.Send(ServerId(2), 1, ServerId(1), 1, "indirect").value();
  harness.RunUntil(50 * sim::kMillisecond);
  EXPECT_EQ(harness.server(ServerId(1)).holdback_size(), 1u);

  harness.Crash(ServerId(1));
  ASSERT_TRUE(harness.Restart(ServerId(1)).ok());
  EXPECT_EQ(harness.server(ServerId(1)).holdback_size(), 1u);  // recovered

  harness.Run();
  ASSERT_NE(sink, nullptr);
  ASSERT_EQ(sink->received(), 2u);
  EXPECT_EQ(sink->order()[0], m1);  // causal order respected
  EXPECT_EQ(sink->order()[1], m3);
  EXPECT_TRUE(VerifyTrace(harness).ok());
}

TEST(Recovery, RouterCrashMidForwardRecovers) {
  // Bus(2,3): S1 -> S5 routes S1 -> S0 -> S3 -> S5.  Crash the backbone
  // router S3 while traffic flows; everything still arrives once, in
  // order.
  SimHarness harness(Bus(2, 3), FastOptions());
  SinkAgent* sink = nullptr;
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(5)) {
      auto agent = std::make_unique<SinkAgent>();
      sink = agent.get();
      server.AttachAgent(1, std::move(agent));
    }
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());

  std::vector<MessageId> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(
        harness.Send(ServerId(1), 1, ServerId(5), 1, "msg").value());
  }
  // Let the first frames reach the router, then crash it.
  harness.RunUntil(1 * sim::kMillisecond);
  harness.Crash(ServerId(3));
  harness.RunUntil(30 * sim::kMillisecond);
  ASSERT_TRUE(harness.Restart(ServerId(3)).ok());
  harness.Run();

  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->received(), 5u);
  EXPECT_EQ(sink->order(), sent);
  EXPECT_TRUE(VerifyTrace(harness).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

TEST(Recovery, RepeatedCrashesDuringChatterStaysConsistent) {
  auto config = Bus(3, 3);
  SimHarness harness(config, FastOptions());
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  auto install = [&](ServerId id, mom::AgentServer& server) {
    server.AttachAgent(
        1, std::make_unique<ChatterAgent>(100 + id.value(), peers));
  };
  ASSERT_TRUE(harness.Init(install).ok());
  ASSERT_TRUE(harness.BootAll().ok());

  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          ChatterAgent::MakeChatPayload(5))
                    .ok());
  }
  // Crash a different server every 20 ms for a while, restarting the
  // previous victim.
  const ServerId victims[] = {ServerId(0), ServerId(3), ServerId(6),
                              ServerId(1), ServerId(4)};
  sim::Time when = 5 * sim::kMillisecond;
  for (ServerId victim : victims) {
    harness.RunUntil(when);
    harness.Crash(victim);
    harness.RunUntil(when + 10 * sim::kMillisecond);
    ASSERT_TRUE(harness.Restart(victim).ok());
    when += 20 * sim::kMillisecond;
  }
  harness.Run();
  EXPECT_TRUE(VerifyTrace(harness).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

}  // namespace
}  // namespace cmom
