// Tests for the in-memory store (transactional staging semantics).
#include "mom/store.h"

#include <gtest/gtest.h>

namespace cmom::mom {
namespace {

Bytes B(std::initializer_list<std::uint8_t> bytes) { return Bytes(bytes); }

TEST(InMemoryStore, GetMissingReturnsNullopt) {
  InMemoryStore store;
  EXPECT_FALSE(store.Get("nope").has_value());
}

TEST(InMemoryStore, ReadYourWritesBeforeCommit) {
  InMemoryStore store;
  store.Put("k", B({1, 2}));
  ASSERT_TRUE(store.Get("k").has_value());
  EXPECT_EQ(*store.Get("k"), B({1, 2}));
}

TEST(InMemoryStore, RollbackDiscardsStaged) {
  InMemoryStore store;
  store.Put("k", B({1}));
  ASSERT_TRUE(store.Commit().ok());
  store.Put("k", B({2}));
  store.Put("other", B({3}));
  store.Rollback();
  EXPECT_EQ(*store.Get("k"), B({1}));
  EXPECT_FALSE(store.Get("other").has_value());
}

TEST(InMemoryStore, CommitAppliesAtomically) {
  InMemoryStore store;
  store.Put("a", B({1}));
  store.Put("b", B({2}));
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(*store.Get("a"), B({1}));
  EXPECT_EQ(*store.Get("b"), B({2}));
}

TEST(InMemoryStore, DeleteStagedAndCommitted) {
  InMemoryStore store;
  store.Put("k", B({1}));
  ASSERT_TRUE(store.Commit().ok());
  store.Delete("k");
  EXPECT_FALSE(store.Get("k").has_value());  // staged delete visible
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_FALSE(store.Get("k").has_value());
}

TEST(InMemoryStore, LastStagedOpWins) {
  InMemoryStore store;
  store.Put("k", B({1}));
  store.Put("k", B({2}));
  store.Delete("k");
  store.Put("k", B({3}));
  EXPECT_EQ(*store.Get("k"), B({3}));
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(*store.Get("k"), B({3}));
}

TEST(InMemoryStore, KeysWithPrefix) {
  InMemoryStore store;
  store.Put("agent/1", B({1}));
  store.Put("agent/2", B({1}));
  store.Put("channel/clocks", B({1}));
  ASSERT_TRUE(store.Commit().ok());
  store.Put("agent/3", B({1}));     // staged-only key
  store.Delete("agent/1");          // staged delete
  const auto keys = store.Keys("agent/");
  EXPECT_EQ(keys, (std::vector<std::string>{"agent/2", "agent/3"}));
  EXPECT_EQ(store.Keys("").size(), 3u);
}

TEST(InMemoryStore, ByteAccounting) {
  InMemoryStore store;
  store.Put("abc", B({1, 2, 3, 4}));  // 3 key + 4 value
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.last_commit_bytes(), 7u);
  EXPECT_EQ(store.total_bytes_written(), 7u);
  store.Put("x", B({1}));  // 1 + 1
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.last_commit_bytes(), 2u);
  EXPECT_EQ(store.total_bytes_written(), 9u);
  EXPECT_EQ(store.commit_count(), 2u);
}

TEST(InMemoryStore, EmptyCommitIsCheap) {
  InMemoryStore store;
  ASSERT_TRUE(store.Commit().ok());
  EXPECT_EQ(store.last_commit_bytes(), 0u);
}

}  // namespace
}  // namespace cmom::mom
