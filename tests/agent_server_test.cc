// Behavioural tests for AgentServer: local delivery, reactions,
// validation, stats, idle detection.
#include "mom/agent_server.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom::mom {
namespace {

using domains::topologies::Flat;
using workload::EchoAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;
using workload::SinkAgent;

SimHarnessOptions FastOptions() {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  return options;
}

TEST(AgentServer, LocalSendDeliversThroughEngine) {
  SimHarness harness(Flat(1), FastOptions());
  SinkAgent* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId, AgentServer& server) {
                    auto agent = std::make_unique<SinkAgent>();
                    sink = agent.get();
                    server.AttachAgent(1, std::move(agent));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(
      harness.Send(ServerId(0), 1, ServerId(0), 1, "note").ok());
  harness.Run();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->received(), 1u);
  const ServerStats stats = harness.server(ServerId(0)).stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_delivered, 1u);
  EXPECT_EQ(stats.messages_forwarded, 0u);
}

TEST(AgentServer, LocalSendsPreserveOrder) {
  SimHarness harness(Flat(1), FastOptions());
  SinkAgent* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId, AgentServer& server) {
                    auto agent = std::make_unique<SinkAgent>();
                    sink = agent.get();
                    server.AttachAgent(1, std::move(agent));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  std::vector<MessageId> sent;
  for (int i = 0; i < 10; ++i) {
    sent.push_back(
        harness.Send(ServerId(0), 1, ServerId(0), 1, "note").value());
  }
  harness.Run();
  EXPECT_EQ(sink->order(), sent);
}

TEST(AgentServer, SendBeforeBootFails) {
  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});
  auto deployment = domains::Deployment::Create(Flat(1)).value();
  auto endpoint = network.CreateEndpoint(ServerId(0)).value();
  InMemoryStore store;
  AgentServer server(deployment, ServerId(0), endpoint.get(), &runtime,
                     &store);
  auto result = server.SendMessage(AgentId{ServerId(0), 1},
                                   AgentId{ServerId(0), 1}, "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AgentServer, DoubleBootFails) {
  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});
  auto deployment = domains::Deployment::Create(Flat(1)).value();
  auto endpoint = network.CreateEndpoint(ServerId(0)).value();
  InMemoryStore store;
  AgentServer server(deployment, ServerId(0), endpoint.get(), &runtime,
                     &store);
  ASSERT_TRUE(server.Boot().ok());
  EXPECT_FALSE(server.Boot().ok());
}

TEST(AgentServer, RejectsForeignSenderAgent) {
  SimHarness harness(Flat(2), FastOptions());
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  auto result = harness.server(ServerId(0))
                    .SendMessage(AgentId{ServerId(1), 1},
                                 AgentId{ServerId(0), 1}, "x");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(AgentServer, MessageToMissingAgentIsDroppedGracefully) {
  SimHarness harness(Flat(2), FastOptions());
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 42, "ghost").ok());
  harness.Run();
  // Delivered (recorded, counted) but no agent reacted; system stays
  // consistent and idle.
  EXPECT_EQ(harness.server(ServerId(1)).stats().messages_delivered, 1u);
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

TEST(AgentServer, ReactionSendsAreAtomicWithDelivery) {
  SimHarness harness(Flat(2), FastOptions());
  workload::EchoAgent* echo = nullptr;
  SinkAgent* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<EchoAgent>();
                      echo = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    } else {
                      auto agent = std::make_unique<SinkAgent>();
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(
      harness.Send(ServerId(0), 1, ServerId(1), 1, workload::kPing).ok());
  harness.Run();
  EXPECT_EQ(echo->pings_seen(), 1u);
  EXPECT_EQ(sink->received(), 1u);  // the pong came back
  EXPECT_TRUE(harness.server(ServerId(0)).Idle());
  EXPECT_TRUE(harness.server(ServerId(1)).Idle());
}

TEST(AgentServer, StatsTrackStampBytesAndCommits) {
  SimHarness harness(Flat(2), FastOptions());
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "x").ok());
  harness.Run();
  const ServerStats sender = harness.server(ServerId(0)).stats();
  EXPECT_GT(sender.stamp_bytes_sent, 0u);
  EXPECT_GT(sender.commits, 0u);
  const ServerStats receiver = harness.server(ServerId(1)).stats();
  EXPECT_EQ(receiver.frames_received, 1u);
}

TEST(AgentServer, FindDomainClockExposesMatrix) {
  SimHarness harness(Flat(2), FastOptions());
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "x").ok());
  harness.Run();
  const auto* clock = harness.server(ServerId(0)).FindDomainClock(0);
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock->matrix().at(DomainServerId(0), DomainServerId(1)), 1u);
  EXPECT_EQ(harness.server(ServerId(0)).FindDomainClock(99), nullptr);
}

}  // namespace
}  // namespace cmom::mom
