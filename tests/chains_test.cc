// Tests for the executable Appendix-B chain machinery, including a
// property check of Lemma 1 on traces produced by the real middleware.
#include "causality/chains.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom::causality {
namespace {

ServerId S(std::uint16_t v) { return ServerId(v); }
MessageId M(std::uint16_t origin, std::uint64_t seq) {
  return MessageId{S(origin), seq};
}

TraceEvent Send(MessageId id, std::uint16_t at, std::uint16_t dest) {
  return {EventKind::kSend, id, S(at), S(dest), AgentId{S(at), 1},
          AgentId{S(dest), 1}};
}
TraceEvent Deliver(MessageId id, std::uint16_t at, std::uint16_t origin) {
  return {EventKind::kDeliver, id, S(at), S(at), AgentId{S(origin), 1},
          AgentId{S(at), 1}};
}

// A relay trace: S0 -> S1 -> S2 -> S0 -> S3 (each hop sent after the
// previous delivery), plus an unrelated message.
Trace RelayTrace() {
  return {
      Send(M(0, 1), 0, 1),     Deliver(M(0, 1), 1, 0),
      Send(M(1, 1), 1, 2),     Deliver(M(1, 1), 2, 1),
      Send(M(2, 1), 2, 0),     Deliver(M(2, 1), 0, 2),
      Send(M(0, 2), 0, 3),     Deliver(M(0, 2), 3, 0),
      Send(M(5, 1), 5, 4),     Deliver(M(5, 1), 4, 5),
  };
}

TEST(ChainAnalyzer, RecognizesValidChains) {
  ChainAnalyzer analyzer(RelayTrace());
  EXPECT_TRUE(analyzer.IsChain({M(0, 1)}));
  EXPECT_TRUE(analyzer.IsChain({M(0, 1), M(1, 1)}));
  EXPECT_TRUE(analyzer.IsChain({M(0, 1), M(1, 1), M(2, 1)}));
  EXPECT_TRUE(analyzer.IsChain({M(0, 1), M(1, 1), M(2, 1), M(0, 2)}));
}

TEST(ChainAnalyzer, RejectsInvalidChains) {
  ChainAnalyzer analyzer(RelayTrace());
  EXPECT_FALSE(analyzer.IsChain({}));
  // Not linked: M(5,1) was not sent by M(0,1)'s receiver.
  EXPECT_FALSE(analyzer.IsChain({M(0, 1), M(5, 1)}));
  // Wrong order: M(0,2) was sent by S0 but M(2,1) delivered to S0
  // AFTER... actually before; reversed order is not a chain.
  EXPECT_FALSE(analyzer.IsChain({M(0, 2), M(0, 1)}));
  // Unknown message.
  EXPECT_FALSE(analyzer.IsChain({M(9, 9)}));
}

TEST(ChainAnalyzer, EndpointsAndPath) {
  ChainAnalyzer analyzer(RelayTrace());
  const Chain chain = {M(0, 1), M(1, 1), M(2, 1), M(0, 2)};
  EXPECT_EQ(analyzer.Source(chain), S(0));
  EXPECT_EQ(analyzer.Destination(chain), S(3));
  EXPECT_EQ(analyzer.AssociatedPath(chain),
            (std::vector<ServerId>{S(0), S(1), S(2), S(0), S(3)}));
  EXPECT_FALSE(analyzer.IsDirect(chain));  // S0 repeats
  EXPECT_TRUE(analyzer.IsDirect({M(0, 1), M(1, 1)}));
}

TEST(ChainAnalyzer, MakeDirectExcisesTheLoop) {
  ChainAnalyzer analyzer(RelayTrace());
  const Chain loopy = {M(0, 1), M(1, 1), M(2, 1), M(0, 2)};
  const Chain direct = analyzer.MakeDirect(loopy);
  EXPECT_TRUE(analyzer.IsChain(direct));
  EXPECT_TRUE(analyzer.IsDirect(direct));
  EXPECT_EQ(analyzer.Source(direct), S(0));
  EXPECT_EQ(analyzer.Destination(direct), S(3));
  // Lemma 1's bounds: the direct chain starts no earlier at the source
  // and ends no later at the destination.
  EXPECT_GE(*analyzer.SendPosition(direct.front()),
            *analyzer.SendPosition(loopy.front()));
  EXPECT_LE(*analyzer.DeliverPosition(direct.back()),
            *analyzer.DeliverPosition(loopy.back()));
  // Here the loop excision must keep only the last hop.
  EXPECT_EQ(direct, Chain{M(0, 2)});
}

TEST(ChainAnalyzer, ChainsFromEnumeratesBoundedChains) {
  ChainAnalyzer analyzer(RelayTrace());
  const auto chains = analyzer.ChainsFrom(M(0, 1), 4);
  // (m1), (m1,m2), (m1,m2,m3), (m1,m2,m3,m4).
  EXPECT_EQ(chains.size(), 4u);
  for (const Chain& chain : chains) {
    EXPECT_TRUE(analyzer.IsChain(chain));
    EXPECT_EQ(chain.front(), M(0, 1));
  }
}

TEST(ChainAnalyzer, IgnoresUndeliveredMessages) {
  Trace trace = {
      Send(M(0, 1), 0, 1),
      // never delivered
      Send(M(0, 2), 0, 2),
      Deliver(M(0, 2), 2, 0),
  };
  ChainAnalyzer analyzer(trace);
  EXPECT_EQ(analyzer.message_count(), 1u);
  EXPECT_FALSE(analyzer.IsChain({M(0, 1)}));
  EXPECT_TRUE(analyzer.IsChain({M(0, 2)}));
}

// Lemma 1 as a property of real executions: run chatter storms through
// the actual middleware, enumerate chains of the recorded trace, and
// verify MakeDirect always produces a direct chain with the same
// endpoints satisfying the lemma's two inequalities.
class Lemma1Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma1Property, HoldsOnRealTraces) {
  auto config = domains::topologies::Bus(2, 3);
  workload::SimHarnessOptions options;
  options.simulate_processing_costs = false;
  workload::SimHarness harness(config, options);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(
                        1, std::make_unique<workload::ChatterAgent>(
                               GetParam() * 37 + id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          workload::ChatterAgent::MakeChatPayload(4))
                    .ok());
  }
  harness.Run();

  const Trace trace = harness.trace().Snapshot();
  ChainAnalyzer analyzer(trace);
  ASSERT_GT(analyzer.message_count(), 6u);

  std::size_t chains_checked = 0;
  for (const TraceEvent& event : trace) {
    if (event.kind != EventKind::kSend) continue;
    for (const Chain& chain : analyzer.ChainsFrom(event.message, 4)) {
      if (analyzer.Source(chain) == analyzer.Destination(chain)) continue;
      const Chain direct = analyzer.MakeDirect(chain);
      ASSERT_TRUE(analyzer.IsChain(direct));
      ASSERT_TRUE(analyzer.IsDirect(direct));
      EXPECT_EQ(analyzer.Source(direct), analyzer.Source(chain));
      EXPECT_EQ(analyzer.Destination(direct), analyzer.Destination(chain));
      EXPECT_GE(*analyzer.SendPosition(direct.front()),
                *analyzer.SendPosition(chain.front()));
      EXPECT_LE(*analyzer.DeliverPosition(direct.back()),
                *analyzer.DeliverPosition(chain.back()));
      ++chains_checked;
    }
  }
  EXPECT_GT(chains_checked, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma1Property,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace cmom::causality
