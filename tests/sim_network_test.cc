// Unit tests for the simulated network: latency math, per-link FIFO,
// fault injection and statistics.
#include "net/sim_network.h"

#include <gtest/gtest.h>

#include <vector>

namespace cmom::net {
namespace {

struct Fixture {
  sim::Simulator simulator;
  CostModel cost;
  std::unique_ptr<SimNetwork> network;
  std::unique_ptr<Endpoint> a;
  std::unique_ptr<Endpoint> b;

  explicit Fixture(FaultModel faults = {}, std::uint64_t seed = 1) {
    cost.wire_latency = 100;
    cost.per_wire_byte = 10;
    network = std::make_unique<SimNetwork>(simulator, cost, faults, seed);
    a = network->CreateEndpoint(ServerId(0)).value();
    b = network->CreateEndpoint(ServerId(1)).value();
  }
};

TEST(SimNetwork, DeliversWithModeledLatency) {
  Fixture fx;
  std::vector<sim::Time> arrivals;
  fx.b->SetReceiveHandler([&](ServerId from, Bytes frame) {
    EXPECT_EQ(from, ServerId(0));
    EXPECT_EQ(frame.size(), 4u);
    arrivals.push_back(fx.simulator.now());
  });
  ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes{1, 2, 3, 4}).ok());
  fx.simulator.RunToCompletion();
  ASSERT_EQ(arrivals.size(), 1u);
  // 4 bytes * 10 ns + 100 ns latency = 140 ns.
  EXPECT_EQ(arrivals[0], 140u);
}

TEST(SimNetwork, PerLinkFifoEvenWithBackToBackSends) {
  Fixture fx;
  std::vector<int> order;
  fx.b->SetReceiveHandler([&](ServerId, Bytes frame) {
    order.push_back(frame[0]);
  });
  for (std::uint8_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes{i}).ok());
  }
  fx.simulator.RunToCompletion();
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimNetwork, TransmissionQueueingSerializesLink) {
  // Two 10-byte frames back to back: the second starts transmitting
  // only after the first finished (100 ns each), so arrivals are
  // 100+100=200 and 200+100=300.
  Fixture fx;
  std::vector<sim::Time> arrivals;
  fx.b->SetReceiveHandler(
      [&](ServerId, Bytes) { arrivals.push_back(fx.simulator.now()); });
  ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes(10, 0)).ok());
  ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes(10, 0)).ok());
  fx.simulator.RunToCompletion();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 200u);
  EXPECT_EQ(arrivals[1], 300u);
}

TEST(SimNetwork, UnknownDestinationFailsFast) {
  Fixture fx;
  const Status status = fx.a->Send(ServerId(42), Bytes{1});
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(SimNetwork, DuplicateEndpointRejected) {
  Fixture fx;
  auto dup = fx.network->CreateEndpoint(ServerId(0));
  EXPECT_FALSE(dup.ok());
}

TEST(SimNetwork, DropsLoseFramesSilently) {
  FaultModel faults;
  faults.drop_probability = 1.0;
  Fixture fx(faults);
  int received = 0;
  fx.b->SetReceiveHandler([&](ServerId, Bytes) { ++received; });
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(fx.a->Send(ServerId(1), Bytes{1}).ok());  // sender unaware
  }
  fx.simulator.RunToCompletion();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(fx.network->frames_dropped(), 5u);
}

TEST(SimNetwork, DuplicatesDeliverTwice) {
  FaultModel faults;
  faults.duplicate_probability = 1.0;
  Fixture fx(faults);
  int received = 0;
  fx.b->SetReceiveHandler([&](ServerId, Bytes) { ++received; });
  ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes{1}).ok());
  fx.simulator.RunToCompletion();
  EXPECT_EQ(received, 2);
}

TEST(SimNetwork, JitterWithoutReorderingKeepsFifo) {
  FaultModel faults;
  faults.jitter_probability = 0.5;
  faults.max_jitter = 10000;
  faults.allow_reordering = false;
  Fixture fx(faults, /*seed=*/7);
  std::vector<int> order;
  fx.b->SetReceiveHandler(
      [&](ServerId, Bytes frame) { order.push_back(frame[0]); });
  for (std::uint8_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes{i}).ok());
  }
  fx.simulator.RunToCompletion();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimNetwork, ExtraLinkLatencyAppliesToOneDirection) {
  Fixture fx;
  fx.network->SetLinkLatency(ServerId(0), ServerId(1), 1000000);
  std::vector<sim::Time> b_arrivals, a_arrivals;
  fx.b->SetReceiveHandler(
      [&](ServerId, Bytes) { b_arrivals.push_back(fx.simulator.now()); });
  fx.a->SetReceiveHandler(
      [&](ServerId, Bytes) { a_arrivals.push_back(fx.simulator.now()); });
  ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes{1}).ok());
  ASSERT_TRUE(fx.b->Send(ServerId(0), Bytes{1}).ok());
  fx.simulator.RunToCompletion();
  ASSERT_EQ(b_arrivals.size(), 1u);
  ASSERT_EQ(a_arrivals.size(), 1u);
  EXPECT_EQ(b_arrivals[0], 1000110u);  // slow direction
  EXPECT_EQ(a_arrivals[0], 110u);      // normal direction
}

TEST(SimNetwork, StatsCountFramesAndBytes) {
  Fixture fx;
  fx.b->SetReceiveHandler([](ServerId, Bytes) {});
  ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes(7, 0)).ok());
  ASSERT_TRUE(fx.a->Send(ServerId(1), Bytes(3, 0)).ok());
  EXPECT_EQ(fx.network->frames_sent(), 2u);
  EXPECT_EQ(fx.network->bytes_sent(), 10u);
  fx.network->ResetStats();
  EXPECT_EQ(fx.network->frames_sent(), 0u);
  EXPECT_EQ(fx.network->bytes_sent(), 0u);
}

}  // namespace
}  // namespace cmom::net
