// Gateway tier: client sessions authenticating to proxy agents on one
// agent server, message relay in both directions, auth/duplicate-bind
// rejection, and connection churn without fd leaks.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/gateway.h"
#include "mom/gateway_client.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"

namespace cmom {
namespace {

using namespace std::chrono_literals;

constexpr std::uint64_t kSecond = 1000ull * 1000 * 1000;

std::size_t OpenFdCount() {
  std::size_t count = 0;
  for ([[maybe_unused]] const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    ++count;
  }
  return count;
}

// Two TCP servers; the gateway rides server 0, the echo agent lives on
// server 1, so client traffic crosses a real server-to-server hop.
struct GatewayCluster {
  domains::Deployment deployment;
  net::TcpNetwork network;
  net::ThreadRuntime runtime;
  std::vector<std::unique_ptr<mom::InMemoryStore>> stores;
  std::vector<std::unique_ptr<net::Endpoint>> endpoints;
  std::vector<std::unique_ptr<mom::AgentServer>> servers;
  std::unique_ptr<mom::GatewayServer> gateway;
  workload::EchoAgent* echo = nullptr;

  GatewayCluster(std::uint16_t base_port, std::uint16_t gateway_port,
                 std::size_t session_agents)
      : deployment(
            domains::Deployment::Create(domains::topologies::Flat(2)).value()),
        network(base_port) {
    for (ServerId id : deployment.servers()) {
      endpoints.push_back(network.CreateEndpoint(id).value());
      stores.push_back(std::make_unique<mom::InMemoryStore>());
      mom::AgentServerOptions options;
      options.retransmit_timeout_ns = 200ull * 1000 * 1000;
      servers.push_back(std::make_unique<mom::AgentServer>(
          deployment, id, endpoints.back().get(), &runtime,
          stores.back().get(), options));
    }
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    servers[1]->AttachAgent(1, std::move(agent));
    mom::GatewayOptions gw_options;
    gw_options.listen_port = gateway_port;
    gw_options.first_session_agent = 1;
    gateway = std::make_unique<mom::GatewayServer>(*servers[0], gw_options,
                                                   network.reactor());
    gateway->AttachSessionAgents(session_agents);
    for (auto& server : servers) EXPECT_TRUE(server->Boot().ok());
    EXPECT_TRUE(gateway->Start().ok());
  }

  ~GatewayCluster() {
    gateway->Stop();
    for (auto& server : servers) server->Shutdown();
  }
};

TEST(Gateway, HelloEchoRoundtrip) {
  GatewayCluster cluster(24300, 24390, 4);

  mom::GatewayClientOptions options;
  options.port = 24390;
  options.sessions = 4;
  mom::GatewayClientPool pool(options);
  std::atomic<std::uint64_t> pongs{0};
  pool.set_delivery_handler([&](std::size_t session, std::uint16_t src_server,
                                std::uint32_t src_local,
                                std::string_view subject, const std::uint8_t*,
                                std::size_t) {
    EXPECT_EQ(src_server, 1u);
    EXPECT_EQ(src_local, 1u);
    EXPECT_EQ(subject, workload::kPong);
    EXPECT_LT(session, 4u);
    pongs.fetch_add(1, std::memory_order_relaxed);
  });
  pool.Start();
  ASSERT_TRUE(pool.WaitAllBound(20 * kSecond));

  for (std::size_t s = 0; s < 4; ++s) {
    for (int i = 0; i < 5; ++i) {
      while (!pool.Send(s, 1, 1, workload::kPing, nullptr, 0)) {
        std::this_thread::sleep_for(1ms);
      }
    }
  }
  const auto deadline = std::chrono::steady_clock::now() + 30s;
  while (pongs.load() < 20 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(pongs.load(), 20u);
  EXPECT_EQ(cluster.echo->pings_seen(), 20u);

  const mom::GatewayStats stats = cluster.gateway->stats();
  EXPECT_EQ(stats.sessions_accepted, 4u);
  EXPECT_EQ(stats.client_sends, 20u);
  EXPECT_EQ(stats.client_deliveries, 20u);
  EXPECT_EQ(stats.delivery_drops, 0u);
  EXPECT_EQ(stats.auth_failures, 0u);

  const auto sessions = cluster.gateway->sessions();
  ASSERT_EQ(sessions.size(), 4u);
  std::uint64_t session_sends = 0;
  for (const auto& info : sessions) {
    EXPECT_GE(info.agent_local, 1u);
    session_sends += info.sends;
  }
  EXPECT_EQ(session_sends, 20u);
  pool.Stop();
}

TEST(Gateway, RejectsUnknownAgentId) {
  GatewayCluster cluster(24400, 24490, 2);

  // first_agent far outside the attached range [1, 3).
  mom::GatewayClientOptions options;
  options.port = 24490;
  options.sessions = 1;
  options.first_agent = 99;
  mom::GatewayClientPool pool(options);
  pool.Start();
  EXPECT_FALSE(pool.WaitAllBound(10 * kSecond));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (pool.stats().auth_rejects == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(pool.stats().auth_rejects, 1u);
  EXPECT_EQ(pool.stats().bound, 0u);

  const auto gw_deadline = std::chrono::steady_clock::now() + 10s;
  while (cluster.gateway->stats().auth_failures == 0 &&
         std::chrono::steady_clock::now() < gw_deadline) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(cluster.gateway->stats().auth_failures, 1u);
  pool.Stop();
}

TEST(Gateway, RejectsDuplicateBind) {
  GatewayCluster cluster(24500, 24590, 2);

  mom::GatewayClientOptions options;
  options.port = 24590;
  options.sessions = 1;
  options.first_agent = 1;
  mom::GatewayClientPool first(options);
  first.Start();
  ASSERT_TRUE(first.WaitAllBound(20 * kSecond));

  // Same agent id while the first session still holds it.
  mom::GatewayClientPool second(options);
  second.Start();
  EXPECT_FALSE(second.WaitAllBound(10 * kSecond));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (second.stats().auth_rejects == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(2ms);
  }
  EXPECT_EQ(second.stats().auth_rejects, 1u);
  EXPECT_EQ(first.stats().bound, 1u);
  second.Stop();
  first.Stop();
}

// Storms of connect/bind/close against one gateway: every session must
// be torn down fully -- no fd leaks in either direction, no lingering
// bindings blocking the next storm's rebind of the same agent ids.
TEST(Gateway, ChurnStormsLeakNoFds) {
  constexpr std::size_t kSessions = 512;
  constexpr int kStorms = 3;
  GatewayCluster cluster(24600, 24690, kSessions);

  const std::size_t fd_baseline = OpenFdCount();
  for (int storm = 0; storm < kStorms; ++storm) {
    mom::GatewayClientOptions options;
    options.port = 24690;
    options.sessions = kSessions;
    options.connect_batch = 128;
    mom::GatewayClientPool pool(options);
    pool.Start();
    ASSERT_TRUE(pool.WaitAllBound(60 * kSecond)) << "storm " << storm;
    EXPECT_EQ(cluster.gateway->stats().sessions_active, kSessions);
    pool.Stop();
    // The gateway frees sessions when it observes the closes; the next
    // storm rebinds the same agent ids, so wait them out.
    const auto deadline = std::chrono::steady_clock::now() + 30s;
    while (cluster.gateway->stats().sessions_active > 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(2ms);
    }
    ASSERT_EQ(cluster.gateway->stats().sessions_active, 0u)
        << "storm " << storm << " left sessions behind";
  }
  const mom::GatewayStats stats = cluster.gateway->stats();
  EXPECT_EQ(stats.sessions_accepted, kSessions * kStorms);
  EXPECT_EQ(stats.sessions_closed, kSessions * kStorms);

  // All client and accepted fds are gone.  Allow small slack for
  // runtime incidentals (the reactor's own fds are in the baseline).
  const std::size_t fd_after = OpenFdCount();
  EXPECT_LE(fd_after, fd_baseline + 8)
      << "fd leak: " << fd_baseline << " before churn, " << fd_after
      << " after";
}

}  // namespace
}  // namespace cmom
