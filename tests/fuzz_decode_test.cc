// Robustness: every decoder must survive arbitrary bytes -- returning
// an error or a value, never crashing or reading out of bounds -- and
// live servers must survive garbage frames from the network.  The
// "fuzzing" is deterministic (seeded) so failures replay.
#include <gtest/gtest.h>

#include "clocks/causal_clock.h"
#include "clocks/causal_core.h"
#include "clocks/matrix_clock.h"
#include "clocks/stamp.h"
#include "clocks/updates_tracker.h"
#include "common/log.h"
#include "common/rng.h"
#include "domains/config_io.h"
#include "domains/topologies.h"
#include "mom/message.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

Bytes RandomBytes(Rng& rng, std::size_t max_size) {
  Bytes bytes(rng.NextBelow(max_size + 1));
  for (auto& byte : bytes) {
    byte = static_cast<std::uint8_t>(rng.NextBelow(256));
  }
  return bytes;
}

class DecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzz, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam());
  for (int round = 0; round < 300; ++round) {
    const Bytes bytes = RandomBytes(rng, 200);
    {
      ByteReader reader(bytes);
      (void)clocks::Stamp::Decode(reader);
    }
    {
      ByteReader reader(bytes);
      (void)clocks::MatrixClock::Decode(reader);
    }
    {
      ByteReader reader(bytes);
      (void)clocks::VectorClock::Decode(reader);
    }
    {
      ByteReader reader(bytes);
      (void)clocks::UpdatesTracker::Decode(reader);
    }
    {
      ByteReader reader(bytes);
      (void)clocks::CausalDomainClock::DecodeState(reader);
    }
    {
      ByteReader reader(bytes);
      (void)clocks::DecodeCausalCoreState(reader);
    }
    {
      // The same bytes behind the 0xFFFF sentinel exercise the
      // per-kind core payload decoders (the first random byte lands in
      // the kind slot).
      Bytes tagged{0xFF, 0xFF};
      tagged.insert(tagged.end(), bytes.begin(), bytes.end());
      ByteReader reader(tagged);
      (void)clocks::DecodeCausalCoreState(reader);
    }
    {
      ByteReader reader(bytes);
      (void)mom::Message::Decode(reader);
    }
    (void)mom::DataFrame::Deserialize(bytes);
    (void)mom::DeserializeAck(bytes);
    (void)mom::PeekFrameType(bytes);
  }
}

TEST_P(DecodeFuzz, BitFlippedValidFramesNeverCrash) {
  Rng rng(GetParam() + 100);
  mom::DataFrame frame;
  frame.message.id = MessageId{ServerId(1), 7};
  frame.message.from = AgentId{ServerId(1), 2};
  frame.message.to = AgentId{ServerId(3), 4};
  frame.message.subject = "subject";
  frame.message.payload = Bytes{1, 2, 3, 4, 5, 6, 7, 8};
  frame.domain = DomainId(2);
  frame.stamp.entries = {{DomainServerId(0), DomainServerId(1), 42},
                         {DomainServerId(1), DomainServerId(0), 7}};
  const Bytes valid = frame.Serialize();

  for (int round = 0; round < 300; ++round) {
    Bytes mutated = valid;
    const std::size_t flips = 1 + rng.NextBelow(4);
    for (std::size_t f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.NextBelow(8));
    }
    auto decoded = mom::DataFrame::Deserialize(mutated);
    if (decoded.ok()) {
      // A decode that "succeeds" must at least be internally
      // re-serializable (no wild pointers or absurd sizes).
      EXPECT_LE(decoded.value().stamp.entries.size(), 1000000u);
      (void)decoded.value().Serialize();
    }
  }
}

TEST_P(DecodeFuzz, ConfigParserNeverCrashes) {
  Rng rng(GetParam() + 200);
  const char* fragments[] = {"servers", "domain", "=", "0", "1", "99999",
                             "stamp_mode", "updates", "full", "#",
                             "allow_cyclic", "true", "\n", "x", "-1",
                             "causal_core", "matrix", "hybrid", "reduced"};
  for (int round = 0; round < 200; ++round) {
    std::string text;
    const std::size_t pieces = rng.NextBelow(30);
    for (std::size_t p = 0; p < pieces; ++p) {
      text += fragments[rng.NextBelow(std::size(fragments))];
      text += rng.NextBool(0.3) ? "\n" : " ";
    }
    (void)domains::ParseMomConfig(text);
    (void)domains::ParseTrafficProfile(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(1, 2, 3, 4));

TEST(GarbageFrames, LiveServerSurvivesJunkFromTheNetwork) {
  // Bare setup: S0's endpoint is held by the test (a malicious or
  // broken peer), S1 runs a real server.  Junk from S0 must be
  // logged-and-dropped while S1 keeps serving local traffic.
  // The junk provokes (expected) warnings; keep the test log quiet.
  const LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  auto deployment =
      domains::Deployment::Create(domains::topologies::Flat(2)).value();
  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});
  auto attacker = network.CreateEndpoint(ServerId(0)).value();
  auto endpoint1 = network.CreateEndpoint(ServerId(1)).value();
  mom::InMemoryStore store;
  mom::AgentServer server(deployment, ServerId(1), endpoint1.get(), &runtime,
                          &store);
  workload::SinkAgent* sink = nullptr;
  {
    auto agent = std::make_unique<workload::SinkAgent>();
    sink = agent.get();
    server.AttachAgent(1, std::move(agent));
  }
  ASSERT_TRUE(server.Boot().ok());

  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(attacker->Send(ServerId(1), RandomBytes(rng, 64)).ok());
  }
  // Also a structurally valid data frame with an absurd domain and a
  // stamp that lies about its own send counter.
  mom::DataFrame weird;
  weird.message.id = MessageId{ServerId(0), 1};
  weird.message.from = AgentId{ServerId(0), 1};
  weird.message.to = AgentId{ServerId(1), 1};
  weird.domain = DomainId(999);
  ASSERT_TRUE(attacker->Send(ServerId(1), weird.Serialize()).ok());
  simulator.RunToCompletion();

  // The server is still alive and serves local application traffic.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server
                    .SendMessage(AgentId{ServerId(1), 1},
                                 AgentId{ServerId(1), 1}, "local")
                    .ok());
  }
  simulator.RunToCompletion();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->received(), 5u);
  server.Shutdown();
  SetLogLevel(saved_level);
}

}  // namespace
}  // namespace cmom
