// Tests for boot-time shortest-path routing tables.
#include "domains/routing.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"

namespace cmom::domains {
namespace {

ServerId S(std::uint16_t v) { return ServerId(v); }

TEST(Routing, DirectDeliveryInsideOneDomain) {
  auto table = RoutingTable::Build(topologies::Flat(4)).value();
  for (std::uint16_t a = 0; a < 4; ++a) {
    for (std::uint16_t b = 0; b < 4; ++b) {
      EXPECT_EQ(table.NextHop(S(a), S(b)), S(b));
      EXPECT_EQ(table.HopCount(S(a), S(b)), a == b ? 0u : 1u);
    }
  }
}

TEST(Routing, BusRoutesThroughBackboneRouters) {
  // Bus(3,3): leaves {0,1,2},{3,4,5},{6,7,8}; backbone {0,3,6}.
  auto table = RoutingTable::Build(topologies::Bus(3, 3)).value();
  // S1 (leaf 0) to S8 (leaf 2): S1 -> S0 -> S6 -> S8.
  EXPECT_EQ(table.NextHop(S(1), S(8)), S(0));
  EXPECT_EQ(table.NextHop(S(0), S(8)), S(6));
  EXPECT_EQ(table.NextHop(S(6), S(8)), S(8));
  EXPECT_EQ(table.HopCount(S(1), S(8)), 3u);
  // Backbone members reach each other directly.
  EXPECT_EQ(table.NextHop(S(0), S(6)), S(6));
  EXPECT_EQ(table.HopCount(S(0), S(6)), 1u);
}

TEST(Routing, DaisyWalksTheChain) {
  // Daisy(3,3): domains {0,1,2},{2,3,4},{4,5,6}.
  auto table = RoutingTable::Build(topologies::Daisy(3, 3)).value();
  EXPECT_EQ(table.NextHop(S(0), S(6)), S(2));
  EXPECT_EQ(table.NextHop(S(2), S(6)), S(4));
  EXPECT_EQ(table.NextHop(S(4), S(6)), S(6));
  EXPECT_EQ(table.HopCount(S(0), S(6)), 3u);
}

TEST(Routing, HopCountIsSymmetricOnUndirectedTopologies) {
  auto config = topologies::Tree(2, 4, 2);
  auto table = RoutingTable::Build(config).value();
  for (ServerId a : config.servers) {
    for (ServerId b : config.servers) {
      EXPECT_EQ(table.HopCount(a, b), table.HopCount(b, a));
    }
  }
}

TEST(Routing, NextHopAlwaysMakesProgress) {
  auto config = topologies::Tree(3, 5, 2);
  auto table = RoutingTable::Build(config).value();
  for (ServerId a : config.servers) {
    for (ServerId b : config.servers) {
      if (a == b) continue;
      const ServerId hop = table.NextHop(a, b);
      EXPECT_EQ(table.HopCount(a, b), table.HopCount(hop, b) + 1)
          << to_string(a) << " -> " << to_string(b);
    }
  }
}

TEST(Routing, DisconnectedGraphRejected) {
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1)}},
                    {DomainId(1), {S(2), S(3)}}};
  auto table = RoutingTable::Build(config);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Routing, DeterministicTieBreakPrefersSmallerNextHop) {
  // Two equal-length routes: S0 -> {S1 or S2} -> S3.
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1), S(2)}},
                    {DomainId(1), {S(1), S(2), S(3)}}};
  auto table = RoutingTable::Build(config).value();
  EXPECT_EQ(table.NextHop(S(0), S(3)), S(1));
}

TEST(Routing, TieBreakIndependentOfMemberListingOrder) {
  // The same server graph described with permuted member listings and
  // permuted server/domain order must yield a byte-identical table --
  // this is what lets epoch E and E+1 rebuilds be diffed directly.
  MomConfig a;
  a.servers = {S(0), S(1), S(2), S(3), S(4)};
  a.domains = {{DomainId(0), {S(0), S(1), S(2)}},
               {DomainId(1), {S(1), S(2), S(3)}},
               {DomainId(2), {S(3), S(4)}}};
  MomConfig b;
  b.servers = {S(4), S(2), S(0), S(3), S(1)};
  b.domains = {{DomainId(2), {S(4), S(3)}},
               {DomainId(1), {S(3), S(2), S(1)}},
               {DomainId(0), {S(2), S(1), S(0)}}};
  auto table_a = RoutingTable::Build(a).value();
  auto table_b = RoutingTable::Build(b).value();
  EXPECT_EQ(table_a.DebugString(), table_b.DebugString());
  for (ServerId from : a.servers) {
    for (ServerId dest : a.servers) {
      EXPECT_EQ(table_a.NextHop(from, dest), table_b.NextHop(from, dest));
    }
  }
}

TEST(Routing, TieBreakPinnedOnEqualShortestPaths) {
  // Every next hop must be the *smallest* ServerId among neighbors on a
  // shortest path, pinned here as an exact table rendering.
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1), S(2)}},
                    {DomainId(1), {S(1), S(2), S(3)}}};
  auto table = RoutingTable::Build(config).value();
  EXPECT_EQ(table.DebugString(),
            "S0: S0/0 S1/1 S2/1 S1/2\n"
            "S1: S0/1 S1/0 S2/1 S3/1\n"
            "S2: S0/1 S1/1 S2/0 S3/1\n"
            "S3: S1/2 S1/1 S2/1 S3/0\n");
}

TEST(Routing, NonContiguousServerIds) {
  MomConfig config;
  config.servers = {S(10), S(20), S(30)};
  config.domains = {{DomainId(0), {S(10), S(20)}},
                    {DomainId(1), {S(20), S(30)}}};
  auto table = RoutingTable::Build(config).value();
  EXPECT_EQ(table.NextHop(S(10), S(30)), S(20));
  EXPECT_EQ(table.HopCount(S(10), S(30)), 2u);
}

}  // namespace
}  // namespace cmom::domains
