// Tests for boot-time shortest-path routing tables.
#include "domains/routing.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"

namespace cmom::domains {
namespace {

ServerId S(std::uint16_t v) { return ServerId(v); }

TEST(Routing, DirectDeliveryInsideOneDomain) {
  auto table = RoutingTable::Build(topologies::Flat(4)).value();
  for (std::uint16_t a = 0; a < 4; ++a) {
    for (std::uint16_t b = 0; b < 4; ++b) {
      EXPECT_EQ(table.NextHop(S(a), S(b)), S(b));
      EXPECT_EQ(table.HopCount(S(a), S(b)), a == b ? 0u : 1u);
    }
  }
}

TEST(Routing, BusRoutesThroughBackboneRouters) {
  // Bus(3,3): leaves {0,1,2},{3,4,5},{6,7,8}; backbone {0,3,6}.
  auto table = RoutingTable::Build(topologies::Bus(3, 3)).value();
  // S1 (leaf 0) to S8 (leaf 2): S1 -> S0 -> S6 -> S8.
  EXPECT_EQ(table.NextHop(S(1), S(8)), S(0));
  EXPECT_EQ(table.NextHop(S(0), S(8)), S(6));
  EXPECT_EQ(table.NextHop(S(6), S(8)), S(8));
  EXPECT_EQ(table.HopCount(S(1), S(8)), 3u);
  // Backbone members reach each other directly.
  EXPECT_EQ(table.NextHop(S(0), S(6)), S(6));
  EXPECT_EQ(table.HopCount(S(0), S(6)), 1u);
}

TEST(Routing, DaisyWalksTheChain) {
  // Daisy(3,3): domains {0,1,2},{2,3,4},{4,5,6}.
  auto table = RoutingTable::Build(topologies::Daisy(3, 3)).value();
  EXPECT_EQ(table.NextHop(S(0), S(6)), S(2));
  EXPECT_EQ(table.NextHop(S(2), S(6)), S(4));
  EXPECT_EQ(table.NextHop(S(4), S(6)), S(6));
  EXPECT_EQ(table.HopCount(S(0), S(6)), 3u);
}

TEST(Routing, HopCountIsSymmetricOnUndirectedTopologies) {
  auto config = topologies::Tree(2, 4, 2);
  auto table = RoutingTable::Build(config).value();
  for (ServerId a : config.servers) {
    for (ServerId b : config.servers) {
      EXPECT_EQ(table.HopCount(a, b), table.HopCount(b, a));
    }
  }
}

TEST(Routing, NextHopAlwaysMakesProgress) {
  auto config = topologies::Tree(3, 5, 2);
  auto table = RoutingTable::Build(config).value();
  for (ServerId a : config.servers) {
    for (ServerId b : config.servers) {
      if (a == b) continue;
      const ServerId hop = table.NextHop(a, b);
      EXPECT_EQ(table.HopCount(a, b), table.HopCount(hop, b) + 1)
          << to_string(a) << " -> " << to_string(b);
    }
  }
}

TEST(Routing, DisconnectedGraphRejected) {
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1)}},
                    {DomainId(1), {S(2), S(3)}}};
  auto table = RoutingTable::Build(config);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Routing, DeterministicTieBreakPrefersSmallerNextHop) {
  // Two equal-length routes: S0 -> {S1 or S2} -> S3.
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1), S(2)}},
                    {DomainId(1), {S(1), S(2), S(3)}}};
  auto table = RoutingTable::Build(config).value();
  EXPECT_EQ(table.NextHop(S(0), S(3)), S(1));
}

TEST(Routing, NonContiguousServerIds) {
  MomConfig config;
  config.servers = {S(10), S(20), S(30)};
  config.domains = {{DomainId(0), {S(10), S(20)}},
                    {DomainId(1), {S(20), S(30)}}};
  auto table = RoutingTable::Build(config).value();
  EXPECT_EQ(table.NextHop(S(10), S(30)), S(20));
  EXPECT_EQ(table.HopCount(S(10), S(30)), 2u);
}

}  // namespace
}  // namespace cmom::domains
