// Tests for deployment validation and resolved structures.
#include "domains/deployment.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"

namespace cmom::domains {
namespace {

ServerId S(std::uint16_t v) { return ServerId(v); }

TEST(Deployment, RejectsEmptyConfigs) {
  EXPECT_FALSE(Deployment::Create(MomConfig{}).ok());
  MomConfig no_domains;
  no_domains.servers = {S(0)};
  EXPECT_FALSE(Deployment::Create(no_domains).ok());
}

TEST(Deployment, RejectsDuplicateServerIds) {
  MomConfig config;
  config.servers = {S(0), S(0)};
  config.domains = {{DomainId(0), {S(0)}}};
  auto result = Deployment::Create(config);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Deployment, RejectsDuplicateDomainIds) {
  MomConfig config;
  config.servers = {S(0), S(1)};
  config.domains = {{DomainId(0), {S(0)}}, {DomainId(0), {S(1)}}};
  EXPECT_FALSE(Deployment::Create(config).ok());
}

TEST(Deployment, RejectsUnknownMembers) {
  MomConfig config;
  config.servers = {S(0)};
  config.domains = {{DomainId(0), {S(0), S(9)}}};
  EXPECT_FALSE(Deployment::Create(config).ok());
}

TEST(Deployment, RejectsDuplicateMembership) {
  MomConfig config;
  config.servers = {S(0), S(1)};
  config.domains = {{DomainId(0), {S(0), S(1), S(0)}}};
  EXPECT_FALSE(Deployment::Create(config).ok());
}

TEST(Deployment, RejectsUncoveredServer) {
  MomConfig config;
  config.servers = {S(0), S(1)};
  config.domains = {{DomainId(0), {S(0)}}};
  EXPECT_FALSE(Deployment::Create(config).ok());
}

TEST(Deployment, RejectsCyclicGraphByDefault) {
  auto ring = topologies::Ring(3, 3);
  ring.allow_cyclic_domain_graph = false;
  auto result = Deployment::Create(ring);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Deployment, AllowsCyclicGraphWhenExplicitlyRequested) {
  // The theorem demo needs to build the broken configuration.
  EXPECT_TRUE(Deployment::Create(topologies::Ring(3, 3)).ok());
}

TEST(Deployment, ResolvesLocalIdsByMemberOrder) {
  auto deployment = Deployment::Create(topologies::Bus(2, 3)).value();
  // Domain 0 is the backbone {S0, S3}; leaves follow.
  const ResolvedDomain& backbone = deployment.domain(0);
  EXPECT_EQ(backbone.id, DomainId(0));
  ASSERT_EQ(backbone.size(), 2u);
  EXPECT_EQ(backbone.LocalId(S(0)), DomainServerId(0));
  EXPECT_EQ(backbone.LocalId(S(3)), DomainServerId(1));
  EXPECT_EQ(backbone.GlobalId(DomainServerId(1)), S(3));
  EXPECT_FALSE(backbone.LocalId(S(1)).has_value());
}

TEST(Deployment, IdentifiesRouters) {
  auto deployment = Deployment::Create(topologies::Bus(3, 3)).value();
  EXPECT_TRUE(deployment.IsRouter(S(0)));
  EXPECT_TRUE(deployment.IsRouter(S(3)));
  EXPECT_TRUE(deployment.IsRouter(S(6)));
  EXPECT_FALSE(deployment.IsRouter(S(1)));
  EXPECT_FALSE(deployment.IsRouter(S(8)));
}

TEST(Deployment, DomainIndicesOfCoverAllMemberships) {
  auto deployment = Deployment::Create(topologies::Bus(3, 3)).value();
  EXPECT_EQ(deployment.DomainIndicesOf(S(0)).size(), 2u);  // backbone + leaf
  EXPECT_EQ(deployment.DomainIndicesOf(S(1)).size(), 1u);
  EXPECT_TRUE(deployment.DomainIndicesOf(S(42)).empty());
}

TEST(Deployment, LinkDomainPicksSharedDomain) {
  auto deployment = Deployment::Create(topologies::Bus(3, 3)).value();
  // S0 and S3 share only the backbone (domain index 0).
  auto link = deployment.LinkDomainIndex(S(0), S(3));
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(deployment.domain(link.value()).id, DomainId(0));
  // S0 and S1 share only leaf 1.
  auto leaf_link = deployment.LinkDomainIndex(S(0), S(1));
  ASSERT_TRUE(leaf_link.ok());
  EXPECT_EQ(deployment.domain(leaf_link.value()).id, DomainId(1));
  // S1 and S8 share nothing.
  EXPECT_FALSE(deployment.LinkDomainIndex(S(1), S(8)).ok());
}

TEST(Deployment, LinkDomainTieBreaksBySmallestDomainId) {
  MomConfig config;
  config.servers = {S(0), S(1)};
  config.domains = {{DomainId(5), {S(0), S(1)}}, {DomainId(2), {S(0), S(1)}}};
  // Both domains contain both servers: a doubled edge, i.e. a cycle --
  // allowed only for this structural check.
  config.allow_cyclic_domain_graph = true;
  auto deployment = Deployment::Create(config).value();
  auto link = deployment.LinkDomainIndex(S(0), S(1));
  ASSERT_TRUE(link.ok());
  EXPECT_EQ(deployment.domain(link.value()).id, DomainId(2));
}

}  // namespace
}  // namespace cmom::domains
