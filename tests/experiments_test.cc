// Tests for the experiment drivers and the least-squares fits that the
// figure benches report.
#include "workload/experiments.h"

#include <gtest/gtest.h>

#include "clocks/causal_clock.h"
#include "domains/topologies.h"
#include "workload/fit.h"

namespace cmom::workload {
namespace {

TEST(Fit, LinearDataFitsLinearExactly) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y = {3, 5, 7, 9, 11};  // y = 1 + 2x
  const FitResult fit = FitLinear(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit.Evaluate(10), 21.0, 1e-9);
}

TEST(Fit, QuadraticDataFitsQuadraticExactly) {
  std::vector<double> x = {1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) y.push_back(4 + 0.5 * v * v);
  const FitResult fit = FitQuadratic(x, y);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-9);
  EXPECT_NEAR(fit.slope, 0.5, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Fit, QuadraticDataPrefersQuadraticModel) {
  std::vector<double> x = {10, 20, 30, 40, 50};
  std::vector<double> y;
  for (double v : x) y.push_back(50 + 0.06 * v * v);
  EXPECT_GT(FitQuadratic(x, y).r_squared, FitLinear(x, y).r_squared);
}

TEST(Fit, LinearDataPrefersLinearModel) {
  std::vector<double> x = {10, 20, 30, 40, 50, 100, 150};
  std::vector<double> y;
  for (double v : x) y.push_back(160 + 0.4 * v);
  EXPECT_GT(FitLinear(x, y).r_squared, FitQuadratic(x, y).r_squared);
}

TEST(Fit, ConstantDataHasZeroSlope) {
  std::vector<double> x = {1, 2, 3};
  std::vector<double> y = {5, 5, 5};
  const FitResult fit = FitLinear(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);  // degenerate: defined as 1
}

TEST(Experiments, PingPongReportsCostCounters) {
  ExperimentOptions options;
  options.rounds = 5;
  auto result = RunPingPong(domains::topologies::Flat(4), ServerId(0),
                            ServerId(3), options);
  ASSERT_TRUE(result.ok()) << result.status();
  const ExperimentResult& r = result.value();
  EXPECT_EQ(r.servers, 4u);
  EXPECT_EQ(r.rounds, 5u);
  EXPECT_GT(r.avg_rtt_ms, 0.0);
  EXPECT_GE(r.max_rtt_ms, r.min_rtt_ms);
  EXPECT_GT(r.wire_bytes, 0u);
  EXPECT_GT(r.stamp_bytes, 0u);
  EXPECT_GT(r.disk_bytes, 0u);
  EXPECT_GT(r.sim_events, 0u);
}

TEST(Experiments, LocalPingPongNeedsNoWireTraffic) {
  ExperimentOptions options;
  options.rounds = 5;
  auto result = RunPingPong(domains::topologies::Flat(3), ServerId(0),
                            ServerId(0), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().wire_frames, 0u);
  EXPECT_GT(result.value().avg_rtt_ms, 0.0);
}

TEST(Experiments, FullMatrixStampsCostMoreWireBytesThanUpdates) {
  ExperimentOptions options;
  options.rounds = 5;
  auto full = RunPingPong(
      domains::topologies::Flat(12, clocks::StampMode::kFullMatrix),
      ServerId(0), ServerId(11), options);
  auto updates = RunPingPong(
      domains::topologies::Flat(12, clocks::StampMode::kUpdates),
      ServerId(0), ServerId(11), options);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(updates.ok());
  EXPECT_GT(full.value().stamp_bytes, 10 * updates.value().stamp_bytes);
}

TEST(Experiments, DomainRunBeatsFlatRunAtScale) {
  // The Figure 11 claim at one point: n = 64.
  ExperimentOptions options;
  options.rounds = 3;
  auto flat = RunPingPong(
      domains::topologies::Flat(64, clocks::StampMode::kFullMatrix),
      ServerId(0), ServerId(63), options);
  auto bus = RunPingPong(domains::topologies::Bus(8, 8), ServerId(0),
                         ServerId(63), options);
  ASSERT_TRUE(flat.ok());
  ASSERT_TRUE(bus.ok());
  EXPECT_LT(bus.value().avg_rtt_ms, flat.value().avg_rtt_ms);
}

TEST(Experiments, BroadcastScalesWithServerCount) {
  ExperimentOptions options;
  options.rounds = 2;
  auto small = RunBroadcast(domains::topologies::Flat(5), ServerId(0),
                            options);
  auto large = RunBroadcast(domains::topologies::Flat(15), ServerId(0),
                            options);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large.value().avg_rtt_ms, small.value().avg_rtt_ms);
}

}  // namespace
}  // namespace cmom::workload
