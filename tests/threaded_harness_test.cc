// End-to-end tests of the full MOM over the threaded in-process
// transport: real concurrency, wall-clock time, same causal guarantees.
#include "workload/threaded_harness.h"

#include <gtest/gtest.h>

#include <thread>

#include "domains/topologies.h"
#include "workload/agents.h"

namespace cmom::workload {
namespace {

TEST(ThreadedHarness, UnicastAcrossThreads) {
  ThreadedHarness harness(domains::topologies::Flat(3));
  EchoAgent* echo = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(2)) {
                      auto agent = std::make_unique<EchoAgent>();
                      echo = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(2), 1, kPing).ok());
  harness.WaitQuiescent();
  EXPECT_EQ(echo->pings_seen(), 1u);
}

TEST(ThreadedHarness, PingPongDriverOverThreads) {
  ThreadedHarness harness(domains::topologies::Bus(2, 2));
  PingPongDriver* driver = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(0)) {
                      auto agent = std::make_unique<PingPongDriver>(
                          AgentId{ServerId(3), 1}, 20);
                      driver = agent.get();
                      server.AttachAgent(2, std::move(agent));
                    }
                    if (id == ServerId(3)) {
                      server.AttachAgent(1, std::make_unique<EchoAgent>());
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 2, ServerId(0), 2, kStart).ok());
  harness.WaitQuiescent();
  ASSERT_NE(driver, nullptr);
  EXPECT_TRUE(driver->done());
  EXPECT_EQ(driver->round_trip_ns().size(), 20u);
}

TEST(ThreadedHarness, ConcurrentSendersIntoOneServerAreSafe) {
  // SendMessage is part of the public thread-safe API: hammer one
  // server from many application threads and require exactly-once,
  // per-sender-ordered delivery.
  ThreadedHarness harness(domains::topologies::Flat(2));
  SinkAgent* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<SinkAgent>();
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&harness, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto sent = harness.Send(ServerId(0),
                                 static_cast<std::uint32_t>(100 + t),
                                 ServerId(1), 1, "hammer");
        EXPECT_TRUE(sent.ok());
      }
    });
  }
  for (auto& thread : threads) thread.join();
  harness.WaitQuiescent();

  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->received(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
}

TEST(ThreadedHarness, ChatterStormIsCausalUnderRealConcurrency) {
  auto config = domains::topologies::Bus(3, 3);
  ThreadedHarness harness(config);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(1, std::make_unique<ChatterAgent>(
                                              id.value() + 31, peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, kChat,
                          ChatterAgent::MakeChatPayload(5))
                    .ok());
  }
  harness.WaitQuiescent();

  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << (report.violations.empty()
              ? ""
              : report.violations.front().description);
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_GT(report.messages_delivered, config.servers.size());
}

}  // namespace
}  // namespace cmom::workload
