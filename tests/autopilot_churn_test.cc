// Autopilot guardrails under fire (chaos label).
//
// 1. The churn soak at bench-smoke scale: the controller must execute
//    several distinct reconfigurations autonomously (split AND merge
//    included) while the whole-run oracle stays green.
// 2. The fence-timeout guardrail: a crashed server's peer holds an
//    unACKed frame, so the quiesce phase cannot drain within budget;
//    the controller must abort the epoch, back off, and leave the bus
//    serving (no wedge) at the old epoch.
#include <gtest/gtest.h>

#include <memory>

#include "autopilot/churn.h"
#include "autopilot/controller.h"
#include "causality/checker.h"
#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/threaded_harness.h"

namespace cmom::autopilot {
namespace {

TEST(AutopilotChurnTest, ChurnSoakReshapesAutonomouslyAndStaysCausal) {
  ChurnSoakOptions options;
  options.seed = 42;
  options.chain_domains = 5;
  options.domain_size = 4;
  options.windows = 24;
  options.sends_per_window = 250;
  options.joiners = 2;
  options.leavers = 1;

  auto run = RunChurnSoak(options);
  ASSERT_TRUE(run.ok()) << run.status().to_string();
  const ChurnReport& report = run.value();

  EXPECT_TRUE(report.causal) << report.first_violation;
  EXPECT_TRUE(report.exactly_once) << report.first_violation;
  EXPECT_EQ(report.aborts, 0u);
  EXPECT_GE(report.epochs_taken, 3u);
  EXPECT_GE(report.splits, 1u);
  EXPECT_GE(report.merges, 1u);
  const int distinct = (report.splits > 0) + (report.merges > 0) +
                       (report.promotes > 0) + (report.absorbs > 0) +
                       (report.retires > 0);
  EXPECT_GE(distinct, 3);
  EXPECT_EQ(report.final_epoch, report.epochs_taken);
}

TEST(AutopilotChurnTest, FenceTimeoutAbortsBacksOffAndDoesNotWedge) {
  domains::MomConfig config = domains::topologies::Daisy(4, 3);
  workload::ThreadedHarness harness(config);
  ASSERT_TRUE(harness
                  .Init([](ServerId, mom::AgentServer& server) {
                    server.AttachAgent(
                        0, std::make_unique<workload::SinkAgent>());
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  AutopilotOptions options;
  options.min_improvement = 0.01;
  options.quiesce_timeout_ms = 300;
  options.backoff_windows = 2;
  Autopilot pilot(&harness, config, 0, options);

  // Daisy(4,3): domain 0 = {0,1,2}, domain 1 = {2,3,4}, ..., server 8
  // is interior to the far end of the chain.
  const ServerId hot_a(0), hot_b(1), hot_c(3);
  const ServerId victim(8), peer(7);
  const auto hotspot_burst = [&] {
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(harness.Send(hot_a, 0, hot_c, 0, "hot").ok());
      ASSERT_TRUE(harness.Send(hot_b, 0, hot_c, 0, "hot").ok());
      ASSERT_TRUE(harness.Send(hot_c, 0, hot_a, 0, "hot").ok());
    }
  };

  // Window 1: the cross-domain hotspot makes the 0+1 merge the winner;
  // hysteresis holds it for confirmation.
  hotspot_burst();
  harness.WaitQuiescent();
  const Decision first = pilot.Tick();
  ASSERT_EQ(first.verdict, Verdict::kHysteresis)
      << VerdictName(first.verdict) << ": " << first.reason;
  ASSERT_EQ(first.op, OpKind::kMerge);

  // Window 2: same winner -- but a crashed server's peer now holds an
  // unACKed frame, so the drain cannot complete within budget.
  hotspot_burst();
  harness.WaitQuiescent();
  harness.Crash(victim);
  ASSERT_TRUE(harness.Send(peer, 0, victim, 0, "stranded").ok());
  const Decision second = pilot.Tick();
  EXPECT_EQ(second.verdict, Verdict::kAborted)
      << VerdictName(second.verdict) << ": " << second.reason;
  EXPECT_EQ(pilot.aborts(), 1u);
  EXPECT_EQ(pilot.epoch(), 0u);  // cluster rolled back, not wedged mid-epoch
  EXPECT_EQ(pilot.epochs_taken(), 0u);

  // Window 3: guardrail backoff.
  const Decision third = pilot.Tick();
  EXPECT_EQ(third.verdict, Verdict::kBackoff);

  // The bus is not wedged: the victim restarts, the stranded frame
  // drains, and fresh traffic flows end to end at the old epoch.
  ASSERT_TRUE(harness.Restart(victim).ok());
  harness.WaitQuiescent();
  ASSERT_TRUE(harness.Send(hot_a, 0, victim, 0, "post-abort").ok());
  harness.WaitQuiescent();
  harness.HaltAll();

  const causality::Trace trace = harness.trace().Snapshot();
  const causality::CausalityChecker checker = harness.MakeChecker();
  const auto causal = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(causal.causal())
      << causal.violations.front().description;
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
}

}  // namespace
}  // namespace cmom::autopilot
