// Reactor-specific transport behavior: partial-write continuation
// under starved socket buffers, and many endpoints multiplexed onto
// the shared epoll shard pool.  The semantic contract (ordering,
// supervision, reconnect) is covered by tcp_network_test /
// tcp_mom_test, which run unchanged against the event-driven rewrite;
// this file pins the new machinery itself.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "net/tcp_network.h"

namespace cmom::net {
namespace {

using namespace std::chrono_literals;

Bytes PatternFrame(std::size_t size, std::uint8_t seed) {
  Bytes frame(size);
  for (std::size_t i = 0; i < size; ++i) {
    frame[i] = static_cast<std::uint8_t>(seed + i * 31);
  }
  return frame;
}

// A tiny SO_SNDBUF forces sendmsg to take EAGAIN mid-frame, so flushes
// stop inside a frame and resume from the recorded offset on the
// EPOLLOUT edge.  The receive buffer stays at the default: shrinking it
// would throttle the TCP window itself (delayed-ack stalls), which is
// kernel behavior, not the continuation path under test.  The receiver
// must still see every frame intact, in order, byte for byte.
TEST(EpollTransport, PartialWriteContinuationUnderTinySocketBuffers) {
  TcpNetworkOptions options;
  options.so_sndbuf = 4096;
  TcpNetwork network(24100, options);
  auto sender = network.CreateEndpoint(ServerId(0)).value();
  auto receiver = network.CreateEndpoint(ServerId(1)).value();

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Bytes> got;
  receiver->SetReceiveHandler([&](ServerId from, Bytes frame) {
    EXPECT_EQ(from, ServerId(0));
    std::lock_guard lock(mutex);
    got.push_back(std::move(frame));
    cv.notify_one();
  });
  sender->SetReceiveHandler([](ServerId, Bytes) {});

  // Each frame is ~16x the socket buffer: every flush is guaranteed to
  // be cut short at least once.
  constexpr std::size_t kFrames = 24;
  constexpr std::size_t kFrameSize = 64 * 1024;
  std::vector<Bytes> sent;
  for (std::size_t i = 0; i < kFrames; ++i) {
    sent.push_back(PatternFrame(kFrameSize, static_cast<std::uint8_t>(i)));
  }
  for (std::size_t i = 0; i < kFrames; ++i) {
    Bytes copy = sent[i];
    // Overloaded = outbox full while the slow link drains; retry.
    while (!sender->Send(ServerId(1), std::move(copy)).ok()) {
      copy = sent[i];
      std::this_thread::sleep_for(1ms);
    }
  }

  {
    std::unique_lock lock(mutex);
    const bool all = cv.wait_for(lock, 30s, [&] { return got.size() == kFrames; });
    const TransportStats st = sender->stats();
    ASSERT_TRUE(all) << "only " << got.size() << " of " << kFrames
                     << " frames arrived; sender outbox_frames="
                     << st.outbox_frames << " outbox_bytes=" << st.outbox_bytes
                     << " frames_sent=" << st.frames_sent
                     << " partial_writes=" << st.partial_writes
                     << " frames_dropped=" << st.frames_dropped
                     << " reconnects=" << st.reconnects;
    for (std::size_t i = 0; i < kFrames; ++i) {
      ASSERT_EQ(got[i].size(), sent[i].size()) << "frame " << i;
      EXPECT_EQ(0, std::memcmp(got[i].data(), sent[i].data(), sent[i].size()))
          << "frame " << i << " corrupted across partial writes";
    }
  }
  EXPECT_GT(sender->stats().partial_writes, 0u)
      << "tiny SO_SNDBUF never forced a short flush; the continuation "
         "path was not exercised";
}

// Many endpoints share one reactor: all-to-all traffic across eight
// servers lands intact with the fd load spread over the shard pool.
TEST(EpollTransport, ManyEndpointsShareReactorShards) {
  constexpr std::uint16_t kServers = 8;
  constexpr int kPerPair = 20;
  TcpNetwork network(24200);
  std::vector<std::unique_ptr<Endpoint>> endpoints;
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint64_t> received(kServers, 0);
  for (std::uint16_t id = 0; id < kServers; ++id) {
    endpoints.push_back(network.CreateEndpoint(ServerId(id)).value());
    endpoints.back()->SetReceiveHandler([&, id](ServerId, Bytes frame) {
      EXPECT_EQ(frame.size(), 64u);
      std::lock_guard lock(mutex);
      ++received[id];
      cv.notify_one();
    });
  }
  for (int round = 0; round < kPerPair; ++round) {
    for (std::uint16_t from = 0; from < kServers; ++from) {
      for (std::uint16_t to = 0; to < kServers; ++to) {
        if (from == to) continue;
        Bytes frame = PatternFrame(64, static_cast<std::uint8_t>(round));
        while (!endpoints[from]->Send(ServerId(to), std::move(frame)).ok()) {
          frame = PatternFrame(64, static_cast<std::uint8_t>(round));
          std::this_thread::sleep_for(1ms);
        }
      }
    }
  }
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kPerPair) * (kServers - 1);
  {
    std::unique_lock lock(mutex);
    ASSERT_TRUE(cv.wait_for(lock, 30s, [&] {
      for (std::uint64_t count : received) {
        if (count != expected) return false;
      }
      return true;
    }));
  }
  // The endpoints' sockets really live on the shared shard pool.
  std::uint64_t fds = 0;
  for (const ReactorShardStats& shard : network.reactor_stats()) {
    fds += shard.fds;
  }
  EXPECT_GE(fds, static_cast<std::uint64_t>(kServers));
}

}  // namespace
}  // namespace cmom::net
