// Plan-level tests of the control plane: operation helpers, remap
// derivation, epoch-record round trips, and -- the theorem guard --
// rejection of cycle-introducing proposals before any store is touched.
#include "control/plan.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "control/epoch.h"
#include "domains/config_io.h"

namespace cmom::control {
namespace {

domains::MomConfig ThreeDomainChain() {
  // D0 = {0 1 2} -- S2 -- D1 = {2 3 4} -- S4 -- D2 = {4 5}
  domains::MomConfig config;
  for (std::uint16_t s = 0; s < 6; ++s) config.servers.push_back(ServerId(s));
  config.domains.push_back(
      {DomainId(0), {ServerId(0), ServerId(1), ServerId(2)}});
  config.domains.push_back(
      {DomainId(1), {ServerId(2), ServerId(3), ServerId(4)}});
  config.domains.push_back({DomainId(2), {ServerId(4), ServerId(5)}});
  return config;
}

TEST(ReconfigPlan, BuildDerivesRemapsForSurvivorsAndNewcomers) {
  auto old_config = ThreeDomainChain();
  auto new_config = AddServerToDomain(old_config, ServerId(6), DomainId(2));
  ASSERT_TRUE(new_config.ok()) << new_config.status();

  auto plan = ReconfigPlan::Build(3, old_config, new_config.value());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan.value().from_epoch, 3u);
  EXPECT_EQ(plan.value().to_epoch, 4u);
  ASSERT_EQ(plan.value().remaps.size(), 3u);

  // D2 kept its id: old members keep their coordinates, S6 is fresh.
  const DomainRemap& d2 = plan.value().remaps[2];
  EXPECT_EQ(d2.id, DomainId(2));
  ASSERT_TRUE(d2.old_index.has_value());
  EXPECT_EQ(*d2.old_index, 2u);
  ASSERT_EQ(d2.old_of_new.size(), 3u);
  EXPECT_EQ(d2.old_of_new[0], DomainServerId(0));
  EXPECT_EQ(d2.old_of_new[1], DomainServerId(1));
  EXPECT_FALSE(d2.old_of_new[2].has_value());

  // Untouched domains map one-to-one.
  const DomainRemap& d0 = plan.value().remaps[0];
  ASSERT_TRUE(d0.old_index.has_value());
  for (std::size_t i = 0; i < d0.old_of_new.size(); ++i) {
    EXPECT_EQ(d0.old_of_new[i], DomainServerId(static_cast<std::uint16_t>(i)));
  }

  // AllServers covers both configs (the cutover touches every store).
  const auto all = plan.value().AllServers();
  EXPECT_EQ(all.size(), 7u);
  EXPECT_TRUE(std::find(all.begin(), all.end(), ServerId(6)) != all.end());
}

TEST(ReconfigPlan, BuildRejectsCycleIntroducingProposal) {
  auto old_config = ThreeDomainChain();
  // Putting S0 into D2 closes the loop D0-S0-D2-S4-D1-S2-D0.
  auto cyclic = AddServerToDomain(old_config, ServerId(0), DomainId(2));
  ASSERT_TRUE(cyclic.ok()) << cyclic.status();
  auto plan = ReconfigPlan::Build(0, old_config, cyclic.value());
  EXPECT_FALSE(plan.ok());
}

TEST(ReconfigPlan, BuildRejectsStampModeChange) {
  auto old_config = ThreeDomainChain();
  auto new_config = old_config;
  new_config.stamp_mode = clocks::StampMode::kFullMatrix;
  auto plan = ReconfigPlan::Build(0, old_config, new_config);
  EXPECT_FALSE(plan.ok());
}

TEST(ReconfigPlan, BuildRejectsCausalCoreChangeOnSurvivingDomain) {
  // A domain's causal core cannot change across an epoch: the stores
  // hold images in the old core's format and no remap converts them.
  auto old_config = ThreeDomainChain();
  auto new_config = old_config;
  new_config.causal_core_overrides.emplace_back(
      DomainId(0), clocks::CausalCoreKind::kHybrid);
  auto plan = ReconfigPlan::Build(0, old_config, new_config);
  EXPECT_FALSE(plan.ok());

  // Flipping the global default has the same effect on every domain.
  auto flipped = old_config;
  flipped.causal_core = clocks::CausalCoreKind::kReduced;
  EXPECT_FALSE(ReconfigPlan::Build(0, old_config, flipped).ok());
}

TEST(ReconfigPlanOps, MergeDomainsRejectsMixedCores) {
  auto config = ThreeDomainChain();
  config.causal_core_overrides.emplace_back(DomainId(1),
                                            clocks::CausalCoreKind::kHybrid);
  // D1 runs hybrid, D2 the default matrix: their durable state is not
  // interconvertible, so the merge must be refused up front.
  auto mixed = MergeDomains(config, DomainId(1), DomainId(2));
  EXPECT_FALSE(mixed.ok());

  // With both domains on the same core the merge goes through, keeps
  // the core, and drops the vanished domain's override.
  config.causal_core_overrides.emplace_back(DomainId(2),
                                            clocks::CausalCoreKind::kHybrid);
  auto merged = MergeDomains(config, DomainId(1), DomainId(2));
  ASSERT_TRUE(merged.ok()) << merged.status();
  EXPECT_EQ(merged.value().CoreFor(DomainId(1)),
            clocks::CausalCoreKind::kHybrid);
  for (const auto& [domain, kind] : merged.value().causal_core_overrides) {
    EXPECT_NE(domain, DomainId(2)) << "stale override for the retired id";
  }
}

TEST(ReconfigPlanOps, SplitDomainInheritsTheNonDefaultCore) {
  auto config = ThreeDomainChain();
  config.causal_core_overrides.emplace_back(DomainId(1),
                                            clocks::CausalCoreKind::kReduced);
  domains::TrafficProfile traffic(3);
  traffic.set(1, 2, 100.0);
  traffic.set(0, 1, 1.0);
  auto split = SplitDomain(config, DomainId(1), traffic, DomainId(10),
                           /*max_domain_size=*/2);
  ASSERT_TRUE(split.ok()) << split.status();
  // Every part of the old D1 -- the id-keeping part and the split-off
  // ones -- keeps running the reduced core.
  std::size_t parts = 0;
  for (const auto& spec : split.value().domains) {
    if (spec.id != DomainId(1) && spec.id.value() < 10) continue;
    ++parts;
    EXPECT_EQ(split.value().CoreFor(spec.id),
              clocks::CausalCoreKind::kReduced)
        << "domain " << to_string(spec.id);
  }
  EXPECT_GE(parts, 2u);
  // And the transition validates end to end.
  auto plan = ReconfigPlan::Build(0, config, split.value());
  EXPECT_TRUE(plan.ok()) << plan.status();
}

TEST(ReconfigPlanOps, RemoveServerDropsMembershipsAndRegistration) {
  auto config = ThreeDomainChain();
  auto removed = RemoveServer(config, ServerId(5));
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ(removed.value().servers.size(), 5u);
  // D2 = {4} survives (one member left).
  ASSERT_EQ(removed.value().domains.size(), 3u);
  EXPECT_EQ(removed.value().domains[2].members,
            std::vector<ServerId>{ServerId(4)});

  // Removing the last member of a domain must fail instead.
  auto emptied = RemoveServer(removed.value(), ServerId(4));
  EXPECT_FALSE(emptied.ok());
}

TEST(ReconfigPlanOps, MergeDomainsAppendsAndRetiresId) {
  auto config = ThreeDomainChain();
  auto merged = MergeDomains(config, DomainId(1), DomainId(2));
  ASSERT_TRUE(merged.ok()) << merged.status();
  ASSERT_EQ(merged.value().domains.size(), 2u);
  // a's member order first, then b's members not already present.
  const std::vector<ServerId> want{ServerId(2), ServerId(3), ServerId(4),
                                   ServerId(5)};
  EXPECT_EQ(merged.value().domains[1].members, want);
  // The merged config is a valid epoch transition.
  auto plan = ReconfigPlan::Build(0, config, merged.value());
  EXPECT_TRUE(plan.ok()) << plan.status();
}

TEST(ReconfigPlanOps, PromoteRouterRequiresExistingMembership) {
  auto config = ThreeDomainChain();
  EXPECT_FALSE(PromoteRouter(config, ServerId(9), DomainId(0)).ok());
  auto promoted = PromoteRouter(config, ServerId(5), DomainId(1));
  ASSERT_TRUE(promoted.ok()) << promoted.status();
  // The promotion itself is well-formed, but S4 and S5 now BOTH bridge
  // D1 and D2 -- a bipartite cycle (D1-S4-D2-S5-D1), so the epoch
  // transition must be rejected at Build time.
  auto plan = ReconfigPlan::Build(0, config, promoted.value());
  EXPECT_FALSE(plan.ok());
}

TEST(ReconfigPlanOps, SplitDomainKeepsIdAndStaysAcyclic) {
  auto config = ThreeDomainChain();
  // D1 = {2 3 4}: S3 talks mostly to S4; keep them together.
  domains::TrafficProfile traffic(3);
  traffic.set(1, 2, 100.0);  // positions of S3, S4 in D1's member list
  traffic.set(0, 1, 1.0);
  auto split = SplitDomain(config, DomainId(1), traffic, DomainId(10),
                           /*max_domain_size=*/2);
  ASSERT_TRUE(split.ok()) << split.status();
  EXPECT_GT(split.value().domains.size(), config.domains.size());
  // Part 0 keeps the old id; the new parts use fresh ids.
  bool kept = false;
  for (const auto& spec : split.value().domains) {
    if (spec.id == DomainId(1)) kept = true;
  }
  EXPECT_TRUE(kept);
  // The split output chains through routers, so the whole graph is
  // still a tree and the transition validates.
  auto plan = ReconfigPlan::Build(0, config, split.value());
  EXPECT_TRUE(plan.ok()) << plan.status();
}

TEST(EpochRecordCodec, RoundTripsBothConfigTexts) {
  EpochRecord record;
  record.epoch = 7;
  record.config_text = domains::FormatMomConfig(ThreeDomainChain());
  record.prev_config_text = "servers = 2\ndomain 0 = 0 1\n";
  const Bytes encoded = EncodeEpochRecord(record);
  ByteReader in(encoded);
  auto decoded = EpochRecord::Decode(in);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded.value(), record);
}

TEST(EpochRecordCodec, StoreHelpersReadBackWhatWasWritten) {
  mom::InMemoryStore store;
  auto none = ReadEpochRecord(store, kEpochCurrentKey);
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().has_value());
  auto epoch0 = CurrentEpochOf(store);
  ASSERT_TRUE(epoch0.ok());
  EXPECT_EQ(epoch0.value(), 0u);

  EpochRecord record{4, "servers = 2\ndomain 0 = 0 1\n", ""};
  store.Put(kEpochCurrentKey, EncodeEpochRecord(record));
  ASSERT_TRUE(store.Commit().ok());
  auto read = ReadEpochRecord(store, kEpochCurrentKey);
  ASSERT_TRUE(read.ok());
  ASSERT_TRUE(read.value().has_value());
  EXPECT_EQ(*read.value(), record);
  auto epoch = CurrentEpochOf(store);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(epoch.value(), 4u);
}

}  // namespace
}  // namespace cmom::control
