// Cross-core causal-equivalence property tests.
//
// All three causal cores implement *exact* causal delivery, so on an
// identical arrival sequence they must make identical delivery
// decisions -- same delivery order, exactly-once, and an empty
// hold-back queue once every message has arrived.  The first suite
// pins that directly against the cores over randomized schedules; the
// second runs the full simulated middleware with each core selected
// via MomConfig::causal_core and checks the end-to-end contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <tuple>
#include <vector>

#include "clocks/causal_core.h"
#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using clocks::CausalCore;
using clocks::CausalCoreKind;
using clocks::CausalCoreKindName;
using clocks::CheckResult;
using clocks::MakeCausalCore;
using clocks::Stamp;
using clocks::StampMode;

// xorshift64*: deterministic schedule source, identical across cores.
struct Rng {
  std::uint64_t state;
  std::uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545F4914F6CDD1DULL;
  }
  std::size_t Below(std::size_t n) { return Next() % n; }
};

enum class Pattern { kRing, kUniform };

struct SentMessage {
  std::uint16_t src;
  std::uint16_t dst;
  std::uint64_t seq;
  Stamp stamp;
};

// One (src, dst, seq) delivery, encoded for order comparison.
using DeliveryKey = std::uint64_t;
DeliveryKey Key(std::uint16_t src, std::uint16_t dst, std::uint64_t seq) {
  return (static_cast<DeliveryKey>(src) << 48) |
         (static_cast<DeliveryKey>(dst) << 32) | seq;
}

// Runs a deterministic random schedule over `n` nodes with the given
// core and returns the global delivery order.  The schedule (which
// link sends, which link's head is received next) depends only on the
// seed, never on core state, so two cores see identical arrival
// sequences.
std::vector<DeliveryKey> RunSchedule(CausalCoreKind kind, StampMode mode,
                                     Pattern pattern, std::size_t n,
                                     std::size_t messages,
                                     std::uint64_t seed) {
  std::vector<std::unique_ptr<CausalCore>> cores;
  for (std::uint16_t i = 0; i < n; ++i) {
    cores.push_back(MakeCausalCore(kind, DomainServerId(i), n, mode));
  }
  std::vector<std::deque<SentMessage>> links(n * n);  // src * n + dst
  std::vector<std::deque<SentMessage>> holdback(n);
  std::vector<std::uint64_t> sent_seq(n * n, 0);
  std::vector<DeliveryKey> order;
  std::size_t sent = 0;
  std::size_t in_flight = 0;
  Rng rng{seed};

  auto deliver = [&](std::uint16_t dst, const SentMessage& m) {
    cores[dst]->OnDeliver(DomainServerId(m.src), m.stamp);
    order.push_back(Key(m.src, m.dst, m.seq));
  };
  auto drain_holdback = [&](std::uint16_t dst) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      for (std::size_t i = 0; i < holdback[dst].size(); ++i) {
        const SentMessage& m = holdback[dst][i];
        const CheckResult verdict =
            cores[dst]->CheckReceive(DomainServerId(m.src), m.stamp);
        EXPECT_NE(verdict, CheckResult::kDuplicate);
        if (verdict != CheckResult::kDeliver) continue;
        deliver(dst, m);
        holdback[dst].erase(holdback[dst].begin() + i);
        progressed = true;
        break;
      }
    }
  };
  auto receive_one = [&](std::size_t link) {
    SentMessage m = links[link].front();
    links[link].pop_front();
    --in_flight;
    const std::uint16_t dst = m.dst;
    const CheckResult verdict =
        cores[dst]->CheckReceive(DomainServerId(m.src), m.stamp);
    EXPECT_NE(verdict, CheckResult::kDuplicate);
    if (verdict == CheckResult::kDeliver) {
      deliver(dst, m);
      drain_holdback(dst);
    } else {
      holdback[dst].push_back(std::move(m));
    }
  };
  auto send_one = [&] {
    const std::uint16_t src = static_cast<std::uint16_t>(rng.Below(n));
    std::uint16_t dst;
    if (pattern == Pattern::kRing) {
      dst = static_cast<std::uint16_t>(
          rng.Below(2) == 0 ? (src + 1) % n : (src + n - 1) % n);
    } else {
      dst = static_cast<std::uint16_t>(rng.Below(n - 1));
      if (dst >= src) ++dst;
    }
    SentMessage m;
    m.src = src;
    m.dst = dst;
    m.seq = ++sent_seq[src * n + dst];
    m.stamp = cores[src]->PrepareSend(DomainServerId(dst));
    links[src * n + dst].push_back(std::move(m));
    ++sent;
    ++in_flight;
  };

  // `in_flight` counts messages sitting in links (sent, not yet
  // received), so the whole schedule -- who sends, which link head is
  // received next -- is a pure function of the seed, independent of
  // any core's verdicts.  A divergent (buggy) core therefore still
  // sees the exact reference arrival sequence.
  constexpr std::size_t kMaxInFlight = 24;
  while (sent < messages || in_flight > 0) {
    const bool may_send = sent < messages && in_flight < kMaxInFlight;
    std::vector<std::size_t> pending;
    for (std::size_t l = 0; l < links.size(); ++l) {
      if (!links[l].empty()) pending.push_back(l);
    }
    if (may_send && (pending.empty() || rng.Below(2) == 0)) {
      send_one();
    } else if (!pending.empty()) {
      receive_one(pending[rng.Below(pending.size())]);
    } else {
      ADD_FAILURE() << "schedule wedged: nothing to send or receive";
      break;
    }
  }

  // Quiescence: with every message received, exact causal delivery
  // cannot leave anything parked.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(holdback[i].empty())
        << CausalCoreKindName(kind) << ": node " << i << " leaked "
        << holdback[i].size() << " held-back messages";
  }
  EXPECT_EQ(order.size(), messages);
  return order;
}

class CausalCoreEquivalence
    : public ::testing::TestWithParam<
          std::tuple<std::size_t, std::uint64_t, Pattern>> {};

TEST_P(CausalCoreEquivalence, AllCoresAgreeOnDeliveryOrder) {
  const auto& [n, seed, pattern] = GetParam();
  const std::size_t messages = 60 * n;

  const auto reference = RunSchedule(
      CausalCoreKind::kMatrix, StampMode::kFullMatrix, pattern, n, messages,
      seed);
  ASSERT_EQ(reference.size(), messages);

  // Exactly-once: every (src, dst, seq) appears exactly once.
  {
    auto sorted = reference;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }

  const struct {
    CausalCoreKind kind;
    StampMode mode;
    const char* name;
  } contenders[] = {
      {CausalCoreKind::kMatrix, StampMode::kUpdates, "matrix_updates"},
      {CausalCoreKind::kReduced, StampMode::kUpdates, "reduced"},
      {CausalCoreKind::kHybrid, StampMode::kUpdates, "hybrid"},
  };
  for (const auto& c : contenders) {
    const auto order =
        RunSchedule(c.kind, c.mode, pattern, n, messages, seed);
    EXPECT_EQ(order, reference) << c.name
                                << " diverged from the full-matrix core";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CausalCoreEquivalence,
    ::testing::Combine(::testing::Values(3, 5, 8),
                       ::testing::Values(11, 22, 33),
                       ::testing::Values(Pattern::kRing, Pattern::kUniform)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == Pattern::kRing ? "_ring"
                                                        : "_uniform");
    });

// End-to-end: the full simulated middleware with each core selected via
// the config keeps the reliability contract -- causal, exactly-once,
// quiescent -- over randomized chatter on flat and multi-domain
// topologies.
class CausalCoreSimTraffic
    : public ::testing::TestWithParam<
          std::tuple<CausalCoreKind, bool, std::uint64_t>> {};

TEST_P(CausalCoreSimTraffic, CausalExactlyOnceQuiescent) {
  const auto& [kind, multi_domain, seed] = GetParam();
  auto config = multi_domain ? domains::topologies::Bus(3, 3)
                             : domains::topologies::Flat(6);
  config.causal_core = kind;

  workload::SimHarnessOptions options;
  options.simulate_processing_costs = false;
  workload::SimHarness harness(config, options);

  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(
                        1, std::make_unique<workload::ChatterAgent>(
                               seed * 1000 + id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          workload::ChatterAgent::MakeChatPayload(5))
                    .ok());
  }
  harness.Run();

  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << CausalCoreKindName(kind) << " seed " << seed << ": "
      << report.violations.front().description;
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
  EXPECT_EQ(report.messages_sent, report.messages_delivered);
  EXPECT_GT(report.messages_sent, 3u * config.servers.size());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CausalCoreSimTraffic,
    ::testing::Combine(::testing::Values(CausalCoreKind::kMatrix,
                                         CausalCoreKind::kHybrid,
                                         CausalCoreKind::kReduced),
                       ::testing::Bool(), ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(CausalCoreKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_bus" : "_flat") + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

// Mixed deployment: different domains running different cores in the
// same config (per-domain overrides) still satisfy the global
// end-to-end contract.
TEST(CausalCoreSimTraffic, MixedCoresAcrossDomains) {
  auto config = domains::topologies::Bus(3, 3);
  config.causal_core = CausalCoreKind::kMatrix;
  ASSERT_GE(config.domains.size(), 2u);
  config.causal_core_overrides.emplace_back(config.domains[0].id,
                                            CausalCoreKind::kHybrid);
  config.causal_core_overrides.emplace_back(config.domains[1].id,
                                            CausalCoreKind::kReduced);

  workload::SimHarnessOptions options;
  options.simulate_processing_costs = false;
  workload::SimHarness harness(config, options);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(
                        1, std::make_unique<workload::ChatterAgent>(
                               77 + id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          workload::ChatterAgent::MakeChatPayload(5))
                    .ok());
  }
  harness.Run();

  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

}  // namespace
}  // namespace cmom
