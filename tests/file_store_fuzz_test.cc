// Crash-consistency fuzz for the file-backed store: every possible
// torn tail (truncation at each byte), every single-byte corruption,
// random multi-byte corruption, and the compaction rename window.  The
// invariant throughout: recovery yields EXACTLY the state of the
// longest prefix of whole, uncorrupted transactions -- never a crash,
// never a mix of old and new, never data past the first bad record.
#include "mom/file_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.h"
#include "common/rng.h"

namespace cmom::mom {
namespace {

namespace fs = std::filesystem;

constexpr int kCommits = 30;
constexpr int kKeys = 5;

class FileStoreFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("cmom_fuzz_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    scratch_ = dir_;
    scratch_ += "_scratch";
    fs::remove_all(dir_);
    fs::remove_all(scratch_);
    // The corruption log lines are expected by the hundreds here.
    saved_level_ = GetLogLevel();
    SetLogLevel(LogLevel::kOff);
  }
  void TearDown() override {
    SetLogLevel(saved_level_);
    fs::remove_all(dir_);
    fs::remove_all(scratch_);
  }

  // Runs the reference workload: commit i (1-based) puts seq=i and
  // k<i%kKeys>=i.  Returns the WAL size after each commit, so any byte
  // offset maps to the number of fully committed transactions before
  // it.
  std::vector<std::uintmax_t> RunWorkload() {
    std::vector<std::uintmax_t> offsets;
    auto store = FileStore::Open(dir_).value();
    for (int i = 1; i <= kCommits; ++i) {
      store->Put("seq", Bytes{static_cast<std::uint8_t>(i)});
      store->Put("k" + std::to_string(i % kKeys),
                 Bytes{static_cast<std::uint8_t>(i)});
      EXPECT_TRUE(store->Commit().ok());
      offsets.push_back(fs::file_size(dir_ / "wal.log"));
    }
    return offsets;
  }

  static Bytes ReadFile(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return Bytes(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }

  // Recreates the scratch store directory holding exactly `wal` as its
  // write-ahead log and opens it.
  std::unique_ptr<FileStore> OpenScratchWal(const Bytes& wal) {
    fs::remove_all(scratch_);
    fs::create_directories(scratch_);
    std::ofstream out(scratch_ / "wal.log", std::ios::binary);
    out.write(reinterpret_cast<const char*>(wal.data()),
              static_cast<std::streamsize>(wal.size()));
    out.close();
    auto opened = FileStore::Open(scratch_);
    EXPECT_TRUE(opened.ok()) << opened.status();
    return opened.ok() ? std::move(opened).value() : nullptr;
  }

  // Asserts `store` holds exactly the state of the first `p` commits.
  static void ExpectPrefixState(FileStore& store, int p,
                                const std::string& context) {
    auto seq = store.Get("seq");
    if (p == 0) {
      EXPECT_FALSE(seq.has_value()) << context;
    } else {
      ASSERT_TRUE(seq.has_value()) << context;
      EXPECT_EQ((*seq)[0], p) << context;
    }
    for (int j = 0; j < kKeys; ++j) {
      int last = 0;
      for (int i = p; i >= 1; --i) {
        if (i % kKeys == j) {
          last = i;
          break;
        }
      }
      auto value = store.Get("k" + std::to_string(j));
      if (last == 0) {
        EXPECT_FALSE(value.has_value()) << context << " key k" << j;
      } else {
        ASSERT_TRUE(value.has_value()) << context << " key k" << j;
        EXPECT_EQ((*value)[0], last) << context << " key k" << j;
      }
    }
  }

  static int PrefixBefore(const std::vector<std::uintmax_t>& offsets,
                          std::uintmax_t byte) {
    int p = 0;
    for (std::uintmax_t end : offsets) {
      if (end <= byte) ++p;
    }
    return p;
  }

  fs::path dir_;
  fs::path scratch_;
  LogLevel saved_level_ = LogLevel::kInfo;
};

// Crash mid-append at EVERY byte boundary: the store must come back
// with exactly the longest whole-transaction prefix.
TEST_F(FileStoreFuzzTest, TruncationAtEveryByteRecoversExactPrefix) {
  const auto offsets = RunWorkload();
  const Bytes wal = ReadFile(dir_ / "wal.log");
  ASSERT_EQ(wal.size(), offsets.back());

  for (std::size_t len = 0; len <= wal.size(); ++len) {
    Bytes torn(wal.begin(), wal.begin() + static_cast<std::ptrdiff_t>(len));
    auto store = OpenScratchWal(torn);
    ASSERT_NE(store, nullptr);
    ExpectPrefixState(*store, PrefixBefore(offsets, len),
                      "truncated at " + std::to_string(len));
  }
}

// Flip every single byte in turn: CRC (or the length guard) must stop
// replay at the transaction containing the flip, keeping the prefix.
TEST_F(FileStoreFuzzTest, SingleByteCorruptionRecoversExactPrefix) {
  const auto offsets = RunWorkload();
  const Bytes wal = ReadFile(dir_ / "wal.log");

  for (std::size_t byte = 0; byte < wal.size(); ++byte) {
    Bytes corrupt = wal;
    corrupt[byte] ^= 0xA5;
    auto store = OpenScratchWal(corrupt);
    ASSERT_NE(store, nullptr);
    ExpectPrefixState(*store, PrefixBefore(offsets, byte),
                      "flipped byte " + std::to_string(byte));
  }
}

// Seeded shotgun: several flips at once; the earliest one decides the
// surviving prefix (everything after the first bad record is torn).
TEST_F(FileStoreFuzzTest, RandomMultiByteCorruptionKeepsPrefixInvariant) {
  const auto offsets = RunWorkload();
  const Bytes wal = ReadFile(dir_ / "wal.log");

  Rng rng(20260806);
  for (int round = 0; round < 100; ++round) {
    Bytes corrupt = wal;
    std::uintmax_t earliest = wal.size();
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t byte =
          static_cast<std::size_t>(rng.NextBelow(wal.size()));
      corrupt[byte] ^= static_cast<std::uint8_t>(1 + rng.NextBelow(255));
      earliest = std::min<std::uintmax_t>(earliest, byte);
    }
    auto store = OpenScratchWal(corrupt);
    ASSERT_NE(store, nullptr);
    ExpectPrefixState(*store, PrefixBefore(offsets, earliest),
                      "round " + std::to_string(round));
  }
}

// Crash between Compact's rename and the WAL truncation: the new
// snapshot plus the stale pre-compaction WAL must replay to the same
// state (puts are idempotent full-value writes, deletes re-delete).
TEST_F(FileStoreFuzzTest, StaleWalAfterCompactionRenameIsIdempotent) {
  (void)RunWorkload();
  const Bytes stale_wal = ReadFile(dir_ / "wal.log");
  {
    auto store = FileStore::Open(dir_).value();
    store->Delete("k0");  // a delete in the stale tail too
    ASSERT_TRUE(store->Commit().ok());
    ASSERT_TRUE(store->Compact().ok());
  }
  // Re-install the pre-compaction WAL as if truncation never happened.
  {
    std::ofstream out(dir_ / "wal.log", std::ios::binary);
    out.write(reinterpret_cast<const char*>(stale_wal.data()),
              static_cast<std::streamsize>(stale_wal.size()));
  }
  auto store = FileStore::Open(dir_).value();
  // Replaying the stale ops on top of the snapshot re-applies commits
  // 1..kCommits in order, converging on exactly the prefix state --
  // including resurrecting k0 (its delete was folded into the snapshot,
  // but the surviving WAL is authoritative for everything it holds,
  // which is what a real crash inside the rename window produces).
  ExpectPrefixState(*store, kCommits, "stale WAL replay");
}

// Corrupting the snapshot itself must not take recovery down: the
// snapshot is discarded as a torn transaction and the (empty) WAL
// yields an empty store.
TEST_F(FileStoreFuzzTest, CorruptSnapshotIsDiscardedNotFatal) {
  (void)RunWorkload();
  {
    auto store = FileStore::Open(dir_).value();
    ASSERT_TRUE(store->Compact().ok());
  }
  Bytes snapshot = ReadFile(dir_ / "snapshot.log");
  ASSERT_GT(snapshot.size(), 8u);
  for (const std::size_t byte :
       {std::size_t{0}, std::size_t{5}, snapshot.size() / 2,
        snapshot.size() - 1}) {
    Bytes corrupt = snapshot;
    corrupt[byte] ^= 0xA5;
    {
      std::ofstream out(dir_ / "snapshot.log", std::ios::binary);
      out.write(reinterpret_cast<const char*>(corrupt.data()),
                static_cast<std::streamsize>(corrupt.size()));
    }
    auto opened = FileStore::Open(dir_);
    ASSERT_TRUE(opened.ok()) << opened.status();
    EXPECT_FALSE(opened.value()->Get("seq").has_value())
        << "snapshot flipped at " << byte;
  }
}

// A crash *before* the rename leaves snapshot.log.tmp behind; recovery
// must ignore and remove it while trusting the old snapshot + WAL.
TEST_F(FileStoreFuzzTest, OrphanSnapshotTmpNeverShadowsRealState) {
  const auto offsets = RunWorkload();
  (void)offsets;
  std::ofstream(dir_ / "snapshot.log.tmp") << "half-written snapshot";
  auto store = FileStore::Open(dir_).value();
  ExpectPrefixState(*store, kCommits, "orphan tmp");
  EXPECT_FALSE(fs::exists(dir_ / "snapshot.log.tmp"));
}

}  // namespace
}  // namespace cmom::mom
