// Tests for the in-process threaded transport.
#include "net/inproc_network.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace cmom::net {
namespace {

TEST(InprocNetwork, DeliversAcrossThreads) {
  InprocNetwork network;
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<Bytes> received;
  b->SetReceiveHandler([&](ServerId from, Bytes frame) {
    EXPECT_EQ(from, ServerId(0));
    std::lock_guard lock(mutex);
    received.push_back(std::move(frame));
    cv.notify_one();
  });

  ASSERT_TRUE(a->Send(ServerId(1), Bytes{9, 8, 7}).ok());
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return !received.empty(); });
  EXPECT_EQ(received[0], (Bytes{9, 8, 7}));
}

TEST(InprocNetwork, FifoPerSender) {
  InprocNetwork network;
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();

  std::vector<int> order;
  std::atomic<int> count{0};
  b->SetReceiveHandler([&](ServerId, Bytes frame) {
    order.push_back(frame[0]);
    ++count;
  });
  for (std::uint8_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{i}).ok());
  }
  network.WaitQuiescent();
  ASSERT_EQ(count.load(), 100);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(InprocNetwork, BidirectionalPingPong) {
  InprocNetwork network;
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();

  std::atomic<int> bounces{0};
  std::mutex mutex;
  std::condition_variable cv;
  b->SetReceiveHandler([&](ServerId, Bytes frame) {
    (void)b->Send(ServerId(0), std::move(frame));
  });
  a->SetReceiveHandler([&](ServerId, Bytes frame) {
    if (++bounces < 50) {
      (void)a->Send(ServerId(1), std::move(frame));
    } else {
      // Notify under the lock: the waiter may only destroy the cv
      // after notify_one has returned.
      std::lock_guard lock(mutex);
      cv.notify_one();
    }
  });
  ASSERT_TRUE(a->Send(ServerId(1), Bytes{1}).ok());
  std::unique_lock lock(mutex);
  cv.wait(lock, [&] { return bounces.load() >= 50; });
  EXPECT_EQ(bounces.load(), 50);
}

TEST(InprocNetwork, UnknownDestinationFails) {
  InprocNetwork network;
  auto a = network.CreateEndpoint(ServerId(0)).value();
  EXPECT_EQ(a->Send(ServerId(9), Bytes{1}).code(), StatusCode::kNotFound);
}

TEST(InprocNetwork, DuplicateEndpointRejected) {
  InprocNetwork network;
  auto a = network.CreateEndpoint(ServerId(0)).value();
  EXPECT_FALSE(network.CreateEndpoint(ServerId(0)).ok());
}

TEST(InprocNetwork, WaitQuiescentSeesDrainedState) {
  InprocNetwork network;
  auto a = network.CreateEndpoint(ServerId(0)).value();
  auto b = network.CreateEndpoint(ServerId(1)).value();
  std::atomic<int> received{0};
  b->SetReceiveHandler([&](ServerId, Bytes) { ++received; });
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a->Send(ServerId(1), Bytes{1}).ok());
  }
  network.WaitQuiescent();
  EXPECT_EQ(received.load(), 20);
}

}  // namespace
}  // namespace cmom::net
