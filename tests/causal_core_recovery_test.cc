// Per-core crash recovery: every causal core's durable image must
// survive a mid-traffic crash byte-identically -- including with the
// hold-back queue populated and with commit failures injected by the
// FaultyStore decorator -- and recovery must cross-check the stored
// core kind against the configured one instead of misinterpreting the
// bytes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "causality/checker.h"
#include "clocks/causal_core.h"
#include "domains/deployment.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/faulty_store.h"
#include "mom/store.h"
#include "net/sim_network.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using clocks::CausalCoreKind;
using clocks::CausalCoreKindName;
using domains::topologies::Flat;
using mom::PersistMode;
using workload::SimHarness;
using workload::SimHarnessOptions;
using workload::SinkAgent;

SimHarnessOptions FastOptions(PersistMode mode) {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.retransmit_timeout_ns = 100 * sim::kMillisecond;
  options.persist_mode = mode;
  return options;
}

Status VerifyTrace(SimHarness& harness) {
  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  if (!report.causal()) {
    return Status::Internal(report.violations.front().description);
  }
  return checker.CheckExactlyOnce(trace);
}

// The deterministic crash scenario from the persistence tests -- S1
// crashes with a message held back and another unacknowledged -- run
// with a chosen causal core.  Returns S1's volatile image right before
// the crash and right after recovery.
struct ScenarioResult {
  Bytes before;
  Bytes after;
};

ScenarioResult RunCrashScenario(CausalCoreKind kind, PersistMode mode) {
  auto config = Flat(3);
  config.causal_core = kind;
  SimHarness harness(config, FastOptions(mode));
  auto install = [&](ServerId id, mom::AgentServer& server) {
    if (id == ServerId(1)) {
      server.AttachAgent(1, std::make_unique<SinkAgent>());
    }
  };
  EXPECT_TRUE(harness.Init(install).ok());
  EXPECT_TRUE(harness.BootAll().ok());
  harness.network().SetLinkLatency(ServerId(0), ServerId(1),
                                   400 * sim::kMillisecond);

  EXPECT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "direct").ok());
  EXPECT_TRUE(harness.Send(ServerId(0), 1, ServerId(2), 1, "relay").ok());
  harness.RunUntil(10 * sim::kMillisecond);
  EXPECT_TRUE(harness.Send(ServerId(2), 1, ServerId(1), 1, "indirect").ok());
  harness.RunUntil(50 * sim::kMillisecond);

  // The causally-later message is parked: the crash image includes a
  // populated hold-back queue whatever the core.
  EXPECT_EQ(harness.server(ServerId(1)).holdback_size(), 1u);

  ScenarioResult result;
  result.before = harness.server(ServerId(1)).DebugImage();
  harness.Crash(ServerId(1));

  if (mode == PersistMode::kIncremental) {
    // The durable clock records are in the core's own format: matrix
    // images keep the legacy layout (leading self id), other cores
    // lead with the 0xFFFF sentinel.
    const auto keys = harness.store(ServerId(1)).Keys("clk/");
    EXPECT_FALSE(keys.empty());
    for (const auto& key : keys) {
      const auto blob = harness.store(ServerId(1)).Get(key);
      EXPECT_TRUE(blob.has_value());
      if (!blob.has_value() || blob->size() < 2) continue;
      const bool sentinel = (*blob)[0] == 0xFF && (*blob)[1] == 0xFF;
      EXPECT_EQ(sentinel, kind != CausalCoreKind::kMatrix)
          << CausalCoreKindName(kind) << " wrote the wrong record format";
    }
  }

  EXPECT_TRUE(harness.Restart(ServerId(1)).ok());
  result.after = harness.server(ServerId(1)).DebugImage();

  harness.Run();
  EXPECT_TRUE(VerifyTrace(harness).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
  return result;
}

class CausalCoreRecovery : public ::testing::TestWithParam<CausalCoreKind> {};

TEST_P(CausalCoreRecovery, MidTrafficCrashRestoresTheExactImage) {
  const ScenarioResult result =
      RunCrashScenario(GetParam(), PersistMode::kIncremental);
  EXPECT_EQ(result.before, result.after);
}

TEST_P(CausalCoreRecovery, IncrementalAndFullImageRecoveryAgree) {
  const ScenarioResult incremental =
      RunCrashScenario(GetParam(), PersistMode::kIncremental);
  const ScenarioResult full =
      RunCrashScenario(GetParam(), PersistMode::kFullImage);
  // Two disk layouts, one durable state: recovery from either must
  // rebuild the same server, byte for byte.
  EXPECT_EQ(incremental.after, full.after);
  EXPECT_EQ(incremental.before, full.before);
}

INSTANTIATE_TEST_SUITE_P(Kinds, CausalCoreRecovery,
                         ::testing::Values(CausalCoreKind::kMatrix,
                                           CausalCoreKind::kHybrid,
                                           CausalCoreKind::kReduced),
                         [](const auto& info) {
                           return std::string(
                               CausalCoreKindName(info.param));
                         });

// An injected commit failure halts the server fail-stop; a reboot over
// the committed store state lands exactly on the pre-failure image and
// retransmission re-delivers the swallowed message -- for every core.
class CausalCoreFailStop : public ::testing::TestWithParam<CausalCoreKind> {};

TEST_P(CausalCoreFailStop, CommitFailureThenRebootRecoversExactly) {
  const CausalCoreKind kind = GetParam();
  auto config = Flat(2);
  config.causal_core = kind;
  auto deployment = domains::Deployment::Create(config).value();

  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});
  causality::TraceRecorder trace;

  auto endpoint0 = network.CreateEndpoint(ServerId(0)).value();
  auto endpoint1 = network.CreateEndpoint(ServerId(1)).value();
  mom::InMemoryStore store0;
  mom::InMemoryStore inner1;
  auto faulty1 = std::make_unique<mom::FaultyStore>(inner1);

  mom::AgentServerOptions options;
  options.trace = &trace;
  options.retransmit_timeout_ns = 100 * sim::kMillisecond;

  workload::EchoAgent* echo = nullptr;
  auto server0 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(0), endpoint0.get(), &runtime, &store0, options);
  auto server1 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(1), endpoint1.get(), &runtime, faulty1.get(),
      options);
  {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    server1->AttachAgent(1, std::move(agent));
  }
  ASSERT_TRUE(server0->Boot().ok());
  ASSERT_TRUE(server1->Boot().ok());

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(server0
                    ->SendMessage(AgentId{ServerId(0), 7},
                                  AgentId{ServerId(1), 1}, workload::kPing)
                    .ok());
  }
  simulator.RunToCompletion();
  ASSERT_EQ(echo->pings_seen(), 5u);
  ASSERT_TRUE(server1->health().ok());
  const Bytes image_before = server1->DebugImage();

  faulty1->FailAfterCommits(1);
  ASSERT_TRUE(server0
                  ->SendMessage(AgentId{ServerId(0), 7},
                                AgentId{ServerId(1), 1}, workload::kPing)
                  .ok());
  simulator.RunUntil(simulator.now() + 50 * sim::kMillisecond);
  EXPECT_EQ(server1->health().code(), StatusCode::kFailStop);
  EXPECT_EQ(faulty1->stats().faults_injected, 1u);

  // Reboot over the inner store: only committed state survives.
  server1->Halt();
  server1.reset();
  faulty1.reset();
  server1 = std::make_unique<mom::AgentServer>(
      deployment, ServerId(1), endpoint1.get(), &runtime, &inner1, options);
  {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    server1->AttachAgent(1, std::move(agent));
  }
  ASSERT_TRUE(server1->Boot().ok());
  EXPECT_EQ(server1->DebugImage(), image_before)
      << CausalCoreKindName(kind)
      << ": recovery diverged from the pre-failure image";

  simulator.RunToCompletion();
  EXPECT_EQ(echo->pings_seen(), 6u);
  EXPECT_EQ(server0->queue_out_size(), 0u);

  causality::CausalityChecker checker({ServerId(0), ServerId(1)});
  const auto snapshot = trace.Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(snapshot).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(snapshot).ok());
  server0->Shutdown();
  server1->Shutdown();
}

INSTANTIATE_TEST_SUITE_P(Kinds, CausalCoreFailStop,
                         ::testing::Values(CausalCoreKind::kMatrix,
                                           CausalCoreKind::kHybrid,
                                           CausalCoreKind::kReduced),
                         [](const auto& info) {
                           return std::string(
                               CausalCoreKindName(info.param));
                         });

TEST(CausalCoreRecoveryGuard, BootRejectsAStoreWrittenByADifferentCore) {
  // A store written under the hybrid core must not boot under a config
  // that runs the matrix core: the bytes would be reinterpreted as the
  // wrong coordinates.  Switching cores requires an epoch cutover.
  auto hybrid_config = Flat(2);
  hybrid_config.causal_core = CausalCoreKind::kHybrid;
  auto matrix_config = Flat(2);
  auto hybrid_deployment = domains::Deployment::Create(hybrid_config).value();
  auto matrix_deployment = domains::Deployment::Create(matrix_config).value();

  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});

  auto endpoint0 = network.CreateEndpoint(ServerId(0)).value();
  auto endpoint1 = network.CreateEndpoint(ServerId(1)).value();
  mom::InMemoryStore store0;
  mom::InMemoryStore store1;

  mom::AgentServerOptions options;
  options.retransmit_timeout_ns = 100 * sim::kMillisecond;

  auto server0 = std::make_unique<mom::AgentServer>(
      hybrid_deployment, ServerId(0), endpoint0.get(), &runtime, &store0,
      options);
  auto server1 = std::make_unique<mom::AgentServer>(
      hybrid_deployment, ServerId(1), endpoint1.get(), &runtime, &store1,
      options);
  server1->AttachAgent(1, std::make_unique<workload::EchoAgent>());
  ASSERT_TRUE(server0->Boot().ok());
  ASSERT_TRUE(server1->Boot().ok());
  ASSERT_TRUE(server0
                  ->SendMessage(AgentId{ServerId(0), 7},
                                AgentId{ServerId(1), 1}, workload::kPing)
                  .ok());
  simulator.RunToCompletion();
  server0->Shutdown();
  server1->Halt();
  server1.reset();

  // "Downgrade" the config across the crash: same store, matrix core.
  server1 = std::make_unique<mom::AgentServer>(
      matrix_deployment, ServerId(1), endpoint1.get(), &runtime, &store1,
      options);
  const Status boot = server1->Boot();
  EXPECT_EQ(boot.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(boot.to_string().find("hybrid"), std::string::npos) << boot;
}

}  // namespace
}  // namespace cmom
