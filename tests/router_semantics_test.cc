// Router-server semantics on the paper's own Figure 2 deployment:
// A={S1,S2,S3}, B={S4,S5}, C={S7,S8}, D={S3,S5,S6,S7}, routers S3, S5,
// S7.  Covers the §4.1 routing example, per-domain clock isolation,
// order preservation across multi-hop routes, and hold-back at the
// final destination when chains race a slow direct link.
#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using workload::SimHarness;
using workload::SimHarnessOptions;
using workload::SinkAgent;

ServerId S(std::uint16_t v) { return ServerId(v); }

domains::MomConfig Figure2() {
  domains::MomConfig config;
  for (std::uint16_t i = 1; i <= 8; ++i) config.servers.push_back(S(i));
  config.domains = {{DomainId(0), {S(1), S(2), S(3)}},   // A
                    {DomainId(1), {S(4), S(5)}},          // B
                    {DomainId(2), {S(7), S(8)}},          // C
                    {DomainId(3), {S(3), S(5), S(6), S(7)}}};  // D
  return config;
}

SimHarnessOptions FastOptions() {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  return options;
}

TEST(Figure2, PaperRoutingExample) {
  // §4.1: "a client connected to server 1 needs to communicate with a
  // client connected to server 8: the message must be routed using
  // paths S1->S3, S3->S7, S7->S8."
  auto deployment = domains::Deployment::Create(Figure2()).value();
  EXPECT_EQ(deployment.routing().NextHop(S(1), S(8)), S(3));
  EXPECT_EQ(deployment.routing().NextHop(S(3), S(8)), S(7));
  EXPECT_EQ(deployment.routing().NextHop(S(7), S(8)), S(8));
  EXPECT_EQ(deployment.routing().HopCount(S(1), S(8)), 3u);
}

TEST(Figure2, EndToEndDeliveryAcrossThreeDomains) {
  SimHarness harness(Figure2(), FastOptions());
  SinkAgent* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == S(8)) {
                      auto agent = std::make_unique<SinkAgent>();
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  std::vector<MessageId> sent;
  for (int i = 0; i < 5; ++i) {
    sent.push_back(harness.Send(S(1), 1, S(8), 1, "m").value());
  }
  harness.Run();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->order(), sent);
  // Both routers on the path forwarded every message.
  EXPECT_EQ(harness.server(S(3)).stats().messages_forwarded, 5u);
  EXPECT_EQ(harness.server(S(7)).stats().messages_forwarded, 5u);
  EXPECT_EQ(harness.server(S(5)).stats().messages_forwarded, 0u);
}

TEST(Figure2, ClocksStayDomainLocal) {
  SimHarness harness(Figure2(), FastOptions());
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(S(1), 1, S(8), 1, "m").ok());
  harness.Run();

  // S1's clock for domain A (index 0) recorded its send to S3
  // (domain-local ids: S1=0, S2=1, S3=2).
  const auto* a_clock = harness.server(S(1)).FindDomainClock(0);
  ASSERT_NE(a_clock, nullptr);
  EXPECT_EQ(a_clock->matrix().at(DomainServerId(0), DomainServerId(2)), 1u);

  // S4/S5's domain B clock never moved: the route does not touch B.
  const auto* b_clock = harness.server(S(4)).FindDomainClock(1);
  ASSERT_NE(b_clock, nullptr);
  EXPECT_EQ(b_clock->matrix().Total(), 0u);

  // Router S3 is in A and D and carries a clock for each; its D clock
  // (index 3; local ids S3=0,S5=1,S6=2,S7=3) recorded S3->S7.
  const auto* d_clock = harness.server(S(3)).FindDomainClock(3);
  ASSERT_NE(d_clock, nullptr);
  EXPECT_EQ(d_clock->matrix().at(DomainServerId(0), DomainServerId(3)), 1u);
  // And S3 has no clock for domains it is not a member of.
  EXPECT_EQ(harness.server(S(3)).FindDomainClock(1), nullptr);
  EXPECT_EQ(harness.server(S(3)).FindDomainClock(2), nullptr);
}

TEST(Figure2, CrossDomainTriangleHeldBackAtRouter) {
  // S1 sends m1 to S8 (slow first link into router S3), then m2 to S2;
  // S2 then sends m3 to S8.  m3's first hop reaches router S3 carrying
  // S1's knowledge of m1 (learned via m2), so S3 -- enforcing domain
  // A's causal order -- holds m3 until m1's first hop arrives; final
  // delivery at S8 is therefore m1 before m3.
  SimHarness harness(Figure2(), FastOptions());
  SinkAgent* sink = nullptr;
  workload::EchoAgent* echo = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == S(8)) {
                      auto agent = std::make_unique<SinkAgent>();
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                    if (id == S(2)) {
                      auto agent = std::make_unique<workload::EchoAgent>();
                      echo = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  (void)echo;

  harness.network().SetLinkLatency(S(1), S(3), 300 * sim::kMillisecond);

  const MessageId m1 = harness.Send(S(1), 1, S(8), 1, "first").value();
  harness.RunUntil(1 * sim::kMillisecond);
  // m2: S1 -> S2 (fast, inside A); its stamp carries (S1->S3)=1.
  ASSERT_TRUE(harness.Send(S(1), 1, S(2), 1, "tell").ok());
  harness.RunUntil(5 * sim::kMillisecond);
  // m3: S2 -> S8, causally after m2 which is after m1's send.
  const MessageId m3 = harness.Send(S(2), 1, S(8), 1, "second").value();

  harness.Run();
  ASSERT_NE(sink, nullptr);
  ASSERT_EQ(sink->order().size(), 2u);
  EXPECT_EQ(sink->order()[0], m1);
  EXPECT_EQ(sink->order()[1], m3);

  auto checker = harness.MakeChecker();
  EXPECT_TRUE(
      checker.CheckCausalDelivery(harness.trace().Snapshot()).causal());
}

TEST(Figure2, ConcurrentStreamsFromBothSidesStayCausal) {
  SimHarness harness(Figure2(), FastOptions());
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  // S1 -> S8 and S8 -> S1 streams interleave through the same routers.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(harness.Send(S(1), 1, S(8), 1, "east").ok());
    ASSERT_TRUE(harness.Send(S(8), 1, S(1), 1, "west").ok());
    ASSERT_TRUE(harness.Send(S(4), 1, S(6), 1, "north").ok());
  }
  harness.Run();
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
}

}  // namespace
}  // namespace cmom
