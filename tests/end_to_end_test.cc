// End-to-end smoke tests over the simulated network: messages travel
// between servers (within a domain and across routers), are delivered
// exactly once, and the trace passes the causal-delivery oracle.
#include <gtest/gtest.h>

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/experiments.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using domains::topologies::Bus;
using domains::topologies::Flat;
using workload::EchoAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;

SimHarnessOptions FastOptions() {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  return options;
}

TEST(EndToEnd, SingleDomainUnicast) {
  SimHarness harness(Flat(3), FastOptions());
  EchoAgent* echo = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(2)) {
                      auto agent = std::make_unique<EchoAgent>();
                      echo = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  auto sent =
      harness.Send(ServerId(0), 7, ServerId(2), 1, workload::kPing);
  ASSERT_TRUE(sent.ok());
  harness.Run();

  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(echo->pings_seen(), 1u);
  EXPECT_TRUE(harness.CheckQuiescent().ok());

  auto checker = harness.MakeChecker();
  auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
  // The pong goes to a non-existent agent (7) on S0: still recorded as
  // delivered to the server, so exactly-once holds.
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
}

TEST(EndToEnd, RoutedAcrossBusOfDomains) {
  // 3 leaf domains of 3 servers: S0..S8; backbone D0 = {S0, S3, S6}.
  SimHarness harness(Bus(3, 3), FastOptions());
  EchoAgent* echo = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(8)) {
                      auto agent = std::make_unique<EchoAgent>();
                      echo = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // S1 (leaf 0) -> S8 (leaf 2) must route via S0 and S6.
  EXPECT_EQ(harness.deployment().routing().HopCount(ServerId(1), ServerId(8)),
            3u);

  ASSERT_TRUE(
      harness.Send(ServerId(1), 7, ServerId(8), 1, workload::kPing).ok());
  harness.Run();

  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(echo->pings_seen(), 1u);
  EXPECT_TRUE(harness.CheckQuiescent().ok());

  // The routers did forwarding work.
  EXPECT_GE(harness.server(ServerId(0)).stats().messages_forwarded, 1u);
}

TEST(EndToEnd, PingPongExperimentCompletes) {
  workload::ExperimentOptions options;
  options.rounds = 10;
  options.harness = FastOptions();
  auto result = workload::RunPingPong(Flat(5), ServerId(0), ServerId(4),
                                      options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rounds, 10u);
  EXPECT_GT(result.value().avg_rtt_ms, 0.0);
  EXPECT_GT(result.value().wire_frames, 0u);
}

TEST(EndToEnd, BroadcastExperimentCompletes) {
  workload::ExperimentOptions options;
  options.rounds = 5;
  options.harness = FastOptions();
  auto result = workload::RunBroadcast(Bus(2, 3), ServerId(0), options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result.value().rounds, 5u);
  EXPECT_GT(result.value().avg_rtt_ms, 0.0);
}

}  // namespace
}  // namespace cmom
