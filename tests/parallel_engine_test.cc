// Tests for the sharded parallel engine (AgentServerOptions::
// engine_workers): per-agent delivery order and causality under a
// router topology with real worker threads, byte-identical recovery
// from a mid-run crash, bit-identical simulated traces when the
// executor request resolves to the inline engine, and the O(1)
// LogHistogram bucket edges.
//
// The threaded tests are the ones the TSan job exists for: workers,
// the channel/commit stages, retransmission timers and the test thread
// all run concurrently here.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "causality/checker.h"
#include "common/buffer_pool.h"
#include "common/bytes.h"
#include "domains/topologies.h"
#include "mom/agent.h"
#include "mom/agent_server.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"
#include "workload/threaded_harness.h"

namespace cmom {
namespace {

// Payload carries (sender key, per-sender sequence number).
Bytes ChainPayload(std::uint32_t sender, std::uint64_t seq) {
  ByteWriter out;
  out.WriteU32(sender);
  out.WriteVarU64(seq);
  return std::move(out).Take();
}

// Accumulates an order-sensitive chain hash over everything delivered
// (durable state, so recovery mistakes -- a lost, duplicated or
// reordered reaction -- change the final bytes) plus a volatile
// per-sender log for direct order assertions.
class ChainAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    ByteReader in(message.payload);
    const std::uint32_t sender =
        static_cast<std::uint32_t>(in.ReadU32().value());
    const std::uint64_t seq = in.ReadVarU64().value();
    ++count_;
    chain_ = (chain_ ^ (std::uint64_t{sender} << 32 | seq)) *
             6364136223846793005ull;
    log_[sender].push_back(seq);
  }

  void EncodeState(ByteWriter& out) const override {
    out.WriteVarU64(count_);
    out.WriteU64(chain_);
  }
  [[nodiscard]] Status DecodeState(ByteReader& in) override {
    auto count = in.ReadVarU64();
    if (!count.ok()) return count.status();
    count_ = count.value();
    auto chain = in.ReadU64();
    if (!chain.ok()) return chain.status();
    chain_ = chain.value();
    return Status::Ok();
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] Bytes StateBytes() const {
    ByteWriter out;
    EncodeState(out);
    return std::move(out).Take();
  }
  [[nodiscard]] const std::map<std::uint32_t, std::vector<std::uint64_t>>&
  log() const {
    return log_;
  }

 private:
  std::uint64_t count_ = 0;
  std::uint64_t chain_ = 0;
  // Not part of the durable image: used by tests that do not crash.
  std::map<std::uint32_t, std::vector<std::uint64_t>> log_;
};

// ---------------------------------------------------------------------------
// Parallel stress under a router topology.

// Bus(2, 2): servers S1 and S3 are leaf-only, S0/S2 route via the
// backbone.  Four senders spray 1000+ messages across agents on both
// leaves with engine_workers = 4; every (sender -> agent) stream must
// come out in send order and the global trace must be causal and
// exactly-once.
TEST(ParallelEngine, RoutedStressKeepsPerAgentOrderAndCausality) {
  constexpr std::uint32_t kAgentsPerServer = 8;
  constexpr std::uint64_t kSeqs = 160;  // 2 senders * 160 * 4 = 1280 msgs

  workload::ThreadedHarnessOptions options;
  options.engine_workers = 4;
  options.retransmit_timeout_ns = 50ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Bus(2, 2), options);

  std::map<std::pair<ServerId, std::uint32_t>, ChainAgent*> agents;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id != ServerId(1) && id != ServerId(3)) return;
                    for (std::uint32_t a = 0; a < kAgentsPerServer; ++a) {
                      auto agent = std::make_unique<ChainAgent>();
                      agents[{id, a}] = agent.get();
                      server.AttachAgent(a, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Sender key = server * 100 + local; two sender agents per router.
  for (std::uint64_t seq = 1; seq <= kSeqs; ++seq) {
    for (ServerId from : {ServerId(0), ServerId(2)}) {
      for (std::uint32_t local : {90u, 91u}) {
        const std::uint32_t sender = from.value() * 100 + local;
        // Round-robin over both leaf servers and their agents.
        const ServerId to((seq + local) % 2 == 0 ? 1 : 3);
        const std::uint32_t agent =
            static_cast<std::uint32_t>(seq % kAgentsPerServer);
        ASSERT_TRUE(harness
                        .Send(from, local, to, agent, "chain",
                              ChainPayload(sender, seq))
                        .ok());
      }
    }
  }
  harness.WaitQuiescent();
  harness.HaltAll();  // joins shard workers: agent state is ours now

  std::uint64_t delivered = 0;
  for (const auto& [key, agent] : agents) {
    delivered += agent->count();
    for (const auto& [sender, seqs] : agent->log()) {
      for (std::size_t i = 1; i < seqs.size(); ++i) {
        ASSERT_LT(seqs[i - 1], seqs[i])
            << "sender " << sender << " reordered at " << to_string(key.first)
            << " agent " << key.second;
      }
    }
  }
  EXPECT_EQ(delivered, 4 * kSeqs);

  const causality::Trace trace = harness.trace().Snapshot();
  causality::CausalityChecker checker = harness.MakeChecker();
  const auto causal = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(causal.causal())
      << causal.violations.size() << " causality violations, first: "
      << (causal.violations.empty() ? "" : causal.violations[0].description);
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());

  // The parallel path actually ran: commit-stage transactions happened.
  const mom::ServerStats stats = harness.server(ServerId(1)).stats();
  EXPECT_GT(stats.group_commit_hist.count, 0u);
  EXPECT_EQ(stats.worker_reactions.size(), 4u);
}

// ---------------------------------------------------------------------------
// Crash recovery: speculative reactions must not leak into the image.

Bytes ReferenceStateBytes(std::uint32_t agent, std::uint64_t total) {
  // What a ChainAgent must contain after seeing its round-robin share
  // of seq 1..total from sender 7, in order, exactly once.
  ChainAgent reference;
  struct Ctx final : mom::ReactionContext {
    AgentId self() const override { return AgentId{ServerId(1), 0}; }
    void Send(AgentId, std::string, Bytes) override {}
    std::uint64_t NowNs() const override { return 0; }
  } ctx;
  for (std::uint64_t seq = 1; seq <= total; ++seq) {
    if (seq % 4 != agent) continue;
    mom::Message message;
    message.payload = ChainPayload(7, seq);
    reference.React(ctx, message);
  }
  return reference.StateBytes();
}

constexpr std::uint64_t kCrashTotal = 300;

// Runs the mid-run-crash workload (single sender, crash at half-way,
// restart, second half) and returns each agent's final state bytes.
// Shared by the default test and the arena on/off equivalence variant.
std::map<std::uint32_t, Bytes> CrashWorkloadFinalState() {
  workload::ThreadedHarnessOptions options;
  options.engine_workers = 4;
  options.retransmit_timeout_ns = 50ull * 1000 * 1000;
  workload::ThreadedHarness harness(domains::topologies::Flat(2), options);

  std::map<std::uint32_t, ChainAgent*> agents;
  Status init = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id != ServerId(1)) return;
    for (std::uint32_t a = 0; a < 4; ++a) {
      auto agent = std::make_unique<ChainAgent>();
      agents[a] = agent.get();  // refreshed on Restart
      server.AttachAgent(a, std::move(agent));
    }
  });
  EXPECT_TRUE(init.ok());
  EXPECT_TRUE(harness.BootAll().ok());

  // Single sender => deterministic per-agent delivery order, so the
  // final state bytes are unique.  Crash the loaded server while the
  // first half is (possibly) mid-pipeline: reactions whose group
  // commit did not land are discarded with the workers and must be
  // re-run from their durable QueueIN entries -- never skipped, never
  // doubled, or the chain hash comes out different.
  for (std::uint64_t seq = 1; seq <= kCrashTotal / 2; ++seq) {
    EXPECT_TRUE(harness
                    .Send(ServerId(0), 7, ServerId(1),
                          static_cast<std::uint32_t>(seq % 4), "chain",
                          ChainPayload(7, seq))
                    .ok());
  }
  harness.Crash(ServerId(1));
  EXPECT_TRUE(harness.Restart(ServerId(1)).ok());
  for (std::uint64_t seq = kCrashTotal / 2 + 1; seq <= kCrashTotal; ++seq) {
    EXPECT_TRUE(harness
                    .Send(ServerId(0), 7, ServerId(1),
                          static_cast<std::uint32_t>(seq % 4), "chain",
                          ChainPayload(7, seq))
                    .ok());
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  const causality::Trace trace = harness.trace().Snapshot();
  causality::CausalityChecker checker = harness.MakeChecker();
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());

  std::map<std::uint32_t, Bytes> state;
  for (const auto& [local, agent] : agents) {
    state[local] = agent->StateBytes();
  }
  return state;
}

TEST(ParallelEngine, MidRunCrashRecoversByteIdenticalState) {
  const std::map<std::uint32_t, Bytes> state = CrashWorkloadFinalState();
  ASSERT_EQ(state.size(), 4u);
  for (const auto& [local, bytes] : state) {
    EXPECT_EQ(bytes, ReferenceStateBytes(local, kCrashTotal))
        << "agent " << local << " diverged after crash recovery";
  }
}

TEST(ParallelEngine, ArenaAllocatorKeepsCrashRecoveryByteIdentical) {
  // The pooled arena must be invisible to durable state: the same
  // crash workload, run with recycled buffers and with plain heap
  // allocation, has to recover every agent to byte-identical images.
  // A stale byte leaking out of a reused buffer -- a frame outliving
  // its batch, a payload released before its group commit -- shows up
  // here as a chain-hash divergence.
  BufferPool::SetEnabled(false);
  const std::map<std::uint32_t, Bytes> heap_state = CrashWorkloadFinalState();
  BufferPool::SetEnabled(true);
  const BufferPool::Counters before = BufferPool::Totals();
  const std::map<std::uint32_t, Bytes> arena_state = CrashWorkloadFinalState();
  const BufferPool::Counters after = BufferPool::Totals();

  // The arena actually engaged: buffers were recycled, not just
  // counted.
  EXPECT_GT(after.pool_hits, before.pool_hits);

  ASSERT_EQ(heap_state.size(), 4u);
  ASSERT_EQ(arena_state.size(), 4u);
  for (const auto& [local, bytes] : arena_state) {
    EXPECT_EQ(bytes, ReferenceStateBytes(local, kCrashTotal))
        << "agent " << local << " diverged under the arena";
    EXPECT_EQ(bytes, heap_state.at(local))
        << "agent " << local << ": arena and heap runs disagree";
  }
}

// ---------------------------------------------------------------------------
// Simulated runs ignore the knob: traces stay bit-identical.

causality::Trace SimTrace(std::size_t engine_workers) {
  workload::SimHarnessOptions options;
  options.engine_workers = engine_workers;
  workload::SimHarness harness(domains::topologies::Bus(2, 2), options);
  EXPECT_TRUE(harness
                  .Init([](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(3)) {
                      server.AttachAgent(
                          1, std::make_unique<workload::EchoAgent>());
                    }
                  })
                  .ok());
  EXPECT_TRUE(harness.BootAll().ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(
        harness.Send(ServerId(1), 7, ServerId(3), 1, workload::kPing).ok());
  }
  harness.Run();
  EXPECT_TRUE(harness.CheckQuiescent().ok());
  return harness.trace().Snapshot();
}

TEST(ParallelEngine, SimulatorTracesBitIdenticalRegardlessOfWorkerKnob) {
  // SimRuntime::MakeExecutor returns nullptr, so engine_workers = 8
  // falls back to the inline engine and the cost-modeled schedule --
  // and with it the trace -- is exactly the engine_workers = 0 one.
  const causality::Trace base = SimTrace(0);
  const causality::Trace parallel = SimTrace(8);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, parallel);
}

// ---------------------------------------------------------------------------
// LogHistogram: O(1) bucketing must keep the historical edges.

TEST(LogHistogram, BucketEdgesArePowersOfTwo) {
  mom::LogHistogram hist;
  hist.Record(0);
  EXPECT_EQ(hist.buckets[0], 1u);  // zeros get their own bucket

  // Bucket b (b >= 1) covers [2^(b-1), 2^b): both edges land in it.
  for (std::size_t b = 1; b + 1 < mom::LogHistogram::kBuckets; ++b) {
    mom::LogHistogram edges;
    edges.Record(std::uint64_t{1} << (b - 1));        // inclusive low edge
    edges.Record((std::uint64_t{1} << b) - 1);        // inclusive high edge
    if (b >= 2) edges.Record(std::uint64_t{1} << b);  // just past: bucket b+1
    EXPECT_EQ(edges.buckets[b], 2u) << "bucket " << b;
    if (b >= 2) EXPECT_EQ(edges.buckets[b + 1], 1u) << "bucket " << b;
  }

  // Everything at and beyond 2^30 clamps into the last bucket.
  mom::LogHistogram top;
  top.Record(std::uint64_t{1} << 40);
  top.Record(~std::uint64_t{0});
  EXPECT_EQ(top.buckets[mom::LogHistogram::kBuckets - 1], 2u);
  EXPECT_EQ(top.max, ~std::uint64_t{0});

  // Aggregates are value-based, not bucket-based.
  mom::LogHistogram stats;
  stats.Record(3);
  stats.Record(5);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.sum, 8u);
  EXPECT_EQ(stats.max, 5u);
  EXPECT_DOUBLE_EQ(stats.Mean(), 4.0);
}

}  // namespace
}  // namespace cmom
