// Tests for the formal path machinery (Section 4.2 definitions),
// exercised on the paper's own Figure 2 example.
#include "causality/paths.h"

#include <gtest/gtest.h>

#include "domains/topologies.h"

namespace cmom::causality {
namespace {

ServerId S(std::uint16_t v) { return ServerId(v); }

// Figure 2: A={S1,S2,S3}, B={S4,S5}, C={S7,S8}, D={S3,S5,S6,S7}.
domains::MomConfig Figure2() {
  domains::MomConfig config;
  for (std::uint16_t i = 1; i <= 8; ++i) config.servers.push_back(S(i));
  config.domains = {{DomainId(0), {S(1), S(2), S(3)}},
                    {DomainId(1), {S(4), S(5)}},
                    {DomainId(2), {S(7), S(8)}},
                    {DomainId(3), {S(3), S(5), S(6), S(7)}}};
  return config;
}

TEST(PathAnalyzer, SameDomain) {
  PathAnalyzer analyzer(Figure2());
  EXPECT_TRUE(analyzer.SameDomain(S(1), S(3)));
  EXPECT_TRUE(analyzer.SameDomain(S(3), S(7)));
  EXPECT_FALSE(analyzer.SameDomain(S(1), S(8)));
  EXPECT_FALSE(analyzer.SameDomain(S(4), S(6)));
}

TEST(PathAnalyzer, PaperRoutingPathIsValid) {
  // The paper routes S1 -> S8 as S1, S3, S7, S8.
  PathAnalyzer analyzer(Figure2());
  const Path route = {S(1), S(3), S(7), S(8)};
  EXPECT_TRUE(analyzer.IsPath(route));
  EXPECT_TRUE(analyzer.IsDirect(route));
  EXPECT_TRUE(analyzer.IsMinimal(route));
}

TEST(PathAnalyzer, NonPathsRejected) {
  PathAnalyzer analyzer(Figure2());
  EXPECT_FALSE(analyzer.IsPath({}));
  EXPECT_FALSE(analyzer.IsPath({S(1), S(8)}));        // no shared domain
  EXPECT_FALSE(analyzer.IsPath({S(1), S(4), S(8)}));  // both hops invalid
}

TEST(PathAnalyzer, LoopsAreNotDirect) {
  PathAnalyzer analyzer(Figure2());
  const Path loopy = {S(1), S(3), S(1)};
  EXPECT_TRUE(analyzer.IsPath(loopy));
  EXPECT_FALSE(analyzer.IsDirect(loopy));
}

TEST(PathAnalyzer, LingeringPathIsNotMinimal) {
  // S1 -> S2 -> S3: direct, but S1 and S3 share domain A, so the path
  // "lingers" in A (the shortcut S1 -> S3 exists).
  PathAnalyzer analyzer(Figure2());
  const Path lingering = {S(1), S(2), S(3)};
  EXPECT_TRUE(analyzer.IsDirect(lingering));
  EXPECT_FALSE(analyzer.IsMinimal(lingering));
}

TEST(PathAnalyzer, MinimalPathOfLengthOverTwoCrossesDomains) {
  PathAnalyzer analyzer(Figure2());
  const Path route = {S(1), S(3), S(6)};
  ASSERT_TRUE(analyzer.IsMinimal(route));
  EXPECT_FALSE(analyzer.SameDomain(route.front(), route.back()));
}

TEST(PathAnalyzer, CoveredByOneDomain) {
  PathAnalyzer analyzer(Figure2());
  EXPECT_TRUE(analyzer.CoveredByOneDomain({S(3), S(5), S(7)}));  // all in D
  EXPECT_FALSE(analyzer.CoveredByOneDomain({S(1), S(3), S(7)}));
}

TEST(PathAnalyzer, Figure2HasNoCycle) {
  PathAnalyzer analyzer(Figure2());
  EXPECT_FALSE(analyzer.FindAnyCycle().has_value());
}

TEST(PathAnalyzer, RingHasACycle) {
  auto ring = domains::topologies::Ring(3, 3);
  PathAnalyzer analyzer(ring);
  auto cycle = analyzer.FindAnyCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(analyzer.IsCycle(*cycle));
}

TEST(PathAnalyzer, TwoSharedRoutersFormACycle) {
  // The subtle case from Section 4.2: domains A and B share two
  // servers; the path (r1, p, r2, q)-style cycles exist even though
  // the naive domain graph has a single edge.
  domains::MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1), S(2)}},
                    {DomainId(1), {S(1), S(2), S(3)}}};
  PathAnalyzer analyzer(config);
  auto cycle = analyzer.FindAnyCycle();
  ASSERT_TRUE(cycle.has_value());
  EXPECT_TRUE(analyzer.IsCycle(*cycle));
}

TEST(PathAnalyzer, SingletonPathIsNeverACycle) {
  PathAnalyzer analyzer(Figure2());
  EXPECT_FALSE(analyzer.IsCycle({S(1)}));
}

}  // namespace
}  // namespace cmom::causality
