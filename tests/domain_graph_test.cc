// Tests for the domain interconnection graph and the acyclicity
// condition, including the subtle two-shared-routers cycle the paper's
// formal path definition catches (see domain_graph.h).
#include "domains/domain_graph.h"

#include <gtest/gtest.h>

#include "causality/paths.h"
#include "common/rng.h"
#include "domains/topologies.h"

namespace cmom::domains {
namespace {

ServerId S(std::uint16_t v) { return ServerId(v); }

MomConfig TwoDomainsOneRouter() {
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3), S(4)};
  config.domains = {{DomainId(0), {S(0), S(1), S(2)}},
                    {DomainId(1), {S(2), S(3), S(4)}}};
  return config;
}

TEST(DomainGraph, SingleDomainIsAcyclic) {
  auto config = topologies::Flat(5);
  const DomainGraph graph = DomainGraph::Build(config);
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_TRUE(graph.routers().empty());
  EXPECT_TRUE(graph.IsConnected());
}

TEST(DomainGraph, SharedRouterIsDetected) {
  const DomainGraph graph = DomainGraph::Build(TwoDomainsOneRouter());
  ASSERT_EQ(graph.routers().size(), 1u);
  EXPECT_EQ(graph.routers()[0], S(2));
  ASSERT_EQ(graph.edges().size(), 1u);
  EXPECT_EQ(graph.edges()[0].via, S(2));
  EXPECT_TRUE(graph.IsAcyclic());
}

TEST(DomainGraph, TriangleOfDomainsIsCyclic) {
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3), S(4), S(5)};
  // A-B via S1, B-C via S3, C-A via S5.
  config.domains = {{DomainId(0), {S(0), S(1), S(5)}},
                    {DomainId(1), {S(1), S(2), S(3)}},
                    {DomainId(2), {S(3), S(4), S(5)}}};
  const DomainGraph graph = DomainGraph::Build(config);
  EXPECT_FALSE(graph.IsAcyclic());
  EXPECT_TRUE(graph.FindCycle().has_value());
}

TEST(DomainGraph, TwoDomainsSharingTwoRoutersIsCyclic) {
  // The subtle case: the simple domain graph has one edge A-B, but the
  // path (r1, p, r2, q) is a formal cycle; the bipartite check sees it.
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1), S(2)}},
                    {DomainId(1), {S(1), S(2), S(3)}}};
  const DomainGraph graph = DomainGraph::Build(config);
  EXPECT_FALSE(graph.IsAcyclic());
}

TEST(DomainGraph, StarHubRouterIsAcyclic) {
  // One router in many domains (a hub) is a tree, not a cycle.
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1)}},
                    {DomainId(1), {S(0), S(2)}},
                    {DomainId(2), {S(0), S(3)}}};
  const DomainGraph graph = DomainGraph::Build(config);
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_TRUE(graph.IsConnected());
}

TEST(DomainGraph, DisconnectedDomainsDetected) {
  MomConfig config;
  config.servers = {S(0), S(1), S(2), S(3)};
  config.domains = {{DomainId(0), {S(0), S(1)}},
                    {DomainId(1), {S(2), S(3)}}};
  const DomainGraph graph = DomainGraph::Build(config);
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_FALSE(graph.IsConnected());
}

TEST(DomainGraph, CanonicalTopologiesAreAcyclic) {
  EXPECT_TRUE(DomainGraph::Build(topologies::Bus(5, 4)).IsAcyclic());
  EXPECT_TRUE(DomainGraph::Build(topologies::Daisy(6, 3)).IsAcyclic());
  EXPECT_TRUE(DomainGraph::Build(topologies::Tree(2, 4, 3)).IsAcyclic());
}

TEST(DomainGraph, RingsAreCyclic) {
  for (std::size_t k = 2; k <= 6; ++k) {
    EXPECT_FALSE(DomainGraph::Build(topologies::Ring(k, 3)).IsAcyclic())
        << "ring of " << k;
  }
}

TEST(DomainGraph, PaperFigure2Example) {
  // The 8-server MOM of Figure 2: A={S1,S2,S3}, B={S4,S5},
  // C={S7,S8}, D={S3,S5,S6,S7}.
  MomConfig config;
  for (std::uint16_t i = 1; i <= 8; ++i) config.servers.push_back(S(i));
  config.domains = {{DomainId(0), {S(1), S(2), S(3)}},
                    {DomainId(1), {S(4), S(5)}},
                    {DomainId(2), {S(7), S(8)}},
                    {DomainId(3), {S(3), S(5), S(6), S(7)}}};
  const DomainGraph graph = DomainGraph::Build(config);
  EXPECT_TRUE(graph.IsAcyclic());
  EXPECT_TRUE(graph.IsConnected());
  // S3, S5, S7 are the causal router-servers.
  EXPECT_EQ(graph.routers(), (std::vector<ServerId>{S(3), S(5), S(7)}));
}

// Property: the bipartite acyclicity check agrees with an exhaustive
// search for formal cycle paths (the paper's path definition) on small
// random configurations.
class GraphVsPaths : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphVsPaths, AcyclicityMatchesPathSearch) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    MomConfig config;
    const std::size_t n = 4 + rng.NextBelow(4);
    const std::size_t d = 2 + rng.NextBelow(3);
    for (std::uint16_t i = 0; i < n; ++i) config.servers.push_back(S(i));
    for (std::uint16_t j = 0; j < d; ++j) {
      DomainSpec domain{DomainId(j), {}};
      for (ServerId server : config.servers) {
        if (rng.NextBool(0.5)) domain.members.push_back(server);
      }
      if (domain.members.empty()) {
        domain.members.push_back(
            config.servers[rng.NextBelow(config.servers.size())]);
      }
      config.domains.push_back(std::move(domain));
    }
    const bool graph_acyclic = DomainGraph::Build(config).IsAcyclic();
    const bool path_cycle =
        causality::PathAnalyzer(config).FindAnyCycle().has_value();
    // Nested domains are degenerate (the paper excludes them: "a
    // situation that does not occur in practice"); skip configs where
    // one domain's members are a subset of another's.
    bool nested = false;
    for (const auto& a : config.domains) {
      for (const auto& b : config.domains) {
        if (&a == &b) continue;
        bool subset = true;
        for (ServerId member : a.members) {
          if (std::find(b.members.begin(), b.members.end(), member) ==
              b.members.end()) {
            subset = false;
            break;
          }
        }
        if (subset) nested = true;
      }
    }
    if (nested) continue;
    EXPECT_EQ(graph_acyclic, !path_cycle) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphVsPaths,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace cmom::domains
