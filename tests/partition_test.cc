// Partition/heal end-to-end: cut the router away from one producer
// domain while traffic is in flight, let retransmit timers probe the
// void, heal, and require full recovery -- causal order, exactly-once,
// credit windows reopened, no wedged links.  The credit-window
// assertions are the regression guard for the incarnation fix: a credit
// grant computed against a pre-partition session must not wedge the
// link after the heal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <iterator>
#include <thread>
#include <vector>

#include "common/seed.h"
#include "common/status.h"
#include "domains/config.h"
#include "mom/agent.h"
#include "workload/threaded_harness.h"

namespace cmom {
namespace {

// The overload.conf funnel: two producer-edge domains through the
// router-server S3 into the consumer domain.
const std::uint16_t kProducers[] = {0, 1, 2, 4, 5, 6};
constexpr std::uint16_t kRouter = 3;
constexpr std::uint16_t kConsumer = 7;

domains::MomConfig OverloadConfig() {
  domains::MomConfig config;
  for (std::uint16_t s = 0; s < 8; ++s) config.servers.push_back(ServerId(s));
  config.domains.push_back(
      {DomainId(0), {ServerId(0), ServerId(1), ServerId(2), ServerId(3)}});
  config.domains.push_back(
      {DomainId(1), {ServerId(3), ServerId(4), ServerId(5), ServerId(6)}});
  config.domains.push_back({DomainId(2), {ServerId(3), ServerId(7)}});
  return config;
}

class CountingConsumer final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    (void)message;
    seen_.fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t seen() const {
    return seen_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> seen_{0};
};

TEST(Partition, RouterCutMidTrafficHealsWithNoLossAndNoWedgedLinks) {
  workload::ThreadedHarnessOptions options;
  // Short retransmit so the post-heal recovery fits the test budget.
  options.retransmit_timeout_ns = 100ull * 1000 * 1000;
  // Partitions only -- no random drops, so every lost frame is the
  // cut's doing and frames_partitioned counts it.
  options.fault.emplace();
  options.fault->seed = SeedFromEnv(20260809, "partition_test");
  // Small credit windows so the partition actually closes them.
  options.flow.high_watermark = 64;
  options.flow.low_watermark = 16;
  options.flow.initial_credit = 16;
  options.flow.drr_quantum = 4;
  options.flow.engine_admit_high = 64;
  options.flow.engine_admit_low = 16;
  options.flow.out_admit_high = 64;
  options.flow.wait_queue_max = 64;

  workload::ThreadedHarness harness(OverloadConfig(), options);
  CountingConsumer* consumer = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(kConsumer)) {
                      auto agent = std::make_unique<CountingConsumer>();
                      consumer = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Producers run through the whole scenario: before, during and after
  // the cut.  kOverloaded and admission stalls come back as typed
  // sheds; the producer retries.
  constexpr int kPerProducer = 150;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (std::uint16_t p : kProducers) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        for (;;) {
          auto sent = harness.Send(ServerId(p), 2, ServerId(kConsumer), 1,
                                   "part");
          if (sent.ok()) {
            accepted.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          ASSERT_EQ(sent.status().code(), StatusCode::kOverloaded);
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
        // Paced so production spans the whole cut+heal window below --
        // a producer that finishes before the cut would leave the
        // network idle and nothing for the partition to drop.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  // Mid-traffic: cut the router away from producer domain D1.  Data
  // and acks both stop crossing; senders on the far side stall on
  // retransmit timers and closed credit windows.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  harness.faulty_network()->Partition(
      "router-vs-d1", {ServerId(kRouter)},
      {ServerId(4), ServerId(5), ServerId(6)});
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_GT(harness.faulty_network()->stats().frames_partitioned, 0u);
  harness.faulty_network()->Heal("router-vs-d1");
  EXPECT_TRUE(harness.faulty_network()->ActivePartitions().empty());

  for (auto& producer : producers) producer.join();
  harness.WaitQuiescent();
  harness.HaltAll();

  // Zero loss: every accepted send was delivered...
  ASSERT_NE(consumer, nullptr);
  EXPECT_EQ(consumer->seen(), accepted.load());
  EXPECT_EQ(accepted.load(),
            static_cast<std::uint64_t>(std::size(kProducers)) * kPerProducer);

  // ...exactly once and in causal order, across the outage.
  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << (report.violations.empty() ? ""
                                    : report.violations.front().description);

  // Credit-window recovery: at quiescence no link is paused, nothing is
  // parked behind a window, admission queues are empty -- the heal
  // reopened every window the cut closed.
  for (std::uint16_t s = 0; s < 8; ++s) {
    const auto fs = harness.server(ServerId(s)).flow_status();
    EXPECT_EQ(fs.paused_links, 0u) << "server " << s;
    EXPECT_EQ(fs.blocked_messages, 0u) << "server " << s;
    EXPECT_EQ(fs.wait_queue, 0u) << "server " << s;
    EXPECT_EQ(fs.staged_forwards, 0u) << "server " << s;
    EXPECT_EQ(harness.server(ServerId(s)).queue_out_size(), 0u)
        << "server " << s;
  }
}

}  // namespace
}  // namespace cmom
