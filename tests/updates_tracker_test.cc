// Unit tests for the Appendix-A Updates delta-stamping algorithm.
#include "clocks/updates_tracker.h"

#include <gtest/gtest.h>

namespace cmom::clocks {
namespace {

DomainServerId D(std::uint16_t v) { return DomainServerId(v); }

TEST(UpdatesTracker, FirstSendCarriesEverythingChanged) {
  MatrixClock matrix(3);
  UpdatesTracker tracker(3);
  matrix.set(D(0), D(1), 1);
  tracker.NoteChange(D(0), D(1), std::nullopt);
  matrix.set(D(0), D(2), 1);
  tracker.NoteChange(D(0), D(2), std::nullopt);

  const Stamp stamp = tracker.CollectFor(D(1), matrix);
  ASSERT_EQ(stamp.entries.size(), 2u);
  EXPECT_NE(stamp.Find(D(0), D(1)), nullptr);
  EXPECT_NE(stamp.Find(D(0), D(2)), nullptr);
}

TEST(UpdatesTracker, SecondSendCarriesOnlyTheDelta) {
  MatrixClock matrix(3);
  UpdatesTracker tracker(3);
  matrix.set(D(0), D(1), 1);
  tracker.NoteChange(D(0), D(1), std::nullopt);
  (void)tracker.CollectFor(D(1), matrix);

  matrix.set(D(0), D(1), 2);
  tracker.NoteChange(D(0), D(1), std::nullopt);
  matrix.set(D(2), D(2), 4);
  tracker.NoteChange(D(2), D(2), std::nullopt);

  const Stamp stamp = tracker.CollectFor(D(1), matrix);
  ASSERT_EQ(stamp.entries.size(), 2u);
  EXPECT_EQ(stamp.Find(D(0), D(1))->value, 2u);
  EXPECT_EQ(stamp.Find(D(2), D(2))->value, 4u);
}

TEST(UpdatesTracker, NoChangesMeansEmptyStamp) {
  MatrixClock matrix(2);
  UpdatesTracker tracker(2);
  matrix.set(D(0), D(1), 1);
  tracker.NoteChange(D(0), D(1), std::nullopt);
  (void)tracker.CollectFor(D(1), matrix);
  const Stamp stamp = tracker.CollectFor(D(1), matrix);
  EXPECT_TRUE(stamp.entries.empty());
}

TEST(UpdatesTracker, IndependentPerDestinationCursors) {
  MatrixClock matrix(3);
  UpdatesTracker tracker(3);
  matrix.set(D(0), D(1), 1);
  tracker.NoteChange(D(0), D(1), std::nullopt);
  (void)tracker.CollectFor(D(1), matrix);

  // Destination 2 has seen nothing yet; it still gets the entry.
  const Stamp stamp = tracker.CollectFor(D(2), matrix);
  ASSERT_EQ(stamp.entries.size(), 1u);
  EXPECT_EQ(stamp.Find(D(0), D(1))->value, 1u);
}

TEST(UpdatesTracker, EntriesLearnedFromDestAreNotEchoedBack) {
  // The Mat[k,l].node refinement: server 0 learns (1,0)=5 from server 1;
  // a later message to server 1 must not carry that entry back.
  MatrixClock matrix(3);
  UpdatesTracker tracker(3);
  matrix.set(D(1), D(0), 5);
  tracker.NoteChange(D(1), D(0), D(1));  // learned from server 1

  const Stamp to_one = tracker.CollectFor(D(1), matrix);
  EXPECT_EQ(to_one.Find(D(1), D(0)), nullptr);

  // But a third party does receive it.
  matrix.set(D(1), D(2), 7);
  tracker.NoteChange(D(1), D(2), D(1));
  const Stamp to_two = tracker.CollectFor(D(2), matrix);
  EXPECT_NE(to_two.Find(D(1), D(2)), nullptr);
}

TEST(UpdatesTracker, ReChangeBySelfClearsTheExclusion) {
  MatrixClock matrix(2);
  UpdatesTracker tracker(2);
  matrix.set(D(1), D(0), 5);
  tracker.NoteChange(D(1), D(0), D(1));
  (void)tracker.CollectFor(D(1), matrix);
  // Now the owner itself bumps the entry (e.g. merged from elsewhere).
  matrix.set(D(1), D(0), 6);
  tracker.NoteChange(D(1), D(0), std::nullopt);
  const Stamp stamp = tracker.CollectFor(D(1), matrix);
  EXPECT_NE(stamp.Find(D(1), D(0)), nullptr);
}

TEST(UpdatesTracker, PersistenceRoundTrip) {
  MatrixClock matrix(3);
  UpdatesTracker tracker(3);
  matrix.set(D(0), D(1), 1);
  tracker.NoteChange(D(0), D(1), std::nullopt);
  (void)tracker.CollectFor(D(1), matrix);
  matrix.set(D(2), D(1), 9);
  tracker.NoteChange(D(2), D(1), D(2));

  ByteWriter writer;
  tracker.Encode(writer);
  ByteReader reader(writer.buffer());
  auto decoded = UpdatesTracker::Decode(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), tracker);

  // The recovered tracker produces the same stamps.
  UpdatesTracker recovered = std::move(decoded).value();
  EXPECT_EQ(recovered.CollectFor(D(1), matrix),
            tracker.CollectFor(D(1), matrix));
}

}  // namespace
}  // namespace cmom::clocks
