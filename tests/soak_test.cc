// Soak tests: larger topologies, deeper causal chains, faults and
// modeled costs together -- the closest thing to production traffic
// the simulator can produce, with the full oracle at the end.
#include <gtest/gtest.h>

#include "common/seed.h"
#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/metrics.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using workload::ChatterAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;

struct SoakCase {
  const char* name;
  domains::MomConfig config;
  std::uint32_t hops;
};

class Soak : public ::testing::TestWithParam<int> {};

TEST_P(Soak, LargeChatterStormStaysCorrect) {
  SoakCase cases[] = {
      {"bus 5x5", domains::topologies::Bus(5, 5), 8},
      {"tree k=3 s=6 d=2", domains::topologies::Tree(3, 6, 2), 8},
      {"daisy 6x5", domains::topologies::Daisy(6, 5), 6},
  };
  SoakCase& test_case = cases[GetParam()];
  const auto& config = test_case.config;

  SimHarnessOptions options;
  options.simulate_processing_costs = true;  // full cost model active
  options.fault_model.drop_probability = 0.05;
  options.fault_model.duplicate_probability = 0.05;
  options.fault_model.jitter_probability = 0.2;
  options.fault_model.max_jitter = 100 * sim::kMillisecond;
  options.retransmit_timeout_ns = 200 * sim::kMillisecond;
  options.fault_seed = SeedFromEnv(20260706, "soak_test");

  SimHarness harness(config, options);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(1, std::make_unique<ChatterAgent>(
                                              911 + id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          ChatterAgent::MakeChatPayload(test_case.hops))
                    .ok());
  }
  harness.Run();

  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << test_case.name << ": " << report.violations.front().description;
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok()) << test_case.name;
  EXPECT_TRUE(harness.CheckQuiescent().ok()) << test_case.name;

  // The storm must have actually stressed the system.
  workload::MetricsSummary summary;
  for (ServerId id : config.servers) {
    summary.Add(id, harness.server(id), harness.store(id));
  }
  EXPECT_GT(summary.TotalDelivered(), 3u * config.servers.size())
      << test_case.name;
  EXPECT_GT(summary.TotalForwarded(), 0u) << test_case.name;
  EXPECT_GT(summary.TotalRetransmissions(), 0u) << test_case.name;
  EXPECT_GT(summary.TotalDiskBytes(), 0u) << test_case.name;
}

INSTANTIATE_TEST_SUITE_P(Topologies, Soak, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace cmom
