// End-to-end tests of online reconfiguration: a live threaded cluster
// moves between epochs under routed traffic, with crashes injected at
// the protocol's worst moments.  The acceptance bar (ISSUE: control
// plane): a 3-domain cluster performs a domain split and a server add
// under live traffic with a crash during cutover, recovers to a single
// consistent epoch with no loss or duplication, and the full delivered
// trace stays causal across the epoch boundary; a cycle-introducing
// proposal is rejected with the cluster untouched.
#include "control/coordinator.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "control/epoch.h"
#include "control/plan.h"
#include "workload/agents.h"
#include "workload/threaded_harness.h"

namespace cmom::workload {
namespace {

constexpr std::uint32_t kSinkLocal = 1;

domains::MomConfig ThreeDomainChain() {
  // D0 = {0 1 2} -- S2 -- D1 = {2 3 4} -- S4 -- D2 = {4 5}; the same
  // topology as examples/configs/three_domains.conf.
  domains::MomConfig config;
  for (std::uint16_t s = 0; s < 6; ++s) config.servers.push_back(ServerId(s));
  config.domains.push_back(
      {DomainId(0), {ServerId(0), ServerId(1), ServerId(2)}});
  config.domains.push_back(
      {DomainId(1), {ServerId(2), ServerId(3), ServerId(4)}});
  config.domains.push_back({DomainId(2), {ServerId(4), ServerId(5)}});
  return config;
}

// Attaches a sink to EVERY server (unconditionally, so a server that
// joins in a later epoch gets one too) and records the latest live
// instance per server.  Only read the map after HaltAll().
ThreadedHarness::AgentInstaller SinkInstaller(
    std::map<ServerId, SinkAgent*>* sinks) {
  return [sinks](ServerId id, mom::AgentServer& server) {
    auto agent = std::make_unique<SinkAgent>();
    (*sinks)[id] = agent.get();
    server.AttachAgent(kSinkLocal, std::move(agent));
  };
}

void ExpectCleanTrace(ThreadedHarness& harness) {
  const auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  const auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << report.violations.size() << " causal-order violations";
  const Status exactly_once = checker.CheckExactlyOnce(trace);
  EXPECT_TRUE(exactly_once.ok()) << exactly_once;
}

void ExpectAllStoresAt(ThreadedHarness& harness, std::uint64_t epoch) {
  for (ServerId id : harness.KnownServers()) {
    auto current = control::CurrentEpochOf(*harness.StoreOf(id));
    ASSERT_TRUE(current.ok()) << current.status();
    EXPECT_EQ(current.value(), epoch) << "store of " << to_string(id);
    auto pending = control::ReadEpochRecord(*harness.StoreOf(id),
                                            control::kEpochPendingKey);
    ASSERT_TRUE(pending.ok()) << pending.status();
    EXPECT_FALSE(pending.value().has_value())
        << "stale pending record on " << to_string(id);
  }
}

// The acceptance scenario: server add + domain split in one epoch
// transition, live traffic throughout, one server crash (taking the
// coordinator with it) after two of seven stores were already cut
// over.  Recovery must roll FORWARD to epoch 1 everywhere.
TEST(Reconfig, SplitAndAddSurviveCrashDuringCutover) {
  const auto old_config = ThreeDomainChain();
  ThreadedHarness harness(old_config);
  std::map<ServerId, SinkAgent*> sinks;
  ASSERT_TRUE(harness.Init(SinkInstaller(&sinks)).ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Epoch-0 traffic that crosses both routers, so the matrix clocks
  // carry real (non-zero) state into the remap.
  for (std::uint16_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(harness
                    .Send(ServerId(i % 6), kSinkLocal,
                          ServerId((i + 3) % 6), kSinkLocal, kChat)
                    .ok());
  }
  harness.WaitQuiescent();

  // Background traffic for the whole reconfiguration.  Sends bounce
  // off fences (Unavailable) while quiesced and off stopped servers
  // during cutover; every ACCEPTED send must still be delivered
  // exactly once.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> accepted{0};
  std::thread traffic([&] {
    std::uint16_t from = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto sent = harness.Send(ServerId(from), kSinkLocal,
                               ServerId((from + 3) % 6), kSinkLocal, kChat);
      if (sent.ok()) accepted.fetch_add(1, std::memory_order_relaxed);
      from = static_cast<std::uint16_t>((from + 1) % 6);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // New epoch: S6 joins D2, and D0 splits along its traffic pattern
  // (S0/S1 chatter, S2 is the quiet router) into D0 + D3.
  auto with_joiner =
      control::AddServerToDomain(old_config, ServerId(6), DomainId(2));
  ASSERT_TRUE(with_joiner.ok()) << with_joiner.status();
  domains::TrafficProfile d0_traffic(3);
  d0_traffic.set(0, 1, 100.0);
  d0_traffic.set(1, 2, 1.0);
  auto new_config = control::SplitDomain(with_joiner.value(), DomainId(0),
                                         d0_traffic, DomainId(3),
                                         /*max_domain_size=*/2);
  ASSERT_TRUE(new_config.ok()) << new_config.status();
  auto plan = control::ReconfigPlan::Build(0, old_config, new_config.value());
  ASSERT_TRUE(plan.ok()) << plan.status();

  {
    control::Coordinator coordinator(&harness);
    ASSERT_TRUE(coordinator.Propose(plan.value()).ok());
    ASSERT_TRUE(coordinator.Quiesce().ok());
    ASSERT_TRUE(coordinator.CutoverOne(plan.value(), ServerId(0)).ok());
    ASSERT_TRUE(coordinator.CutoverOne(plan.value(), ServerId(1)).ok());
    // Mid-cutover disaster: S3 dies, and the coordinator object dies
    // with it (scope exit).  Stores are now split across two epochs.
    harness.Crash(ServerId(3));
  }

  // A fresh coordinator recovers from the stores alone.  S0/S1 are at
  // epoch 1, so the only safe direction is forward.
  control::Coordinator recovery(&harness);
  ASSERT_TRUE(recovery.Recover().ok());

  EXPECT_EQ(harness.cluster_epoch(), 1u);
  for (ServerId id : plan.value().new_config.servers) {
    EXPECT_NE(harness.ServerOf(id), nullptr)
        << to_string(id) << " should be running at epoch 1";
  }

  // The reconfigured cluster routes: the joiner both receives and
  // sends across the split boundary.
  ASSERT_TRUE(
      harness.Send(ServerId(0), kSinkLocal, ServerId(6), kSinkLocal, kChat)
          .ok());
  ASSERT_TRUE(
      harness.Send(ServerId(6), kSinkLocal, ServerId(1), kSinkLocal, kChat)
          .ok());

  // Let the background thread observe the reopened bus at least once
  // before stopping it: on a loaded machine the thread's few scheduler
  // slices can all land inside the fence window, and the accepted>0
  // assertion below would then race the OS rather than test recovery.
  for (int i = 0; i < 5000 && accepted.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  stop.store(true);
  traffic.join();
  harness.WaitQuiescent();
  harness.HaltAll();

  EXPECT_GT(accepted.load(), 0u);
  ASSERT_NE(sinks[ServerId(6)], nullptr);
  EXPECT_GE(sinks[ServerId(6)]->received(), 1u);

  ExpectAllStoresAt(harness, 1);
  // No loss, no duplication, causal across the epoch boundary: checked
  // on the trace recorder, which (unlike agent state) survives crashes.
  ExpectCleanTrace(harness);
}

// A proposal that would close a domain-graph cycle dies in
// ReconfigPlan::Build -- before any store is touched -- leaving the
// cluster serving at epoch 0 as if nothing happened.
TEST(Reconfig, CycleIntroducingProposalLeavesClusterUntouched) {
  const auto config = ThreeDomainChain();
  ThreadedHarness harness(config);
  std::map<ServerId, SinkAgent*> sinks;
  ASSERT_TRUE(harness.Init(SinkInstaller(&sinks)).ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(
      harness.Send(ServerId(0), kSinkLocal, ServerId(5), kSinkLocal, kChat)
          .ok());
  harness.WaitQuiescent();

  // S0 into D2 closes the loop D0-S0-D2-S4-D1-S2-D0.
  auto cyclic = control::AddServerToDomain(config, ServerId(0), DomainId(2));
  ASSERT_TRUE(cyclic.ok()) << cyclic.status();
  auto plan = control::ReconfigPlan::Build(0, config, cyclic.value());
  EXPECT_FALSE(plan.ok());

  // Untouched: still epoch 0, no pending records, traffic flows.
  EXPECT_EQ(harness.cluster_epoch(), 0u);
  ASSERT_TRUE(
      harness.Send(ServerId(5), kSinkLocal, ServerId(0), kSinkLocal, kChat)
          .ok());
  harness.WaitQuiescent();
  harness.HaltAll();
  EXPECT_EQ(sinks[ServerId(0)]->received(), 1u);
  ExpectAllStoresAt(harness, 0);
  ExpectCleanTrace(harness);
}

// A crash after propose (no store cut over yet) must roll BACK: the
// pending records are deleted and the old epoch keeps serving.
TEST(Reconfig, CrashAfterProposeRollsBack) {
  const auto config = ThreeDomainChain();
  ThreadedHarness harness(config);
  std::map<ServerId, SinkAgent*> sinks;
  ASSERT_TRUE(harness.Init(SinkInstaller(&sinks)).ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (std::uint16_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(harness
                    .Send(ServerId(i), kSinkLocal, ServerId((i + 1) % 6),
                          kSinkLocal, kChat)
                    .ok());
  }
  harness.WaitQuiescent();

  auto merged = control::MergeDomains(config, DomainId(1), DomainId(2));
  ASSERT_TRUE(merged.ok()) << merged.status();
  auto plan = control::ReconfigPlan::Build(0, config, merged.value());
  ASSERT_TRUE(plan.ok()) << plan.status();

  {
    control::Coordinator coordinator(&harness);
    ASSERT_TRUE(coordinator.Propose(plan.value()).ok());
    harness.Crash(ServerId(4));  // coordinator dies too (scope exit)
  }

  control::Coordinator recovery(&harness);
  ASSERT_TRUE(recovery.Recover().ok());

  // Rolled back: S4 is up again under the OLD config, the proposal is
  // gone, and cross-domain routing through S4 still works.
  EXPECT_NE(harness.ServerOf(ServerId(4)), nullptr);
  ASSERT_TRUE(
      harness.Send(ServerId(0), kSinkLocal, ServerId(5), kSinkLocal, kChat)
          .ok());
  harness.WaitQuiescent();
  harness.HaltAll();
  EXPECT_GE(sinks[ServerId(5)]->received(), 1u);
  ExpectAllStoresAt(harness, 0);
  ExpectCleanTrace(harness);
}

// Two chained full Reconfigure() runs: merge the leaf domains at epoch
// 1, then retire a server at epoch 2.  The removed server's store is
// stamped with the final epoch even though it never restarts.
TEST(Reconfig, ChainedEpochsMergeThenRemoveServer) {
  const auto config = ThreeDomainChain();
  ThreadedHarness harness(config);
  std::map<ServerId, SinkAgent*> sinks;
  ASSERT_TRUE(harness.Init(SinkInstaller(&sinks)).ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (std::uint16_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(harness
                    .Send(ServerId(i % 6), kSinkLocal, ServerId((i + 2) % 6),
                          kSinkLocal, kChat)
                    .ok());
  }
  harness.WaitQuiescent();

  control::Coordinator coordinator(&harness);

  auto merged = control::MergeDomains(config, DomainId(1), DomainId(2));
  ASSERT_TRUE(merged.ok()) << merged.status();
  auto plan1 = control::ReconfigPlan::Build(0, config, merged.value());
  ASSERT_TRUE(plan1.ok()) << plan1.status();
  ASSERT_TRUE(coordinator.Reconfigure(plan1.value()).ok());
  EXPECT_EQ(harness.cluster_epoch(), 1u);
  ASSERT_TRUE(
      harness.Send(ServerId(0), kSinkLocal, ServerId(5), kSinkLocal, kChat)
          .ok());
  harness.WaitQuiescent();

  auto removed = control::RemoveServer(merged.value(), ServerId(5));
  ASSERT_TRUE(removed.ok()) << removed.status();
  auto plan2 = control::ReconfigPlan::Build(1, merged.value(), removed.value());
  ASSERT_TRUE(plan2.ok()) << plan2.status();
  ASSERT_TRUE(coordinator.Reconfigure(plan2.value()).ok());
  EXPECT_EQ(harness.cluster_epoch(), 2u);

  // S5 is retired: no live server, sends from it are refused, the
  // survivors keep routing.
  EXPECT_EQ(harness.ServerOf(ServerId(5)), nullptr);
  EXPECT_FALSE(
      harness.Send(ServerId(5), kSinkLocal, ServerId(0), kSinkLocal, kChat)
          .ok());
  for (std::uint16_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(harness
                    .Send(ServerId(i), kSinkLocal, ServerId((i + 1) % 5),
                          kSinkLocal, kChat)
                    .ok());
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  ExpectAllStoresAt(harness, 2);
  ExpectCleanTrace(harness);
}

// A domain running a non-default causal core splits across an epoch:
// the split parts inherit the core, the cutover remaps the hybrid
// cores' durable state (kind-checked against the new config), and
// traffic across the split boundary stays causal and exactly-once.
TEST(Reconfig, SplitCarriesANonDefaultCoreAcrossTheEpoch) {
  auto config = ThreeDomainChain();
  config.causal_core_overrides.emplace_back(
      DomainId(0), clocks::CausalCoreKind::kHybrid);
  ThreadedHarness harness(config);
  std::map<ServerId, SinkAgent*> sinks;
  ASSERT_TRUE(harness.Init(SinkInstaller(&sinks)).ok());
  ASSERT_TRUE(harness.BootAll().ok());

  // Epoch-0 traffic crossing both routers so the hybrid core carries
  // real per-link counters (and possibly live barriers) into the remap.
  for (std::uint16_t i = 0; i < 24; ++i) {
    ASSERT_TRUE(harness
                    .Send(ServerId(i % 6), kSinkLocal,
                          ServerId((i + 3) % 6), kSinkLocal, kChat)
                    .ok());
  }
  harness.WaitQuiescent();

  // D0 = {0 1 2} splits along its traffic pattern into D0 + D3.
  domains::TrafficProfile d0_traffic(3);
  d0_traffic.set(0, 1, 100.0);
  d0_traffic.set(1, 2, 1.0);
  auto new_config = control::SplitDomain(config, DomainId(0), d0_traffic,
                                         DomainId(3), /*max_domain_size=*/2);
  ASSERT_TRUE(new_config.ok()) << new_config.status();
  // The split parts inherited the hybrid override.
  EXPECT_EQ(new_config.value().CoreFor(DomainId(0)),
            clocks::CausalCoreKind::kHybrid);
  EXPECT_EQ(new_config.value().CoreFor(DomainId(3)),
            clocks::CausalCoreKind::kHybrid);

  auto plan = control::ReconfigPlan::Build(0, config, new_config.value());
  ASSERT_TRUE(plan.ok()) << plan.status();
  control::Coordinator coordinator(&harness);
  ASSERT_TRUE(coordinator.Reconfigure(plan.value()).ok());
  EXPECT_EQ(harness.cluster_epoch(), 1u);

  // Post-split traffic, including across the new D0/D3 boundary and
  // the untouched matrix domains.
  for (std::uint16_t i = 0; i < 12; ++i) {
    ASSERT_TRUE(harness
                    .Send(ServerId(i % 6), kSinkLocal,
                          ServerId((i + 5) % 6), kSinkLocal, kChat)
                    .ok());
  }
  harness.WaitQuiescent();
  harness.HaltAll();

  ExpectAllStoresAt(harness, 1);
  ExpectCleanTrace(harness);
}

}  // namespace
}  // namespace cmom::workload
