// Model-based validation of the matrix-clock delivery condition.
//
// The CausalDomainClock protocol is run against an independent
// specification: every stamped message also carries a *vector* event
// timestamp maintained on the side (the textbook characterization of
// causal precedence).  Under random sends and random per-link FIFO
// delivery attempts, whatever the protocol delivers must extend the
// vector-clock causal order, and the protocol must never deadlock
// while undelivered messages remain.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "clocks/causal_clock.h"
#include "clocks/vector_clock.h"
#include "common/rng.h"

namespace cmom::clocks {
namespace {

struct ModelMessage {
  Stamp stamp;
  VectorClock spec;  // independent causal timestamp of the send event
};

class ProtocolModel : public ::testing::TestWithParam<
                          std::tuple<std::size_t, StampMode, std::uint64_t>> {
};

TEST_P(ProtocolModel, DeliveryExtendsSpecOrderAndMakesProgress) {
  const auto [n, mode, seed] = GetParam();

  std::vector<CausalDomainClock> protocol;
  std::vector<VectorClock> spec;  // per-node event clock (the model)
  for (std::size_t i = 0; i < n; ++i) {
    protocol.emplace_back(DomainServerId(static_cast<std::uint16_t>(i)), n,
                          mode);
    spec.emplace_back(n);
  }
  std::vector<std::vector<std::deque<ModelMessage>>> links(
      n, std::vector<std::deque<ModelMessage>>(n));
  std::vector<std::vector<VectorClock>> delivered(n);
  std::size_t in_flight = 0;

  Rng rng(seed);
  const int kSteps = 800;
  for (int step = 0; step < kSteps; ++step) {
    if (rng.NextBool(0.45)) {
      const std::size_t from = rng.NextBelow(n);
      std::size_t to = rng.NextBelow(n);
      if (to == from) to = (to + 1) % n;
      ModelMessage message;
      message.stamp =
          protocol[from].PrepareSend(DomainServerId(static_cast<std::uint16_t>(to)));
      spec[from].Increment(from);
      message.spec = spec[from];
      links[from][to].push_back(std::move(message));
      ++in_flight;
    } else {
      const std::size_t from = rng.NextBelow(n);
      const std::size_t to = rng.NextBelow(n);
      if (from == to || links[from][to].empty()) continue;
      ModelMessage& head = links[from][to].front();
      const auto check = protocol[to].Check(
          DomainServerId(static_cast<std::uint16_t>(from)), head.stamp);
      ASSERT_NE(check, CheckResult::kDuplicate);
      if (check == CheckResult::kDeliver) {
        protocol[to].Commit(DomainServerId(static_cast<std::uint16_t>(from)),
                            head.stamp);
        spec[to].MergeFrom(head.spec);
        spec[to].Increment(to);
        delivered[to].push_back(head.spec);
        links[from][to].pop_front();
        --in_flight;
      }
    }
  }

  // Drain: keep delivering until empty; if a full sweep makes no
  // progress while messages remain, the protocol deadlocked.
  while (in_flight > 0) {
    bool progress = false;
    for (std::size_t from = 0; from < n; ++from) {
      for (std::size_t to = 0; to < n; ++to) {
        while (from != to && !links[from][to].empty()) {
          ModelMessage& head = links[from][to].front();
          if (protocol[to].Check(
                  DomainServerId(static_cast<std::uint16_t>(from)),
                  head.stamp) != CheckResult::kDeliver) {
            break;
          }
          protocol[to].Commit(
              DomainServerId(static_cast<std::uint16_t>(from)), head.stamp);
          spec[to].MergeFrom(head.spec);
          spec[to].Increment(to);
          delivered[to].push_back(head.spec);
          links[from][to].pop_front();
          --in_flight;
          progress = true;
        }
      }
    }
    ASSERT_TRUE(progress) << "protocol deadlocked with " << in_flight
                          << " messages in flight";
  }

  // Safety: at every node, delivery order extends the spec's causal
  // order.
  for (std::size_t node = 0; node < n; ++node) {
    for (std::size_t i = 0; i < delivered[node].size(); ++i) {
      for (std::size_t j = i + 1; j < delivered[node].size(); ++j) {
        EXPECT_FALSE(delivered[node][j].HappensBefore(delivered[node][i]))
            << "node " << node << ": delivery " << j
            << " causally precedes earlier delivery " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProtocolModel,
    ::testing::Combine(::testing::Values(2, 3, 5),
                       ::testing::Values(StampMode::kFullMatrix,
                                         StampMode::kUpdates),
                       ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == StampMode::kUpdates ? "_upd"
                                                             : "_full") +
             "_seed" + std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace cmom::clocks
