// Fault-injection property tests: frame loss, duplication and delay
// storms must never break exactly-once causal delivery -- only slow it
// down.  Parameterized over fault mixes, topologies and seeds.
#include <gtest/gtest.h>

#include "common/log.h"

#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

namespace cmom {
namespace {

using workload::ChatterAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;

struct FaultCase {
  const char* name;
  double drop;
  double duplicate;
  double jitter;
};

class FaultSweep
    : public ::testing::TestWithParam<std::tuple<FaultCase, std::uint64_t>> {
};

TEST_P(FaultSweep, ChatterStaysCausalAndExactlyOnce) {
  const auto& [fault, seed] = GetParam();

  auto config = domains::topologies::Bus(3, 3);
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.retransmit_timeout_ns = 50 * sim::kMillisecond;
  options.fault_model.drop_probability = fault.drop;
  options.fault_model.duplicate_probability = fault.duplicate;
  options.fault_model.jitter_probability = fault.jitter;
  options.fault_model.max_jitter = 80 * sim::kMillisecond;
  options.fault_seed = seed;

  SimHarness harness(config, options);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(1, std::make_unique<ChatterAgent>(
                                              seed * 71 + id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());

  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          ChatterAgent::MakeChatPayload(4))
                    .ok());
  }
  harness.Run();

  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  EXPECT_TRUE(report.causal())
      << report.violations.front().description << " under " << fault.name;
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
  EXPECT_TRUE(harness.CheckQuiescent().ok());
  EXPECT_GT(report.messages_delivered, config.servers.size());
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, FaultSweep,
    ::testing::Combine(
        ::testing::Values(FaultCase{"drops", 0.2, 0, 0},
                          FaultCase{"dupes", 0, 0.3, 0},
                          FaultCase{"jitter", 0, 0, 0.4},
                          FaultCase{"everything", 0.15, 0.15, 0.3}),
        ::testing::Values(1, 2, 3)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(FaultInjection, HeavyLossStillConverges) {
  auto config = domains::topologies::Flat(3);
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.retransmit_timeout_ns = 20 * sim::kMillisecond;
  options.fault_model.drop_probability = 0.6;  // most frames die
  options.fault_seed = 9;

  SimHarness harness(config, options);
  workload::SinkAgent* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(2)) {
                      auto agent = std::make_unique<workload::SinkAgent>();
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  std::vector<MessageId> sent;
  for (int i = 0; i < 20; ++i) {
    sent.push_back(
        harness.Send(ServerId(0), 1, ServerId(2), 1, "msg").value());
  }
  harness.Run();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->order(), sent);  // all arrived, in order, exactly once
  EXPECT_GT(harness.server(ServerId(0)).stats().retransmissions, 0u);
}

TEST(FaultInjection, ReorderingActuallyEngagesTheHoldbackQueue) {
  // Guard against a delivery condition so permissive it never holds
  // anything back: with cross-traffic and reordering jitter, at least
  // one server must have parked a message at some point.
  auto config = domains::topologies::Flat(4);
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.fault_model.jitter_probability = 0.6;
  options.fault_model.max_jitter = 300 * sim::kMillisecond;
  options.fault_model.allow_reordering = true;
  options.retransmit_timeout_ns = 80 * sim::kMillisecond;
  options.fault_seed = 3;
  SimHarness harness(config, options);
  std::vector<AgentId> peers;
  for (ServerId id : config.servers) peers.push_back(AgentId{id, 1});
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    server.AttachAgent(
                        1, std::make_unique<ChatterAgent>(id.value(), peers));
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (ServerId id : config.servers) {
    ASSERT_TRUE(harness
                    .Send(id, 1, id, 1, workload::kChat,
                          ChatterAgent::MakeChatPayload(5))
                    .ok());
  }
  harness.Run();

  std::uint64_t holdback_peak = 0;
  for (ServerId id : config.servers) {
    holdback_peak =
        std::max(holdback_peak, harness.server(id).stats().holdback_peak);
  }
  EXPECT_GT(holdback_peak, 0u);

  auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  EXPECT_TRUE(checker.CheckCausalDelivery(trace).causal());
  EXPECT_TRUE(checker.CheckExactlyOnce(trace).ok());
}

TEST(FaultInjection, UnlimitedRetransmissionKeepsTrying) {
  auto config = domains::topologies::Flat(2);
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.fault_model.drop_probability = 1.0;  // black hole
  options.retransmit_timeout_ns = 10 * sim::kMillisecond;
  SimHarness harness(config, options);
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "void").ok());
  harness.RunUntil(2 * sim::kSecond);
  // Exponential backoff: 10,20,40,...,640 ms capped at 64x the base,
  // i.e. ~8 attempts within the first 2 seconds -- and still trying.
  EXPECT_GE(harness.server(ServerId(0)).stats().retransmissions, 6u);
  EXPECT_EQ(harness.server(ServerId(0)).queue_out_size(), 1u);
  harness.RunUntil(10 * sim::kSecond);
  EXPECT_GE(harness.server(ServerId(0)).stats().retransmissions, 15u);
}

TEST(FaultInjection, RetransmissionGivesUpAfterConfiguredAttempts) {
  auto config = domains::topologies::Flat(2);
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.fault_model.drop_probability = 1.0;  // black hole
  options.retransmit_timeout_ns = 10 * sim::kMillisecond;
  options.max_retransmit_attempts = 5;
  SimHarness harness(config, options);
  ASSERT_TRUE(harness.Init().ok());
  ASSERT_TRUE(harness.BootAll().ok());
  ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "void").ok());
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kOff);  // the give-up error is expected
  harness.Run();                // terminates: the retry timer chain ends
  SetLogLevel(saved);
  EXPECT_EQ(harness.server(ServerId(0)).stats().retransmissions, 5u);
  // The message stays durably queued (an operator decision point), but
  // no further timers fire.
  EXPECT_EQ(harness.server(ServerId(0)).queue_out_size(), 1u);
}

TEST(FaultInjection, DuplicateFramesAreDroppedByTheClockCheck) {
  auto config = domains::topologies::Flat(2);
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  options.fault_model.duplicate_probability = 1.0;  // every frame twice
  SimHarness harness(config, options);
  workload::SinkAgent* sink = nullptr;
  ASSERT_TRUE(harness
                  .Init([&](ServerId id, mom::AgentServer& server) {
                    if (id == ServerId(1)) {
                      auto agent = std::make_unique<workload::SinkAgent>();
                      sink = agent.get();
                      server.AttachAgent(1, std::move(agent));
                    }
                  })
                  .ok());
  ASSERT_TRUE(harness.BootAll().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(harness.Send(ServerId(0), 1, ServerId(1), 1, "msg").ok());
  }
  harness.Run();
  EXPECT_EQ(sink->received(), 10u);
  EXPECT_GE(harness.server(ServerId(1)).stats().duplicates_dropped, 10u);
}

}  // namespace
}  // namespace cmom
