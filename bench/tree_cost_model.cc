// Section 6.2 analytic cost model, checked against measurement.
//
// For a tree of domains of depth d with branching k and s servers per
// domain, the paper derives  n = 1 + (s-1)(k^(d+1)-1)/(k-1)  servers
// and a worst-case message cost  C ~ (2d+1) s^2  (each of the 2d+1
// domains on the deepest route costs s^2).  Fixing s and k and growing
// d, n grows geometrically while C grows linearly in d -- i.e. the
// logarithmic-cost regime the paper contrasts with the bus.  This
// bench measures the deepest-route round trip for d = 1..4 and prints
// it against the analytic prediction.
#include <cstdio>
#include <vector>

#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

int main() {
  constexpr std::size_t kBranching = 2;
  constexpr std::size_t kDomainSize = 5;

  workload::ExperimentOptions options;
  options.rounds = 10;

  std::printf("Tree cost model: s=%zu, k=%zu, depth d=1..4\n", kDomainSize,
              kBranching);
  std::printf("%6s %8s %10s %14s %18s\n", "depth", "servers", "diameter",
              "RTT (ms)", "RTT / (2d+1)");
  for (std::size_t depth = 1; depth <= 4; ++depth) {
    auto config =
        domains::topologies::Tree(kBranching, kDomainSize, depth);
    auto deployment = domains::Deployment::Create(config);
    if (!deployment.ok()) {
      std::fprintf(stderr, "depth %zu: %s\n", depth,
                   deployment.status().to_string().c_str());
      return 1;
    }
    std::size_t diameter = 0;
    ServerId far_a = ServerId(0), far_b = ServerId(0);
    for (ServerId a : config.servers) {
      for (ServerId b : config.servers) {
        const std::size_t hops = deployment.value().routing().HopCount(a, b);
        if (hops > diameter) {
          diameter = hops;
          far_a = a;
          far_b = b;
        }
      }
    }
    auto result = workload::RunPingPong(config, far_a, far_b, options);
    if (!result.ok()) {
      std::fprintf(stderr, "depth %zu: %s\n", depth,
                   result.status().to_string().c_str());
      return 1;
    }
    std::printf("%6zu %8zu %10zu %14.2f %18.3f\n", depth,
                config.servers.size(), diameter, result.value().avg_rtt_ms,
                result.value().avg_rtt_ms /
                    static_cast<double>(2 * depth + 1));
  }
  std::printf(
      "\nExpected: servers grow geometrically with depth while RTT grows\n"
      "only linearly in d (the last column is ~constant), i.e. cost is\n"
      "logarithmic in n -- at a higher constant than the bus, the paper's\n"
      "K' > K caveat.\n");
  return 0;
}
