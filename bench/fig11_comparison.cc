// Figure 11: remote unicast cost WITH vs WITHOUT domains of causality.
//
// Reruns the Figure 7 series (flat, classical full-matrix algorithm)
// and the Figure 10 series (bus of sqrt(n) domains) over the same range
// of n and prints them side by side.  The paper's chart shows the flat
// series exploding quadratically past the domain series, which stays
// flat; the crossover sits at a few tens of servers.
#include <cmath>
#include <cstdio>
#include <vector>

#include "clocks/causal_clock.h"
#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

int main() {
  const std::vector<std::size_t> sizes = {10, 20, 30, 40, 50, 60, 90, 120, 150};

  workload::ExperimentOptions options;
  options.rounds = 10;

  std::printf("Figure 11: remote unicast, with vs without domains\n");
  std::printf("%10s %22s %22s\n", "servers", "WITH domains (ms)",
              "WITHOUT domains (ms)");
  double crossover_before = -1;
  bool domains_won = false;
  for (std::size_t n : sizes) {
    const std::size_t s = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    auto with_config = domains::topologies::BusForServerCount(n, s);
    const std::size_t actual = with_config.servers.size();
    auto with_domains = workload::RunPingPong(
        with_config, ServerId(0),
        ServerId(static_cast<std::uint16_t>(actual - 1)), options);

    auto flat_config =
        domains::topologies::Flat(actual, clocks::StampMode::kFullMatrix);
    auto without_domains = workload::RunPingPong(
        flat_config, ServerId(0),
        ServerId(static_cast<std::uint16_t>(actual - 1)), options);

    if (!with_domains.ok() || !without_domains.ok()) {
      std::fprintf(stderr, "n=%zu failed\n", n);
      return 1;
    }
    std::printf("%10zu %22.2f %22.2f\n", actual,
                with_domains.value().avg_rtt_ms,
                without_domains.value().avg_rtt_ms);
    if (!domains_won && with_domains.value().avg_rtt_ms <
                            without_domains.value().avg_rtt_ms) {
      domains_won = true;
      crossover_before = static_cast<double>(actual);
    }
  }
  if (domains_won) {
    std::printf(
        "\nDomains win from ~%g servers on (the paper's chart shows the\n"
        "same crossover at a few tens of servers; beyond it the flat\n"
        "series grows quadratically while the domain series stays flat).\n",
        crossover_before);
  } else {
    std::printf("\nWARNING: domain series never beat the flat series.\n");
  }
  return 0;
}
