// Parallel-engine benchmark: delivered messages/sec vs engine worker
// count and group-commit batch size -- the wall-clock scaling number in
// the bench trajectory.
//
// One loaded server hosts `agents` CPU-bound SpinAgents; a feeder
// server sprays messages at them round-robin and the run is timed to
// quiescence.  With engine_workers = 0 every reaction serializes on
// the classical single work loop; with N workers the sharded Engine
// stage runs up to N reactions concurrently over the lock-free MPSC
// lane rings while the Channel and commit stages keep their
// single-lock discipline -- so the measured speedup is exactly the
// pipeline's, not an artifact of skipping commits (group commit still
// makes every reaction durable).
//
// Per run the bench also records:
//   - worker utilization: sum of shard React wall time over
//     workers x elapsed (how busy the pool actually was),
//   - heap allocations: BufferPool counter delta over the run
//     (acquires - pool_hits; the arena's job is driving this to ~0
//     per message in steady state),
//   - executor overflow posts and parks (ring hand-off health).
//
// Topologies: flat (one global domain, feeder -> loaded) and a bus of
// domains (Bus(2,2): feeder routes through the backbone into the
// other leaf), showing the scaling survives routed multi-domain
// operation.  The batch sweep re-runs the flat 4-worker point at
// several engine_batch sizes.
//
// Results depend on the host's core count (recorded in the JSON); on a
// single-core container the worker pool cannot beat the inline engine
// and the speedup column reads ~1x.  The acceptance target (>= 2.5x at
// 4 workers) applies to hosts with >= 4 cores; when this binary runs
// on fewer cores it says so loudly on stderr AND in the JSON summary
// ("multi_core_ok": false), so a CI job cannot silently "pass" a
// speedup assertion on a box that cannot express parallelism.
//
// Output: a table on stdout plus BENCH_engine_parallel.json (use --out
// to redirect).  --smoke shrinks the counts for the CI bench label.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "domains/topologies.h"
#include "mom/agent.h"
#include "mom/agent_server.h"
#include "workload/threaded_harness.h"

using namespace cmom;

namespace {

// Burns a deterministic amount of CPU per reaction (an LCG chain whose
// result feeds the durable state, so the work cannot be optimized
// away).  Stands in for real reaction logic: the engine stage is the
// bottleneck, which is the regime worker sharding targets.
class SpinAgent final : public mom::Agent {
 public:
  explicit SpinAgent(std::uint64_t spin_iters) : spin_iters_(spin_iters) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    (void)message;
    std::uint64_t acc = checksum_ + 1;
    for (std::uint64_t i = 0; i < spin_iters_; ++i) {
      acc = acc * 6364136223846793005ull + 1442695040888963407ull;
    }
    checksum_ = acc;
    ++seen_;
  }

  void EncodeState(ByteWriter& out) const override {
    out.WriteVarU64(seen_);
    out.WriteU64(checksum_);
  }
  [[nodiscard]] Status DecodeState(ByteReader& in) override {
    auto seen = in.ReadVarU64();
    if (!seen.ok()) return seen.status();
    seen_ = seen.value();
    auto checksum = in.ReadU64();
    if (!checksum.ok()) return checksum.status();
    checksum_ = checksum.value();
    return Status::Ok();
  }

 private:
  std::uint64_t spin_iters_;
  std::uint64_t seen_ = 0;
  std::uint64_t checksum_ = 0;
};

struct RunResult {
  std::string topology;
  std::size_t workers = 0;
  std::size_t engine_batch = 0;
  std::size_t messages = 0;
  double msgs_per_sec = 0;
  double group_commit_mean = 0;  // reactions per commit-stage txn
  double utilization = 0;        // busy_ns sum / (workers * elapsed)
  std::uint64_t heap_allocs = 0;     // pool misses over the run
  std::uint64_t pool_hits = 0;       // buffer reuses over the run
  std::uint64_t shelf_deposits = 0;  // consumer -> overflow shelf moves
  std::uint64_t shelf_refills = 0;   // producer refills from the shelf
  double allocs_per_message = 0;     // heap_allocs / messages
  std::uint64_t overflow_posts = 0;  // ring-full spills (loaded server)
  std::uint64_t parks = 0;           // consumer futex parks
};

RunResult Measure(std::string_view topology, std::size_t workers,
                  std::size_t engine_batch, std::size_t messages,
                  std::size_t agents, std::uint64_t spin_iters) {
  const bool bus = topology == "bus";
  workload::ThreadedHarnessOptions options;
  options.engine_workers = workers;
  options.engine_batch = engine_batch;
  workload::ThreadedHarness harness(
      bus ? domains::topologies::Bus(2, 2) : domains::topologies::Flat(2),
      options);
  // Feeder S0; the loaded server is the far end of the routed path.
  const ServerId feeder(0);
  const ServerId loaded(static_cast<std::uint16_t>(bus ? 3 : 1));
  Status init = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id != loaded) return;
    for (std::size_t a = 0; a < agents; ++a) {
      server.AttachAgent(static_cast<std::uint32_t>(a),
                         std::make_unique<SpinAgent>(spin_iters));
    }
  });
  if (!init.ok() || !harness.BootAll().ok()) {
    std::fprintf(stderr, "harness setup failed\n");
    return {};
  }

  const BufferPool::Counters pool_before = BufferPool::Totals();
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < messages; ++i) {
    const std::uint32_t agent = static_cast<std::uint32_t>(i % agents);
    (void)harness.Send(feeder, 99, loaded, agent, "spin");
  }
  harness.WaitQuiescent();
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  const BufferPool::Counters pool_after = BufferPool::Totals();

  const mom::ServerStats stats = harness.server(loaded).stats();
  harness.HaltAll();

  RunResult result;
  result.topology = std::string(topology);
  result.workers = workers;
  result.engine_batch = engine_batch;
  result.messages = messages;
  result.msgs_per_sec =
      seconds > 0 ? static_cast<double>(messages) / seconds : 0;
  result.group_commit_mean = stats.group_commit_hist.Mean();
  std::uint64_t busy_ns = 0;
  for (std::uint64_t ns : stats.worker_busy_ns) busy_ns += ns;
  if (workers > 0 && seconds > 0) {
    result.utilization = static_cast<double>(busy_ns) /
                         (static_cast<double>(workers) * seconds * 1e9);
  }
  result.heap_allocs =
      pool_after.heap_allocations() - pool_before.heap_allocations();
  result.pool_hits = pool_after.pool_hits - pool_before.pool_hits;
  result.shelf_deposits =
      pool_after.shelf_deposits - pool_before.shelf_deposits;
  result.shelf_refills = pool_after.shelf_refills - pool_before.shelf_refills;
  result.allocs_per_message =
      messages > 0
          ? static_cast<double>(result.heap_allocs) / static_cast<double>(messages)
          : 0;
  result.overflow_posts = stats.lane_overflow_posts;
  result.parks = stats.lane_parks;
  return result;
}

void WriteJson(const std::string& path, const std::vector<RunResult>& results,
               bool smoke, std::size_t default_batch) {
  const unsigned cores = std::thread::hardware_concurrency();
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"engine_parallel\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"cores\": %u,\n", cores);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\"topology\": \"%s\", \"workers\": %zu, "
                 "\"engine_batch\": %zu, \"messages\": %zu, "
                 "\"msgs_per_sec\": %.0f, \"group_commit_mean\": %.2f, "
                 "\"utilization\": %.3f, \"heap_allocs\": %llu, "
                 "\"pool_hits\": %llu, \"allocs_per_message\": %.3f, "
                 "\"shelf_deposits\": %llu, \"shelf_refills\": %llu, "
                 "\"overflow_posts\": %llu, "
                 "\"parks\": %llu}%s\n",
                 r.topology.c_str(), r.workers, r.engine_batch, r.messages,
                 r.msgs_per_sec, r.group_commit_mean, r.utilization,
                 static_cast<unsigned long long>(r.heap_allocs),
                 static_cast<unsigned long long>(r.pool_hits),
                 r.allocs_per_message,
                 static_cast<unsigned long long>(r.shelf_deposits),
                 static_cast<unsigned long long>(r.shelf_refills),
                 static_cast<unsigned long long>(r.overflow_posts),
                 static_cast<unsigned long long>(r.parks),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  auto rate = [&](std::string_view topology, std::size_t workers) -> double {
    for (const RunResult& r : results) {
      if (r.topology == topology && r.workers == workers &&
          r.engine_batch == default_batch) {
        return r.msgs_per_sec;
      }
    }
    return 0;
  };
  // Arena acceptance: with the overflow shelf closing the feeder ->
  // engine producer/consumer split, the headline 4-worker flat run
  // should sit near zero heap allocations per message once the
  // per-thread warmup (freelists filling, thread caches registering)
  // is amortized.  Smoke runs are warmup-dominated, so the bound is
  // loose there.
  double arena_allocs_per_message = 0;
  for (const RunResult& r : results) {
    if (r.topology == "flat" && r.workers == 4 &&
        r.engine_batch == default_batch) {
      arena_allocs_per_message = r.allocs_per_message;
      break;
    }
  }
  const double arena_bound = smoke ? 2.0 : 0.5;
  const bool arena_ok = arena_allocs_per_message <= arena_bound;

  const double base_flat = rate("flat", 0);
  const double base_bus = rate("bus", 0);
  const double speedup_flat =
      base_flat > 0 ? rate("flat", 4) / base_flat : 0;
  const double speedup_bus = base_bus > 0 ? rate("bus", 4) / base_bus : 0;
  // A speedup measured on < 4 cores is not a measurement of the
  // 4-worker pipeline at all; refuse to present it as one.
  const bool multi_core_ok = cores >= 4;
  std::fprintf(out,
               "  \"summary\": {\"speedup_4_workers_flat\": %.2f, "
               "\"speedup_4_workers_bus\": %.2f, "
               "\"allocs_per_message_flat_4\": %.3f, "
               "\"allocs_per_message_bound\": %.1f, \"arena_ok\": %s, "
               "\"multi_core_ok\": %s%s}\n}\n",
               speedup_flat, speedup_bus, arena_allocs_per_message,
               arena_bound, arena_ok ? "true" : "false",
               multi_core_ok ? "true" : "false",
               multi_core_ok
                   ? ""
                   : ", \"error\": \"host has too few cores for the "
                     "4-worker speedup target; numbers above measure "
                     "oversubscription, not scaling\"");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
  std::printf("4-worker speedup vs inline engine: flat %.2fx, bus %.2fx "
              "(on %u cores)\n",
              speedup_flat, speedup_bus, cores);
  std::printf("arena: %.3f heap allocs/message on the flat 4-worker run "
              "(bound %.1f) -> %s\n",
              arena_allocs_per_message, arena_bound,
              arena_ok ? "ok" : "FAILURE");
  if (!multi_core_ok) {
    std::fprintf(stderr,
                 "engine_parallel: FAILURE -- host has %u core(s); the "
                 ">= 2.5x 4-worker acceptance target needs >= 4 cores.  "
                 "Recorded \"multi_core_ok\": false in %s.\n",
                 cores, path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_engine_parallel.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const std::size_t messages = smoke ? 128 : 2000;
  const std::size_t agents = 16;
  const std::uint64_t spin_iters = smoke ? 5000 : 20000;
  const std::size_t default_batch = 16;
  const std::vector<std::size_t> worker_counts =
      smoke ? std::vector<std::size_t>{0, 4}
            : std::vector<std::size_t>{0, 1, 2, 4, 8};
  // Batch sweep: the flat 4-worker point re-run across group-commit
  // sizes (adaptive sizing caps at engine_batch, so this is the knob
  // that trades commit amortization against pipeline latency).
  const std::vector<std::size_t> batch_sweep =
      smoke ? std::vector<std::size_t>{4}
            : std::vector<std::size_t>{1, 4, 64};

  std::printf("Parallel engine: delivered msgs/sec vs worker count "
              "(%u cores)\n",
              std::thread::hardware_concurrency());
  std::printf("%-6s %8s %6s %9s %12s %14s %6s %11s\n", "topo", "workers",
              "batch", "msgs", "msgs/sec", "group-commit", "util",
              "heap-allocs");
  auto report = [](const RunResult& r) {
    std::printf("%-6s %8zu %6zu %9zu %12.0f %14.2f %6.2f %11llu\n",
                r.topology.c_str(), r.workers, r.engine_batch, r.messages,
                r.msgs_per_sec, r.group_commit_mean, r.utilization,
                static_cast<unsigned long long>(r.heap_allocs));
  };

  std::vector<RunResult> results;
  for (const char* topology : {"flat", "bus"}) {
    for (std::size_t workers : worker_counts) {
      results.push_back(Measure(topology, workers, default_batch, messages,
                                agents, spin_iters));
      report(results.back());
    }
  }
  for (std::size_t batch : batch_sweep) {
    results.push_back(
        Measure("flat", 4, batch, messages, agents, spin_iters));
    report(results.back());
  }
  WriteJson(out_path, results, smoke, default_batch);
  return 0;
}
