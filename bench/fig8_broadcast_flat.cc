// Figure 8: broadcast WITHOUT domains of causality.
//
// One global domain; the main agent on S0 sends a ping to every other
// server each round and waits for all pongs.  The paper measured 636 ms
// (n=10) up to 25.3 s (n=90): the sender serializes n-1 stampings per
// round, each with O(n^2) timestamp/persistence cost, so the round time
// grows superlinearly.
#include <cstdio>
#include <vector>

#include "clocks/causal_clock.h"
#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

int main() {
  const std::vector<std::pair<std::size_t, double>> paper = {
      {10, 636},  {20, 1382}, {30, 2771},  {40, 4187},
      {50, 6613}, {60, 8933}, {90, 25323}};

  workload::ExperimentOptions options;
  options.rounds = 3;  // deterministic simulation: rounds are identical

  std::vector<workload::SeriesPoint> series;
  for (auto [n, paper_ms] : paper) {
    auto config =
        domains::topologies::Flat(n, clocks::StampMode::kFullMatrix);
    auto result = workload::RunBroadcast(config, ServerId(0), options);
    if (!result.ok()) {
      std::fprintf(stderr, "n=%zu failed: %s\n", n,
                   result.status().to_string().c_str());
      return 1;
    }
    series.push_back({n, result.value().avg_rtt_ms, paper_ms});
  }
  workload::PrintSeries("Figure 8: broadcast, no domains (flat matrix clock)",
                        series);
  std::printf(
      "\nExpected shape: strongly superlinear growth (the paper overlays a\n"
      "quadratic fit; the 60->90 jump in both series is steeper still).\n");
  return 0;
}
