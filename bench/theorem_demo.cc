// The main theorem (Section 4.3), demonstrated executably.
//
// Part 1 (necessity, Figure 4a): with a CYCLE in the domain
// interconnection graph, per-domain causal order does NOT imply global
// causal order.  On a ring of domains, p = S0 sends a direct message n
// to q = S{k-1} through their shared domain, then starts a chain of
// messages the long way around the ring.  The direct link is slow (we
// give it extra latency -- the protocol is entitled to any link
// timing); no per-domain matrix clock relates the chain to n, so the
// chain's last message overtakes n at q and the oracle reports the
// violation.
//
// Part 1b (contrast): break the cycle (same servers, one ring domain
// removed) and rerun the identical scenario with the identical slow
// link.  The "direct" message now routes hop-by-hop through the same
// domains as the chain, the clocks relate them, and causality holds.
//
// Part 2 (sufficiency): randomized chatter over acyclic organizations
// (bus, daisy, tree) under heavy link jitter never violates causality.
#include <cstdio>
#include <optional>

#include "causality/checker.h"
#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

using namespace cmom;
using workload::ChatterAgent;
using workload::SimHarness;
using workload::SimHarnessOptions;

namespace {

// Forwards any "fwd" message to the next agent in a fixed chain.
class ForwarderAgent final : public mom::Agent {
 public:
  explicit ForwarderAgent(std::optional<AgentId> next) : next_(next) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    if (message.subject == "fwd" && next_) {
      ctx.Send(*next_, "fwd", message.payload);
    }
  }

 private:
  std::optional<AgentId> next_;
};

// Runs the Figure 4(a) schedule on `config` (ring, or ring-with-one-
// domain-removed).  Returns true when the oracle found a violation.
bool RunScenario(const domains::MomConfig& config, std::size_t k,
                 bool print_violations) {
  SimHarnessOptions options;
  options.simulate_processing_costs = false;
  SimHarness harness(config, options);

  const std::uint16_t last = static_cast<std::uint16_t>(k - 1);
  Status init = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id.value() < last) {
      server.AttachAgent(
          1, std::make_unique<ForwarderAgent>(
                 AgentId{ServerId(static_cast<std::uint16_t>(id.value() + 1)),
                         1}));
    } else {
      server.AttachAgent(1, std::make_unique<ForwarderAgent>(std::nullopt));
    }
  });
  if (!init.ok()) {
    std::fprintf(stderr, "init failed: %s\n", init.to_string().c_str());
    return false;
  }
  if (!harness.BootAll().ok()) return false;

  // The direct S0 -> S{k-1} link is slow.  (In the acyclic contrast run
  // this link carries no traffic: S0 and S{k-1} no longer share a
  // domain, so the message routes through S1..S{k-2}.)
  harness.network().SetLinkLatency(ServerId(0), ServerId(last),
                                   500 * sim::kMillisecond);

  auto direct = harness.Send(ServerId(0), 1, ServerId(last), 1, "fwd");
  auto chain = harness.Send(ServerId(0), 1, ServerId(1), 1, "fwd");
  if (!direct.ok() || !chain.ok()) return false;
  harness.Run();

  auto checker = harness.MakeChecker();
  auto report = checker.CheckCausalDelivery(harness.trace().Snapshot());
  if (print_violations) {
    for (const auto& violation : report.violations) {
      std::printf("  violation: %s\n", violation.description.c_str());
    }
  }
  return !report.causal();
}

}  // namespace

int main() {
  bool all_as_predicted = true;

  std::printf("Part 1: cyclic domain graph (ring) breaks global causality\n");
  for (std::size_t k = 3; k <= 6; ++k) {
    auto ring = domains::topologies::Ring(k, 2);
    const bool violated = RunScenario(ring, k, /*print_violations=*/k == 3);
    std::printf("  ring of %zu domains: %s\n", k,
                violated ? "VIOLATED (as the theorem predicts)"
                         : "no violation (UNEXPECTED)");
    all_as_predicted = all_as_predicted && violated;
  }

  std::printf(
      "\nPart 1b: same scenario, cycle broken (one ring domain removed)\n");
  for (std::size_t k = 3; k <= 6; ++k) {
    auto line = domains::topologies::Ring(k, 2);
    // Removing the domain that closes the ring (the one containing both
    // S0 and S{k-1}) yields an acyclic line S0 - S1 - ... - S{k-1}.
    std::erase_if(line.domains, [&](const domains::DomainSpec& d) {
      return d.id == DomainId(0);
    });
    line.allow_cyclic_domain_graph = false;  // must validate as acyclic
    const bool violated = RunScenario(line, k, /*print_violations=*/false);
    std::printf("  line of %zu domains: %s\n", k - 1,
                violated ? "violated (UNEXPECTED)"
                         : "causality preserved (as the theorem predicts)");
    all_as_predicted = all_as_predicted && !violated;
  }

  std::printf("\nPart 2: randomized chatter on acyclic organizations\n");
  struct Case {
    const char* name;
    domains::MomConfig config;
  };
  const Case cases[] = {
      {"bus(4x4)", domains::topologies::Bus(4, 4)},
      {"daisy(4x4)", domains::topologies::Daisy(4, 4)},
      {"tree(k=2,s=4,d=2)", domains::topologies::Tree(2, 4, 2)},
  };
  for (const Case& c : cases) {
    std::size_t violations = 0;
    const std::size_t seeds = 10;
    for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
      SimHarnessOptions options;
      options.simulate_processing_costs = false;
      options.fault_model.jitter_probability = 0.3;
      options.fault_model.max_jitter = 200 * sim::kMillisecond;
      options.fault_seed = seed;
      SimHarness harness(c.config, options);
      std::vector<AgentId> peers;
      for (ServerId id : c.config.servers) peers.push_back(AgentId{id, 1});
      Status init = harness.Init([&](ServerId id, mom::AgentServer& server) {
        server.AttachAgent(1, std::make_unique<ChatterAgent>(
                                  seed * 1000 + id.value(), peers));
      });
      if (!init.ok() || !harness.BootAll().ok()) return 1;
      for (ServerId id : c.config.servers) {
        (void)harness.Send(id, 1, id, 1, workload::kChat,
                           ChatterAgent::MakeChatPayload(6));
      }
      harness.Run();
      auto checker = harness.MakeChecker();
      if (!checker.CheckCausalDelivery(harness.trace().Snapshot()).causal()) {
        ++violations;
      }
    }
    std::printf("  %-20s %zu/%zu randomized runs causal\n", c.name,
                seeds - violations, seeds);
    all_as_predicted = all_as_predicted && violations == 0;
  }

  std::printf("\n%s\n", all_as_predicted
                            ? "THEOREM CONFIRMED on all scenarios."
                            : "MISMATCH with the theorem -- investigate!");
  return all_as_predicted ? 0 : 1;
}
