// Related-work baseline ablation: vector-clock causal BROADCAST
// ([13]/[17]-style, Section 2) vs this paper's domain-partitioned
// matrix clocks, for point-to-point MOM traffic.
//
// The broadcast family guarantees causal order by sending *every*
// message to *every* node with an O(n) vector stamp: a logical unicast
// costs (n-1) frames.  The domain approach routes a unicast over a few
// hops with O(1) Updates stamps.  This bench measures, with the real
// codecs, the wire cost per logical 64-byte unicast message at growing
// system sizes.
#include <cstdio>
#include <vector>

#include "clocks/cbcast.h"
#include "domains/deployment.h"
#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

namespace {

constexpr std::size_t kPayload = 64;

// Wire bytes for one logical unicast under causal broadcast: (n-1)
// copies, each payload + encoded vector stamp (measured in steady
// state, counters > 0 after a warm-up round).
double CbcastBytesPerMessage(std::size_t n) {
  clocks::CbcastNode node(0, n);
  for (int warm = 0; warm < 3; ++warm) (void)node.PrepareBroadcast();
  const clocks::VectorClock stamp = node.PrepareBroadcast();
  ByteWriter writer;
  stamp.Encode(writer);
  return static_cast<double>(n - 1) *
         static_cast<double>(kPayload + writer.size());
}

}  // namespace

int main() {
  std::printf(
      "Baseline ablation: causal broadcast (vector clocks) vs domains\n"
      "(matrix clocks + Updates), wire bytes per logical 64-B unicast\n");
  std::printf("%8s %22s %22s %10s\n", "servers", "cbcast (B/msg)",
              "domains (B/msg)", "ratio");

  workload::ExperimentOptions options;
  options.rounds = 10;
  for (std::size_t n : {9u, 16u, 36u, 64u, 100u, 144u}) {
    const double cbcast = CbcastBytesPerMessage(n);

    // Measured on the real bus-of-domains MOM: total wire bytes of a
    // ping-pong run divided by the number of logical messages
    // (2 per round: ping + pong), with the same payload size.
    std::size_t s = 1;
    while (s * s < n) ++s;
    auto config = domains::topologies::BusForServerCount(n, s);
    const std::size_t actual = config.servers.size();
    workload::ExperimentOptions run_options = options;
    auto result = workload::RunPingPong(
        config, ServerId(0), ServerId(static_cast<std::uint16_t>(actual - 1)),
        run_options);
    if (!result.ok()) {
      std::fprintf(stderr, "n=%zu failed: %s\n", n,
                   result.status().to_string().c_str());
      return 1;
    }
    const double logical =
        static_cast<double>(2 * result.value().rounds);  // pings + pongs
    const double domains_bytes =
        static_cast<double>(result.value().wire_bytes) / logical +
        kPayload;  // the test ping has no payload; add it for fairness

    std::printf("%8zu %22.0f %22.0f %9.1fx\n", actual, cbcast, domains_bytes,
                cbcast / domains_bytes);
  }
  std::printf(
      "\nExpected: the broadcast baseline grows ~n * (payload + n stamp\n"
      "bytes) per message, while the domain approach stays near\n"
      "(hops * frame) -- the Section 2 scalability argument, quantified.\n");
  return 0;
}
