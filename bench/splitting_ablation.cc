// Future-work ablation (Section 7): traffic-aware domain splitting vs
// the traffic-oblivious index-order bus.
//
// Workload: 24 servers in 6 communities of 4; servers talk mostly to
// their own community (the locality assumption of [9]/[19] that the
// paper cites).  Community membership is scattered across server ids,
// so the naive index-chop split separates communities while the
// optimizer's maximum-spanning-tree clustering reunites them.
//
// Reported per strategy: the Section 6.2 analytic cost, the simulated
// makespan of replaying 600 messages drawn from the profile, and total
// wire bytes.
#include <cstdio>
#include <vector>

#include "domains/deployment.h"
#include "domains/splitter.h"
#include "workload/agents.h"
#include "workload/sim_harness.h"

using namespace cmom;

namespace {

constexpr std::size_t kServers = 24;
constexpr std::size_t kCommunities = 6;
constexpr std::size_t kMessages = 600;

std::size_t CommunityOf(std::size_t server) { return server % kCommunities; }

domains::TrafficProfile MakeProfile() {
  domains::TrafficProfile traffic(kServers);
  for (std::size_t a = 0; a < kServers; ++a) {
    for (std::size_t b = 0; b < kServers; ++b) {
      if (a == b) continue;
      traffic.set(a, b, CommunityOf(a) == CommunityOf(b) ? 50.0 : 0.4);
    }
  }
  return traffic;
}

struct RunResult {
  double analytic_cost = 0;
  double makespan_ms = 0;
  std::uint64_t wire_bytes = 0;
};

RunResult Replay(const domains::MomConfig& config,
                 const domains::TrafficProfile& traffic) {
  RunResult result;
  result.analytic_cost =
      domains::CostEstimator::Estimate(config, traffic).value_or(-1);

  workload::SimHarnessOptions options;
  options.simulate_processing_costs = true;
  workload::SimHarness harness(config, options);
  Status init = harness.Init([&](ServerId, mom::AgentServer& server) {
    server.AttachAgent(1, std::make_unique<workload::SinkAgent>());
  });
  if (!init.ok() || !harness.BootAll().ok()) {
    std::fprintf(stderr, "setup failed\n");
    return result;
  }

  // Deterministic sample of the profile.
  Rng rng(42);
  const double total = traffic.Total();
  for (std::size_t i = 0; i < kMessages; ++i) {
    double target = rng.NextDouble() * total;
    std::size_t from = 0, to = 1;
    for (std::size_t a = 0; a < kServers && target > 0; ++a) {
      for (std::size_t b = 0; b < kServers; ++b) {
        target -= traffic.at(a, b);
        if (target <= 0) {
          from = a;
          to = b;
          break;
        }
      }
    }
    (void)harness.Send(ServerId(static_cast<std::uint16_t>(from)), 1,
                       ServerId(static_cast<std::uint16_t>(to)), 1, "m");
  }
  harness.Run();
  result.makespan_ms = sim::ToMilliseconds(harness.simulator().now());
  result.wire_bytes = harness.network().bytes_sent();
  return result;
}

}  // namespace

int main() {
  const domains::TrafficProfile traffic = MakeProfile();
  domains::SplitterOptions options;
  options.max_domain_size = 4;

  auto naive = domains::DomainSplitter::NaiveSplit(kServers, options);
  auto optimized =
      domains::DomainSplitter::Split(traffic, options).value();

  const RunResult naive_run = Replay(naive, traffic);
  const RunResult optimized_run = Replay(optimized, traffic);

  std::printf("Domain-splitting ablation (24 servers, 6 communities)\n");
  std::printf("%-22s %16s %16s %14s\n", "strategy", "analytic cost",
              "makespan (ms)", "wire bytes");
  std::printf("%-22s %16.1f %16.1f %14llu\n", "naive index bus",
              naive_run.analytic_cost, naive_run.makespan_ms,
              static_cast<unsigned long long>(naive_run.wire_bytes));
  std::printf("%-22s %16.1f %16.1f %14llu\n", "traffic-aware split",
              optimized_run.analytic_cost, optimized_run.makespan_ms,
              static_cast<unsigned long long>(optimized_run.wire_bytes));
  std::printf(
      "\nExpected: the traffic-aware split keeps most messages inside one\n"
      "domain (one hop, small clock), cutting all three columns well\n"
      "below the naive split, which scatters communities across leaves.\n");
  return optimized_run.makespan_ms < naive_run.makespan_ms ? 0 : 1;
}
