// Wall-clock cross-check of the simulator's central claim.
//
// Everything elsewhere is measured in simulated time; here the same
// ping-pong runs on the REAL threaded transport with real agent
// servers doing real work (stamping, serialization, in-memory commits
// of the persistent image).  The absolute numbers depend on this
// machine, but the shape must match the simulation: the flat
// full-matrix configuration degrades with n (its per-message work is
// O(n^2) real CPU), while the bus-of-domains stays near-flat.
#include <cstdio>
#include <vector>

#include "clocks/causal_clock.h"
#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/metrics.h"
#include "workload/threaded_harness.h"

using namespace cmom;

namespace {

// Returns mean wall-clock RTT (microseconds) of `rounds` ping-pongs
// between the first and last server of `config`.
double MeasureWallClock(const domains::MomConfig& config,
                        std::size_t rounds) {
  workload::ThreadedHarness harness(config);
  workload::PingPongDriver* driver = nullptr;
  const ServerId last = config.servers.back();
  Status status =
      harness.Init([&](ServerId id, mom::AgentServer& server) {
        if (id == ServerId(0)) {
          auto agent = std::make_unique<workload::PingPongDriver>(
              AgentId{last, 1}, rounds);
          driver = agent.get();
          server.AttachAgent(2, std::move(agent));
        }
        if (id == last) {
          server.AttachAgent(1, std::make_unique<workload::EchoAgent>());
        }
      });
  if (!status.ok() || !harness.BootAll().ok()) return -1;
  (void)harness.Send(ServerId(0), 2, ServerId(0), 2, workload::kStart);
  harness.WaitQuiescent();
  if (driver == nullptr || !driver->done()) return -1;

  // Drop the first quarter as warm-up, average the rest.
  const auto& rtts = driver->round_trip_ns();
  std::uint64_t total = 0;
  const std::size_t skip = rtts.size() / 4;
  for (std::size_t i = skip; i < rtts.size(); ++i) total += rtts[i];
  return static_cast<double>(total) /
         static_cast<double>(rtts.size() - skip) / 1000.0;
}

}  // namespace

int main() {
  const std::size_t rounds = 300;
  std::printf(
      "Wall-clock cross-check (real threads, this machine, %zu rounds)\n",
      rounds);
  std::printf("%10s %22s %22s\n", "servers", "flat full-matrix (us)",
              "bus of domains (us)");
  struct Row {
    std::size_t n, k, s;
  };
  for (Row row : {Row{16, 4, 4}, Row{36, 6, 6}, Row{64, 8, 8},
                  Row{100, 10, 10}}) {
    const double flat = MeasureWallClock(
        domains::topologies::Flat(row.n, clocks::StampMode::kFullMatrix),
        rounds);
    const double bus =
        MeasureWallClock(domains::topologies::Bus(row.k, row.s), rounds);
    std::printf("%10zu %22.1f %22.1f\n", row.n, flat, bus);
  }
  std::printf(
      "\nExpected shape (absolute values are machine-dependent): the flat\n"
      "column grows superlinearly with n -- real O(n^2) stamp and commit\n"
      "work per message -- while the domain column stays near-flat, as in\n"
      "the simulated Figure 11.\n");
  return 0;
}
