// Autopilot churn bench: closed-loop topology control vs a frozen
// topology on the same seeded churn trace.
//
// Runs the src/autopilot churn soak twice -- once with the controller
// live (it should merge the phase-1 hotspot's domains, split them back
// when the hotspot decays into disjoint cliques, and absorb/retire the
// join/leave churn) and once frozen (dry-run: the controller observes,
// scores and journals but never reconfigures).  Both runs share the
// seed, so the traffic phases are identical; BENCH_autopilot.json
// reports the per-window analytic score series side by side plus the
// steady-state improvement, and the run aborts with exit 1 when the
// causal / exactly-once oracle flags either run.
//
//   --smoke     shrink the scenario for the CI bench label
//   --out PATH  write BENCH_autopilot.json elsewhere
//   CMOM_SEED   replays a logged seed
#include <cstdio>
#include <cstring>
#include <string>

#include "autopilot/churn.h"
#include "common/seed.h"

using namespace cmom;

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_autopilot.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out path]\n", argv[0]);
      return 2;
    }
  }

  autopilot::ChurnSoakOptions options;
  options.seed = SeedFromEnv(42, "autopilot_churn");
  if (smoke) {
    options.chain_domains = 5;
    options.domain_size = 4;
    options.windows = 24;
    options.sends_per_window = 250;
    options.joiners = 2;
    options.leavers = 1;
  } else {
    options.chain_domains = 9;
    options.domain_size = 5;
    options.windows = 36;
    options.sends_per_window = 600;
    options.joiners = 3;
    options.leavers = 2;
  }

  std::printf("autopilot churn: %zu chain domains x %zu servers, %zu windows"
              " (%s)\n",
              options.chain_domains, options.domain_size, options.windows,
              smoke ? "smoke" : "full");

  options.frozen = false;
  options.report_path = out_path + ".live_run.json";
  auto live = autopilot::RunChurnSoak(options);
  if (!live.ok()) {
    std::fprintf(stderr, "autopilot run failed: %s\n",
                 live.status().to_string().c_str());
    return 1;
  }
  options.frozen = true;
  options.report_path = out_path + ".frozen_run.json";
  auto frozen = autopilot::RunChurnSoak(options);
  if (!frozen.ok()) {
    std::fprintf(stderr, "frozen run failed: %s\n",
                 frozen.status().to_string().c_str());
    return 1;
  }

  const auto& ap = live.value();
  const auto& fz = frozen.value();
  std::printf("closed loop: %llu epochs (splits %llu, merges %llu, promotes"
              " %llu, absorbs %llu, retires %llu, aborts %llu)\n",
              (unsigned long long)ap.epochs_taken,
              (unsigned long long)ap.splits, (unsigned long long)ap.merges,
              (unsigned long long)ap.promotes,
              (unsigned long long)ap.absorbs,
              (unsigned long long)ap.retires, (unsigned long long)ap.aborts);
  std::printf("steady-state score: autopilot %.2f vs frozen %.2f"
              " (improvement %.1f%%)\n",
              ap.steady_score, fz.steady_score,
              fz.steady_score > 0
                  ? 100.0 * (fz.steady_score - ap.steady_score) /
                        fz.steady_score
                  : 0.0);
  std::printf("clock cost: autopilot %.1f vs frozen %.1f; peak backlog"
              " %llu vs %llu\n",
              ap.final_clock_cost, fz.final_clock_cost,
              (unsigned long long)ap.peak_router_backlog,
              (unsigned long long)fz.peak_router_backlog);
  std::printf("oracle: autopilot causal=%d exactly_once=%d | frozen"
              " causal=%d exactly_once=%d\n",
              ap.causal, ap.exactly_once, fz.causal, fz.exactly_once);

  const Status written =
      autopilot::WriteAutopilotBench(out_path, ap, fz, smoke);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.to_string().c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());

  if (!ap.ok() || !fz.ok()) {
    std::fprintf(stderr, "ORACLE VIOLATION: %s\n",
                 (!ap.ok() ? ap : fz).first_violation.c_str());
    return 1;
  }
  return 0;
}
