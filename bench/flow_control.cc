// Flow-control benchmark: bounded memory and stable throughput under a
// 10x overdriven slow consumer -- the acceptance scenario of the
// src/flow subsystem.
//
// Topology (examples/configs/overload.conf): two producer domains, D0 =
// {S0 S1 S2 S3} and D1 = {S3 S4 S5 S6}, funnel through the single
// router-server S3 into D2 = {S3 S7}, whose only other member S7 hosts
// the consumer.  The consumer burns a fixed service time per message,
// so its drain capacity is known exactly; six producer threads retry as
// fast as the bus accepts, offering an order of magnitude more.
//
// With flow control ON, S3's credit window toward S7 (and the
// producers' windows toward S3, whose backlog includes its own blocked
// QueueOUT) bounds every durable queue: the sampled peak backlog stays
// near the high-watermark no matter how long the run.  The
// deficit-round-robin stage on S3 keeps either producer domain from
// starving the other, and the admission wait queue sheds producer
// overdrive with kOverloaded instead of letting local queues grow.
//
// With flow control OFF (the historical behavior) the same scenario is
// UNBOUNDED: every accepted message piles up in the router and consumer
// queues, so the sampled peak scales linearly with the total message
// count -- the JSON records both peaks side by side.
//
// Either way delivery stays exactly-once and causal (verified on the
// trace); credits only gate admission, never ordering.
//
// Output: a table on stdout plus BENCH_flow_control.json (use --out to
// redirect).  --smoke shrinks the counts for the CI bench label.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "flow/credits.h"
#include "mom/agent.h"
#include "mom/agent_server.h"
#include "workload/threaded_harness.h"

using namespace cmom;

namespace {

constexpr std::uint32_t kConsumerLocal = 1;
constexpr std::uint32_t kProducerLocal = 99;

// The six producer servers (three per edge domain) and the consumer.
const std::uint16_t kProducers[] = {0, 1, 2, 4, 5, 6};
constexpr std::uint16_t kRouter = 3;
constexpr std::uint16_t kConsumer = 7;

// Mirrors examples/configs/overload.conf.
domains::MomConfig OverloadConfig() {
  domains::MomConfig config;
  for (std::uint16_t s = 0; s < 8; ++s) config.servers.push_back(ServerId(s));
  config.domains.push_back({DomainId(0), {ServerId(0), ServerId(1),
                                          ServerId(2), ServerId(3)}});
  config.domains.push_back({DomainId(1), {ServerId(3), ServerId(4),
                                          ServerId(5), ServerId(6)}});
  config.domains.push_back({DomainId(2), {ServerId(3), ServerId(7)}});
  return config;
}

// Burns a fixed wall-clock service time per message, making the
// consumer's drain capacity exactly 1e6/service_us messages/sec.
class SlowConsumer final : public mom::Agent {
 public:
  explicit SlowConsumer(std::uint64_t service_us) : service_us_(service_us) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override {
    (void)ctx;
    (void)message;
    std::this_thread::sleep_for(std::chrono::microseconds(service_us_));
    ++seen_;
  }

  void EncodeState(ByteWriter& out) const override { out.WriteVarU64(seen_); }
  [[nodiscard]] Status DecodeState(ByteReader& in) override {
    auto seen = in.ReadVarU64();
    if (!seen.ok()) return seen.status();
    seen_ = seen.value();
    return Status::Ok();
  }

  [[nodiscard]] std::uint64_t seen() const { return seen_; }

 private:
  std::uint64_t service_us_;
  std::uint64_t seen_ = 0;
};

struct Peaks {
  std::size_t consumer_backlog = 0;  // qin + held + dispatched at S7
  std::size_t router_backlog = 0;    // qin + held + qout + staged at S3
  std::size_t staged_forwards = 0;   // DRR stage depth at S3
  std::size_t wait_queue = 0;        // max admission wait over producers
};

struct RunResult {
  bool flow_on = false;
  std::size_t total = 0;
  double send_seconds = 0;
  double total_seconds = 0;
  double msgs_per_sec = 0;
  double capacity_per_sec = 0;
  double overdrive = 0;  // offered attempt rate / drain capacity
  std::uint64_t attempts = 0;
  std::uint64_t shed = 0;
  Peaks peaks;
  std::uint64_t credit_blocked = 0;
  std::uint64_t credit_probes = 0;
  std::uint64_t credit_only_acks = 0;
  std::uint64_t sends_deferred = 0;
  std::uint64_t drr_rounds = 0;
  std::uint64_t drr_forwarded = 0;
  bool causal = false;
  bool exactly_once = false;
};

RunResult Measure(bool flow_on, std::size_t per_producer,
                  std::uint64_t service_us, const flow::FlowOptions& flow) {
  workload::ThreadedHarnessOptions options;
  options.flow = flow;
  options.flow.enabled = flow_on;
  options.retransmit_timeout_ns = 200ull * 1000 * 1000;
  workload::ThreadedHarness harness(OverloadConfig(), options);
  SlowConsumer* consumer = nullptr;
  Status init = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id != ServerId(kConsumer)) return;
    auto agent = std::make_unique<SlowConsumer>(service_us);
    consumer = agent.get();
    server.AttachAgent(kConsumerLocal, std::move(agent));
  });
  if (!init.ok() || !harness.BootAll().ok()) {
    std::fprintf(stderr, "harness setup failed\n");
    return {};
  }

  // Background sampler: the peak gauges are the bench's entire point --
  // a bound that only holds at quiescence would prove nothing.
  std::atomic<bool> sampling{true};
  Peaks peaks;
  std::thread sampler([&] {
    while (sampling.load(std::memory_order_relaxed)) {
      const auto consumer_fence =
          harness.server(ServerId(kConsumer)).fence_status();
      const auto router_fence = harness.server(ServerId(kRouter)).fence_status();
      const auto router_flow = harness.server(ServerId(kRouter)).flow_status();
      peaks.consumer_backlog =
          std::max(peaks.consumer_backlog, consumer_fence.queue_in +
                                               consumer_fence.holdback +
                                               consumer_fence.inflight);
      peaks.router_backlog = std::max(
          peaks.router_backlog, router_fence.queue_in + router_fence.holdback +
                                    router_fence.queue_out +
                                    router_flow.staged_forwards);
      peaks.staged_forwards =
          std::max(peaks.staged_forwards, router_flow.staged_forwards);
      for (std::uint16_t p : kProducers) {
        peaks.wait_queue = std::max(
            peaks.wait_queue, harness.server(ServerId(p)).flow_status().wait_queue);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Producers: accept-or-retry as fast as the bus allows.  kOverloaded
  // is the admission valve saying "back off"; everything else is a bug.
  std::atomic<std::uint64_t> attempts{0};
  std::atomic<std::uint64_t> shed{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::uint16_t p : kProducers) {
    producers.emplace_back([&, p] {
      const AgentId target{ServerId(kConsumer), kConsumerLocal};
      for (std::size_t i = 0; i < per_producer; ++i) {
        for (;;) {
          attempts.fetch_add(1, std::memory_order_relaxed);
          auto sent = harness.Send(ServerId(p), kProducerLocal,
                                   ServerId(kConsumer), kConsumerLocal, "task");
          (void)target;
          if (sent.ok()) break;
          if (sent.status().code() == StatusCode::kOverloaded) {
            shed.fetch_add(1, std::memory_order_relaxed);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
    });
  }
  for (std::thread& producer : producers) producer.join();
  const auto t1 = std::chrono::steady_clock::now();
  harness.WaitQuiescent();
  const auto t2 = std::chrono::steady_clock::now();
  sampling.store(false);
  sampler.join();

  RunResult result;
  result.flow_on = flow_on;
  result.total = per_producer * std::size(kProducers);
  result.send_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.total_seconds = std::chrono::duration<double>(t2 - t0).count();
  result.msgs_per_sec = result.total_seconds > 0
                            ? static_cast<double>(result.total) /
                                  result.total_seconds
                            : 0;
  result.capacity_per_sec = 1e6 / static_cast<double>(service_us);
  result.attempts = attempts.load();
  result.overdrive =
      result.send_seconds > 0
          ? (static_cast<double>(result.attempts) / result.send_seconds) /
                result.capacity_per_sec
          : 0;
  result.shed = shed.load();
  result.peaks = peaks;

  const mom::ServerStats router_stats = harness.server(ServerId(kRouter)).stats();
  result.drr_rounds = router_stats.drr_rounds;
  result.drr_forwarded = router_stats.drr_forwarded;
  for (std::uint16_t p : kProducers) {
    const mom::ServerStats stats = harness.server(ServerId(p)).stats();
    result.credit_blocked += stats.credit_blocked;
    result.credit_probes += stats.credit_probes;
    result.sends_deferred += stats.sends_deferred;
  }
  result.credit_only_acks = harness.server(ServerId(kRouter)).stats().credit_only_acks +
                            harness.server(ServerId(kConsumer)).stats().credit_only_acks;

  const std::uint64_t delivered = consumer != nullptr ? consumer->seen() : 0;
  harness.HaltAll();

  const auto checker = harness.MakeChecker();
  const auto trace = harness.trace().Snapshot();
  result.causal = checker.CheckCausalDelivery(trace).causal();
  result.exactly_once =
      checker.CheckExactlyOnce(trace).ok() && delivered == result.total;
  return result;
}

void PrintRow(const RunResult& r) {
  std::printf("%-5s %7zu %9.0f %9.0f %7.1fx %10zu %10zu %8zu %8llu %6s %6s\n",
              r.flow_on ? "on" : "off", r.total, r.msgs_per_sec,
              r.capacity_per_sec, r.overdrive, r.peaks.consumer_backlog,
              r.peaks.router_backlog, r.peaks.wait_queue,
              static_cast<unsigned long long>(r.shed),
              r.causal ? "yes" : "NO", r.exactly_once ? "yes" : "NO");
}

void WriteJson(const std::string& path, const std::vector<RunResult>& results,
               const flow::FlowOptions& flow, std::uint64_t service_us,
               bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"flow_control\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out,
               "  \"config\": {\"producers\": %zu, \"service_us\": %llu, "
               "\"high_watermark\": %zu, \"low_watermark\": %zu, "
               "\"initial_credit\": %llu, \"drr_quantum\": %zu, "
               "\"out_admit_high\": %zu, \"wait_queue_max\": %zu},\n",
               std::size(kProducers),
               static_cast<unsigned long long>(service_us),
               flow.high_watermark, flow.low_watermark,
               static_cast<unsigned long long>(flow.initial_credit),
               flow.drr_quantum, flow.out_admit_high, flow.wait_queue_max);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        out,
        "    {\"flow\": \"%s\", \"messages\": %zu, \"seconds\": %.3f, "
        "\"msgs_per_sec\": %.0f, \"capacity_per_sec\": %.0f, "
        "\"overdrive\": %.1f, \"attempts\": %llu, \"shed\": %llu, "
        "\"deferred\": %llu, \"peak_consumer_backlog\": %zu, "
        "\"peak_router_backlog\": %zu, \"peak_staged_forwards\": %zu, "
        "\"peak_wait_queue\": %zu, \"credit_blocked\": %llu, "
        "\"credit_probes\": %llu, \"credit_only_acks\": %llu, "
        "\"drr_rounds\": %llu, \"drr_forwarded\": %llu, "
        "\"causal\": %s, \"exactly_once\": %s}%s\n",
        r.flow_on ? "on" : "off", r.total, r.total_seconds, r.msgs_per_sec,
        r.capacity_per_sec, r.overdrive,
        static_cast<unsigned long long>(r.attempts),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.sends_deferred),
        r.peaks.consumer_backlog, r.peaks.router_backlog,
        r.peaks.staged_forwards, r.peaks.wait_queue,
        static_cast<unsigned long long>(r.credit_blocked),
        static_cast<unsigned long long>(r.credit_probes),
        static_cast<unsigned long long>(r.credit_only_acks),
        static_cast<unsigned long long>(r.drr_rounds),
        static_cast<unsigned long long>(r.drr_forwarded),
        r.causal ? "true" : "false", r.exactly_once ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  const RunResult* on = nullptr;
  const RunResult* off = nullptr;
  for (const RunResult& r : results) (r.flow_on ? on : off) = &r;
  // The watermark bounds the window S3 may fill toward the consumer;
  // reactions already dispatched ride on top.  The router can hold one
  // window per upstream link plus its own outgoing window.
  const std::size_t consumer_bound = flow.high_watermark + 64;
  const std::size_t router_bound =
      (std::size(kProducers) + 1) * flow.high_watermark + 64;
  const bool bounded = on != nullptr &&
                       on->peaks.consumer_backlog <= consumer_bound &&
                       on->peaks.router_backlog <= router_bound;
  const double throughput_ratio =
      (on != nullptr && off != nullptr && off->msgs_per_sec > 0)
          ? on->msgs_per_sec / off->msgs_per_sec
          : 0;
  // The router is where the overload lands: without flow control its
  // backlog scales with the run length; with it, the windows cap it.
  const double peak_ratio =
      (on != nullptr && off != nullptr && on->peaks.router_backlog > 0)
          ? static_cast<double>(off->peaks.router_backlog) /
                static_cast<double>(on->peaks.router_backlog)
          : 0;
  std::fprintf(out,
               "  \"summary\": {\"consumer_bound\": %zu, "
               "\"router_bound\": %zu, \"bounded_with_flow\": %s, "
               "\"throughput_ratio_on_over_off\": %.2f, "
               "\"peak_backlog_ratio_off_over_on\": %.1f}\n}\n",
               consumer_bound, router_bound, bounded ? "true" : "false",
               throughput_ratio, peak_ratio);
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
  std::printf("flow on: peak consumer backlog %zu (bound %zu), peak router "
              "backlog %zu (bound %zu)\n",
              on != nullptr ? on->peaks.consumer_backlog : 0, consumer_bound,
              on != nullptr ? on->peaks.router_backlog : 0, router_bound);
  std::printf("flow off: peak router backlog %zu -- scales with the "
              "message count (unbounded)\n",
              off != nullptr ? off->peaks.router_backlog : 0);
  std::printf("throughput on/off: %.2fx, peak-backlog off/on: %.1fx\n",
              throughput_ratio, peak_ratio);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_flow_control.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::size_t per_producer = smoke ? 50 : 1000;
  const std::uint64_t service_us = smoke ? 300 : 500;
  flow::FlowOptions flow;
  flow.high_watermark = smoke ? 64 : 128;
  flow.low_watermark = smoke ? 16 : 32;
  flow.initial_credit = smoke ? 16 : 32;
  flow.drr_quantum = 4;
  flow.engine_admit_high = flow.high_watermark;
  flow.engine_admit_low = flow.low_watermark;
  flow.out_admit_high = smoke ? 16 : 32;
  flow.wait_queue_max = smoke ? 32 : 64;

  std::printf("Flow control: 6 producers overdriving one slow consumer "
              "(service %lluus) through router S3\n",
              static_cast<unsigned long long>(service_us));
  std::printf("%-5s %7s %9s %9s %8s %10s %10s %8s %8s %6s %6s\n", "flow",
              "msgs", "msgs/s", "capacity", "drive", "peak-cons", "peak-rtr",
              "peak-wq", "shed", "causal", "1x");

  std::vector<RunResult> results;
  for (const bool flow_on : {false, true}) {
    results.push_back(Measure(flow_on, per_producer, service_us, flow));
    PrintRow(results.back());
  }
  WriteJson(out_path, results, flow, service_us, smoke);

  const RunResult& on = results.back();
  return on.causal && on.exactly_once ? 0 : 1;
}
