// Figure 9 ablation: Bus vs Daisy vs Tree domain organizations.
//
// The paper's Figure 9 shows the three acyclic organizations; Section
// 6.2 argues the bus (depth 1) gives linear cost, the tree can give
// logarithmic cost but with a larger constant, and the daisy pays the
// longest routes.  This bench takes comparable server counts (~60) and
// measures the worst-case remote unicast (first server to last) plus
// routing diameter for each organization.
#include <cstdio>
#include <vector>

#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

namespace {

struct Case {
  const char* name;
  domains::MomConfig config;
};

}  // namespace

int main() {
  std::vector<Case> cases;
  cases.push_back({"bus      (8 domains x 8)", domains::topologies::Bus(8, 8)});
  cases.push_back(
      {"daisy    (9 domains x 8)", domains::topologies::Daisy(9, 8)});
  cases.push_back(
      {"tree     (k=2, s=9, d=2)", domains::topologies::Tree(2, 9, 2)});

  workload::ExperimentOptions options;
  options.rounds = 10;

  std::printf("Figure 9 ablation: domain organizations at comparable size\n");
  std::printf("%-28s %8s %10s %14s %14s\n", "organization", "servers",
              "diameter", "RTT (ms)", "stamp B/msg");
  for (Case& c : cases) {
    auto deployment = domains::Deployment::Create(c.config);
    if (!deployment.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.name,
                   deployment.status().to_string().c_str());
      return 1;
    }
    // Routing diameter: max hops over all pairs.
    std::size_t diameter = 0;
    ServerId far_a = ServerId(0), far_b = ServerId(0);
    for (ServerId a : c.config.servers) {
      for (ServerId b : c.config.servers) {
        const std::size_t hops = deployment.value().routing().HopCount(a, b);
        if (hops > diameter) {
          diameter = hops;
          far_a = a;
          far_b = b;
        }
      }
    }
    auto result = workload::RunPingPong(c.config, far_a, far_b, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", c.name,
                   result.status().to_string().c_str());
      return 1;
    }
    const double stamp_per_msg =
        static_cast<double>(result.value().stamp_bytes) /
        static_cast<double>(result.value().wire_frames);
    std::printf("%-28s %8zu %10zu %14.2f %14.1f\n", c.name,
                c.config.servers.size(), diameter,
                result.value().avg_rtt_ms, stamp_per_msg);
  }
  std::printf(
      "\nExpected: the daisy has the largest diameter and RTT; the tree\n"
      "trades diameter for more hops than the bus at this size (the\n"
      "paper's K' > K remark); all three stay far below a flat 60-server\n"
      "matrix clock.\n");
  return 0;
}
