// Figure 10: remote unicast WITH domains of causality.
//
// Bus-of-domains organization (Figure 9, left) sized sqrt(n) x sqrt(n)
// -- the split that makes the per-message causal-ordering cost
// C ~ (2d+1) s^2 with d=1, s ~ sqrt(n), i.e. linear in n (Section 6.2).
// The main agent on S0 ping-pongs against an echo agent on the last
// server (two router hops away).  The paper measured 159..218 ms for
// n = 10..150, a flat, linear series.
#include <cmath>
#include <cstdio>
#include <vector>

#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

int main() {
  const std::vector<std::pair<std::size_t, double>> paper = {
      {10, 159}, {20, 175}, {30, 185},  {40, 192}, {50, 189},
      {60, 205}, {90, 212}, {120, 217}, {150, 218}};

  workload::ExperimentOptions options;
  options.rounds = 10;

  std::vector<workload::SeriesPoint> series;
  for (auto [n, paper_ms] : paper) {
    const std::size_t s = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    auto config = domains::topologies::BusForServerCount(n, s);
    const std::size_t actual = config.servers.size();
    auto result = workload::RunPingPong(
        config, ServerId(0), ServerId(static_cast<std::uint16_t>(actual - 1)),
        options);
    if (!result.ok()) {
      std::fprintf(stderr, "n=%zu failed: %s\n", n,
                   result.status().to_string().c_str());
      return 1;
    }
    series.push_back({actual, result.value().avg_rtt_ms, paper_ms});
  }
  workload::PrintSeries(
      "Figure 10: remote unicast, bus of sqrt(n) domains of sqrt(n) servers",
      series);
  std::printf(
      "\nExpected shape: linear growth with a small slope (the paper's\n"
      "linear-fit overlay); higher base than Figure 7 (router hops) but\n"
      "far below the flat series at large n.\n");
  return 0;
}
