// Section 6.1, first series: unicast on the LOCAL server.
//
// The main agent ping-pongs against an echo agent on its own server, so
// no frame crosses the network and no causal stamp is produced -- only
// engine dispatch and the transactional commits.  The paper reports
// this series as near-constant in n (full data in [16]); here it
// documents that the local path is independent of both the number of
// servers and the domain organization.
#include <cmath>
#include <cstdio>
#include <vector>

#include "clocks/causal_clock.h"
#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

int main() {
  const std::vector<std::size_t> sizes = {10, 20, 30, 40, 50};
  workload::ExperimentOptions options;
  options.rounds = 10;

  std::vector<workload::SeriesPoint> flat_series;
  std::vector<workload::SeriesPoint> domain_series;
  for (std::size_t n : sizes) {
    auto flat =
        workload::RunPingPong(domains::topologies::Flat(
                                  n, clocks::StampMode::kFullMatrix),
                              ServerId(0), ServerId(0), options);
    const std::size_t s = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(n))));
    auto bus_config = domains::topologies::BusForServerCount(n, s);
    auto bus = workload::RunPingPong(bus_config, ServerId(0), ServerId(0),
                                     options);
    if (!flat.ok() || !bus.ok()) {
      std::fprintf(stderr, "n=%zu failed\n", n);
      return 1;
    }
    flat_series.push_back({n, flat.value().avg_rtt_ms, -1});
    domain_series.push_back(
        {bus_config.servers.size(), bus.value().avg_rtt_ms, -1});
  }
  workload::PrintSeries("Local unicast, no domains (flat)", flat_series);
  workload::PrintSeries("Local unicast, bus of domains", domain_series);
  std::printf(
      "\nExpected shape: both series flat in n -- local delivery never\n"
      "touches a matrix clock.  (Note the flat topology still pays the\n"
      "larger persistent clock image in its commits.)\n");
  return 0;
}
