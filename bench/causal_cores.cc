// Causal-core comparison: timestamp bytes, hold-back behaviour and
// throughput of the three pluggable causal cores as the domain grows.
//
// The paper's matrix clock pays O(s^2) per timestamp, which is the
// force that caps domain size and drives the splitter.  The reduced
// core (Drummond-Barbosa) ships only the destination column plus the
// Appendix-A delta -- O(s).  The hybrid core (Almeida) ships per-link
// FIFO headers plus an explicit causal-barrier set -- independent of s
// at a fixed in-flight load over a bounded partner set.  This bench
// runs the SAME seeded traffic schedule through each core at n in
// {4, 8, 16, 32, 64} members and reports bytes/msg, hold-back depth,
// delivery latency (in scheduler steps) and msgs/sec.
//
// Two traffic patterns bound the comparison:
//   ring      each member converses with its two neighbours only
//             (bounded-degree, bidirectional -- the regime every MOM
//             conversation workload lives in).  Hybrid stamps stay
//             FLAT as n grows: delivery confirmations flow straight
//             back along each link, so the barrier set tracks local
//             in-flight.  Matrix still pays the full s^2.
//   uniform   every member sends to every other uniformly.  With the
//             total in-flight capped, each link carries ~1/n^2 of the
//             traffic, confirmations lag ~n messages, and ANY exact
//             scheme must carry the grown possibly-undelivered pool;
//             hybrid degrades gracefully (still far below matrix)
//             rather than staying constant.
//
// The matrix run doubles as ground truth: every core implements exact
// causal delivery, so each run asserts (a) per-receiver delivery order
// identical to the matrix reference, (b) every message delivered
// exactly once, and (c) no message left in a hold-back queue at drain.
// A run that violates any of these aborts the bench with exit 1.
//
// Output: a table on stdout plus BENCH_causal_cores.json (use --out to
// redirect).  --smoke shrinks message counts for the CI bench label.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <vector>

#include "clocks/causal_core.h"
#include "common/bytes.h"

using namespace cmom;

namespace {

// Deterministic xorshift64* scheduler RNG: the schedule must replay
// bit-identically across cores for the equivalence assertion.
struct Rng {
  std::uint64_t state;
  std::uint64_t Next() {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    return state * 0x2545f4914f6cdd1dull;
  }
  std::size_t Below(std::size_t n) { return Next() % n; }
};

struct InFlight {
  std::uint16_t src = 0;
  std::uint64_t seq = 0;   // per-link FIFO position, 1-based
  std::uint64_t sent_step = 0;
  clocks::Stamp stamp;
};

struct RunResult {
  std::string core;
  std::string pattern;
  std::size_t members = 0;
  std::size_t messages = 0;
  double stamp_bytes_per_msg = 0;
  double stamp_bytes_max = 0;
  double holdback_mean = 0;
  std::size_t holdback_max = 0;
  double latency_steps_mean = 0;
  double msgs_per_sec = 0;
  bool causal = false;
  bool exactly_once = false;
};

// One (core kind, n) cell: n members of one domain exchanging
// `messages` random unicasts over per-link FIFO queues with a fixed
// in-flight cap, cross-link interleaving chosen by the seeded RNG.
// Every member also keeps a hold-back queue fed by CheckReceive, like
// the AgentServer's.  `reference_order` is the matrix run's delivery
// log; when non-null the run asserts order equality against it.
enum class Traffic { kRing, kUniform };

RunResult RunCell(clocks::CausalCoreKind kind, clocks::StampMode mode,
                  Traffic traffic, std::size_t n, std::size_t messages,
                  std::uint64_t seed,
                  const std::vector<std::vector<std::uint64_t>>*
                      reference_order,
                  std::vector<std::vector<std::uint64_t>>* order_out) {
  // Fixed in-flight cap, independent of n: the load level at which the
  // hybrid core's barrier set (and so its stamp) is expected to stay
  // flat as the domain grows.
  constexpr std::size_t kMaxInFlight = 48;

  std::vector<std::unique_ptr<clocks::CausalCore>> cores;
  cores.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cores.push_back(clocks::MakeCausalCore(
        kind, DomainServerId(static_cast<std::uint16_t>(i)), n, mode));
  }

  // links[src * n + dst]: FIFO transit queue of the src -> dst link.
  std::vector<std::deque<InFlight>> links(n * n);
  std::vector<std::deque<InFlight>> holdback(n);
  std::vector<std::vector<std::uint64_t>> delivery_order(n);
  std::vector<std::uint64_t> sent_seq(n * n, 0);
  std::vector<std::uint64_t> delivered_seq(n * n, 0);

  Rng rng{seed};
  std::size_t in_flight = 0;
  std::size_t sent = 0;
  std::uint64_t step = 0;
  std::uint64_t stamp_bytes = 0;
  std::uint64_t stamp_bytes_max = 0;
  std::uint64_t holdback_sum = 0;
  std::size_t holdback_peak = 0;
  std::size_t holds = 0;
  std::uint64_t latency_sum = 0;
  std::size_t delivered = 0;
  bool exactly_once = true;

  // Encodes a (src,dst,seq) link position into the per-receiver
  // delivery log; identical logs across cores == identical order.
  auto log_key = [n](std::size_t src, std::size_t dst, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(src * n + dst) << 40) | seq;
  };

  auto deliver_from_holdback = [&](std::size_t dst) {
    bool progressed = true;
    while (progressed) {
      progressed = false;
      auto& queue = holdback[dst];
      for (std::size_t i = 0; i < queue.size(); ++i) {
        const InFlight& m = queue[i];
        const auto verdict = cores[dst]->CheckReceive(
            DomainServerId(m.src), m.stamp);
        if (verdict == clocks::CheckResult::kHold) continue;
        if (verdict == clocks::CheckResult::kDeliver) {
          cores[dst]->OnDeliver(DomainServerId(m.src), m.stamp);
          latency_sum += step - m.sent_step;
          const std::size_t link = m.src * n + dst;
          if (m.seq != delivered_seq[link] + 1) exactly_once = false;
          delivered_seq[link] = m.seq;
          delivery_order[dst].push_back(log_key(m.src, dst, m.seq));
          ++delivered;
        } else {
          exactly_once = false;  // a held message can never be a dup
        }
        queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(i));
        progressed = true;
        break;
      }
    }
  };

  const auto t0 = std::chrono::steady_clock::now();
  while (delivered < messages) {
    ++step;
    const bool can_send = sent < messages && in_flight < kMaxInFlight;
    // 50/50 send vs receive while both are possible keeps the network
    // loaded near the cap without starving delivery.
    bool do_send = can_send && (in_flight == 0 || rng.Below(2) == 0);
    if (!do_send && in_flight == 0) {
      if (!can_send) break;  // nothing in flight, nothing left to send
      do_send = true;
    }
    if (do_send) {
      const std::size_t src = rng.Below(n);
      std::size_t dst;
      if (traffic == Traffic::kRing) {
        dst = rng.Below(2) == 0 ? (src + 1) % n : (src + n - 1) % n;
      } else {
        dst = rng.Below(n - 1);
        if (dst >= src) ++dst;
      }
      InFlight m;
      m.src = static_cast<std::uint16_t>(src);
      m.seq = ++sent_seq[src * n + dst];
      m.sent_step = step;
      m.stamp = cores[src]->PrepareSend(
          DomainServerId(static_cast<std::uint16_t>(dst)));
      ByteWriter encoded;
      m.stamp.Encode(encoded);
      const std::uint64_t bytes = std::move(encoded).Take().size();
      stamp_bytes += bytes;
      stamp_bytes_max = std::max(stamp_bytes_max, bytes);
      links[src * n + dst].push_back(std::move(m));
      ++in_flight;
      ++sent;
      continue;
    }
    // Receive: pop the head of a random non-empty link (FIFO per link,
    // arbitrary interleaving across links -- the transport's contract).
    std::size_t pick = rng.Below(in_flight);
    for (std::size_t link = 0; link < links.size(); ++link) {
      if (links[link].empty()) continue;
      if (pick >= links[link].size()) {
        pick -= links[link].size();
        continue;
      }
      // FIFO: always the head; `pick` only chose the link.
      InFlight m = std::move(links[link].front());
      links[link].pop_front();
      --in_flight;
      const std::size_t dst = link % n;
      const auto verdict = cores[dst]->CheckReceive(
          DomainServerId(m.src), m.stamp);
      if (verdict == clocks::CheckResult::kDeliver) {
        cores[dst]->OnDeliver(DomainServerId(m.src), m.stamp);
        latency_sum += step - m.sent_step;
        if (m.seq != delivered_seq[link] + 1) exactly_once = false;
        delivered_seq[link] = m.seq;
        delivery_order[dst].push_back(log_key(m.src, dst, m.seq));
        ++delivered;
        deliver_from_holdback(dst);
      } else if (verdict == clocks::CheckResult::kHold) {
        holdback[dst].push_back(std::move(m));
        ++holds;
        holdback_sum += holdback[dst].size();
        holdback_peak = std::max(holdback_peak, holdback[dst].size());
      } else {
        exactly_once = false;  // nothing is retransmitted in this sim
      }
      break;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  // Drain check: exact cores leave nothing held back once every link
  // is empty.
  bool leak_free = delivered == messages;
  for (const auto& queue : holdback) {
    if (!queue.empty()) leak_free = false;
  }
  bool causal = leak_free;
  if (reference_order != nullptr && delivery_order != *reference_order) {
    causal = false;
  }
  for (std::size_t link = 0; link < links.size(); ++link) {
    if (delivered_seq[link] != sent_seq[link]) exactly_once = false;
  }

  RunResult result;
  result.core = std::string(clocks::CausalCoreKindName(kind));
  if (kind == clocks::CausalCoreKind::kMatrix &&
      mode == clocks::StampMode::kUpdates) {
    result.core = "matrix_updates";
  }
  result.pattern = traffic == Traffic::kRing ? "ring" : "uniform";
  result.members = n;
  result.messages = messages;
  result.stamp_bytes_per_msg =
      sent > 0 ? static_cast<double>(stamp_bytes) / static_cast<double>(sent)
               : 0;
  result.stamp_bytes_max = static_cast<double>(stamp_bytes_max);
  result.holdback_mean =
      holds > 0 ? static_cast<double>(holdback_sum) /
                      static_cast<double>(holds)
                : 0;
  result.holdback_max = holdback_peak;
  result.latency_steps_mean =
      delivered > 0 ? static_cast<double>(latency_sum) /
                          static_cast<double>(delivered)
                    : 0;
  result.msgs_per_sec =
      seconds > 0 ? static_cast<double>(delivered) / seconds : 0;
  result.causal = causal;
  result.exactly_once = exactly_once && leak_free;
  if (order_out != nullptr) *order_out = std::move(delivery_order);
  return result;
}

void WriteJson(const std::string& path, const std::vector<RunResult>& results,
               bool smoke, bool all_ok) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"causal_cores\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\"core\": \"%s\", \"pattern\": \"%s\", "
                 "\"members\": %zu, "
                 "\"messages\": %zu, \"stamp_bytes_per_msg\": %.1f, "
                 "\"stamp_bytes_max\": %.0f, \"holdback_mean\": %.2f, "
                 "\"holdback_max\": %zu, \"latency_steps_mean\": %.1f, "
                 "\"msgs_per_sec\": %.0f, \"causal\": %s, "
                 "\"exactly_once\": %s}%s\n",
                 r.core.c_str(), r.pattern.c_str(), r.members, r.messages,
                 r.stamp_bytes_per_msg, r.stamp_bytes_max, r.holdback_mean,
                 r.holdback_max, r.latency_steps_mean, r.msgs_per_sec,
                 r.causal ? "true" : "false",
                 r.exactly_once ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  // Headline: stamp growth from the smallest to the largest n, per
  // (core, pattern).  Under ring traffic matrix should grow
  // ~quadratically, reduced ~linearly, and hybrid should stay flat
  // (ratio near 1); uniform traffic shows hybrid's graceful
  // degradation.
  auto at = [&](std::string_view core, std::string_view pattern,
                bool largest) -> const RunResult* {
    const RunResult* found = nullptr;
    for (const RunResult& r : results) {
      if (r.core != core || r.pattern != pattern) continue;
      if (found == nullptr || (largest ? r.members > found->members
                                       : r.members < found->members)) {
        found = &r;
      }
    }
    return found;
  };
  std::fprintf(out, "  \"summary\": {\n");
  const char* cores[] = {"matrix", "matrix_updates", "reduced", "hybrid"};
  for (const char* pattern : {"ring", "uniform"}) {
    for (std::size_t i = 0; i < 4; ++i) {
      const RunResult* small = at(cores[i], pattern, false);
      const RunResult* large = at(cores[i], pattern, true);
      const double growth =
          (small != nullptr && large != nullptr &&
           small->stamp_bytes_per_msg > 0)
              ? large->stamp_bytes_per_msg / small->stamp_bytes_per_msg
              : 0;
      std::fprintf(out, "    \"%s_%s_stamp_growth\": %.2f,\n", pattern,
                   cores[i], growth);
    }
  }
  std::fprintf(out, "    \"all_ok\": %s\n  }\n}\n",
               all_ok ? "true" : "false");
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_causal_cores.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const std::vector<std::size_t> sizes = {4, 8, 16, 32, 64};
  const std::size_t per_member = smoke ? 40 : 400;
  const std::uint64_t seed = 0x5eedc0de;

  std::printf("Causal cores: stamp cost and delivery behaviour vs domain "
              "size (in-flight cap 48)\n");
  std::printf("%-8s %-16s %4s %8s %11s %9s %9s %8s %9s %7s %5s\n", "pattern",
              "core", "n", "msgs", "stampB/msg", "stampBmax", "hold-mean",
              "hold-max", "lat-steps", "causal", "1x");

  std::vector<RunResult> results;
  bool all_ok = true;
  for (Traffic traffic : {Traffic::kRing, Traffic::kUniform}) {
    for (std::size_t n : sizes) {
      const std::size_t messages = per_member * n;
      // The matrix (full-stamp) run is the reference order for this
      // (pattern, n) cell.
      std::vector<std::vector<std::uint64_t>> reference;
      struct Cell {
        clocks::CausalCoreKind kind;
        clocks::StampMode mode;
      };
      const Cell cells[] = {
          {clocks::CausalCoreKind::kMatrix, clocks::StampMode::kFullMatrix},
          {clocks::CausalCoreKind::kMatrix, clocks::StampMode::kUpdates},
          {clocks::CausalCoreKind::kReduced, clocks::StampMode::kFullMatrix},
          {clocks::CausalCoreKind::kHybrid, clocks::StampMode::kFullMatrix},
      };
      for (const Cell& cell : cells) {
        const bool is_reference =
            cell.kind == clocks::CausalCoreKind::kMatrix &&
            cell.mode == clocks::StampMode::kFullMatrix;
        RunResult r = RunCell(cell.kind, cell.mode, traffic, n, messages,
                              seed, is_reference ? nullptr : &reference,
                              is_reference ? &reference : nullptr);
        std::printf(
            "%-8s %-16s %4zu %8zu %11.1f %9.0f %9.2f %8zu %9.1f %7s %5s\n",
            r.pattern.c_str(), r.core.c_str(), r.members, r.messages,
            r.stamp_bytes_per_msg, r.stamp_bytes_max, r.holdback_mean,
            r.holdback_max, r.latency_steps_mean, r.causal ? "yes" : "NO",
            r.exactly_once ? "yes" : "NO");
        all_ok = all_ok && r.causal && r.exactly_once;
        results.push_back(std::move(r));
      }
    }
  }

  WriteJson(out_path, results, smoke, all_ok);
  if (!all_ok) {
    std::fprintf(stderr, "FAILED: a core violated causal order or "
                         "exactly-once delivery\n");
    return 1;
  }
  return 0;
}
