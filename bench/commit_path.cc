// Commit-path benchmark: cost of making one message durable, as a
// function of the QueueOUT backlog behind it.
//
// The historical full-image scheme rewrites the whole channel image
// (clocks + QueueOUT + QueueIN + hold-back) on every commit, so the
// bytes per message grow linearly with the backlog of unacknowledged
// messages -- exactly the disk-I/O overload the paper's Section 3
// worries about.  The incremental scheme writes per-entry keys and
// only the clock images whose version advanced, so bytes per message
// are O(1) in the backlog.
//
// Scenario: Flat(2), only S0 booted; its peer never acks, so every
// send stays in QueueOUT and the backlog is exact.  After building a
// backlog of B messages, a probe batch measures commit bytes, commit
// count and wall-clock per message.  Runs over InMemoryStore and
// FileStore (real WAL writes), in both persist modes.
//
// Output: a table on stdout plus BENCH_commit_path.json (use --out to
// redirect).  --smoke shrinks the counts for the CI bench label.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/file_store.h"
#include "mom/store.h"
#include "net/sim_network.h"
#include "sim/simulator.h"

using namespace cmom;

namespace {

struct RunResult {
  std::string store;
  std::string mode;
  std::size_t backlog = 0;
  std::size_t probes = 0;
  double commit_bytes_per_msg = 0;
  double commits_per_msg = 0;
  double msgs_per_sec = 0;
  double wal_file_bytes_per_msg = 0;  // FileStore only: on-disk growth
};

std::uint64_t DirectoryBytes(const std::filesystem::path& dir) {
  std::uint64_t total = 0;
  if (!std::filesystem::exists(dir)) return 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) total += entry.file_size();
  }
  return total;
}

// Sends `backlog` warm-up messages, then `probes` measured ones, into a
// QueueOUT that never drains (the peer is down).  Frames land in the
// simulator's event queue and are never delivered; retransmit timers
// are pushed out beyond the run.
RunResult Measure(mom::Store* store, const std::filesystem::path* store_dir,
                  std::string_view store_name, mom::PersistMode mode,
                  std::size_t backlog, std::size_t probes) {
  sim::Simulator simulator;
  net::SimRuntime runtime(simulator);
  net::SimNetwork network(simulator, net::CostModel{});
  auto deployment = domains::Deployment::Create(domains::topologies::Flat(2))
                        .value();
  auto endpoint0 = network.CreateEndpoint(ServerId(0)).value();
  auto endpoint1 = network.CreateEndpoint(ServerId(1)).value();  // dead peer

  mom::AgentServerOptions options;
  options.persist_mode = mode;
  options.retransmit_timeout_ns = 1ull << 50;  // never fires in-run
  mom::AgentServer server(deployment, ServerId(0), endpoint0.get(), &runtime,
                          store, options);
  if (!server.Boot().ok()) {
    std::fprintf(stderr, "boot failed\n");
    return {};
  }

  const AgentId from{ServerId(0), 1};
  const AgentId to{ServerId(1), 1};
  for (std::size_t i = 0; i < backlog; ++i) {
    (void)server.SendMessage(from, to, "backlog");
  }

  const std::uint64_t bytes_before = store->total_bytes_written();
  const std::uint64_t commits_before = server.stats().commits;
  const std::uint64_t files_before =
      store_dir != nullptr ? DirectoryBytes(*store_dir) : 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < probes; ++i) {
    (void)server.SendMessage(from, to, "probe");
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  RunResult result;
  result.store = std::string(store_name);
  result.mode = mode == mom::PersistMode::kIncremental ? "incremental"
                                                       : "full_image";
  result.backlog = backlog;
  result.probes = probes;
  result.commit_bytes_per_msg =
      static_cast<double>(store->total_bytes_written() - bytes_before) /
      static_cast<double>(probes);
  result.commits_per_msg =
      static_cast<double>(server.stats().commits - commits_before) /
      static_cast<double>(probes);
  result.msgs_per_sec =
      seconds > 0 ? static_cast<double>(probes) / seconds : 0;
  if (store_dir != nullptr) {
    result.wal_file_bytes_per_msg =
        static_cast<double>(DirectoryBytes(*store_dir) - files_before) /
        static_cast<double>(probes);
  }
  server.Shutdown();
  return result;
}

void WriteJson(const std::string& path, const std::vector<RunResult>& results,
               std::size_t backlog, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(out, "{\n  \"bench\": \"commit_path\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"backlog\": %zu,\n", backlog);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(out,
                 "    {\"store\": \"%s\", \"mode\": \"%s\", \"backlog\": %zu, "
                 "\"probes\": %zu, \"commit_bytes_per_msg\": %.1f, "
                 "\"commits_per_msg\": %.2f, \"msgs_per_sec\": %.0f, "
                 "\"wal_file_bytes_per_msg\": %.1f}%s\n",
                 r.store.c_str(), r.mode.c_str(), r.backlog, r.probes,
                 r.commit_bytes_per_msg, r.commits_per_msg, r.msgs_per_sec,
                 r.wal_file_bytes_per_msg,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");

  // Headline numbers: bytes/msg at full backlog, old vs new path.
  auto find = [&](std::string_view store, std::string_view mode,
                  std::size_t bl) -> const RunResult* {
    for (const RunResult& r : results) {
      if (r.store == store && r.mode == mode && r.backlog == bl) return &r;
    }
    return nullptr;
  };
  const RunResult* full = find("inmemory", "full_image", backlog);
  const RunResult* incr = find("inmemory", "incremental", backlog);
  const RunResult* incr0 = find("inmemory", "incremental", 0);
  const double reduction =
      (full != nullptr && incr != nullptr && incr->commit_bytes_per_msg > 0)
          ? full->commit_bytes_per_msg / incr->commit_bytes_per_msg
          : 0;
  const double backlog_ratio =
      (incr != nullptr && incr0 != nullptr && incr0->commit_bytes_per_msg > 0)
          ? incr->commit_bytes_per_msg / incr0->commit_bytes_per_msg
          : 0;
  std::fprintf(out,
               "  \"summary\": {\"bytes_per_msg_reduction_at_backlog\": %.1f, "
               "\"incremental_backlog_sensitivity\": %.2f}\n}\n",
               reduction, backlog_ratio);
  std::fclose(out);
  std::printf("\nwrote %s\n", path.c_str());
  std::printf("full-image vs incremental at backlog %zu: %.1fx fewer "
              "commit bytes/msg\n",
              backlog, reduction);
  std::printf("incremental bytes/msg, backlog %zu vs 0: %.2fx "
              "(1.0 = backlog-independent)\n",
              backlog, backlog_ratio);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_commit_path.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const std::size_t backlog = smoke ? 32 : 1000;
  const std::size_t probes = smoke ? 16 : 256;

  std::printf("Commit path: durable bytes per message vs QueueOUT backlog\n");
  std::printf("%-9s %-12s %8s %14s %12s %12s %12s\n", "store", "mode",
              "backlog", "bytes/msg", "commits/msg", "msgs/sec",
              "file B/msg");

  std::vector<RunResult> results;
  const auto run = [&](mom::PersistMode mode, std::size_t bl) {
    {
      mom::InMemoryStore store;
      results.push_back(Measure(&store, nullptr, "inmemory", mode, bl,
                                probes));
    }
    {
      const std::filesystem::path dir =
          std::filesystem::temp_directory_path() / "cmom_bench_commit_path";
      std::filesystem::remove_all(dir);
      auto store = mom::FileStore::Open(dir).value();
      store->set_compaction_threshold(1ull << 40);  // no compaction in-run
      results.push_back(
          Measure(store.get(), &dir, "filestore", mode, bl, probes));
      store.reset();
      std::filesystem::remove_all(dir);
    }
  };
  for (std::size_t bl : {std::size_t{0}, backlog}) {
    run(mom::PersistMode::kFullImage, bl);
    run(mom::PersistMode::kIncremental, bl);
  }

  for (const RunResult& r : results) {
    std::printf("%-9s %-12s %8zu %14.1f %12.2f %12.0f %12.1f\n",
                r.store.c_str(), r.mode.c_str(), r.backlog,
                r.commit_bytes_per_msg, r.commits_per_msg, r.msgs_per_sec,
                r.wal_file_bytes_per_msg);
  }
  WriteJson(out_path, results, backlog, smoke);
  return 0;
}
