// Connection-scale benchmark: >=10k client sessions through one
// gateway, measuring connection-setup rate, sustained echo throughput
// and RTT tail latency over the routed Bus(2,2) topology.
//
// Shape: a forked child process drives a GatewayClientPool (the fd
// hard limit is per-process, so 10k client sockets live in the child
// while the parent's gateway holds the 10k accepted ends).  The parent
// builds four TCP servers -- Bus(2,2): S0/S1 one leaf, S2/S3 the
// other, S0/S2 the backbone -- attaches the gateway to S1 with one
// stateless proxy agent per session, and an echo agent on S3.  Every
// client message crosses the full routed path (S1 -> S0 -> S2 -> S3)
// and the pong retraces it, so the tail latency measured here includes
// causal stamping, hold-back and store commits on every hop, not just
// socket shuffling.
//
// The child embeds a steady-clock timestamp in each ping payload; the
// echo returns it and the delivery handler computes the RTT.  Sends
// are closed-loop with a bounded outstanding window so the measurement
// holds offered load constant instead of collapsing into one giant
// burst.
//
// The fork happens before any thread exists (reactors, engine pools),
// because fork() from a threaded process leaves the child's heap in
// whatever state other threads had it.
//
// Output: BENCH_net_scale.json (--out to redirect) with client-side
// latency/throughput, gateway/server/reactor/transport counters, the
// BufferPool totals, and an "ok" flag asserting zero connection
// failures, zero auth failures, zero drops and full echo delivery.
// --smoke shrinks to 1k sessions for the CI bench label.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/buffer_pool.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/gateway.h"
#include "mom/gateway_client.h"
#include "net/runtime.h"
#include "net/tcp_network.h"
#include "workload/agents.h"

using namespace cmom;

namespace {

constexpr std::uint16_t kBasePort = 23400;
constexpr std::uint16_t kGatewayPort = 23490;
constexpr std::uint16_t kEchoServer = 3;
constexpr std::uint32_t kEchoAgent = 1;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Everything the child measures, sent to the parent as one text line.
struct ChildReport {
  std::uint64_t bound = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t auth_rejects = 0;
  std::uint64_t send_rejects = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  double setup_seconds = 0;
  double conn_per_sec = 0;
  double throughput = 0;  // echoes/sec over the send phase
  std::uint64_t p50_ns = 0;
  std::uint64_t p95_ns = 0;
  std::uint64_t p99_ns = 0;
};

int RunChild(int ready_fd, int result_fd, std::size_t sessions,
             std::size_t messages, std::size_t window) {
  // Wait until the parent's gateway is listening.
  char ready = 0;
  if (::read(ready_fd, &ready, 1) != 1 || ready != 'R') return 1;
  ::close(ready_fd);

  mom::GatewayClientOptions options;
  options.port = kGatewayPort;
  options.sessions = sessions;
  options.first_agent = 1;
  options.reactor_threads = 2;
  options.connect_batch = 512;
  mom::GatewayClientPool pool(options);

  std::mutex rtt_mutex;
  std::vector<std::uint64_t> rtts;
  rtts.reserve(messages);
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::int64_t> outstanding{0};
  pool.set_delivery_handler([&](std::size_t, std::uint16_t, std::uint32_t,
                                std::string_view, const std::uint8_t* payload,
                                std::size_t size) {
    if (size >= 8) {
      std::uint64_t sent_ns = 0;
      std::memcpy(&sent_ns, payload, 8);
      const std::uint64_t rtt = NowNs() - sent_ns;
      std::lock_guard lock(rtt_mutex);
      rtts.push_back(rtt);
    }
    outstanding.fetch_sub(1, std::memory_order_relaxed);
    received.fetch_add(1, std::memory_order_relaxed);
  });

  const std::uint64_t t_ramp = NowNs();
  pool.Start();
  const bool all_bound = pool.WaitAllBound(120ull * 1000 * 1000 * 1000);
  const double setup_seconds =
      static_cast<double>(NowNs() - t_ramp) / 1e9;

  ChildReport report;
  report.setup_seconds = setup_seconds;
  std::uint64_t sent = 0;
  std::uint64_t t_send0 = 0;
  std::uint64_t t_end = 0;
  if (all_bound) {
    t_send0 = NowNs();
    const std::uint64_t send_deadline =
        t_send0 + 300ull * 1000 * 1000 * 1000;
    for (std::size_t i = 0; i < messages; ++i) {
      while (outstanding.load(std::memory_order_relaxed) >=
             static_cast<std::int64_t>(window)) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        if (NowNs() > send_deadline) break;
      }
      if (NowNs() > send_deadline) break;
      std::uint8_t payload[8];
      bool queued = false;
      while (!queued && NowNs() <= send_deadline) {
        const std::uint64_t now = NowNs();
        std::memcpy(payload, &now, 8);
        queued = pool.Send(i % sessions, kEchoServer, kEchoAgent,
                           workload::kPing, payload, sizeof(payload));
        if (!queued) std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      if (!queued) break;
      outstanding.fetch_add(1, std::memory_order_relaxed);
      ++sent;
    }
    const std::uint64_t drain_deadline =
        NowNs() + 120ull * 1000 * 1000 * 1000;
    while (received.load(std::memory_order_relaxed) < sent &&
           NowNs() < drain_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    t_end = NowNs();
  }

  const mom::GatewayClientStats stats = pool.stats();
  report.bound = stats.bound;
  report.connect_failures = stats.connect_failures;
  report.auth_rejects = stats.auth_rejects;
  report.send_rejects = stats.send_rejects;
  report.protocol_errors = stats.protocol_errors;
  report.sent = sent;
  report.received = received.load(std::memory_order_relaxed);
  report.conn_per_sec =
      setup_seconds > 0 ? static_cast<double>(stats.bound) / setup_seconds : 0;
  if (t_end > t_send0 && report.received > 0) {
    report.throughput = static_cast<double>(report.received) /
                        (static_cast<double>(t_end - t_send0) / 1e9);
  }
  {
    std::lock_guard lock(rtt_mutex);
    std::sort(rtts.begin(), rtts.end());
    auto pct = [&](double p) -> std::uint64_t {
      if (rtts.empty()) return 0;
      const std::size_t idx = static_cast<std::size_t>(
          p * static_cast<double>(rtts.size() - 1));
      return rtts[idx];
    };
    report.p50_ns = pct(0.50);
    report.p95_ns = pct(0.95);
    report.p99_ns = pct(0.99);
  }
  pool.Stop();

  char line[512];
  const int n = std::snprintf(
      line, sizeof(line),
      "%llu %llu %llu %llu %llu %llu %llu %.6f %.1f %.1f %llu %llu %llu\n",
      static_cast<unsigned long long>(report.bound),
      static_cast<unsigned long long>(report.connect_failures),
      static_cast<unsigned long long>(report.auth_rejects),
      static_cast<unsigned long long>(report.send_rejects),
      static_cast<unsigned long long>(report.protocol_errors),
      static_cast<unsigned long long>(report.sent),
      static_cast<unsigned long long>(report.received),
      report.setup_seconds, report.conn_per_sec, report.throughput,
      static_cast<unsigned long long>(report.p50_ns),
      static_cast<unsigned long long>(report.p95_ns),
      static_cast<unsigned long long>(report.p99_ns));
  if (n <= 0 || ::write(result_fd, line, static_cast<std::size_t>(n)) != n) {
    return 1;
  }
  ::close(result_fd);
  return 0;
}

bool ReadChildReport(int fd, ChildReport* report) {
  std::string line;
  char ch = 0;
  while (::read(fd, &ch, 1) == 1 && ch != '\n') line.push_back(ch);
  unsigned long long bound = 0, cf = 0, ar = 0, sr = 0, pe = 0, sent = 0,
                     recv = 0, p50 = 0, p95 = 0, p99 = 0;
  double setup = 0, cps = 0, tput = 0;
  const int matched = std::sscanf(
      line.c_str(), "%llu %llu %llu %llu %llu %llu %llu %lf %lf %lf %llu %llu %llu",
      &bound, &cf, &ar, &sr, &pe, &sent, &recv, &setup, &cps, &tput, &p50,
      &p95, &p99);
  if (matched != 13) return false;
  report->bound = bound;
  report->connect_failures = cf;
  report->auth_rejects = ar;
  report->send_rejects = sr;
  report->protocol_errors = pe;
  report->sent = sent;
  report->received = recv;
  report->setup_seconds = setup;
  report->conn_per_sec = cps;
  report->throughput = tput;
  report->p50_ns = p50;
  report->p95_ns = p95;
  report->p99_ns = p99;
  return true;
}

int RunParent(int ready_fd, int result_fd, pid_t child, std::size_t sessions,
              std::size_t messages, bool smoke, const std::string& out_path) {
  const domains::MomConfig config = domains::topologies::Bus(2, 2);
  auto deployment = domains::Deployment::Create(config).value();
  net::TcpNetworkOptions net_options;
  net::TcpNetwork network(kBasePort, net_options);
  net::ThreadRuntime runtime;
  std::vector<std::unique_ptr<mom::InMemoryStore>> stores;
  std::vector<std::unique_ptr<net::Endpoint>> endpoints;
  std::vector<std::unique_ptr<mom::AgentServer>> servers;
  for (ServerId id : deployment.servers()) {
    endpoints.push_back(network.CreateEndpoint(id).value());
    stores.push_back(std::make_unique<mom::InMemoryStore>());
    mom::AgentServerOptions options;
    options.retransmit_timeout_ns = 500ull * 1000 * 1000;
    // 10k sessions ping through one gateway server: the default
    // watermarks (4096/1024) would spend the whole run credit-paused.
    options.flow.high_watermark = 65536;
    options.flow.low_watermark = 16384;
    // Exercise the adaptive coalescing path: acks ride a 200us window
    // unless a credit grant would unblock a paused sender.
    options.ack_coalesce_ns = 200 * 1000;
    servers.push_back(std::make_unique<mom::AgentServer>(
        deployment, id, endpoints.back().get(), &runtime, stores.back().get(),
        options));
  }
  mom::AgentServer& gateway_host = *servers[1];
  workload::EchoAgent* echo = nullptr;
  {
    auto agent = std::make_unique<workload::EchoAgent>();
    echo = agent.get();
    servers[kEchoServer]->AttachAgent(kEchoAgent, std::move(agent));
  }
  mom::GatewayOptions gw_options;
  gw_options.listen_port = kGatewayPort;
  gw_options.first_session_agent = 1;
  gw_options.listen_backlog = 1024;
  mom::GatewayServer gateway(gateway_host, gw_options, network.reactor());
  gateway.AttachSessionAgents(sessions);
  for (auto& server : servers) {
    if (!server->Boot().ok()) {
      std::fprintf(stderr, "server boot failed\n");
      return 1;
    }
  }
  const Status gw_status = gateway.Start();
  if (!gw_status.ok()) {
    std::fprintf(stderr, "gateway start failed: %s\n",
                 gw_status.message().c_str());
    return 1;
  }

  const BufferPool::Counters pool_before = BufferPool::Totals();
  if (::write(ready_fd, "R", 1) != 1) return 1;
  ::close(ready_fd);

  ChildReport report;
  const bool got_report = ReadChildReport(result_fd, &report);
  ::close(result_fd);
  int child_status = 0;
  ::waitpid(child, &child_status, 0);

  const mom::GatewayStats gw = gateway.stats();
  const BufferPool::Counters pool_after = BufferPool::Totals();
  const std::vector<net::ReactorShardStats> shards = network.reactor_stats();
  gateway.Stop();
  for (auto& server : servers) server->Shutdown();

  const bool child_ok = got_report && WIFEXITED(child_status) &&
                        WEXITSTATUS(child_status) == 0;
  const bool ok = child_ok && report.bound == sessions &&
                  report.connect_failures == 0 && report.auth_rejects == 0 &&
                  report.protocol_errors == 0 &&
                  report.received == report.sent && report.sent == messages &&
                  gw.auth_failures == 0 && gw.protocol_errors == 0 &&
                  gw.delivery_drops == 0 &&
                  echo->pings_seen() == messages;

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"net_scale\",\n");
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(out, "  \"sessions\": %zu,\n", sessions);
  std::fprintf(out, "  \"messages\": %zu,\n", messages);
  std::fprintf(out,
               "  \"client\": {\"bound\": %llu, \"connect_failures\": %llu, "
               "\"auth_rejects\": %llu, \"send_rejects\": %llu, "
               "\"protocol_errors\": %llu, \"sent\": %llu, "
               "\"received\": %llu, \"setup_seconds\": %.3f, "
               "\"conn_setup_per_sec\": %.1f, "
               "\"throughput_msgs_per_sec\": %.1f, \"rtt_p50_us\": %.1f, "
               "\"rtt_p95_us\": %.1f, \"rtt_p99_us\": %.1f},\n",
               static_cast<unsigned long long>(report.bound),
               static_cast<unsigned long long>(report.connect_failures),
               static_cast<unsigned long long>(report.auth_rejects),
               static_cast<unsigned long long>(report.send_rejects),
               static_cast<unsigned long long>(report.protocol_errors),
               static_cast<unsigned long long>(report.sent),
               static_cast<unsigned long long>(report.received),
               report.setup_seconds, report.conn_per_sec, report.throughput,
               static_cast<double>(report.p50_ns) / 1e3,
               static_cast<double>(report.p95_ns) / 1e3,
               static_cast<double>(report.p99_ns) / 1e3);
  std::fprintf(out,
               "  \"gateway\": {\"sessions_accepted\": %llu, "
               "\"sessions_closed\": %llu, \"auth_failures\": %llu, "
               "\"protocol_errors\": %llu, \"client_sends\": %llu, "
               "\"client_send_rejects\": %llu, \"client_deliveries\": %llu, "
               "\"delivery_drops\": %llu, \"bytes_in\": %llu, "
               "\"bytes_out\": %llu},\n",
               static_cast<unsigned long long>(gw.sessions_accepted),
               static_cast<unsigned long long>(gw.sessions_closed),
               static_cast<unsigned long long>(gw.auth_failures),
               static_cast<unsigned long long>(gw.protocol_errors),
               static_cast<unsigned long long>(gw.client_sends),
               static_cast<unsigned long long>(gw.client_send_rejects),
               static_cast<unsigned long long>(gw.client_deliveries),
               static_cast<unsigned long long>(gw.delivery_drops),
               static_cast<unsigned long long>(gw.bytes_in),
               static_cast<unsigned long long>(gw.bytes_out));
  std::fprintf(out, "  \"servers\": [\n");
  for (std::size_t i = 0; i < servers.size(); ++i) {
    const mom::ServerStats s = servers[i]->stats();
    std::fprintf(out,
                 "    {\"id\": %zu, \"messages_delivered\": %llu, "
                 "\"messages_forwarded\": %llu, \"ack_frames_sent\": %llu, "
                 "\"acks_sent\": %llu, \"ack_flush_timer\": %llu, "
                 "\"ack_flush_unblock\": %llu, \"credit_blocked\": %llu, "
                 "\"backlog_peak\": %llu}%s\n",
                 i, static_cast<unsigned long long>(s.messages_delivered),
                 static_cast<unsigned long long>(s.messages_forwarded),
                 static_cast<unsigned long long>(s.ack_frames_sent),
                 static_cast<unsigned long long>(s.acks_sent),
                 static_cast<unsigned long long>(s.ack_flush_timer),
                 static_cast<unsigned long long>(s.ack_flush_unblock),
                 static_cast<unsigned long long>(s.credit_blocked),
                 static_cast<unsigned long long>(s.backlog_peak),
                 i + 1 < servers.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::uint64_t frames_sent = 0, partial_writes = 0, reconnects = 0;
  for (auto& endpoint : endpoints) {
    const net::TransportStats ts = endpoint->stats();
    frames_sent += ts.frames_sent;
    partial_writes += ts.partial_writes;
    reconnects += ts.reconnects;
  }
  std::fprintf(out,
               "  \"transport\": {\"frames_sent\": %llu, "
               "\"partial_writes\": %llu, \"reconnects\": %llu},\n",
               static_cast<unsigned long long>(frames_sent),
               static_cast<unsigned long long>(partial_writes),
               static_cast<unsigned long long>(reconnects));
  std::fprintf(out, "  \"reactor_shards\": [\n");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const net::ReactorShardStats& r = shards[i];
    std::fprintf(out,
                 "    {\"polls\": %llu, \"events\": %llu, \"tasks\": %llu, "
                 "\"timers\": %llu, \"wakeups\": %llu, \"fds\": %llu}%s\n",
                 static_cast<unsigned long long>(r.polls),
                 static_cast<unsigned long long>(r.events),
                 static_cast<unsigned long long>(r.tasks),
                 static_cast<unsigned long long>(r.timers),
                 static_cast<unsigned long long>(r.wakeups),
                 static_cast<unsigned long long>(r.fds),
                 i + 1 < shards.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out,
               "  \"buffer_pool\": {\"acquires\": %llu, \"pool_hits\": %llu, "
               "\"heap_allocations\": %llu, \"shelf_deposits\": %llu, "
               "\"shelf_refills\": %llu},\n",
               static_cast<unsigned long long>(pool_after.acquires -
                                               pool_before.acquires),
               static_cast<unsigned long long>(pool_after.pool_hits -
                                               pool_before.pool_hits),
               static_cast<unsigned long long>(
                   pool_after.heap_allocations() -
                   pool_before.heap_allocations()),
               static_cast<unsigned long long>(pool_after.shelf_deposits -
                                               pool_before.shelf_deposits),
               static_cast<unsigned long long>(pool_after.shelf_refills -
                                               pool_before.shelf_refills));
  std::fprintf(out, "  \"ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(out);

  std::printf("net_scale: %zu sessions, %zu messages\n", sessions, messages);
  std::printf("  setup: %.2fs (%.0f conns/sec), bound %llu/%zu\n",
              report.setup_seconds, report.conn_per_sec,
              static_cast<unsigned long long>(report.bound), sessions);
  std::printf("  echo: %.0f msgs/sec, RTT p50 %.1fus p95 %.1fus p99 %.1fus\n",
              report.throughput, static_cast<double>(report.p50_ns) / 1e3,
              static_cast<double>(report.p95_ns) / 1e3,
              static_cast<double>(report.p99_ns) / 1e3);
  std::printf("  gateway: %llu sends, %llu deliveries, %llu drops\n",
              static_cast<unsigned long long>(gw.client_sends),
              static_cast<unsigned long long>(gw.client_deliveries),
              static_cast<unsigned long long>(gw.delivery_drops));
  std::printf("wrote %s -- %s\n", out_path.c_str(), ok ? "ok" : "FAILURE");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t sessions = 10000;
  std::size_t messages = 20000;
  std::size_t window = 256;
  std::string out_path = "BENCH_net_scale.json";
  bool sessions_set = false;
  bool messages_set = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--sessions") == 0 && i + 1 < argc) {
      sessions = static_cast<std::size_t>(std::atoll(argv[++i]));
      sessions_set = true;
    }
    if (std::strcmp(argv[i], "--messages") == 0 && i + 1 < argc) {
      messages = static_cast<std::size_t>(std::atoll(argv[++i]));
      messages_set = true;
    }
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  if (smoke && !sessions_set) sessions = 1000;
  if (smoke && !messages_set) messages = 2000;

  int ready_pipe[2];
  int result_pipe[2];
  if (::pipe(ready_pipe) != 0 || ::pipe(result_pipe) != 0) {
    std::fprintf(stderr, "pipe failed\n");
    return 1;
  }
  // Fork before any thread (reactor shards, engine workers) exists.
  const pid_t child = ::fork();
  if (child < 0) {
    std::fprintf(stderr, "fork failed\n");
    return 1;
  }
  if (child == 0) {
    ::close(ready_pipe[1]);
    ::close(result_pipe[0]);
    const int rc = RunChild(ready_pipe[0], result_pipe[1], sessions, messages,
                            window);
    ::_exit(rc);
  }
  ::close(ready_pipe[0]);
  ::close(result_pipe[1]);
  return RunParent(ready_pipe[1], result_pipe[0], child, sessions, messages,
                   smoke, out_path);
}
