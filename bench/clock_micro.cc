// Micro-benchmarks (google-benchmark) for the clock machinery: the raw
// CPU cost of stamping, checking and merging matrix clocks at domain
// sizes from 4 to 256, plus stamp codec cost in both modes.  These are
// the per-entry costs the simulation's CostModel abstracts; the O(n^2)
// growth of the full-matrix columns is the paper's Section 3 problem
// statement, measured directly.
#include <benchmark/benchmark.h>

#include <memory>

#include "clocks/causal_clock.h"
#include "clocks/causal_core.h"
#include "clocks/matrix_clock.h"
#include "clocks/stamp.h"
#include "common/rng.h"

namespace {

using cmom::DomainServerId;
using cmom::Rng;
using cmom::clocks::CausalCore;
using cmom::clocks::CausalCoreKind;
using cmom::clocks::CausalDomainClock;
using cmom::clocks::MakeCausalCore;
using cmom::clocks::MatrixClock;
using cmom::clocks::Stamp;
using cmom::clocks::StampMode;

MatrixClock RandomMatrix(std::size_t size, std::uint64_t seed) {
  Rng rng(seed);
  MatrixClock matrix(size);
  for (std::uint16_t i = 0; i < size; ++i) {
    for (std::uint16_t j = 0; j < size; ++j) {
      matrix.set(DomainServerId(i), DomainServerId(j), rng.NextBelow(1000));
    }
  }
  return matrix;
}

void BM_MatrixMerge(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  MatrixClock a = RandomMatrix(size, 1);
  const MatrixClock b = RandomMatrix(size, 2);
  for (auto _ : state) {
    a.MergeFrom(b);
    benchmark::DoNotOptimize(a);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size * size));
}
BENCHMARK(BM_MatrixMerge)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_PrepareSendFullMatrix(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  CausalDomainClock clock(DomainServerId(0), size, StampMode::kFullMatrix);
  std::uint16_t dest = 1;
  for (auto _ : state) {
    Stamp stamp = clock.PrepareSend(DomainServerId(dest));
    benchmark::DoNotOptimize(stamp);
    dest = static_cast<std::uint16_t>(1 + (dest % (size - 1)));
  }
}
BENCHMARK(BM_PrepareSendFullMatrix)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_PrepareSendUpdates(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  CausalDomainClock clock(DomainServerId(0), size, StampMode::kUpdates);
  std::uint16_t dest = 1;
  for (auto _ : state) {
    Stamp stamp = clock.PrepareSend(DomainServerId(dest));
    benchmark::DoNotOptimize(stamp);
    dest = static_cast<std::uint16_t>(1 + (dest % (size - 1)));
  }
}
BENCHMARK(BM_PrepareSendUpdates)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_CheckAndCommit(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  // Sender 1 streams to receiver 0; the receiver checks and merges.
  CausalDomainClock sender(DomainServerId(1), size, StampMode::kFullMatrix);
  CausalDomainClock receiver(DomainServerId(0), size, StampMode::kFullMatrix);
  for (auto _ : state) {
    Stamp stamp = sender.PrepareSend(DomainServerId(0));
    auto check = receiver.Check(DomainServerId(1), stamp);
    benchmark::DoNotOptimize(check);
    receiver.Commit(DomainServerId(1), stamp);
  }
}
BENCHMARK(BM_CheckAndCommit)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_StampEncodeDecode(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  CausalDomainClock clock(DomainServerId(0), size, StampMode::kFullMatrix);
  const Stamp stamp = clock.PrepareSend(DomainServerId(1));
  for (auto _ : state) {
    cmom::ByteWriter writer;
    stamp.Encode(writer);
    cmom::ByteReader reader(writer.buffer());
    auto decoded = Stamp::Decode(reader);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stamp.EncodedSize()));
}
BENCHMARK(BM_StampEncodeDecode)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// The four causal_core choices a config can name, swept side by side:
// the paper's matrix baseline in both stamp modes, the Drummond-Barbosa
// reduced core, and the Almeida-style hybrid core.  The second range
// argument indexes this table; each JSON row is labeled with the core
// name so downstream tooling can group per-core series.
struct CoreChoice {
  const char* name;
  CausalCoreKind kind;
  StampMode mode;
};
constexpr CoreChoice kCoreChoices[] = {
    {"matrix_full", CausalCoreKind::kMatrix, StampMode::kFullMatrix},
    {"matrix_updates", CausalCoreKind::kMatrix, StampMode::kUpdates},
    {"reduced", CausalCoreKind::kReduced, StampMode::kUpdates},
    {"hybrid", CausalCoreKind::kHybrid, StampMode::kUpdates},
};

void BM_CorePrepareSend(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const CoreChoice& choice = kCoreChoices[state.range(1)];
  std::unique_ptr<CausalCore> core =
      MakeCausalCore(choice.kind, DomainServerId(0), size, choice.mode);
  std::uint16_t dest = 1;
  std::uint64_t bytes = 0;
  std::uint64_t stamps = 0;
  for (auto _ : state) {
    Stamp stamp = core->PrepareSend(DomainServerId(dest));
    bytes += stamp.EncodedSize();
    ++stamps;
    benchmark::DoNotOptimize(stamp);
    dest = static_cast<std::uint16_t>(1 + (dest % (size - 1)));
  }
  state.SetLabel(choice.name);
  state.counters["stamp_bytes"] =
      stamps == 0 ? 0 : static_cast<double>(bytes) / static_cast<double>(stamps);
}
BENCHMARK(BM_CorePrepareSend)
    ->ArgsProduct({{4, 16, 64, 256}, {0, 1, 2, 3}})
    ->ArgNames({"s", "core"});

void BM_CoreCheckAndDeliver(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const CoreChoice& choice = kCoreChoices[state.range(1)];
  // Sender 1 streams to receiver 0; the receiver checks and merges.
  std::unique_ptr<CausalCore> sender =
      MakeCausalCore(choice.kind, DomainServerId(1), size, choice.mode);
  std::unique_ptr<CausalCore> receiver =
      MakeCausalCore(choice.kind, DomainServerId(0), size, choice.mode);
  for (auto _ : state) {
    Stamp stamp = sender->PrepareSend(DomainServerId(0));
    auto check = receiver->CheckReceive(DomainServerId(1), stamp);
    benchmark::DoNotOptimize(check);
    receiver->OnDeliver(DomainServerId(1), stamp);
  }
  state.SetLabel(choice.name);
}
BENCHMARK(BM_CoreCheckAndDeliver)
    ->ArgsProduct({{4, 16, 64, 256}, {0, 1, 2, 3}})
    ->ArgNames({"s", "core"});

void BM_ClockStatePersistImage(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  CausalDomainClock clock(DomainServerId(0), size, StampMode::kUpdates);
  for (auto _ : state) {
    cmom::ByteWriter writer;
    clock.EncodeState(writer);
    benchmark::DoNotOptimize(writer);
    state.counters["image_bytes"] =
        static_cast<double>(writer.size());
  }
}
BENCHMARK(BM_ClockStatePersistImage)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
