// Appendix A ablation: full-matrix stamps vs the Updates optimization.
//
// Same flat-topology remote unicast as Figure 7, run under both
// stamping modes.  The Updates algorithm sends only the matrix entries
// modified since the last message to the same destination, so the
// causal timestamp on the wire collapses from O(n^2) to O(1) for this
// traffic -- while the round-trip time stays quadratic, because the
// persistent clock image written on every commit is still O(n^2).
// (That residual quadratic disk cost is precisely the second problem of
// Section 3 that only the domain decomposition removes.)
#include <cstdio>
#include <vector>

#include "clocks/causal_clock.h"
#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

int main() {
  const std::vector<std::size_t> sizes = {10, 20, 30, 40, 50};
  workload::ExperimentOptions options;
  options.rounds = 10;

  std::printf(
      "Appendix A ablation: classical full-matrix stamps vs Updates\n");
  std::printf("%8s | %14s %14s | %14s %14s\n", "servers", "full: B/msg",
              "full: RTT ms", "upd: B/msg", "upd: RTT ms");
  for (std::size_t n : sizes) {
    workload::ExperimentResult results[2];
    const clocks::StampMode modes[2] = {clocks::StampMode::kFullMatrix,
                                        clocks::StampMode::kUpdates};
    for (int m = 0; m < 2; ++m) {
      auto config = domains::topologies::Flat(n, modes[m]);
      auto result = workload::RunPingPong(
          config, ServerId(0), ServerId(static_cast<std::uint16_t>(n - 1)),
          options);
      if (!result.ok()) {
        std::fprintf(stderr, "n=%zu failed: %s\n", n,
                     result.status().to_string().c_str());
        return 1;
      }
      results[m] = result.value();
    }
    auto per_msg = [](const workload::ExperimentResult& r) {
      return static_cast<double>(r.stamp_bytes) /
             static_cast<double>(r.wire_frames);
    };
    std::printf("%8zu | %14.1f %14.2f | %14.1f %14.2f\n", n,
                per_msg(results[0]), results[0].avg_rtt_ms,
                per_msg(results[1]), results[1].avg_rtt_ms);
  }
  std::printf(
      "\nExpected: full-matrix stamp bytes grow ~n^2; Updates stamp bytes\n"
      "stay constant; both RTT columns remain quadratic (dominated by the\n"
      "persistent O(n^2) clock image, Section 3's disk-I/O problem).\n");
  return 0;
}
