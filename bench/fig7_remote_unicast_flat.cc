// Figure 7: remote unicast WITHOUT domains of causality.
//
// One global domain over n servers (the classical algorithm, full
// matrix-clock timestamps); the main agent on S0 ping-pongs against an
// echo agent on S(n-1).  The paper measured 61..201 ms for n = 10..50
// and fitted a quadratic -- the per-message cost is dominated by the
// O(n^2) matrix timestamp and the O(n^2) persistent clock image.
//
// The rounds are fewer than the paper's 100 because the simulation is
// deterministic: every round takes identical simulated time, so the
// average is exact after the warm-up round.
#include <cstdio>
#include <vector>

#include "clocks/causal_clock.h"
#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

int main() {
  const std::vector<std::pair<std::size_t, double>> paper = {
      {10, 61}, {20, 69}, {30, 88}, {40, 136}, {50, 201}};

  workload::ExperimentOptions options;
  options.rounds = 10;

  std::vector<workload::SeriesPoint> series;
  for (auto [n, paper_ms] : paper) {
    auto config =
        domains::topologies::Flat(n, clocks::StampMode::kFullMatrix);
    auto result = workload::RunPingPong(
        config, ServerId(0), ServerId(static_cast<std::uint16_t>(n - 1)),
        options);
    if (!result.ok()) {
      std::fprintf(stderr, "n=%zu failed: %s\n", n,
                   result.status().to_string().c_str());
      return 1;
    }
    series.push_back({n, result.value().avg_rtt_ms, paper_ms});
  }
  workload::PrintSeries(
      "Figure 7: remote unicast, no domains (flat matrix clock)", series);
  std::printf(
      "\nExpected shape: quadratic growth (R^2 of the quadratic fit should\n"
      "exceed the linear fit, as in the paper's quadratic-fit overlay).\n");
  return 0;
}
