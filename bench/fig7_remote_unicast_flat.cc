// Figure 7: remote unicast WITHOUT domains of causality.
//
// One global domain over n servers (the classical algorithm, full
// matrix-clock timestamps); the main agent on S0 ping-pongs against an
// echo agent on S(n-1).  The paper measured 61..201 ms for n = 10..50
// and fitted a quadratic -- the per-message cost is dominated by the
// O(n^2) matrix timestamp and the O(n^2) persistent clock image.
//
// The rounds are fewer than the paper's 100 because the simulation is
// deterministic: every round takes identical simulated time, so the
// average is exact after the warm-up round.
//
// A second section re-runs the same experiment under all four
// causal_core choices (matrix full / matrix updates / reduced /
// hybrid) and records one JSON row per (core, n) pair in
// BENCH_fig7_cores.json (--out to redirect): the figure's quadratic
// blow-up is a property of the matrix core, not of causal delivery.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "clocks/causal_clock.h"
#include "clocks/causal_core.h"
#include "domains/topologies.h"
#include "workload/experiments.h"

using namespace cmom;

namespace {

struct CoreChoice {
  const char* name;
  clocks::CausalCoreKind kind;
  clocks::StampMode mode;
};
constexpr CoreChoice kCoreChoices[] = {
    {"matrix_full", clocks::CausalCoreKind::kMatrix,
     clocks::StampMode::kFullMatrix},
    {"matrix_updates", clocks::CausalCoreKind::kMatrix,
     clocks::StampMode::kUpdates},
    {"reduced", clocks::CausalCoreKind::kReduced, clocks::StampMode::kUpdates},
    {"hybrid", clocks::CausalCoreKind::kHybrid, clocks::StampMode::kUpdates},
};

struct CoreRow {
  const char* core;
  std::size_t n;
  double rtt_ms;
  double stamp_bytes_per_frame;
};

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_fig7_cores.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }

  const std::vector<std::pair<std::size_t, double>> paper = {
      {10, 61}, {20, 69}, {30, 88}, {40, 136}, {50, 201}};

  workload::ExperimentOptions options;
  options.rounds = 10;

  std::vector<workload::SeriesPoint> series;
  for (auto [n, paper_ms] : paper) {
    auto config =
        domains::topologies::Flat(n, clocks::StampMode::kFullMatrix);
    auto result = workload::RunPingPong(
        config, ServerId(0), ServerId(static_cast<std::uint16_t>(n - 1)),
        options);
    if (!result.ok()) {
      std::fprintf(stderr, "n=%zu failed: %s\n", n,
                   result.status().to_string().c_str());
      return 1;
    }
    series.push_back({n, result.value().avg_rtt_ms, paper_ms});
  }
  workload::PrintSeries(
      "Figure 7: remote unicast, no domains (flat matrix clock)", series);
  std::printf(
      "\nExpected shape: quadratic growth (R^2 of the quadratic fit should\n"
      "exceed the linear fit, as in the paper's quadratic-fit overlay).\n");

  // The same flat-domain experiment under each causal core.
  std::printf("\nCausal-core sweep (same flat domain, avg RTT ms / stamp "
              "bytes per frame):\n");
  std::printf("%16s", "n");
  for (const CoreChoice& choice : kCoreChoices) {
    std::printf("  %20s", choice.name);
  }
  std::printf("\n");
  std::vector<CoreRow> rows;
  for (auto [n, paper_ms] : paper) {
    (void)paper_ms;
    std::printf("%16zu", n);
    for (const CoreChoice& choice : kCoreChoices) {
      auto config = domains::topologies::Flat(n, choice.mode);
      config.causal_core = choice.kind;
      auto result = workload::RunPingPong(
          config, ServerId(0), ServerId(static_cast<std::uint16_t>(n - 1)),
          options);
      if (!result.ok()) {
        std::fprintf(stderr, "core=%s n=%zu failed: %s\n", choice.name, n,
                     result.status().to_string().c_str());
        return 1;
      }
      const double stamp_per_frame =
          result.value().wire_frames == 0
              ? 0
              : static_cast<double>(result.value().stamp_bytes) /
                    static_cast<double>(result.value().wire_frames);
      std::printf("  %11.2f / %6.1f", result.value().avg_rtt_ms,
                  stamp_per_frame);
      rows.push_back({choice.name, n, result.value().avg_rtt_ms,
                      stamp_per_frame});
    }
    std::printf("\n");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(out, "{\n  \"bench\": \"fig7_cores\",\n  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"core\": \"%s\", \"n\": %zu, \"rtt_ms\": %.3f, "
                 "\"stamp_bytes_per_frame\": %.1f}%s\n",
                 rows[i].core, rows[i].n, rows[i].rtt_ms,
                 rows[i].stamp_bytes_per_frame,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}
