#include "autopilot/profile.h"

#include <algorithm>

namespace cmom::autopilot {

void LiveTrafficProfile::Ingest(
    ServerId from,
    const std::vector<std::pair<ServerId, std::uint64_t>>& counters) {
  for (const auto& [to, cumulative] : counters) {
    if (to == from) continue;
    const Key key = KeyOf(from, to);
    auto it = last_cumulative_.find(key);
    std::uint64_t delta = cumulative;
    if (it != last_cumulative_.end() && cumulative >= it->second) {
      delta = cumulative - it->second;
    }
    // (cumulative < last) means the server rebooted and its counters
    // restarted from zero: the full new value is this window's traffic.
    last_cumulative_[key] = cumulative;
    if (delta > 0) window_delta_[key] += static_cast<double>(delta);
  }
}

void LiveTrafficProfile::EndWindow() {
  // Links with traffic this window move toward the observed delta;
  // every other known link decays toward zero.  Rates that fall below
  // the noise floor are dropped outright so a dead hotspot eventually
  // costs nothing to carry or score.
  constexpr double kNoiseFloor = 1e-6;
  for (auto it = rates_.begin(); it != rates_.end();) {
    const auto delta = window_delta_.find(it->first);
    const double observed =
        delta == window_delta_.end() ? 0.0 : delta->second;
    it->second = decay_ * it->second + (1.0 - decay_) * observed;
    if (delta != window_delta_.end()) window_delta_.erase(delta);
    if (it->second < kNoiseFloor) {
      it = rates_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [key, observed] : window_delta_) {
    const double rate = (1.0 - decay_) * observed;
    if (rate >= kNoiseFloor) rates_[key] = rate;
  }
  window_delta_.clear();
}

double LiveTrafficProfile::rate(ServerId from, ServerId to) const {
  const auto it = rates_.find(KeyOf(from, to));
  return it == rates_.end() ? 0.0 : it->second;
}

double LiveTrafficProfile::TotalRate() const {
  double total = 0;
  for (const auto& [key, rate] : rates_) total += rate;
  return total;
}

void LiveTrafficProfile::Forget(ServerId server) {
  const auto touches = [&](Key key) {
    return static_cast<std::uint16_t>(key >> 16) == server.value() ||
           static_cast<std::uint16_t>(key & 0xFFFF) == server.value();
  };
  std::erase_if(rates_, [&](const auto& kv) { return touches(kv.first); });
  std::erase_if(last_cumulative_,
                [&](const auto& kv) { return touches(kv.first); });
  std::erase_if(window_delta_,
                [&](const auto& kv) { return touches(kv.first); });
}

domains::TrafficProfile LiveTrafficProfile::Snapshot(
    std::size_t server_count) const {
  domains::TrafficProfile profile(server_count);
  for (const auto& [key, rate] : rates_) {
    const std::size_t from = key >> 16;
    const std::size_t to = key & 0xFFFF;
    if (from >= server_count || to >= server_count) continue;
    profile.add(from, to, rate);
  }
  return profile;
}

}  // namespace cmom::autopilot
