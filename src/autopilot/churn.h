// Churn soak: the autopilot's proving ground.
//
// Runs a daisy-chain MOM (the Figure 9 middle organization) under a
// seeded, phase-shifting traffic storm the way Nedelec et al. frame
// the scalability problem: continuous join/leave churn plus a hotspot
// that migrates between domains while the bus keeps serving.  The
// controller ticks once per observation window; the scenario is built
// so a well-behaved policy engine should
//
//   phase 1  merge the two chain-adjacent domains the hotspot spans,
//   phase 2  split the merged domain back apart when the hotspot
//            decays into two disjoint cliques,
//   phase 3  react to a second hotspot between two far domains
//            (merge or router promotion),
//
// while absorbing join requests and retiring leavers at the phase
// boundaries.  Every epoch boundary is crossed under live traffic.
//
// After the last window the bus drains and the offline oracle judges
// the WHOLE run -- causal delivery and exactly-once across every epoch
// the controller minted.  The same seeded scenario re-run with
// `frozen = true` (controller in dry-run: observes, scores, journals,
// never acts) is the baseline a BENCH_autopilot.json report compares
// against: steady-state analytic score (core-aware per-message cost)
// and peak router backlog, frozen vs closed-loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "autopilot/controller.h"
#include "clocks/causal_core.h"
#include "common/status.h"

namespace cmom::autopilot {

struct ChurnSoakOptions {
  // Master seed (traffic mix and membership schedule derive from it);
  // replay with CMOM_SEED=<seed>.
  std::uint64_t seed = 1;
  // Daisy chain shape: `chain_domains` domains of `domain_size`
  // servers, adjacent domains sharing one router.  Total servers:
  // chain_domains * domain_size - (chain_domains - 1).
  std::size_t chain_domains = 7;
  std::size_t domain_size = 4;
  // Servers that ask to join / leave mid-run.
  std::size_t joiners = 2;
  std::size_t leavers = 2;
  // Observation windows and sends per window.
  std::size_t windows = 30;
  std::size_t sends_per_window = 400;
  // Fraction of a window's sends aimed at the phase's hotspot.
  double hotspot_share = 0.7;
  // Baseline mode: the controller observes and journals but never
  // reconfigures (AutopilotOptions::dry_run).
  bool frozen = false;
  // Causal core every domain runs.
  clocks::CausalCoreKind causal_core = clocks::CausalCoreKind::kMatrix;
  // Policy gates (scenario-tuned defaults applied in RunChurnSoak when
  // left at zero).
  AutopilotOptions autopilot;
  // When non-empty the single-run report is written here as JSON.
  std::string report_path;
};

// One observation window's outcome, for the report series.
struct ChurnWindow {
  std::uint64_t window = 0;
  std::uint64_t epoch = 0;
  double score = 0;       // analytic total of the live config
  double clock_cost = 0;  // standing sum of per-domain stamp costs
  double stamp_rate = 0;  // traffic-weighted stamp entries shipped
  // Traffic-weighted extra hops: messages per unit rate some router
  // must re-stamp, stage and forward -- the backlog pressure the
  // topology creates (the mid-burst probes bound it from below).
  double router_load = 0;
  // Peak staging + credit-wait depth probed mid-burst THIS window (the
  // post-window gauges always read zero: the soak quiesces before each
  // Tick, so in-flight probes are the only view of router pressure).
  std::uint64_t router_backlog = 0;
  std::string verdict;
  std::string op;
  std::string reason;  // suppression / abort explanation
};

struct ChurnReport {
  std::uint64_t seed = 0;
  std::size_t windows = 0;
  std::size_t servers = 0;  // initial server count
  bool frozen = false;
  double wall_seconds = 0;

  // Traffic totals (accepted = admission took the send; rejected =
  // fence/overload turned it away, which the driver tolerates).
  std::uint64_t messages_accepted = 0;
  std::uint64_t messages_rejected = 0;
  std::uint64_t messages_sent = 0;       // committed sends in the trace
  std::uint64_t messages_delivered = 0;  // deliveries in the trace

  // Controller activity.
  std::uint64_t epochs_taken = 0;
  std::uint64_t splits = 0;
  std::uint64_t merges = 0;
  std::uint64_t promotes = 0;
  std::uint64_t absorbs = 0;
  std::uint64_t retires = 0;
  std::uint64_t aborts = 0;
  std::uint64_t suppressed_cooldown = 0;
  std::uint64_t suppressed_threshold = 0;
  std::uint64_t suppressed_hysteresis = 0;
  std::uint64_t suppressed_backoff = 0;

  // Cost tracking.
  double steady_score = 0;      // mean score over the last third
  double steady_stamp_rate = 0;  // mean stamp entries/rate, last third
  double steady_router_load = 0;  // mean routed extra hops, last third
  double final_clock_cost = 0;  // standing stamp cost of the final config
  std::uint64_t peak_router_backlog = 0;  // whole run, mid-burst probes
  std::uint64_t steady_backlog = 0;       // peak over the last third
  std::uint64_t final_epoch = 0;

  // Oracle verdicts over the whole run (every epoch boundary).
  bool causal = false;
  bool exactly_once = false;
  std::string first_violation;

  std::vector<ChurnWindow> series;

  [[nodiscard]] bool ok() const { return causal && exactly_once; }
};

// Runs one churn soak.  Non-ok means the scenario could not run;
// invariant violations land in the report.
[[nodiscard]] Result<ChurnReport> RunChurnSoak(const ChurnSoakOptions& options);

// Writes one run as JSON (report_path plumbing uses this too).
[[nodiscard]] Status WriteChurnReport(const std::string& path,
                                      const ChurnReport& report);

// Writes the closed-loop vs frozen comparison (BENCH_autopilot.json):
// per-run sections, a per-window score series, and a summary block
// with the steady-state improvement the acceptance gate reads.
[[nodiscard]] Status WriteAutopilotBench(const std::string& path,
                                         const ChurnReport& autopilot,
                                         const ChurnReport& frozen,
                                         bool smoke);

}  // namespace cmom::autopilot
