// Live traffic profile: a decaying view of who talks to whom.
//
// The offline Section 7 splitter consumes a TrafficProfile measured
// ahead of time; the autopilot has to build one while the bus runs.
// Every observation window the observer feeds each live server's
// cumulative per-destination origination counters
// (mom::AgentServer::OriginatedByDestination) into this profile; the
// delta against the previous snapshot is the window's observation, and
// the per-link rate follows an exponentially weighted moving average
//
//   rate = decay * rate + (1 - decay) * delta
//
// so a hotspot that moved three windows ago fades geometrically
// instead of anchoring the controller to stale history.  Counter
// resets (a server crashed and rebooted, losing its in-memory
// counters) are detected as a cumulative value below the previous
// snapshot and treated as a fresh baseline.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "domains/splitter.h"

namespace cmom::autopilot {

class LiveTrafficProfile {
 public:
  // `decay` in [0, 1): weight of history per window.  0 forgets
  // instantly (last window only); 0.5 halves a stale rate per window.
  explicit LiveTrafficProfile(double decay = 0.5) : decay_(decay) {}

  [[nodiscard]] double decay() const { return decay_; }

  // Feeds one origin server's cumulative per-destination counters into
  // the currently open window.  Call once per live server per window.
  void Ingest(ServerId from,
              const std::vector<std::pair<ServerId, std::uint64_t>>& counters);

  // Closes the window: folds this window's deltas into the EWMA rates
  // (links with no delta decay toward zero) and opens the next window.
  void EndWindow();

  // Smoothed messages-per-window rate for an ordered pair.
  [[nodiscard]] double rate(ServerId from, ServerId to) const;

  // Sum of all smoothed rates (activity gauge).
  [[nodiscard]] double TotalRate() const;

  // Drops everything known about `server` (it left the cluster).
  void Forget(ServerId server);

  // Materializes the smoothed rates as a splitter-compatible profile
  // over server ids 0..server_count-1 (rates touching ids outside the
  // range are dropped).
  [[nodiscard]] domains::TrafficProfile Snapshot(
      std::size_t server_count) const;

 private:
  using Key = std::uint32_t;  // (from << 16) | to
  static Key KeyOf(ServerId from, ServerId to) {
    return (static_cast<Key>(from.value()) << 16) |
           static_cast<Key>(to.value());
  }

  double decay_;
  std::unordered_map<Key, double> rates_;
  std::unordered_map<Key, std::uint64_t> last_cumulative_;
  std::unordered_map<Key, double> window_delta_;
};

}  // namespace cmom::autopilot
