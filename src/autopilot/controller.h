// The autopilot: a closed-loop topology controller.
//
// Closes the loop the ROADMAP left open between the live gauges (PR 5)
// and epoch reconfiguration (PR 4):
//
//   collect  Every observation window Tick() samples each live
//            server's cumulative per-destination origination counters,
//            router staging depth and flow gauges into a decaying
//            LiveTrafficProfile (EWMA; stale hotspots fade).
//   score    The current config and a set of candidate configs (domain
//            splits via the Section 7 splitter, merges of adjacent
//            chatty domains, router promotions for hot cross-domain
//            pairs, absorption of join requests, retirement of leave
//            requests) are priced with the core-aware analytic model
//            (autopilot/scorer.h) over the same profile snapshot.
//   decide   A candidate acts only if it clears every gate:
//            - min-improvement threshold (fractional score reduction),
//            - hysteresis (the same candidate must win two consecutive
//              windows before it is trusted -- one hot window is not a
//              trend),
//            - per-op-kind cooldown (a domain freshly split is not
//              immediately re-merged),
//            - guardrail backoff (after an aborted epoch the
//              controller sits out `backoff_windows` windows).
//            Membership ops (absorb/retire) answer explicit requests,
//            so they skip the improvement/hysteresis gates but honor
//            cooldown and backoff.
//   act      The winning candidate becomes a ReconfigPlan (full
//            Section 4.3 re-validation in ReconfigPlan::Build -- a
//            cyclic candidate dies before any store is touched) and is
//            driven through Coordinator::Reconfigure under a bounded
//            quiesce budget.  The guardrail: any Reconfigure failure
//            is followed by Coordinator::Recover(), which converges
//            the cluster (forward iff some store durably cut over,
//            else back to the old epoch) and restarts what is down;
//            the controller adopts whichever epoch the stores settled
//            on, records the abort if it rolled back, and backs off.
//            dry_run mode stops short of acting and records what
//            would have been done.
//
// Every window's outcome is a Decision; the history doubles as the
// controller's journal.  When `journal` is enabled each decision is
// also written durably (key "autopilot/<seq>") through the journal
// server's own commit pipeline, so `momtool autopilot <store-dir>` can
// reconstruct the controller's reasoning post-mortem.  The controller
// itself keeps NO durable state it depends on: if it crashes
// mid-propose, Coordinator::Recover() rolls the half-proposed epoch
// back from the stores alone and a fresh controller simply starts
// observing again.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "autopilot/profile.h"
#include "autopilot/scorer.h"
#include "common/status.h"
#include "control/coordinator.h"
#include "control/fence.h"
#include "domains/config.h"

namespace cmom::autopilot {

enum class OpKind : std::uint8_t {
  kNone = 0,
  kSplit,
  kMerge,
  kPromote,
  kAbsorb,  // AddServerToDomain for a join request
  kRetire,  // RemoveServer for a leave request
};

[[nodiscard]] const char* OpKindName(OpKind kind);

// What happened in one observation window.
enum class Verdict : std::uint8_t {
  kNoCandidate = 0,     // nothing to propose (or all candidates invalid)
  kBelowThreshold,      // best candidate does not clear min_improvement
  kHysteresis,          // best candidate must win again next window
  kCooldown,            // op kind acted too recently
  kBackoff,             // sitting out a guardrail backoff
  kDryRun,              // would have acted; dry_run held the trigger
  kTaken,               // epoch executed
  kAborted,             // Coordinator::Reconfigure failed; backed off
};

[[nodiscard]] const char* VerdictName(Verdict verdict);

struct CandidateScore {
  OpKind op = OpKind::kNone;
  std::string detail;   // e.g. "split domain 2 -> 7"
  double score = 0;     // total under ScorerOptions; lower is better
  bool valid = false;   // ReconfigPlan::Build accepted it
  std::string rejection;  // why !valid
};

struct Decision {
  std::uint64_t window = 0;
  std::uint64_t from_epoch = 0;
  std::uint64_t to_epoch = 0;  // == from_epoch unless kTaken
  Verdict verdict = Verdict::kNoCandidate;
  OpKind op = OpKind::kNone;
  std::string detail;
  double current_score = 0;
  double candidate_score = 0;
  std::string reason;  // suppression / abort explanation
  std::vector<CandidateScore> candidates;
};

// Journal record codec (also used by `momtool autopilot <store-dir>`).
[[nodiscard]] std::string EncodeDecision(const Decision& decision);
[[nodiscard]] Result<Decision> DecodeDecision(const std::string& text);

struct AutopilotOptions {
  // EWMA history weight per window (see LiveTrafficProfile).
  double decay = 0.5;
  // Fractional score improvement a structural op must clear:
  // (current - candidate) / current >= min_improvement.
  double min_improvement = 0.05;
  // Windows an op kind rests after acting.
  std::uint64_t cooldown_windows = 2;
  // Windows the controller sits out after an aborted epoch.
  std::uint64_t backoff_windows = 4;
  // Upper bound on split part sizes (SplitterOptions::max_domain_size).
  std::size_t max_domain_size = 8;
  // Domains at or above this size get split candidates generated.
  std::size_t split_candidate_min_size = 4;
  // Observe and journal, never reconfigure.
  bool dry_run = false;
  // Quiesce budget handed to the coordinator per epoch.
  std::uint64_t quiesce_timeout_ms = 10'000;
  // Scoring weights.
  ScorerOptions scorer;
  // Ignore windows whose total smoothed rate is below this (no point
  // reshaping an idle bus around noise).
  double min_total_rate = 1.0;
  // Durable decision journal ("autopilot/<seq>" on the journal
  // server's store; best effort -- a down journal server drops the
  // record, never blocks the loop).
  bool journal = true;
};

class Autopilot {
 public:
  // `host` must outlive the controller.  `config`/`epoch` describe the
  // cluster as currently deployed.
  Autopilot(control::ClusterHost* host, domains::MomConfig config,
            std::uint64_t epoch, AutopilotOptions options = {});

  // Membership signals (operator or discovery layer): servers asking to
  // join or announce departure.  Honored on later Ticks.
  void NoteJoinRequest(ServerId id);
  void NoteLeaveRequest(ServerId id);

  // One observation window: sample, smooth, score, gate, maybe act.
  // Never throws the cluster away: a failed reconfiguration is
  // converged by Coordinator::Recover() (forward or back) and the
  // returned Decision records which way the stores settled.
  Decision Tick();

  [[nodiscard]] const domains::MomConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t window() const { return window_; }
  [[nodiscard]] const std::vector<Decision>& history() const {
    return history_;
  }
  [[nodiscard]] const LiveTrafficProfile& profile() const { return profile_; }

  // Peak router staging depth observed over all samples so far.
  [[nodiscard]] std::uint64_t peak_router_backlog() const {
    return peak_router_backlog_;
  }

  // Counters over the whole history (for reports).
  [[nodiscard]] std::uint64_t epochs_taken() const { return epochs_taken_; }
  [[nodiscard]] std::uint64_t ops_taken(OpKind kind) const;
  [[nodiscard]] std::uint64_t aborts() const { return aborts_; }

 private:
  struct Candidate {
    OpKind op = OpKind::kNone;
    std::string detail;
    domains::MomConfig config;
    // Join/leave this candidate answers (cleared from the pending
    // queues once taken).
    std::optional<ServerId> membership;
  };

  void SampleCluster();
  [[nodiscard]] std::vector<Candidate> GenerateCandidates(
      const domains::TrafficProfile& traffic);
  // Bookkeeping once an epoch is durably committed (normal success or
  // a Recover() that rolled forward): adopt the config, bump the
  // counters, clear the answered membership request.
  void AdoptEpoch(const Candidate& winner, std::uint64_t to_epoch);
  [[nodiscard]] std::uint16_t NextFreeDomainId() const;
  [[nodiscard]] std::size_t ProfileSpan() const;
  void Journal(const Decision& decision);

  control::ClusterHost* host_;
  domains::MomConfig config_;
  std::uint64_t epoch_;
  AutopilotOptions options_;

  LiveTrafficProfile profile_;
  std::uint64_t window_ = 0;
  std::vector<Decision> history_;
  std::deque<ServerId> pending_joins_;
  std::deque<ServerId> pending_leaves_;

  // Gate state.
  std::uint64_t backoff_until_window_ = 0;
  std::unordered_map<std::uint8_t, std::uint64_t> last_acted_window_;
  std::string hysteresis_signature_;  // candidate that won last window

  // Gauges and counters.
  std::uint64_t peak_router_backlog_ = 0;
  std::uint64_t epochs_taken_ = 0;
  std::uint64_t aborts_ = 0;
  std::unordered_map<std::uint8_t, std::uint64_t> ops_taken_;
  std::uint64_t journal_seq_ = 0;
};

}  // namespace cmom::autopilot
