#include "autopilot/churn.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <unordered_map>

#include "causality/checker.h"
#include "clocks/causal_core.h"
#include "common/rng.h"
#include "domains/topologies.h"
#include "workload/agents.h"
#include "workload/threaded_harness.h"

namespace cmom::autopilot {

namespace {

// Standing stamp cost of a config (the report's "clock cost" series).
double ClockCostOf(const domains::MomConfig& config) {
  double total = 0;
  for (const auto& domain : config.domains) {
    total += static_cast<double>(clocks::CausalCoreStampCost(
        config.CoreFor(domain.id), domain.members.size()));
  }
  return total;
}

// Members belonging to exactly one domain (hotspot endpoints avoid the
// chain's shared routers so promotion stays a distinct option).
std::vector<ServerId> InteriorMembers(const domains::MomConfig& config,
                                      const domains::DomainSpec& domain) {
  std::unordered_map<std::uint16_t, int> memberships;
  for (const auto& spec : config.domains) {
    for (ServerId member : spec.members) ++memberships[member.value()];
  }
  std::vector<ServerId> interior;
  for (ServerId member : domain.members) {
    if (memberships[member.value()] == 1) interior.push_back(member);
  }
  return interior;
}

}  // namespace

Result<ChurnReport> RunChurnSoak(const ChurnSoakOptions& options) {
  if (options.chain_domains < 4 || options.domain_size < 3) {
    return Status::InvalidArgument(
        "churn scenario needs >= 4 chain domains of >= 3 servers");
  }
  const auto start = std::chrono::steady_clock::now();

  domains::MomConfig config = domains::topologies::Daisy(
      options.chain_domains, options.domain_size);
  config.causal_core = options.causal_core;

  // Scenario anchors, read from the generated chain rather than
  // hard-coded ids: the first two domains host the phase-1 hotspot
  // (merge bait) whose decay into two disjoint cliques is the phase-2
  // split bait; two mid-chain domains host the phase-3 hotspot.
  const auto d0 = config.domains[0];
  const auto d1 = config.domains[1];
  const auto da = config.domains[options.chain_domains / 2];
  const auto db = config.domains[options.chain_domains / 2 + 1];
  const std::vector<ServerId> clique_a = InteriorMembers(config, d0);
  const std::vector<ServerId> clique_b = InteriorMembers(config, d1);
  const std::vector<ServerId> far_a = InteriorMembers(config, da);
  const std::vector<ServerId> far_b = InteriorMembers(config, db);
  if (clique_a.size() < 2 || clique_b.empty() || far_a.empty() ||
      far_b.empty()) {
    return Status::InvalidArgument("chain too small for hotspot cliques");
  }

  workload::ThreadedHarness harness(config);
  Status status = harness.Init([](ServerId, mom::AgentServer& server) {
    server.AttachAgent(0, std::make_unique<workload::SinkAgent>());
  });
  if (!status.ok()) return status;
  status = harness.BootAll();
  if (!status.ok()) return status;

  AutopilotOptions pilot_options = options.autopilot;
  pilot_options.dry_run = options.frozen;
  Autopilot pilot(&harness, config, 0, pilot_options);

  // Membership schedule: joiners knock shortly after the first
  // reshape settles; leavers (interior members of the far end of the
  // chain, away from every hotspot) announce in the final third.
  std::uint16_t max_id = 0;
  for (ServerId id : config.servers) max_id = std::max(max_id, id.value());
  std::vector<std::pair<std::size_t, ServerId>> joins;
  for (std::size_t i = 0; i < options.joiners; ++i) {
    joins.emplace_back(options.windows * 2 / 5 + 2 * i,
                       ServerId(static_cast<std::uint16_t>(max_id + 1 + i)));
  }
  const auto leaver_pool =
      InteriorMembers(config, config.domains[options.chain_domains - 1]);
  std::vector<std::pair<std::size_t, ServerId>> leaves;
  for (std::size_t i = 0; i < std::min(options.leavers, leaver_pool.size());
       ++i) {
    leaves.emplace_back(options.windows * 3 / 5 + 2 * i, leaver_pool[i]);
  }

  ChurnReport report;
  report.seed = options.seed;
  report.windows = options.windows;
  report.servers = config.servers.size();
  report.frozen = options.frozen;

  Rng rng(options.seed);
  const std::size_t phase1_end = options.windows / 3;
  const std::size_t phase2_end = options.windows * 2 / 3;

  const auto pick = [&](const std::vector<ServerId>& pool) {
    return pool[rng.NextBelow(pool.size())];
  };

  for (std::size_t w = 0; w < options.windows; ++w) {
    for (const auto& [when, id] : joins) {
      if (when == w) pilot.NoteJoinRequest(id);
    }
    for (const auto& [when, id] : leaves) {
      if (when == w) pilot.NoteLeaveRequest(id);
    }

    const auto& live = pilot.config().servers;
    // Router pressure is only visible mid-burst: the soak quiesces
    // before every Tick, so probe the staging/credit-wait gauges while
    // the window's traffic is still in flight.
    std::uint64_t window_backlog = 0;
    const std::size_t probe_every =
        std::max<std::size_t>(1, options.sends_per_window / 32);
    for (std::size_t s = 0; s < options.sends_per_window; ++s) {
      if (s % probe_every == 0) {
        for (ServerId id : live) {
          mom::AgentServer* server = harness.ServerOf(id);
          if (server == nullptr) continue;
          const auto flow = server->flow_status();
          window_backlog = std::max<std::uint64_t>(
              window_backlog, static_cast<std::uint64_t>(flow.staged_forwards) +
                                  static_cast<std::uint64_t>(flow.wait_queue));
        }
      }
      ServerId from{0}, to{0};
      if (rng.NextDouble() < options.hotspot_share) {
        if (w < phase1_end) {
          // Cross-domain hotspot spanning the first two chain domains.
          from = pick(clique_a);
          to = pick(clique_b);
        } else if (w < phase2_end) {
          // The hotspot decays into two disjoint intra-clique storms.
          const auto& clique =
              rng.NextBelow(2) == 0 && clique_a.size() >= 2 ? clique_a
                                                            : clique_b;
          if (clique.size() < 2) {
            from = pick(clique_a);
            to = pick(clique_a);
          } else {
            from = pick(clique);
            to = pick(clique);
          }
        } else {
          // The hotspot migrates to two far, still-separate domains.
          from = pick(far_a);
          to = pick(far_b);
        }
        if (rng.NextBelow(2) == 0) std::swap(from, to);
      } else {
        from = live[rng.NextBelow(live.size())];
        to = live[rng.NextBelow(live.size())];
      }
      if (from == to) continue;
      auto sent = harness.Send(from, 0, to, 0, "churn");
      if (sent.ok()) {
        ++report.messages_accepted;
      } else {
        // Fenced (mid-epoch), overloaded or not-running senders are
        // part of life under churn; the oracle only audits committed
        // sends.
        ++report.messages_rejected;
      }
    }
    harness.WaitQuiescent();

    const Decision decision = pilot.Tick();
    switch (decision.verdict) {
      case Verdict::kCooldown: ++report.suppressed_cooldown; break;
      case Verdict::kBelowThreshold: ++report.suppressed_threshold; break;
      case Verdict::kHysteresis: ++report.suppressed_hysteresis; break;
      case Verdict::kBackoff: ++report.suppressed_backoff; break;
      default: break;
    }

    ChurnWindow row;
    row.window = decision.window;
    row.epoch = pilot.epoch();
    row.score = decision.current_score;
    row.clock_cost = ClockCostOf(pilot.config());
    {
      // The operational sum-s^2 series: stamp entries the smoothed
      // traffic ships through the CURRENT topology each unit of rate.
      std::uint16_t span = 0;
      for (ServerId id : pilot.config().servers) {
        span = std::max(span, static_cast<std::uint16_t>(id.value() + 1));
      }
      auto scored = ScoreConfig(pilot.config(), pilot.profile().Snapshot(span),
                                pilot_options.scorer);
      if (scored.ok()) {
        row.stamp_rate = scored.value().stamp_rate;
        row.router_load = scored.value().router_load;
      }
    }
    row.router_backlog = window_backlog;
    row.verdict = VerdictName(decision.verdict);
    row.op = OpKindName(decision.op);
    row.reason = decision.reason;
    report.series.push_back(std::move(row));
  }

  harness.WaitQuiescent();
  harness.HaltAll();

  const causality::Trace trace = harness.trace().Snapshot();
  for (const auto& event : trace) {
    if (event.kind == causality::EventKind::kSend) {
      ++report.messages_sent;
    } else {
      ++report.messages_delivered;
    }
  }
  const causality::CausalityChecker checker = harness.MakeChecker();
  const auto causal_report = checker.CheckCausalDelivery(trace);
  report.causal = causal_report.causal();
  if (!causal_report.violations.empty()) {
    report.first_violation = causal_report.violations.front().description;
  }
  const Status once = checker.CheckExactlyOnce(trace);
  report.exactly_once = once.ok();
  if (report.first_violation.empty() && !once.ok()) {
    report.first_violation = once.to_string();
  }

  report.epochs_taken = pilot.epochs_taken();
  report.splits = pilot.ops_taken(OpKind::kSplit);
  report.merges = pilot.ops_taken(OpKind::kMerge);
  report.promotes = pilot.ops_taken(OpKind::kPromote);
  report.absorbs = pilot.ops_taken(OpKind::kAbsorb);
  report.retires = pilot.ops_taken(OpKind::kRetire);
  report.aborts = pilot.aborts();
  report.final_clock_cost = ClockCostOf(pilot.config());
  report.final_epoch = pilot.epoch();

  double steady_sum = 0;
  double steady_stamp_sum = 0;
  double steady_load_sum = 0;
  std::size_t steady_count = 0;
  for (std::size_t w = 0; w < report.series.size(); ++w) {
    report.peak_router_backlog =
        std::max(report.peak_router_backlog, report.series[w].router_backlog);
    if (w < phase2_end) continue;
    steady_sum += report.series[w].score;
    steady_stamp_sum += report.series[w].stamp_rate;
    steady_load_sum += report.series[w].router_load;
    report.steady_backlog =
        std::max(report.steady_backlog, report.series[w].router_backlog);
    ++steady_count;
  }
  report.peak_router_backlog =
      std::max(report.peak_router_backlog, pilot.peak_router_backlog());
  report.steady_score = steady_count == 0 ? 0 : steady_sum / steady_count;
  report.steady_stamp_rate =
      steady_count == 0 ? 0 : steady_stamp_sum / steady_count;
  report.steady_router_load =
      steady_count == 0 ? 0 : steady_load_sum / steady_count;

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  if (!options.report_path.empty()) {
    const Status written = WriteChurnReport(options.report_path, report);
    if (!written.ok()) return written;
  }
  return report;
}

namespace {

void WriteRunSection(std::FILE* out, const char* prefix,
                     const ChurnReport& r) {
  std::fprintf(out,
               "  \"%s_epochs_taken\": %" PRIu64 ",\n"
               "  \"%s_splits\": %" PRIu64 ",\n"
               "  \"%s_merges\": %" PRIu64 ",\n"
               "  \"%s_promotes\": %" PRIu64 ",\n"
               "  \"%s_absorbs\": %" PRIu64 ",\n"
               "  \"%s_retires\": %" PRIu64 ",\n"
               "  \"%s_aborts\": %" PRIu64 ",\n",
               prefix, r.epochs_taken, prefix, r.splits, prefix, r.merges,
               prefix, r.promotes, prefix, r.absorbs, prefix, r.retires,
               prefix, r.aborts);
  std::fprintf(out,
               "  \"%s_steady_score\": %.3f,\n"
               "  \"%s_steady_stamp_rate\": %.3f,\n"
               "  \"%s_steady_router_load\": %.3f,\n"
               "  \"%s_final_clock_cost\": %.1f,\n"
               "  \"%s_peak_router_backlog\": %" PRIu64 ",\n"
               "  \"%s_steady_backlog\": %" PRIu64 ",\n"
               "  \"%s_causal\": %s,\n"
               "  \"%s_exactly_once\": %s,\n",
               prefix, r.steady_score, prefix, r.steady_stamp_rate, prefix,
               r.steady_router_load, prefix, r.final_clock_cost, prefix,
               r.peak_router_backlog, prefix, r.steady_backlog, prefix,
               r.causal ? "true" : "false", prefix,
               r.exactly_once ? "true" : "false");
}

}  // namespace

Status WriteChurnReport(const std::string& path, const ChurnReport& r) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return Status::Unavailable("cannot write " + path);
  std::fprintf(out, "{\n  \"bench\": \"autopilot_churn_run\",\n");
  std::fprintf(out, "  \"seed\": %" PRIu64 ",\n", r.seed);
  std::fprintf(out, "  \"windows\": %zu,\n", r.windows);
  std::fprintf(out, "  \"servers\": %zu,\n", r.servers);
  std::fprintf(out, "  \"frozen\": %s,\n", r.frozen ? "true" : "false");
  std::fprintf(out, "  \"wall_seconds\": %.3f,\n", r.wall_seconds);
  std::fprintf(out,
               "  \"accepted\": %" PRIu64 ",\n  \"rejected\": %" PRIu64
               ",\n  \"sent\": %" PRIu64 ",\n  \"delivered\": %" PRIu64 ",\n",
               r.messages_accepted, r.messages_rejected, r.messages_sent,
               r.messages_delivered);
  WriteRunSection(out, "run", r);
  std::fprintf(out,
               "  \"suppressed_cooldown\": %" PRIu64
               ",\n  \"suppressed_threshold\": %" PRIu64
               ",\n  \"suppressed_hysteresis\": %" PRIu64
               ",\n  \"suppressed_backoff\": %" PRIu64 ",\n",
               r.suppressed_cooldown, r.suppressed_threshold,
               r.suppressed_hysteresis, r.suppressed_backoff);
  std::fprintf(out, "  \"final_epoch\": %" PRIu64 ",\n", r.final_epoch);
  std::fprintf(out, "  \"first_violation\": \"%s\",\n",
               r.first_violation.c_str());
  std::fprintf(out, "  \"series\": [\n");
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    const ChurnWindow& row = r.series[i];
    std::fprintf(out,
                 "    {\"w\": %" PRIu64 ", \"epoch\": %" PRIu64
                 ", \"score\": %.3f, \"stamp\": %.1f, \"clock_cost\": %.1f"
                 ", \"backlog\": %" PRIu64
                 ", \"verdict\": \"%s\", \"op\": \"%s\", \"reason\": \"%s\"}%s\n",
                 row.window, row.epoch, row.score, row.stamp_rate,
                 row.clock_cost, row.router_backlog, row.verdict.c_str(),
                 row.op.c_str(), row.reason.c_str(),
                 i + 1 == r.series.size() ? "" : ",");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"all_ok\": %s\n}\n", r.ok() ? "true" : "false");
  std::fclose(out);
  return Status::Ok();
}

Status WriteAutopilotBench(const std::string& path, const ChurnReport& ap,
                           const ChurnReport& fz, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return Status::Unavailable("cannot write " + path);
  std::fprintf(out, "{\n  \"bench\": \"autopilot_churn\",\n");
  std::fprintf(out, "  \"seed\": %" PRIu64 ",\n", ap.seed);
  std::fprintf(out, "  \"windows\": %zu,\n", ap.windows);
  std::fprintf(out, "  \"servers\": %zu,\n", ap.servers);
  std::fprintf(out, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  WriteRunSection(out, "autopilot", ap);
  WriteRunSection(out, "frozen", fz);
  std::fprintf(out, "  \"series\": [\n");
  const std::size_t rows = std::min(ap.series.size(), fz.series.size());
  for (std::size_t i = 0; i < rows; ++i) {
    std::fprintf(out,
                 "    {\"w\": %" PRIu64 ", \"ap_score\": %.3f, \"fz_score\": "
                 "%.3f, \"ap_stamp\": %.1f, \"fz_stamp\": %.1f, \"ap_clock\": "
                 "%.1f, \"fz_clock\": %.1f, \"ap_backlog\": %" PRIu64
                 ", \"fz_backlog\": %" PRIu64 ", \"ap_epoch\": %" PRIu64
                 "}%s\n",
                 ap.series[i].window, ap.series[i].score, fz.series[i].score,
                 ap.series[i].stamp_rate, fz.series[i].stamp_rate,
                 ap.series[i].clock_cost, fz.series[i].clock_cost,
                 ap.series[i].router_backlog, fz.series[i].router_backlog,
                 ap.series[i].epoch, i + 1 == rows ? "" : ",");
  }
  std::fprintf(out, "  ],\n");
  const double improvement =
      fz.steady_score <= 0
          ? 0
          : (fz.steady_score - ap.steady_score) / fz.steady_score;
  const std::uint64_t distinct_ops =
      (ap.splits > 0 ? 1 : 0) + (ap.merges > 0 ? 1 : 0) +
      (ap.promotes > 0 ? 1 : 0) + (ap.absorbs > 0 ? 1 : 0) +
      (ap.retires > 0 ? 1 : 0);
  std::fprintf(out, "  \"summary\": {\n");
  std::fprintf(out, "    \"steady_score_autopilot\": %.3f,\n",
               ap.steady_score);
  std::fprintf(out, "    \"steady_score_frozen\": %.3f,\n", fz.steady_score);
  std::fprintf(out, "    \"score_improvement\": %.4f,\n", improvement);
  std::fprintf(out, "    \"steady_stamp_autopilot\": %.3f,\n",
               ap.steady_stamp_rate);
  std::fprintf(out, "    \"steady_stamp_frozen\": %.3f,\n",
               fz.steady_stamp_rate);
  const double stamp_improvement =
      fz.steady_stamp_rate <= 0
          ? 0
          : (fz.steady_stamp_rate - ap.steady_stamp_rate) /
                fz.steady_stamp_rate;
  std::fprintf(out, "    \"stamp_improvement\": %.4f,\n", stamp_improvement);
  std::fprintf(out, "    \"steady_router_load_autopilot\": %.3f,\n",
               ap.steady_router_load);
  std::fprintf(out, "    \"steady_router_load_frozen\": %.3f,\n",
               fz.steady_router_load);
  std::fprintf(out, "    \"clock_cost_autopilot\": %.1f,\n",
               ap.final_clock_cost);
  std::fprintf(out, "    \"clock_cost_frozen\": %.1f,\n", fz.final_clock_cost);
  std::fprintf(out,
               "    \"backlog_autopilot\": %" PRIu64
               ",\n    \"backlog_frozen\": %" PRIu64
               ",\n    \"steady_backlog_autopilot\": %" PRIu64
               ",\n    \"steady_backlog_frozen\": %" PRIu64 ",\n",
               ap.peak_router_backlog, fz.peak_router_backlog,
               ap.steady_backlog, fz.steady_backlog);
  std::fprintf(out, "    \"epochs_taken\": %" PRIu64 ",\n", ap.epochs_taken);
  std::fprintf(out, "    \"distinct_ops\": %" PRIu64 ",\n", distinct_ops);
  std::fprintf(out, "    \"frozen_epochs\": %" PRIu64 ",\n", fz.epochs_taken);
  std::fprintf(out, "    \"all_ok\": %s\n",
               ap.ok() && fz.ok() ? "true" : "false");
  std::fprintf(out, "  }\n}\n");
  std::fclose(out);
  return Status::Ok();
}

}  // namespace cmom::autopilot
