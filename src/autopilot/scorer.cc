#include "autopilot/scorer.h"

#include <algorithm>

#include "clocks/causal_core.h"
#include "domains/deployment.h"

namespace cmom::autopilot {

Result<DeploymentScore> ScoreConfig(const domains::MomConfig& config,
                                    const domains::TrafficProfile& traffic,
                                    const ScorerOptions& options) {
  auto deployment = domains::Deployment::Create(config);
  if (!deployment.ok()) return deployment.status();
  const domains::Deployment& d = deployment.value();

  DeploymentScore score;
  for (const auto& domain : d.domains()) {
    score.clock_cost += static_cast<double>(clocks::CausalCoreStampCost(
        config.CoreFor(domain.id), domain.size()));
  }

  const std::size_t n = traffic.server_count();
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      const double weight = traffic.at(from, to);
      if (weight <= 0 || from == to) continue;
      ServerId at(static_cast<std::uint16_t>(from));
      const ServerId dest(static_cast<std::uint16_t>(to));
      // Traffic between servers the config no longer (or does not yet)
      // know is invisible to this topology; skip it rather than fail.
      if (std::find(config.servers.begin(), config.servers.end(), at) ==
              config.servers.end() ||
          std::find(config.servers.begin(), config.servers.end(), dest) ==
              config.servers.end()) {
        continue;
      }
      double route_cost = 0;
      double stamp_entries = 0;
      std::size_t hops = 0;
      while (at != dest) {
        const ServerId hop = d.routing().NextHop(at, dest);
        auto link = d.LinkDomainIndex(at, hop);
        if (!link.ok()) return link.status();
        const auto& domain = d.domain(link.value());
        const double hop_entries = static_cast<double>(
            clocks::CausalCoreStampCost(config.CoreFor(domain.id),
                                        domain.size()));
        route_cost += options.cost.per_hop_fixed +
                      options.cost.per_entry * hop_entries;
        stamp_entries += hop_entries;
        at = hop;
        ++hops;
      }
      score.route_cost += weight * route_cost;
      score.stamp_rate += weight * stamp_entries;
      if (hops > 1) {
        score.router_load += weight * static_cast<double>(hops - 1);
      }
    }
  }
  return score;
}

}  // namespace cmom::autopilot
