#include "autopilot/controller.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "control/epoch.h"
#include "control/plan.h"

namespace cmom::autopilot {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kNone: return "none";
    case OpKind::kSplit: return "split";
    case OpKind::kMerge: return "merge";
    case OpKind::kPromote: return "promote";
    case OpKind::kAbsorb: return "absorb";
    case OpKind::kRetire: return "retire";
  }
  return "?";
}

const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kNoCandidate: return "no_candidate";
    case Verdict::kBelowThreshold: return "below_threshold";
    case Verdict::kHysteresis: return "hysteresis";
    case Verdict::kCooldown: return "cooldown";
    case Verdict::kBackoff: return "backoff";
    case Verdict::kDryRun: return "dry_run";
    case Verdict::kTaken: return "taken";
    case Verdict::kAborted: return "aborted";
  }
  return "?";
}

namespace {

template <typename Enum>
std::optional<Enum> ParseByName(const std::string& text, Enum last,
                                const char* (*name)(Enum)) {
  for (std::uint8_t i = 0; i <= static_cast<std::uint8_t>(last); ++i) {
    const Enum value = static_cast<Enum>(i);
    if (text == name(value)) return value;
  }
  return std::nullopt;
}

std::string Sanitize(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

}  // namespace

std::string EncodeDecision(const Decision& d) {
  std::ostringstream out;
  out << "window=" << d.window << '\n'
      << "from_epoch=" << d.from_epoch << '\n'
      << "to_epoch=" << d.to_epoch << '\n'
      << "verdict=" << VerdictName(d.verdict) << '\n'
      << "op=" << OpKindName(d.op) << '\n'
      << "detail=" << Sanitize(d.detail) << '\n'
      << "current_score=" << d.current_score << '\n'
      << "candidate_score=" << d.candidate_score << '\n'
      << "reason=" << Sanitize(d.reason) << '\n';
  for (const CandidateScore& c : d.candidates) {
    out << "cand=" << OpKindName(c.op) << '|' << c.score << '|'
        << (c.valid ? 1 : 0) << '|' << Sanitize(c.detail) << '|'
        << Sanitize(c.rejection) << '\n';
  }
  return out.str();
}

Result<Decision> DecodeDecision(const std::string& text) {
  Decision d;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "window") {
      d.window = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "from_epoch") {
      d.from_epoch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "to_epoch") {
      d.to_epoch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "verdict") {
      auto verdict = ParseByName(value, Verdict::kAborted, VerdictName);
      if (!verdict) return Status::DataLoss("bad verdict: " + value);
      d.verdict = *verdict;
    } else if (key == "op") {
      auto op = ParseByName(value, OpKind::kRetire, OpKindName);
      if (!op) return Status::DataLoss("bad op: " + value);
      d.op = *op;
    } else if (key == "detail") {
      d.detail = value;
    } else if (key == "current_score") {
      d.current_score = std::strtod(value.c_str(), nullptr);
    } else if (key == "candidate_score") {
      d.candidate_score = std::strtod(value.c_str(), nullptr);
    } else if (key == "reason") {
      d.reason = value;
    } else if (key == "cand") {
      CandidateScore c;
      std::istringstream fields(value);
      std::string field;
      if (!std::getline(fields, field, '|')) continue;
      auto op = ParseByName(field, OpKind::kRetire, OpKindName);
      if (!op) return Status::DataLoss("bad candidate op: " + field);
      c.op = *op;
      if (!std::getline(fields, field, '|')) continue;
      c.score = std::strtod(field.c_str(), nullptr);
      if (!std::getline(fields, field, '|')) continue;
      c.valid = field == "1";
      std::getline(fields, c.detail, '|');
      std::getline(fields, c.rejection);
      d.candidates.push_back(std::move(c));
    }
  }
  return d;
}

Autopilot::Autopilot(control::ClusterHost* host, domains::MomConfig config,
                     std::uint64_t epoch, AutopilotOptions options)
    : host_(host),
      config_(std::move(config)),
      epoch_(epoch),
      options_(options),
      profile_(options.decay) {}

void Autopilot::NoteJoinRequest(ServerId id) {
  if (std::find(config_.servers.begin(), config_.servers.end(), id) !=
      config_.servers.end()) {
    return;  // already a member
  }
  if (std::find(pending_joins_.begin(), pending_joins_.end(), id) ==
      pending_joins_.end()) {
    pending_joins_.push_back(id);
  }
}

void Autopilot::NoteLeaveRequest(ServerId id) {
  if (std::find(pending_leaves_.begin(), pending_leaves_.end(), id) ==
      pending_leaves_.end()) {
    pending_leaves_.push_back(id);
  }
}

void Autopilot::SampleCluster() {
  for (ServerId id : config_.servers) {
    mom::AgentServer* server = host_->ServerOf(id);
    if (server == nullptr) continue;  // crashed/stopped: nothing to read
    profile_.Ingest(id, server->OriginatedByDestination());
    const auto flow = server->flow_status();
    const std::uint64_t backlog =
        static_cast<std::uint64_t>(flow.staged_forwards) +
        static_cast<std::uint64_t>(flow.wait_queue);
    peak_router_backlog_ = std::max(peak_router_backlog_, backlog);
  }
}

std::uint16_t Autopilot::NextFreeDomainId() const {
  std::uint16_t next = 0;
  for (const auto& domain : config_.domains) {
    next = std::max<std::uint16_t>(
        next, static_cast<std::uint16_t>(domain.id.value() + 1));
  }
  return next;
}

std::size_t Autopilot::ProfileSpan() const {
  std::uint16_t max_id = 0;
  for (ServerId id : config_.servers) max_id = std::max(max_id, id.value());
  for (ServerId id : pending_joins_) max_id = std::max(max_id, id.value());
  return static_cast<std::size_t>(max_id) + 1;
}

std::vector<Autopilot::Candidate> Autopilot::GenerateCandidates(
    const domains::TrafficProfile& traffic) {
  std::vector<Candidate> out;

  // Membership requests first: they answer an explicit operator signal,
  // not a score, so one of each is proposed per window.
  if (!pending_leaves_.empty()) {
    const ServerId leaver = pending_leaves_.front();
    auto next = control::RemoveServer(config_, leaver);
    if (next.ok()) {
      Candidate c;
      c.op = OpKind::kRetire;
      c.detail = "retire " + to_string(leaver);
      c.config = std::move(next.value());
      c.membership = leaver;
      out.push_back(std::move(c));
    } else {
      // Un-removable (e.g. last member of a domain): drop the request
      // rather than re-propose it forever.
      pending_leaves_.pop_front();
    }
  }
  if (!pending_joins_.empty()) {
    const ServerId joiner = pending_joins_.front();
    // Join the domain the newcomer already talks to most; silent
    // newcomers land in the smallest domain.
    const domains::DomainSpec* target = nullptr;
    double best_affinity = -1;
    for (const auto& domain : config_.domains) {
      double affinity = 0;
      for (ServerId member : domain.members) {
        if (joiner.value() < traffic.server_count() &&
            member.value() < traffic.server_count()) {
          affinity += traffic.Between(joiner.value(), member.value());
        }
      }
      // Tie-break toward the smallest domain (cheapest matrix growth).
      const bool better =
          target == nullptr || affinity > best_affinity ||
          (affinity == best_affinity &&
           domain.members.size() < target->members.size());
      if (better) {
        target = &domain;
        best_affinity = affinity;
      }
    }
    if (target != nullptr) {
      auto next = control::AddServerToDomain(config_, joiner, target->id);
      if (next.ok()) {
        Candidate c;
        c.op = OpKind::kAbsorb;
        c.detail = "absorb " + to_string(joiner) + " into domain " +
                   std::to_string(target->id.value());
        c.config = std::move(next.value());
        c.membership = joiner;
        out.push_back(std::move(c));
      }
    }
  }

  if (profile_.TotalRate() < options_.min_total_rate) return out;

  // Splits: every sufficiently wide domain, partitioned by the
  // Section 7 splitter over the domain-local slice of the profile.
  for (const auto& domain : config_.domains) {
    if (domain.members.size() < options_.split_candidate_min_size) continue;
    domains::TrafficProfile sub(domain.members.size());
    for (std::size_t i = 0; i < domain.members.size(); ++i) {
      for (std::size_t j = 0; j < domain.members.size(); ++j) {
        if (i == j) continue;
        const ServerId a = domain.members[i];
        const ServerId b = domain.members[j];
        if (a.value() >= traffic.server_count() ||
            b.value() >= traffic.server_count()) {
          continue;
        }
        sub.set(i, j, traffic.at(a.value(), b.value()));
      }
    }
    const std::size_t part_cap =
        std::max<std::size_t>(2, (domain.members.size() + 1) / 2);
    auto next = control::SplitDomain(config_, domain.id, sub,
                                     DomainId(NextFreeDomainId()), part_cap);
    if (!next.ok()) continue;
    Candidate c;
    c.op = OpKind::kSplit;
    c.detail = "split domain " + std::to_string(domain.id.value()) +
               " (size " + std::to_string(domain.members.size()) + ")";
    c.config = std::move(next.value());
    out.push_back(std::move(c));
  }

  // Merges: every domain pair with traffic between their exclusive
  // members (merging pure strangers can never pay for the wider clock).
  for (std::size_t i = 0; i < config_.domains.size(); ++i) {
    for (std::size_t j = i + 1; j < config_.domains.size(); ++j) {
      const auto& a = config_.domains[i];
      const auto& b = config_.domains[j];
      double cross = 0;
      for (ServerId u : a.members) {
        for (ServerId v : b.members) {
          if (u == v) continue;
          if (u.value() >= traffic.server_count() ||
              v.value() >= traffic.server_count()) {
            continue;
          }
          cross += traffic.Between(u.value(), v.value());
        }
      }
      if (cross <= 0) continue;
      auto next = control::MergeDomains(config_, a.id, b.id);
      if (!next.ok()) continue;
      Candidate c;
      c.op = OpKind::kMerge;
      c.detail = "merge domain " + std::to_string(b.id.value()) +
                 " into domain " + std::to_string(a.id.value());
      c.config = std::move(next.value());
      out.push_back(std::move(c));
    }
  }

  // Router promotion: take the heaviest cross-domain pair and pull one
  // endpoint into the other's domain, cutting the multi-hop route to a
  // shared-domain hop.
  std::vector<DomainId> domains_of[2];
  double heaviest = 0;
  ServerId hot_u{0}, hot_v{0};
  const auto domain_ids_of = [&](ServerId server) {
    std::vector<DomainId> ids;
    for (const auto& domain : config_.domains) {
      if (std::find(domain.members.begin(), domain.members.end(), server) !=
          domain.members.end()) {
        ids.push_back(domain.id);
      }
    }
    return ids;
  };
  for (ServerId u : config_.servers) {
    for (ServerId v : config_.servers) {
      if (u.value() >= v.value()) continue;
      if (u.value() >= traffic.server_count() ||
          v.value() >= traffic.server_count()) {
        continue;
      }
      const double w = traffic.Between(u.value(), v.value());
      if (w <= heaviest) continue;
      const auto du = domain_ids_of(u);
      const auto dv = domain_ids_of(v);
      bool share = false;
      for (DomainId d : du) {
        share = share || std::find(dv.begin(), dv.end(), d) != dv.end();
      }
      if (share) continue;  // already one hop
      heaviest = w;
      hot_u = u;
      hot_v = v;
      domains_of[0] = du;
      domains_of[1] = dv;
    }
  }
  if (heaviest > 0) {
    const auto propose = [&](ServerId server, DomainId into) {
      auto next = control::PromoteRouter(config_, server, into);
      if (!next.ok()) return;
      Candidate c;
      c.op = OpKind::kPromote;
      c.detail = "promote " + to_string(server) + " into domain " +
                 std::to_string(into.value());
      c.config = std::move(next.value());
      out.push_back(std::move(c));
    };
    if (!domains_of[1].empty()) propose(hot_u, domains_of[1].front());
    if (!domains_of[0].empty()) propose(hot_v, domains_of[0].front());
  }
  return out;
}

Decision Autopilot::Tick() {
  SampleCluster();
  profile_.EndWindow();
  ++window_;

  Decision d;
  d.window = window_;
  d.from_epoch = epoch_;
  d.to_epoch = epoch_;

  if (window_ < backoff_until_window_) {
    d.verdict = Verdict::kBackoff;
    d.reason = "backing off until window " +
               std::to_string(backoff_until_window_) +
               " after an aborted epoch";
    history_.push_back(d);
    Journal(d);
    return d;
  }

  const domains::TrafficProfile traffic = profile_.Snapshot(ProfileSpan());
  auto current = ScoreConfig(config_, traffic, options_.scorer);
  if (!current.ok()) {
    d.verdict = Verdict::kNoCandidate;
    d.reason = "current config unscorable: " + current.status().to_string();
    history_.push_back(d);
    Journal(d);
    return d;
  }
  d.current_score = current.value().Total(options_.scorer);

  // Score every candidate; plan validation (the Section 4.3 acyclicity
  // theorem included) runs HERE, so an invalid candidate is rejected
  // before any store or server is touched.
  std::vector<Candidate> candidates = GenerateCandidates(traffic);
  const Candidate* winner = nullptr;
  double winner_score = 0;
  bool winner_is_membership = false;
  for (Candidate& candidate : candidates) {
    CandidateScore entry;
    entry.op = candidate.op;
    entry.detail = candidate.detail;
    auto plan =
        control::ReconfigPlan::Build(epoch_, config_, candidate.config);
    if (!plan.ok()) {
      entry.valid = false;
      entry.rejection = plan.status().to_string();
      d.candidates.push_back(std::move(entry));
      continue;
    }
    auto score = ScoreConfig(candidate.config, traffic, options_.scorer);
    if (!score.ok()) {
      entry.valid = false;
      entry.rejection = score.status().to_string();
      d.candidates.push_back(std::move(entry));
      continue;
    }
    entry.valid = true;
    entry.score = score.value().Total(options_.scorer);
    const bool membership = candidate.membership.has_value();
    const bool better =
        winner == nullptr ||
        (membership && !winner_is_membership) ||
        (membership == winner_is_membership && entry.score < winner_score);
    if (better) {
      winner = &candidate;
      winner_score = entry.score;
      winner_is_membership = membership;
    }
    d.candidates.push_back(std::move(entry));
  }

  if (winner == nullptr) {
    d.verdict = Verdict::kNoCandidate;
    d.reason = candidates.empty() ? "no candidates generated"
                                  : "no candidate passed validation";
    hysteresis_signature_.clear();
    history_.push_back(d);
    Journal(d);
    return d;
  }

  d.op = winner->op;
  d.detail = winner->detail;
  d.candidate_score = winner_score;

  // Gate: per-op-kind cooldown.
  const auto kind_key = static_cast<std::uint8_t>(winner->op);
  const auto acted = last_acted_window_.find(kind_key);
  if (acted != last_acted_window_.end() &&
      window_ <= acted->second + options_.cooldown_windows) {
    d.verdict = Verdict::kCooldown;
    d.reason = std::string(OpKindName(winner->op)) + " acted at window " +
               std::to_string(acted->second) + "; cooling down";
    history_.push_back(d);
    Journal(d);
    return d;
  }

  if (!winner_is_membership) {
    // Gate: minimum fractional improvement.
    const double improvement =
        d.current_score <= 0
            ? 0
            : (d.current_score - winner_score) / d.current_score;
    if (improvement < options_.min_improvement) {
      d.verdict = Verdict::kBelowThreshold;
      char buffer[96];
      std::snprintf(buffer, sizeof(buffer),
                    "improvement %.3f below threshold %.3f", improvement,
                    options_.min_improvement);
      d.reason = buffer;
      hysteresis_signature_.clear();
      history_.push_back(d);
      Journal(d);
      return d;
    }
    // Gate: hysteresis -- the same candidate must win two windows in a
    // row before the controller trusts the trend.
    const std::string signature =
        std::string(OpKindName(winner->op)) + ":" + winner->detail;
    if (signature != hysteresis_signature_) {
      hysteresis_signature_ = signature;
      d.verdict = Verdict::kHysteresis;
      d.reason = "first window this candidate wins; confirming next window";
      history_.push_back(d);
      Journal(d);
      return d;
    }
  }

  if (options_.dry_run) {
    d.verdict = Verdict::kDryRun;
    d.reason = "dry-run mode";
    history_.push_back(d);
    Journal(d);
    return d;
  }

  // Act.  The guardrail wraps Reconfigure's two failure shapes:
  // propose/quiesce failures roll back inside Reconfigure itself, but a
  // cutover-phase failure leaves stores straddling the epoch boundary
  // with servers stopped, so any failure is followed by Recover() --
  // which rolls forward iff some store durably cut over (the drain was
  // proven), else rolls back, and restarts whatever is down.  The
  // durable epoch records then tell the controller which way it went.
  auto plan = control::ReconfigPlan::Build(epoch_, config_, winner->config);
  if (!plan.ok()) {
    d.verdict = Verdict::kNoCandidate;
    d.reason = plan.status().to_string();
    history_.push_back(d);
    Journal(d);
    return d;
  }
  control::Coordinator coordinator(
      host_, control::CoordinatorOptions{options_.quiesce_timeout_ms});
  const Status status = coordinator.Reconfigure(plan.value());
  if (!status.ok()) {
    const Status recovered = coordinator.Recover();
    bool went_forward = false;
    if (recovered.ok()) {
      for (ServerId id : plan.value().AllServers()) {
        mom::Store* store = host_->StoreOf(id);
        if (store == nullptr) continue;
        auto now = control::CurrentEpochOf(*store);
        if (now.ok() && now.value() == plan.value().to_epoch) {
          went_forward = true;
          break;
        }
      }
    }
    if (went_forward) {
      // The epoch committed despite the error (failure between cutover
      // and resume): the durable records are the truth, not the error
      // code, so adopt the new configuration.
      AdoptEpoch(*winner, plan.value().to_epoch);
      d.to_epoch = epoch_;
      d.verdict = Verdict::kTaken;
      d.reason = "recovered forward after: " + status.to_string();
      history_.push_back(d);
      Journal(d);
      return d;
    }
    ++aborts_;
    backoff_until_window_ = window_ + 1 + options_.backoff_windows;
    hysteresis_signature_.clear();
    d.verdict = Verdict::kAborted;
    d.reason = recovered.ok() ? status.to_string()
                              : status.to_string() +
                                    "; recover: " + recovered.to_string();
    history_.push_back(d);
    Journal(d);
    return d;
  }

  AdoptEpoch(*winner, plan.value().to_epoch);
  d.to_epoch = epoch_;
  d.verdict = Verdict::kTaken;
  history_.push_back(d);
  Journal(d);
  return d;
}

void Autopilot::AdoptEpoch(const Candidate& winner, std::uint64_t to_epoch) {
  epoch_ = to_epoch;
  config_ = winner.config;
  ++epochs_taken_;
  const auto kind_key = static_cast<std::uint8_t>(winner.op);
  ++ops_taken_[kind_key];
  last_acted_window_[kind_key] = window_;
  hysteresis_signature_.clear();
  if (winner.membership.has_value()) {
    const ServerId member = *winner.membership;
    if (winner.op == OpKind::kAbsorb) {
      if (!pending_joins_.empty() && pending_joins_.front() == member) {
        pending_joins_.pop_front();
      }
    } else if (winner.op == OpKind::kRetire) {
      if (!pending_leaves_.empty() && pending_leaves_.front() == member) {
        pending_leaves_.pop_front();
      }
      profile_.Forget(member);
    }
  }
}

std::uint64_t Autopilot::ops_taken(OpKind kind) const {
  const auto it = ops_taken_.find(static_cast<std::uint8_t>(kind));
  return it == ops_taken_.end() ? 0 : it->second;
}

void Autopilot::Journal(const Decision& decision) {
  if (!options_.journal) return;
  // Best effort: the first live server carries the journal.  A window
  // with every server down simply goes unjournaled; the in-memory
  // history is the authoritative record for the process's lifetime.
  for (ServerId id : config_.servers) {
    mom::AgentServer* server = host_->ServerOf(id);
    if (server == nullptr) continue;
    char key[32];
    std::snprintf(key, sizeof(key), "autopilot/%016" PRIx64, journal_seq_);
    const std::string text = EncodeDecision(decision);
    Bytes value(text.begin(), text.end());
    if (server->ApplyControlRecord(key, std::move(value)).ok()) {
      ++journal_seq_;
    }
    return;
  }
}

}  // namespace cmom::autopilot
