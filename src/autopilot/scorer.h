// Deployment scoring: how expensive is this topology under this
// traffic, right now?
//
// Extends the Section 6.2 analytic model the offline splitter uses
// with the two gauges the autopilot budgets against:
//
//   route_cost   traffic-weighted per-message cost over routed paths,
//                where each hop is priced with the *core-aware* stamp
//                cost of the domain it crosses (s^2 matrix, s reduced,
//                O(1) hybrid -- clocks::CausalCoreStampCost), i.e. the
//                same model CostEstimator::Estimate applies;
//   router_load  traffic-weighted count of extra hops -- every unit is
//                a message some router-server must re-stamp, stage and
//                forward, so this tracks the router backlog pressure a
//                decomposition creates;
//   clock_cost   sum over domains of the per-message stamp cost each
//                member pays (the "sum s^2" budget of the ROADMAP item,
//                generalized per core): the standing price of domain
//                width, independent of traffic.
//
// total() mixes the three with the option weights; the policy engine
// compares totals between the live config and candidate configs over
// the same LiveTrafficProfile snapshot.
#pragma once

#include "common/status.h"
#include "domains/config.h"
#include "domains/splitter.h"

namespace cmom::autopilot {

struct ScorerOptions {
  domains::CostParams cost;       // per_hop_fixed / per_entry
  double router_load_weight = 0.5;  // cost units per routed extra hop
  double clock_cost_weight = 0.01;  // cost units per standing stamp entry
};

struct DeploymentScore {
  double route_cost = 0;
  double router_load = 0;
  double clock_cost = 0;
  // Unweighted stamp entries shipped per unit time: sum over routed
  // traffic of each hop's core stamp cost (s^2 entries for a matrix
  // domain) times the link's rate.  This is the operational "sum s^2
  // clock cost" the reports track -- what the wire actually carries --
  // as opposed to clock_cost, the standing width of the clocks.
  double stamp_rate = 0;

  [[nodiscard]] double Total(const ScorerOptions& options) const {
    return route_cost + options.router_load_weight * router_load +
           options.clock_cost_weight * clock_cost;
  }
};

// Scores `config` under `traffic`.  Fails when the config does not
// validate (Deployment::Create) -- an invalid candidate can never win.
[[nodiscard]] Result<DeploymentScore> ScoreConfig(
    const domains::MomConfig& config, const domains::TrafficProfile& traffic,
    const ScorerOptions& options = {});

}  // namespace cmom::autopilot
