// Deterministic discrete-event simulator.
//
// The paper's testbed was ten Pentium-II hosts on 100 Mbit Ethernet; we
// replace wall-clock time with simulated time so that (a) experiments
// with hundreds of servers run on one machine, exactly like the paper's
// single-host series, and (b) every run is bit-for-bit reproducible.
// Events at equal timestamps fire in scheduling order (a monotonically
// increasing tie-break sequence), which is what makes the whole stack
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cmom::sim {

// Simulated time in nanoseconds since the start of the run.
using Time = std::uint64_t;
using Duration = std::uint64_t;

constexpr Duration kMicrosecond = 1000;
constexpr Duration kMillisecond = 1000 * kMicrosecond;
constexpr Duration kSecond = 1000 * kMillisecond;

[[nodiscard]] constexpr double ToMilliseconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] bool idle() const { return events_.empty(); }
  [[nodiscard]] std::size_t pending() const { return events_.size(); }

  // Schedules `callback` at absolute time `t` (>= now).
  void ScheduleAt(Time t, Callback callback);
  // Schedules `callback` `delay` after the current time.
  void ScheduleAfter(Duration delay, Callback callback) {
    ScheduleAt(now_ + delay, std::move(callback));
  }

  // Runs the single earliest event; returns false when none remain.
  bool Step();

  // Runs events until the queue drains; returns the number executed.
  std::size_t RunToCompletion();

  // Runs events with time <= deadline; leaves later events queued.
  std::size_t RunUntil(Time deadline);

 private:
  struct Event {
    Time time;
    std::uint64_t seq;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> events_;
};

}  // namespace cmom::sim
