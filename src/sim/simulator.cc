#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace cmom::sim {

void Simulator::ScheduleAt(Time t, Callback callback) {
  assert(t >= now_ && "cannot schedule into the past");
  events_.push(Event{t, next_seq_++, std::move(callback)});
}

bool Simulator::Step() {
  if (events_.empty()) return false;
  // priority_queue::top returns const&; the callback must be moved out
  // before pop, so copy the metadata and steal the functor.
  Event event = std::move(const_cast<Event&>(events_.top()));
  events_.pop();
  now_ = event.time;
  event.callback();
  return true;
}

std::size_t Simulator::RunToCompletion() {
  std::size_t executed = 0;
  while (Step()) ++executed;
  return executed;
}

std::size_t Simulator::RunUntil(Time deadline) {
  std::size_t executed = 0;
  while (!events_.empty() && events_.top().time <= deadline) {
    Step();
    ++executed;
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace cmom::sim
