#include "net/runtime.h"

#include <bit>
#include <chrono>
#include <utility>
#include <vector>

namespace cmom::net {

namespace {
std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t lanes,
                                       std::size_t ring_capacity) {
  const std::size_t lane_count = lanes == 0 ? 1 : lanes;
  const std::size_t capacity =
      std::bit_ceil(ring_capacity < 2 ? std::size_t{2} : ring_capacity);
  lanes_.reserve(lane_count);
  for (std::size_t i = 0; i < lane_count; ++i) {
    auto lane = std::make_unique<Lane>();
    lane->capacity = capacity;
    lane->mask = capacity - 1;
    lane->slots = std::make_unique<Slot[]>(capacity);
    for (std::size_t s = 0; s < capacity; ++s) {
      lane->slots[s].seq.store(s, std::memory_order_relaxed);
    }
    lane->thread = std::thread([this, raw = lane.get()] { LaneLoop(*raw); });
    lanes_.push_back(std::move(lane));
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  stopping_.store(true, std::memory_order_seq_cst);
  for (auto& lane : lanes_) WakeLane(*lane);
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

bool ThreadPoolExecutor::TryPush(Lane& lane, std::function<void()>& fn,
                                 std::uint64_t enqueue_ns) {
  std::size_t pos = lane.tail.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = lane.slots[pos & lane.mask];
    const std::size_t seq = slot.seq.load(std::memory_order_acquire);
    const auto dif =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (dif == 0) {
      if (lane.tail.compare_exchange_weak(pos, pos + 1,
                                          std::memory_order_relaxed)) {
        slot.fn = std::move(fn);
        slot.enqueue_ns = enqueue_ns;
        slot.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS updated `pos`; retry against the refreshed position.
    } else if (dif < 0) {
      // The slot one lap back has not been recycled: ring is full.
      return false;
    } else {
      pos = lane.tail.load(std::memory_order_relaxed);
    }
  }
}

bool ThreadPoolExecutor::TryPop(Lane& lane, std::function<void()>& fn,
                                std::uint64_t& enqueue_ns) {
  const std::size_t pos = lane.head.load(std::memory_order_relaxed);
  Slot& slot = lane.slots[pos & lane.mask];
  const std::size_t seq = slot.seq.load(std::memory_order_acquire);
  if (seq != pos + 1) return false;  // next task not published yet
  fn = std::move(slot.fn);
  slot.fn = nullptr;  // free captured state before recycling the slot
  enqueue_ns = slot.enqueue_ns;
  slot.seq.store(pos + lane.capacity, std::memory_order_release);
  lane.head.store(pos + 1, std::memory_order_release);
  return true;
}

bool ThreadPoolExecutor::RefillFromOverflow(Lane& lane) {
  if (lane.overflow_count.load(std::memory_order_acquire) == 0) return false;
  std::lock_guard lock(lane.overflow_mutex);
  bool moved = false;
  while (!lane.overflow.empty()) {
    OverflowItem& item = lane.overflow.front();
    if (!TryPush(lane, item.fn, item.enqueue_ns)) break;  // ring full again
    lane.overflow.pop_front();
    lane.overflow_count.fetch_sub(1, std::memory_order_release);
    moved = true;
  }
  return moved;
}

void ThreadPoolExecutor::WakeLane(Lane& lane) {
  lane.wake_epoch.fetch_add(1, std::memory_order_acq_rel);
  lane.wake_epoch.notify_one();
}

void ThreadPoolExecutor::Post(std::size_t lane_index,
                              std::function<void()> fn) {
  Lane& lane = *lanes_[lane_index % lanes_.size()];
  if (stopping_.load(std::memory_order_acquire)) return;
  const std::uint64_t now = MonotonicNowNs();
  // Once the overflow queue is non-empty every post must join it, or a
  // later task could slip into the ring ahead of an earlier spilled one
  // and break lane FIFO order.
  bool in_ring = lane.overflow_count.load(std::memory_order_acquire) == 0 &&
                 TryPush(lane, fn, now);
  if (!in_ring) {
    std::lock_guard lock(lane.overflow_mutex);
    lane.overflow.push_back({std::move(fn), now});
    lane.overflow_count.fetch_add(1, std::memory_order_release);
    lane.overflow_posts.fetch_add(1, std::memory_order_relaxed);
  }
  lane.posts.fetch_add(1, std::memory_order_relaxed);
  // Publish-then-check-parked; pairs with the consumer's
  // advertise-then-recheck (both sides fence seq_cst) so either we see
  // `parked` or the consumer sees our task -- never neither.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (lane.parked.load(std::memory_order_relaxed)) WakeLane(lane);
}

std::size_t ThreadPoolExecutor::PendingCount(std::size_t lane_index) const {
  const Lane& lane = *lanes_[lane_index % lanes_.size()];
  const std::size_t tail = lane.tail.load(std::memory_order_acquire);
  const std::size_t head = lane.head.load(std::memory_order_acquire);
  const std::size_t ring = tail >= head ? tail - head : 0;
  return ring + lane.overflow_count.load(std::memory_order_acquire);
}

Executor::LaneStats ThreadPoolExecutor::GetLaneStats(
    std::size_t lane_index) const {
  const Lane& lane = *lanes_[lane_index % lanes_.size()];
  LaneStats out;
  out.posts = lane.posts.load(std::memory_order_relaxed);
  out.overflow_posts = lane.overflow_posts.load(std::memory_order_relaxed);
  out.parks = lane.parks.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(lane.stats_mutex);
    out.depth = lane.depth_hist;
    out.stall_ns = lane.stall_hist;
  }
  return out;
}

void ThreadPoolExecutor::LaneLoop(Lane& lane) {
  std::function<void()> task;
  std::uint64_t enqueue_ns = 0;
  while (true) {
    if (stopping_.load(std::memory_order_acquire)) return;  // discard queued
    if (TryPop(lane, task, enqueue_ns)) {
      const std::uint64_t now = MonotonicNowNs();
      {
        // Consumer-only histograms; the lock is uncontended except
        // against a stats snapshot.
        std::lock_guard lock(lane.stats_mutex);
        // Depth counts the popped task itself plus everything behind it.
        const std::size_t tail = lane.tail.load(std::memory_order_relaxed);
        const std::size_t head = lane.head.load(std::memory_order_relaxed);
        lane.depth_hist.Record(1 + (tail >= head ? tail - head : 0));
        lane.stall_hist.Record(now >= enqueue_ns ? now - enqueue_ns : 0);
      }
      task();
      task = nullptr;
      continue;
    }
    if (RefillFromOverflow(lane)) continue;
    // Park: advertise, fence, re-check, then futex-wait on the epoch.
    const std::uint32_t epoch =
        lane.wake_epoch.load(std::memory_order_acquire);
    lane.parked.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const bool empty =
        lane.tail.load(std::memory_order_acquire) ==
            lane.head.load(std::memory_order_relaxed) &&
        lane.overflow_count.load(std::memory_order_acquire) == 0;
    if (!empty || stopping_.load(std::memory_order_acquire)) {
      lane.parked.store(false, std::memory_order_relaxed);
      continue;
    }
    lane.parks.fetch_add(1, std::memory_order_relaxed);
    lane.wake_epoch.wait(epoch, std::memory_order_acquire);
    lane.parked.store(false, std::memory_order_relaxed);
  }
}

ThreadRuntime::ThreadRuntime() : timer_thread_([this] { TimerLoop(); }) {}

std::unique_ptr<Executor> ThreadRuntime::MakeExecutor(std::size_t lanes) {
  return std::make_unique<ThreadPoolExecutor>(lanes);
}

ThreadRuntime::~ThreadRuntime() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  timer_thread_.join();
}

std::uint64_t ThreadRuntime::NowNs() { return MonotonicNowNs(); }

void ThreadRuntime::After(std::uint64_t delay_ns, std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    deadlines_.emplace(MonotonicNowNs() + delay_ns, std::move(fn));
  }
  wake_.notify_all();
}

void ThreadRuntime::TimerLoop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    const std::uint64_t now = MonotonicNowNs();
    std::vector<std::function<void()>> due;
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      due.push_back(std::move(deadlines_.begin()->second));
      deadlines_.erase(deadlines_.begin());
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& fn : due) fn();
      lock.lock();
      continue;
    }
    if (deadlines_.empty()) {
      wake_.wait(lock);
    } else {
      const auto next = std::chrono::nanoseconds(deadlines_.begin()->first);
      wake_.wait_until(
          lock, std::chrono::steady_clock::time_point(
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(next)));
    }
  }
}

}  // namespace cmom::net
