#include "net/runtime.h"

#include <chrono>
#include <utility>
#include <vector>

namespace cmom::net {

namespace {
std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadRuntime::ThreadRuntime() : timer_thread_([this] { TimerLoop(); }) {}

ThreadRuntime::~ThreadRuntime() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  timer_thread_.join();
}

std::uint64_t ThreadRuntime::NowNs() { return MonotonicNowNs(); }

void ThreadRuntime::After(std::uint64_t delay_ns, std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    deadlines_.emplace(MonotonicNowNs() + delay_ns, std::move(fn));
  }
  wake_.notify_all();
}

void ThreadRuntime::TimerLoop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    const std::uint64_t now = MonotonicNowNs();
    std::vector<std::function<void()>> due;
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      due.push_back(std::move(deadlines_.begin()->second));
      deadlines_.erase(deadlines_.begin());
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& fn : due) fn();
      lock.lock();
      continue;
    }
    if (deadlines_.empty()) {
      wake_.wait(lock);
    } else {
      const auto next = std::chrono::nanoseconds(deadlines_.begin()->first);
      wake_.wait_until(
          lock, std::chrono::steady_clock::time_point(
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(next)));
    }
  }
}

}  // namespace cmom::net
