#include "net/runtime.h"

#include <chrono>
#include <utility>
#include <vector>

namespace cmom::net {

namespace {
std::uint64_t MonotonicNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ThreadPoolExecutor::ThreadPoolExecutor(std::size_t lanes) {
  lanes_.reserve(lanes == 0 ? 1 : lanes);
  for (std::size_t i = 0; i < (lanes == 0 ? 1 : lanes); ++i) {
    auto lane = std::make_unique<Lane>();
    lane->thread = std::thread([this, raw = lane.get()] { LaneLoop(*raw); });
    lanes_.push_back(std::move(lane));
  }
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  for (auto& lane : lanes_) {
    {
      std::lock_guard lock(lane->mutex);
      lane->stopping = true;
    }
    lane->ready.notify_all();
  }
  for (auto& lane : lanes_) {
    if (lane->thread.joinable()) lane->thread.join();
  }
}

void ThreadPoolExecutor::Post(std::size_t lane_index,
                              std::function<void()> fn) {
  Lane& lane = *lanes_[lane_index % lanes_.size()];
  {
    std::lock_guard lock(lane.mutex);
    if (lane.stopping) return;
    lane.tasks.push_back(std::move(fn));
  }
  lane.ready.notify_one();
}

std::size_t ThreadPoolExecutor::PendingCount(std::size_t lane_index) const {
  const Lane& lane = *lanes_[lane_index % lanes_.size()];
  std::lock_guard lock(lane.mutex);
  return lane.tasks.size();
}

void ThreadPoolExecutor::LaneLoop(Lane& lane) {
  std::unique_lock lock(lane.mutex);
  while (true) {
    lane.ready.wait(lock, [&] { return lane.stopping || !lane.tasks.empty(); });
    if (lane.stopping) return;  // queued tasks are discarded by contract
    std::function<void()> task = std::move(lane.tasks.front());
    lane.tasks.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

ThreadRuntime::ThreadRuntime() : timer_thread_([this] { TimerLoop(); }) {}

std::unique_ptr<Executor> ThreadRuntime::MakeExecutor(std::size_t lanes) {
  return std::make_unique<ThreadPoolExecutor>(lanes);
}

ThreadRuntime::~ThreadRuntime() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  timer_thread_.join();
}

std::uint64_t ThreadRuntime::NowNs() { return MonotonicNowNs(); }

void ThreadRuntime::After(std::uint64_t delay_ns, std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    deadlines_.emplace(MonotonicNowNs() + delay_ns, std::move(fn));
  }
  wake_.notify_all();
}

void ThreadRuntime::TimerLoop() {
  std::unique_lock lock(mutex_);
  while (!stopping_) {
    const std::uint64_t now = MonotonicNowNs();
    std::vector<std::function<void()>> due;
    while (!deadlines_.empty() && deadlines_.begin()->first <= now) {
      due.push_back(std::move(deadlines_.begin()->second));
      deadlines_.erase(deadlines_.begin());
    }
    if (!due.empty()) {
      lock.unlock();
      for (auto& fn : due) fn();
      lock.lock();
      continue;
    }
    if (deadlines_.empty()) {
      wake_.wait(lock);
    } else {
      const auto next = std::chrono::nanoseconds(deadlines_.begin()->first);
      wake_.wait_until(
          lock, std::chrono::steady_clock::time_point(
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(next)));
    }
  }
}

}  // namespace cmom::net
