#include "net/inproc_network.h"

#include <chrono>
#include <utility>
#include <vector>

namespace cmom::net {

namespace {
// Frames drained per consumer lock round-trip.  Bounds handler latency
// for late frames while amortizing the lock/notify cycle under load.
constexpr std::size_t kInprocDrainBatch = 64;
}  // namespace

class InprocNetwork::InprocEndpoint final : public Endpoint {
 public:
  InprocEndpoint(InprocNetwork& network, ServerId self, Inbox& inbox)
      : network_(&network), self_(self), inbox_(&inbox) {}

  [[nodiscard]] ServerId self() const override { return self_; }

  Status Send(ServerId to, Bytes frame) override {
    return network_->Push(self_, to, std::move(frame));
  }

  void SetReceiveHandler(ReceiveHandler handler) override {
    std::unique_lock lock(inbox_->mutex);
    inbox_->handler = std::move(handler);
    // Swap barrier (see Endpoint): the consumer dispatches its drained
    // batch unlocked with a copy of the old handler; wait that batch
    // out so the caller can safely destroy what the old handler
    // captured.
    inbox_->ready.wait(lock, [&] { return !inbox_->busy; });
  }

 private:
  InprocNetwork* network_;
  ServerId self_;
  Inbox* inbox_;
};

InprocNetwork::~InprocNetwork() {
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    {
      std::lock_guard lock(inbox->mutex);
      inbox->stopping = true;
    }
    inbox->ready.notify_all();
  }
  for (auto& [id, inbox] : inboxes_) {
    (void)id;
    if (inbox->consumer.joinable()) inbox->consumer.join();
  }
}

Result<std::unique_ptr<Endpoint>> InprocNetwork::CreateEndpoint(ServerId id) {
  std::lock_guard registry_lock(registry_mutex_);
  auto [it, inserted] = inboxes_.try_emplace(id, std::make_unique<Inbox>());
  if (!inserted) {
    return Status::InvalidArgument("endpoint already exists: " + to_string(id));
  }
  Inbox& inbox = *it->second;
  inbox.consumer = std::thread([this, &inbox] { ConsumeLoop(inbox); });
  return {std::make_unique<InprocEndpoint>(*this, id, inbox)};
}

Status InprocNetwork::Push(ServerId from, ServerId to, Bytes frame) {
  Inbox* inbox = nullptr;
  {
    std::lock_guard registry_lock(registry_mutex_);
    auto it = inboxes_.find(to);
    if (it == inboxes_.end()) {
      return Status::NotFound("no endpoint for " + to_string(to));
    }
    inbox = it->second.get();
  }
  {
    std::lock_guard lock(inbox->mutex);
    inbox->frames.emplace_back(from, std::move(frame));
  }
  inbox->ready.notify_one();
  return Status::Ok();
}

void InprocNetwork::ConsumeLoop(Inbox& inbox) {
  // Reused drain buffer: frames move out in one lock round-trip and
  // dispatch unlocked, instead of a lock+notify cycle per frame; the
  // buffer's capacity survives across wakeups.
  std::vector<std::pair<ServerId, Bytes>> batch;
  std::unique_lock lock(inbox.mutex);
  while (true) {
    inbox.ready.wait(lock, [&] {
      return inbox.stopping || (!inbox.frames.empty() && inbox.handler);
    });
    if (inbox.stopping) return;
    batch.clear();
    while (!inbox.frames.empty() && batch.size() < kInprocDrainBatch) {
      batch.push_back(std::move(inbox.frames.front()));
      inbox.frames.pop_front();
    }
    inbox.busy = true;
    ReceiveHandler handler = inbox.handler;  // copy under lock
    lock.unlock();
    for (auto& [from, frame] : batch) handler(from, std::move(frame));
    lock.lock();
    inbox.busy = false;
    inbox.ready.notify_all();  // WaitQuiescent may be watching
  }
}

void InprocNetwork::WaitQuiescent() {
  // Two consecutive passes must observe every inbox empty and idle;
  // a single pass could race with a frame in flight between inboxes.
  for (int stable = 0; stable < 2;) {
    bool all_idle = true;
    {
      std::lock_guard registry_lock(registry_mutex_);
      for (auto& [id, inbox] : inboxes_) {
        (void)id;
        std::unique_lock lock(inbox->mutex);
        if (!inbox->frames.empty() || inbox->busy) {
          all_idle = false;
          break;
        }
      }
    }
    if (all_idle) {
      ++stable;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else {
      stable = 0;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

}  // namespace cmom::net
