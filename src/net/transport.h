// Transport abstraction between agent servers.
//
// The AAA Message Bus assumes reliable FIFO point-to-point links between
// servers ("the Channel ensures reliable message delivery", Section 3);
// on top of that the Channel layers its own transactional ACK protocol
// so messages survive server crashes.  Three interchangeable transports
// implement this interface:
//
//   SimNetwork    - discrete-event simulation with a calibrated cost
//                   model and optional fault injection (frame loss,
//                   duplication, jitter); used by the figure benches.
//   InprocNetwork - real threads and queues, wall-clock time; used by
//                   examples and wall-clock cross-checks.
//   TcpNetwork    - real TCP sockets on loopback with length-prefixed
//                   frames; the closest analogue of the paper's
//                   multi-host deployment.
//
// Frames are opaque byte vectors; all message structure (stamps,
// routing headers, ACKs) is encoded by the MOM layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::net {

// Invoked when a frame arrives: (sender, frame bytes).
using ReceiveHandler = std::function<void(ServerId, Bytes)>;

// Health counters of one endpoint's outbound side.  Only transports
// with connection supervision (TcpNetwork) fill these in; the default
// implementation returns zeros.
struct TransportStats {
  std::uint64_t connects = 0;           // successful connection attempts
  std::uint64_t reconnects = 0;         // connects after a prior success
  std::uint64_t connect_failures = 0;   // failed connection attempts
  std::uint64_t forced_disconnects = 0; // Disconnect() fault injections
  std::uint64_t frames_sent = 0;        // fully written to a socket
  std::uint64_t frames_buffered = 0;    // accepted while link was down
  std::uint64_t frames_dropped = 0;     // rejected: outbox overflow
  std::uint64_t bytes_retransmitted = 0;  // rewritten after a reconnect
  std::uint64_t partial_writes = 0;     // flushes cut short by EAGAIN
  std::uint64_t outbox_frames = 0;      // currently queued (gauge)
  std::uint64_t outbox_bytes = 0;       // currently queued (gauge)
  std::uint64_t current_backoff_ns = 0; // max over peers in backoff
};

// One server's attachment point to the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  [[nodiscard]] virtual ServerId self() const = 0;

  // Queues `frame` for delivery to `to`.  Send is asynchronous and may
  // outlive the call; delivery is FIFO per (from, to) pair unless fault
  // injection is configured.  A supervised transport accepts frames
  // while the link is down (bounded buffering) and returns Overloaded
  // on overflow -- the link is alive but saturated, so callers should
  // back off and retry rather than declare the peer dead; unsupervised
  // transports fail fast with Unavailable when `to` is unreachable.
  virtual Status Send(ServerId to, Bytes frame) = 0;

  // Installs the receive callback.  Must be set before any peer sends.
  // The handler runs on the transport's delivery context (the simulator
  // event loop, or the endpoint's receive thread).
  //
  // Swap barrier: threaded transports do not return while a dispatch
  // of the PREVIOUS handler is still running, so once the swap comes
  // back nothing the old handler referenced can be reached again --
  // the caller may destroy it (the server-crash teardown path).  The
  // caller must therefore not hold any lock the old handler might be
  // waiting on.  Never call this from inside a receive handler.
  virtual void SetReceiveHandler(ReceiveHandler handler) = 0;

  // Forcibly severs any live outbound connection to `peer` (fault
  // injection).  A supervised transport keeps the buffered frames and
  // reconnects; transports without connections treat this as a no-op.
  virtual void Disconnect(ServerId peer) { (void)peer; }

  // Outbound health counters; zeros for transports without supervision.
  [[nodiscard]] virtual TransportStats stats() const { return {}; }
};

// Factory for endpoints of one transport instance.
class Network {
 public:
  virtual ~Network() = default;

  // Creates the endpoint for server `id`.  Each id may be created once.
  [[nodiscard]] virtual Result<std::unique_ptr<Endpoint>> CreateEndpoint(
      ServerId id) = 0;
};

}  // namespace cmom::net
