// Transport abstraction between agent servers.
//
// The AAA Message Bus assumes reliable FIFO point-to-point links between
// servers ("the Channel ensures reliable message delivery", Section 3);
// on top of that the Channel layers its own transactional ACK protocol
// so messages survive server crashes.  Three interchangeable transports
// implement this interface:
//
//   SimNetwork    - discrete-event simulation with a calibrated cost
//                   model and optional fault injection (frame loss,
//                   duplication, jitter); used by the figure benches.
//   InprocNetwork - real threads and queues, wall-clock time; used by
//                   examples and wall-clock cross-checks.
//   TcpNetwork    - real TCP sockets on loopback with length-prefixed
//                   frames; the closest analogue of the paper's
//                   multi-host deployment.
//
// Frames are opaque byte vectors; all message structure (stamps,
// routing headers, ACKs) is encoded by the MOM layer.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::net {

// Invoked when a frame arrives: (sender, frame bytes).
using ReceiveHandler = std::function<void(ServerId, Bytes)>;

// One server's attachment point to the network.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  [[nodiscard]] virtual ServerId self() const = 0;

  // Queues `frame` for delivery to `to`.  Send is asynchronous and may
  // outlive the call; delivery is FIFO per (from, to) pair unless fault
  // injection is configured.  Fails fast when `to` is unknown.
  virtual Status Send(ServerId to, Bytes frame) = 0;

  // Installs the receive callback.  Must be set before any peer sends.
  // The handler runs on the transport's delivery context (the simulator
  // event loop, or the endpoint's receive thread).
  virtual void SetReceiveHandler(ReceiveHandler handler) = 0;
};

// Factory for endpoints of one transport instance.
class Network {
 public:
  virtual ~Network() = default;

  // Creates the endpoint for server `id`.  Each id may be created once.
  [[nodiscard]] virtual Result<std::unique_ptr<Endpoint>> CreateEndpoint(
      ServerId id) = 0;
};

}  // namespace cmom::net
