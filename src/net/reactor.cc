#include "net/reactor.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/log.h"

namespace cmom::net {

namespace {

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr int kMaxEvents = 256;
constexpr int kIdleTimeoutMs = 100;

}  // namespace

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

struct Reactor::Shard {
  std::size_t index = 0;
  ScopedFd epoll_fd;
  ScopedFd wake_fd;  // eventfd

  std::mutex mutex;
  bool stopping = false;
  std::uint64_t next_token = 1;
  // Callbacks are held by shared_ptr so a dispatch can run one without
  // the shard lock while a concurrent (posted) removal drops the map
  // reference.
  std::unordered_map<std::uint64_t, std::shared_ptr<EventFn>> handlers;
  std::unordered_map<std::uint64_t, int> fds;  // token -> fd (for DEL)
  std::vector<Task> tasks;
  std::multimap<std::uint64_t, Task> timers;  // deadline ns -> task

  // Relaxed counters: written by the shard thread (and Register), read
  // by Stats() from anywhere.
  std::atomic<std::uint64_t> polls{0};
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint64_t> tasks_run{0};
  std::atomic<std::uint64_t> timers_run{0};
  std::atomic<std::uint64_t> wakeups{0};
  std::atomic<std::uint64_t> fd_count{0};

  std::thread thread;

  void Wake() {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd.get(), &one, sizeof(one));
  }
};

Reactor::Reactor(std::size_t shards) {
  const std::size_t count = std::max<std::size_t>(1, shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->epoll_fd = ScopedFd(::epoll_create1(EPOLL_CLOEXEC));
    shard->wake_fd = ScopedFd(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK));
    if (!shard->epoll_fd.valid() || !shard->wake_fd.valid()) {
      CMOM_LOG(kError) << "reactor shard setup: " << std::strerror(errno);
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = 0;  // token 0 = the wake eventfd
    ::epoll_ctl(shard->epoll_fd.get(), EPOLL_CTL_ADD, shard->wake_fd.get(),
                &ev);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    shard->thread = std::thread([raw] { Loop(raw); });
  }
}

Reactor::~Reactor() { Stop(); }

void Reactor::Stop() {
  for (auto& shard : shards_) {
    {
      std::lock_guard lock(shard->mutex);
      shard->stopping = true;
    }
    shard->Wake();
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
  // Destroy leftover queue state here, on the caller's thread: queued
  // tasks and timers (e.g. reconnect backoff retries) capture
  // shared_ptrs to endpoint state that in turn holds this reactor, so
  // leaving them in place would leak the whole cycle.
  for (auto& shard : shards_) {
    std::vector<Task> tasks;
    std::multimap<std::uint64_t, Task> timers;
    std::unordered_map<std::uint64_t, std::shared_ptr<EventFn>> handlers;
    {
      std::lock_guard lock(shard->mutex);
      tasks.swap(shard->tasks);
      timers.swap(shard->timers);
      handlers.swap(shard->handlers);
      shard->fds.clear();
    }
  }
}

std::size_t Reactor::shard_count() const { return shards_.size(); }

std::size_t Reactor::PickShard() const {
  std::size_t best = 0;
  std::uint64_t best_count = shards_[0]->fd_count.load(std::memory_order_relaxed);
  for (std::size_t i = 1; i < shards_.size(); ++i) {
    const std::uint64_t count =
        shards_[i]->fd_count.load(std::memory_order_relaxed);
    if (count < best_count) {
      best = i;
      best_count = count;
    }
  }
  return best;
}

Reactor::Shard& Reactor::ShardOf(std::uint64_t token) const {
  return *shards_[token >> kTokenShardShift];
}

std::uint64_t Reactor::Register(std::size_t shard_index, int fd, EventFn fn) {
  Shard& shard = *shards_[shard_index];
  std::uint64_t token;
  {
    std::lock_guard lock(shard.mutex);
    token = (static_cast<std::uint64_t>(shard_index) << kTokenShardShift) |
            shard.next_token++;
    shard.handlers.emplace(token, std::make_shared<EventFn>(std::move(fn)));
    shard.fds.emplace(token, fd);
    shard.fd_count.fetch_add(1, std::memory_order_relaxed);
  }
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
  ev.data.u64 = token;
  if (::epoll_ctl(shard.epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    CMOM_LOG(kError) << "epoll_ctl(ADD): " << std::strerror(errno);
    std::lock_guard lock(shard.mutex);
    shard.handlers.erase(token);
    shard.fds.erase(token);
    shard.fd_count.fetch_sub(1, std::memory_order_relaxed);
    return 0;
  }
  return token;
}

void Reactor::Deregister(std::uint64_t token) {
  if (token == 0) return;
  Shard& shard = ShardOf(token);
  auto remove = [&shard, token] {
    std::shared_ptr<EventFn> handler;
    int fd = -1;
    {
      std::lock_guard lock(shard.mutex);
      auto it = shard.fds.find(token);
      if (it == shard.fds.end()) return;  // already removed
      fd = it->second;
      shard.fds.erase(it);
      auto hit = shard.handlers.find(token);
      if (hit != shard.handlers.end()) {
        handler = std::move(hit->second);
        shard.handlers.erase(hit);
      }
      shard.fd_count.fetch_sub(1, std::memory_order_relaxed);
    }
    ::epoll_ctl(shard.epoll_fd.get(), EPOLL_CTL_DEL, fd, nullptr);
    // `handler` (and whatever it captured) dies here, on the shard
    // thread, after the current dispatch batch.
  };
  if (OnShardThread(shard.index)) {
    remove();
    return;
  }
  // Run the removal on the shard thread and wait it out: once the task
  // ran, no event dispatched before it can still be executing (events
  // and tasks run interleaved on the same thread).
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  const bool posted = Post(shard.index, [&] {
    remove();
    std::lock_guard lock(done_mutex);
    done = true;
    done_cv.notify_one();
  });
  if (!posted) {
    // Shard already stopping: its loop has exited (or will without
    // running more dispatches), so removing inline cannot race one.
    remove();
    return;
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
}

bool Reactor::Post(std::size_t shard_index, Task task) {
  Shard& shard = *shards_[shard_index];
  bool wake = false;
  {
    std::lock_guard lock(shard.mutex);
    if (shard.stopping) return false;
    wake = shard.tasks.empty();
    shard.tasks.push_back(std::move(task));
  }
  if (wake && !OnShardThread(shard_index)) shard.Wake();
  return true;
}

void Reactor::PostDelayed(std::size_t shard_index, std::uint64_t delay_ns,
                          Task task) {
  Shard& shard = *shards_[shard_index];
  const std::uint64_t deadline = NowNs() + delay_ns;
  bool wake = false;
  {
    std::lock_guard lock(shard.mutex);
    if (shard.stopping) return;
    wake = shard.timers.empty() || deadline < shard.timers.begin()->first;
    shard.timers.emplace(deadline, std::move(task));
  }
  if (wake && !OnShardThread(shard_index)) shard.Wake();
}

bool Reactor::OnShardThread(std::size_t shard_index) const {
  return shards_[shard_index]->thread.get_id() == std::this_thread::get_id();
}

std::vector<ReactorShardStats> Reactor::Stats() const {
  std::vector<ReactorShardStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ReactorShardStats s;
    s.polls = shard->polls.load(std::memory_order_relaxed);
    s.events = shard->events.load(std::memory_order_relaxed);
    s.tasks = shard->tasks_run.load(std::memory_order_relaxed);
    s.timers = shard->timers_run.load(std::memory_order_relaxed);
    s.wakeups = shard->wakeups.load(std::memory_order_relaxed);
    s.fds = shard->fd_count.load(std::memory_order_relaxed);
    out.push_back(s);
  }
  return out;
}

void Reactor::Loop(Shard* shard) {
  std::array<epoll_event, kMaxEvents> events;
  std::vector<Task> ready_tasks;
  std::vector<Task> ready_timers;
  while (true) {
    // Compute the wait from the timer heap.
    int timeout_ms = kIdleTimeoutMs;
    {
      std::lock_guard lock(shard->mutex);
      if (shard->stopping) return;
      if (!shard->tasks.empty()) {
        timeout_ms = 0;
      } else if (!shard->timers.empty()) {
        const std::uint64_t now = NowNs();
        const std::uint64_t deadline = shard->timers.begin()->first;
        timeout_ms =
            deadline <= now
                ? 0
                : static_cast<int>(std::min<std::uint64_t>(
                      (deadline - now) / 1000000 + 1, kIdleTimeoutMs));
      }
    }

    const int n =
        ::epoll_wait(shard->epoll_fd.get(), events.data(), kMaxEvents,
                     timeout_ms);
    if (n < 0 && errno != EINTR) {
      CMOM_LOG(kError) << "epoll_wait: " << std::strerror(errno);
      return;
    }
    shard->polls.fetch_add(1, std::memory_order_relaxed);

    // Socket events first: a token that a task in this round will
    // deregister must still see its events dispatched-or-skipped
    // atomically with respect to that task (both run here, in order).
    for (int i = 0; i < std::max(n, 0); ++i) {
      const std::uint64_t token = events[i].data.u64;
      if (token == 0) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t r =
            ::read(shard->wake_fd.get(), &drain, sizeof(drain));
        shard->wakeups.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::shared_ptr<EventFn> handler;
      {
        std::lock_guard lock(shard->mutex);
        auto it = shard->handlers.find(token);
        if (it == shard->handlers.end()) continue;  // stale event
        handler = it->second;
      }
      shard->events.fetch_add(1, std::memory_order_relaxed);
      (*handler)(events[i].events);
    }

    // Posted tasks.
    ready_tasks.clear();
    ready_timers.clear();
    {
      std::lock_guard lock(shard->mutex);
      if (shard->stopping) return;
      ready_tasks.swap(shard->tasks);
      const std::uint64_t now = NowNs();
      while (!shard->timers.empty() && shard->timers.begin()->first <= now) {
        ready_timers.push_back(std::move(shard->timers.begin()->second));
        shard->timers.erase(shard->timers.begin());
      }
    }
    for (Task& task : ready_tasks) {
      task();
      shard->tasks_run.fetch_add(1, std::memory_order_relaxed);
    }
    for (Task& task : ready_timers) {
      task();
      shard->timers_run.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace cmom::net
