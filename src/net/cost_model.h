// Calibrated cost model for simulated runs.
//
// Section 6.1 decomposes the turn-around time of a message into a
// near-constant transfer term (serialization/deserialization, transfer
// time, agent saving) and a causal-ordering term (checking, updating
// and *saving* the matrix clock).  The model below reproduces that
// decomposition:
//
//   wire cost   = wire_latency + frame_bytes * per_wire_byte
//   processing  = per_hop_fixed                       (transfer term)
//               + clock_entries_touched * per_clock_entry
//               + persisted_bytes * per_disk_byte + disk_sync
//                                                 (causal-order term)
//
// The defaults are calibrated so that the flat (one global domain)
// remote-unicast ping-pong lands in the same range as the paper's
// Figure 7 (61..201 ms for 10..50 servers) and the domain runs in the
// range of Figure 10 (159..218 ms for 10..150 servers).  Absolute
// fidelity is not the goal -- the shape (quadratic vs. linear, and the
// crossover in Figure 11) is what the model must and does preserve.
#pragma once

#include <cstdint>

#include "sim/simulator.h"

namespace cmom::net {

struct CostModel {
  // Link propagation delay per frame (100 Mbit LAN scale).
  sim::Duration wire_latency = 200 * sim::kMicrosecond;
  // Serialization + transmission cost per frame byte.
  sim::Duration per_wire_byte = 80;  // ns/byte ~ 100 Mbit/s
  // Fixed per-transaction handling: engine dispatch, (de)serialization
  // of the message body, agent state saving.  Calibrated to the paper's
  // JVM-era testbed, where the n-independent share of a remote unicast
  // round trip was ~55 ms across 4 transactions (Figure 7's intercept).
  sim::Duration per_hop_fixed = 12500 * sim::kMicrosecond;
  // Matrix-clock arithmetic per entry touched (check + merge).
  sim::Duration per_clock_entry = 150;  // ns/entry
  // Writing the persistent image of channel state (matrix clock etc.).
  sim::Duration per_disk_byte = 2 * sim::kMicrosecond;  // ~0.5 MB/s fsync path
  // Fixed synchronous-commit latency per transaction.
  sim::Duration disk_sync = 30 * sim::kMicrosecond;

  [[nodiscard]] sim::Duration WireCost(std::size_t frame_bytes) const {
    return wire_latency + frame_bytes * per_wire_byte;
  }
  [[nodiscard]] sim::Duration ProcessingCost(std::size_t clock_entries,
                                             std::size_t persisted_bytes) const {
    return per_hop_fixed + clock_entries * per_clock_entry +
           persisted_bytes * per_disk_byte + disk_sync;
  }
};

// Fault-injection knobs for SimNetwork.  The Channel's ACK/retransmit
// protocol plus the clock-based duplicate detection must mask all of
// these; integration tests turn them up and assert causal delivery
// still holds.
struct FaultModel {
  double drop_probability = 0.0;       // frame silently lost
  double duplicate_probability = 0.0;  // frame delivered twice
  double jitter_probability = 0.0;     // frame delayed by extra jitter
  sim::Duration max_jitter = 50 * sim::kMillisecond;
  // When false (default) links are FIFO; when true, jittered frames may
  // overtake each other, exercising the hold-back queue.
  bool allow_reordering = false;
};

}  // namespace cmom::net
