// TCP loopback network with connection supervision, multiplexed over a
// shared epoll reactor.
//
// The closest analogue of the paper's deployment (agent servers as
// separate JVMs on ten LAN hosts): every endpoint listens on
// 127.0.0.1:base_port+server_id and frames travel length-prefixed as
//     [u32 length][u16 sender id][payload bytes].
//
// Outbound connections are supervised per peer:
//   - connects are non-blocking and retried with exponential backoff
//     plus jitter (capped), so a dead or not-yet-started peer never
//     blocks a sender;
//   - Send() never blocks: frames enter a bounded per-peer outbox
//     (zero-copy -- the frame encoding IS the wire payload, prefixed
//     by a 6-byte header iovec) and are flushed with vectored
//     sendmsg() on the endpoint's reactor shard as the socket allows,
//     partial writes continuing where they left off;
//   - while a link is down the outbox buffers frames and flushes them
//     on reconnect; overflow makes Send() return Overloaded, at which
//     point the Channel's QueueOUT retransmission takes over;
//   - a frame interrupted by a connection loss is rewritten from its
//     first byte on the fresh connection (the receiver's per-connection
//     parse buffer discards the torn prefix), so frames stay atomic;
//   - writes use MSG_NOSIGNAL, so a dead peer cannot SIGPIPE-kill the
//     process.
//
// Threading: one TcpNetwork owns one Reactor (a small fixed pool of
// edge-triggered epoll threads, see net/reactor.h) shared by all of
// its endpoints.  Each endpoint is pinned to one shard -- its listen
// socket, inbound connections and outbound peers all dispatch on that
// shard's thread, preserving the old one-thread-per-endpoint ordering
// guarantees (per-peer FIFO, serialized receive dispatch) while the
// thread count stays fixed as connections grow.  The receive handler
// runs on the endpoint's shard thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/reactor.h"
#include "net/transport.h"

namespace cmom::net {

// Supervision and socket knobs; the defaults suit loopback tests (fast
// reconnect) and stay safe for LAN use.
struct TcpNetworkOptions {
  // First retry delay after a failed connect or a lost connection.
  std::uint64_t backoff_initial_ns = 10ull * 1000 * 1000;  // 10 ms
  // Backoff doubles per consecutive failure up to this cap.
  std::uint64_t backoff_max_ns = 2ull * 1000 * 1000 * 1000;  // 2 s
  // Uniform jitter applied to each backoff delay, as a fraction of the
  // delay (0.2 = +-20%); avoids reconnect stampedes after an outage.
  double backoff_jitter = 0.2;
  // Per-peer outbox bounds; exceeding either makes Send() return
  // Overloaded (the frame is rejected, buffered frames are kept).
  std::size_t outbox_max_frames = 4096;
  std::size_t outbox_max_bytes = 16ull * 1024 * 1024;
  // Seed for the backoff jitter RNG (mixed with the server id).
  std::uint64_t jitter_seed = 1;
  // Reactor shard threads shared by all endpoints of this network.
  // 0 = auto (half the hardware threads, clamped to [2, 4]).
  std::size_t reactor_threads = 0;
  // Disable Nagle on every connection (default on: the bus coalesces
  // acks itself, and small credit trailers must not eat a 40 ms delay).
  bool tcp_nodelay = true;
  // Socket buffer sizes; 0 keeps the kernel default.  Tests use a tiny
  // SO_SNDBUF to force partial-write continuation deterministically.
  int so_rcvbuf = 0;
  int so_sndbuf = 0;
  // listen(2) backlog for every endpoint's accept socket.
  int listen_backlog = 128;
};

class TcpNetwork final : public Network {
 public:
  // Endpoints listen on base_port + id; the caller must pick a base so
  // that the whole range is free.
  explicit TcpNetwork(std::uint16_t base_port, TcpNetworkOptions options = {})
      : base_port_(base_port), options_(options) {}

  // The shard pool stops with the network: endpoints and any gateway
  // sharing reactor() must be torn down first.  Stopping here (rather
  // than relying on the shared_ptr count) guarantees the threads are
  // joined from the owner's thread even when a stale backoff timer
  // still pins endpoint state.
  ~TcpNetwork() override;

  Result<std::unique_ptr<Endpoint>> CreateEndpoint(ServerId id) override;

  [[nodiscard]] std::uint16_t PortFor(ServerId id) const {
    return static_cast<std::uint16_t>(base_port_ + id.value());
  }

  [[nodiscard]] const TcpNetworkOptions& options() const { return options_; }

  // The shared reactor (created on first use).  The gateway tier
  // registers its client sessions on the same shard pool so one
  // process keeps one fixed set of I/O threads.
  [[nodiscard]] std::shared_ptr<Reactor> reactor();

  // Per-shard reactor counters; empty if no endpoint was created yet.
  [[nodiscard]] std::vector<ReactorShardStats> reactor_stats() const;

 private:
  std::uint16_t base_port_;
  TcpNetworkOptions options_;
  mutable std::mutex mutex_;
  std::shared_ptr<Reactor> reactor_;
};

}  // namespace cmom::net
