// TCP loopback network with connection supervision.
//
// The closest analogue of the paper's deployment (agent servers as
// separate JVMs on ten LAN hosts): every endpoint listens on
// 127.0.0.1:base_port+server_id and frames travel length-prefixed as
//     [u32 length][u16 sender id][payload bytes].
//
// Outbound connections are supervised per peer:
//   - connects are non-blocking and retried with exponential backoff
//     plus jitter (capped), so a dead or not-yet-started peer never
//     blocks a sender;
//   - Send() never blocks: frames enter a bounded per-peer outbox and
//     are written by the endpoint's I/O thread as the socket allows
//     (partial writes continue where they left off);
//   - while a link is down the outbox buffers frames and flushes them
//     on reconnect; overflow makes Send() return Unavailable, at which
//     point the Channel's QueueOUT retransmission takes over;
//   - a frame interrupted by a connection loss is rewritten from its
//     first byte on the fresh connection (the receiver's per-connection
//     parse buffer discards the torn prefix), so frames stay atomic;
//   - writes use MSG_NOSIGNAL, so a dead peer cannot SIGPIPE-kill the
//     process.
//
// Each endpoint runs one poll()-based I/O thread handling the listen
// socket, inbound connections, outbound connects/writes and backoff
// timers; the receive handler is invoked on that thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace cmom::net {

// Supervision knobs; the defaults suit loopback tests (fast reconnect)
// and stay safe for LAN use.
struct TcpNetworkOptions {
  // First retry delay after a failed connect or a lost connection.
  std::uint64_t backoff_initial_ns = 10ull * 1000 * 1000;  // 10 ms
  // Backoff doubles per consecutive failure up to this cap.
  std::uint64_t backoff_max_ns = 2ull * 1000 * 1000 * 1000;  // 2 s
  // Uniform jitter applied to each backoff delay, as a fraction of the
  // delay (0.2 = +-20%); avoids reconnect stampedes after an outage.
  double backoff_jitter = 0.2;
  // Per-peer outbox bounds; exceeding either makes Send() return
  // Unavailable (the frame is rejected, buffered frames are kept).
  std::size_t outbox_max_frames = 4096;
  std::size_t outbox_max_bytes = 16ull * 1024 * 1024;
  // Seed for the backoff jitter RNG (mixed with the server id).
  std::uint64_t jitter_seed = 1;
};

class TcpNetwork final : public Network {
 public:
  // Endpoints listen on base_port + id; the caller must pick a base so
  // that the whole range is free.
  explicit TcpNetwork(std::uint16_t base_port, TcpNetworkOptions options = {})
      : base_port_(base_port), options_(options) {}

  Result<std::unique_ptr<Endpoint>> CreateEndpoint(ServerId id) override;

  [[nodiscard]] std::uint16_t PortFor(ServerId id) const {
    return static_cast<std::uint16_t>(base_port_ + id.value());
  }

  [[nodiscard]] const TcpNetworkOptions& options() const { return options_; }

 private:
  std::uint16_t base_port_;
  TcpNetworkOptions options_;
};

}  // namespace cmom::net
