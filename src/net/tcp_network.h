// TCP loopback network.
//
// The closest analogue of the paper's deployment (agent servers as
// separate JVMs on ten LAN hosts): every endpoint listens on
// 127.0.0.1:base_port+server_id, connections are opened lazily on first
// send, and frames travel length-prefixed as
//     [u32 length][u16 sender id][payload bytes].
// TCP gives the reliable FIFO links the Message Bus assumes.  Each
// endpoint runs one poll()-based receive thread; the receive handler is
// invoked on that thread.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace cmom::net {

class TcpNetwork final : public Network {
 public:
  // Endpoints listen on base_port + id; the caller must pick a base so
  // that the whole range is free.
  explicit TcpNetwork(std::uint16_t base_port) : base_port_(base_port) {}

  Result<std::unique_ptr<Endpoint>> CreateEndpoint(ServerId id) override;

  [[nodiscard]] std::uint16_t PortFor(ServerId id) const {
    return static_cast<std::uint16_t>(base_port_ + id.value());
  }

 private:
  std::uint16_t base_port_;
};

}  // namespace cmom::net
