#include "net/sim_network.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace cmom::net {

namespace {
std::uint64_t LinkKey(ServerId from, ServerId to) {
  return (static_cast<std::uint64_t>(from.value()) << 32) | to.value();
}
}  // namespace

class SimNetwork::SimEndpoint final : public Endpoint {
 public:
  SimEndpoint(SimNetwork& network, ServerId self)
      : network_(&network), self_(self) {}

  [[nodiscard]] ServerId self() const override { return self_; }

  Status Send(ServerId to, Bytes frame) override {
    return network_->Transmit(self_, to, std::move(frame));
  }

  void SetReceiveHandler(ReceiveHandler handler) override {
    network_->endpoints_[self_].handler = std::move(handler);
  }

 private:
  SimNetwork* network_;
  ServerId self_;
};

SimNetwork::SimNetwork(sim::Simulator& simulator, CostModel cost_model,
                       FaultModel fault_model, std::uint64_t fault_seed)
    : simulator_(&simulator),
      cost_model_(cost_model),
      fault_model_(fault_model),
      fault_rng_(fault_seed) {}

Result<std::unique_ptr<Endpoint>> SimNetwork::CreateEndpoint(ServerId id) {
  auto [it, inserted] = endpoints_.try_emplace(id);
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("endpoint already exists: " + to_string(id));
  }
  return {std::make_unique<SimEndpoint>(*this, id)};
}

void SimNetwork::SetLinkLatency(ServerId from, ServerId to,
                                sim::Duration extra) {
  link_extra_latency_[LinkKey(from, to)] = extra;
}

void SimNetwork::ResetStats() {
  frames_sent_ = 0;
  bytes_sent_ = 0;
  frames_dropped_ = 0;
}

Status SimNetwork::Transmit(ServerId from, ServerId to, Bytes frame) {
  if (!endpoints_.contains(to)) {
    return Status::NotFound("no endpoint for " + to_string(to));
  }
  ++frames_sent_;
  bytes_sent_ += frame.size();

  if (fault_model_.drop_probability > 0 &&
      fault_rng_.NextBool(fault_model_.drop_probability)) {
    ++frames_dropped_;
    CMOM_LOG(kDebug) << "dropping frame " << to_string(from) << " -> "
                     << to_string(to);
    return Status::Ok();  // silent loss: sender believes it was sent
  }

  // Transmission queueing: the frame occupies the link for its
  // serialization time, starting when the link frees up.
  const sim::Duration tx_time = frame.size() * cost_model_.per_wire_byte;
  sim::Time& busy_until = link_busy_until_[LinkKey(from, to)];
  const sim::Time start = std::max(simulator_->now(), busy_until);
  busy_until = start + tx_time;
  sim::Duration delay = (start - simulator_->now()) + tx_time +
                        cost_model_.wire_latency;
  if (auto extra = link_extra_latency_.find(LinkKey(from, to));
      extra != link_extra_latency_.end()) {
    delay += extra->second;
  }

  if (fault_model_.jitter_probability > 0 &&
      fault_rng_.NextBool(fault_model_.jitter_probability)) {
    const sim::Duration jitter =
        fault_rng_.NextBelow(fault_model_.max_jitter + 1);
    delay += jitter;
    if (!fault_model_.allow_reordering) {
      // Keep the link FIFO: remember the jitter as link occupancy.
      busy_until = std::max(busy_until, start + tx_time + jitter);
    }
  }

  const bool duplicate =
      fault_model_.duplicate_probability > 0 &&
      fault_rng_.NextBool(fault_model_.duplicate_probability);

  Deliver(from, to, frame, delay);
  if (duplicate) {
    Deliver(from, to, frame, delay + cost_model_.wire_latency);
  }
  return Status::Ok();
}

void SimNetwork::Deliver(ServerId from, ServerId to, const Bytes& frame,
                         sim::Duration delay) {
  simulator_->ScheduleAfter(delay, [this, from, to, frame] {
    const EndpointState& state = endpoints_.at(to);
    if (state.handler) state.handler(from, frame);
  });
}

}  // namespace cmom::net
