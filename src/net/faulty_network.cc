#include "net/faulty_network.h"

#include <utility>

#include "common/log.h"

namespace cmom::net {

namespace {
std::uint64_t LinkKey(ServerId from, ServerId to) {
  return (static_cast<std::uint64_t>(from.value()) << 16) | to.value();
}
}  // namespace

// Wraps (and owns) one inner endpoint; every Send runs through the
// network's fault pipeline.
class FaultyNetwork::FaultyEndpoint final : public Endpoint {
 public:
  FaultyEndpoint(FaultyNetwork& network, std::unique_ptr<Endpoint> inner)
      : network_(&network), inner_(std::move(inner)) {
    std::lock_guard lock(network_->mutex_);
    network_->live_[inner_->self()] = inner_.get();
  }

  ~FaultyEndpoint() override {
    std::lock_guard lock(network_->mutex_);
    network_->live_.erase(inner_->self());
  }

  [[nodiscard]] ServerId self() const override { return inner_->self(); }

  Status Send(ServerId to, Bytes frame) override {
    return network_->InjectedSend(inner_->self(), to, std::move(frame));
  }

  void SetReceiveHandler(ReceiveHandler handler) override {
    inner_->SetReceiveHandler(std::move(handler));
  }

  void Disconnect(ServerId peer) override { inner_->Disconnect(peer); }

  [[nodiscard]] TransportStats stats() const override {
    return inner_->stats();
  }

 private:
  FaultyNetwork* network_;
  std::unique_ptr<Endpoint> inner_;
};

FaultyNetwork::FaultyNetwork(Network& inner, FaultyNetworkOptions options,
                             Runtime* runtime)
    : inner_(&inner),
      options_(options),
      runtime_(runtime),
      rng_(options.seed) {}

FaultyNetwork::~FaultyNetwork() = default;

Result<std::unique_ptr<Endpoint>> FaultyNetwork::CreateEndpoint(ServerId id) {
  auto inner = inner_->CreateEndpoint(id);
  if (!inner.ok()) return inner.status();
  return {std::make_unique<FaultyEndpoint>(*this, std::move(inner).value())};
}

Status FaultyNetwork::InjectedSend(ServerId from, ServerId to, Bytes frame) {
  bool duplicate = false;
  std::uint64_t delay_ns = 0;
  {
    std::lock_guard lock(mutex_);
    ++stats_.frames_seen;
    auto sender = live_.find(from);
    if (sender == live_.end()) return Status::NotFound("sender gone");

    if (PartitionedLocked(from, to)) {
      // The cut swallows the frame silently, exactly like a lossy wire:
      // the sender's retransmit timer keeps probing and delivery
      // resumes once the partition heals.
      ++stats_.frames_partitioned;
      return Status::Ok();
    }

    if (options_.disconnect_probability > 0 &&
        rng_.NextBool(options_.disconnect_probability)) {
      ++stats_.disconnects_forced;
      sender->second->Disconnect(to);
    }
    if (rng_.NextBool(options_.model.drop_probability)) {
      ++stats_.frames_dropped;
      return Status::Ok();  // silently lost, as on a lossy wire
    }
    duplicate = rng_.NextBool(options_.model.duplicate_probability);
    if (duplicate) ++stats_.frames_duplicated;

    if (runtime_ != nullptr &&
        rng_.NextBool(options_.model.jitter_probability)) {
      delay_ns = rng_.NextBelow(
          static_cast<std::uint64_t>(options_.model.max_jitter) + 1);
    }

    if (!options_.model.allow_reordering && runtime_ != nullptr) {
      // FIFO release: a delayed frame holds back everything sent after
      // it on the link.  Scheduling stays under the lock so After calls
      // happen in send order with non-decreasing deadlines, and while
      // any frame of the link is parked on a timer, undelayed frames go
      // through the timer too -- a lagging timer thread must not let
      // them overtake.
      const std::uint64_t key = LinkKey(from, to);
      const std::uint64_t now = runtime_->NowNs();
      std::uint64_t& link_release = link_release_ns_[key];
      const std::uint64_t release = std::max(link_release, now + delay_ns);
      link_release = release;
      delay_ns = release - now;
      if (delay_ns > 0 || link_pending_[key] > 0) {
        if (delay_ns > 0) ++stats_.frames_delayed;
        const std::size_t copies = duplicate ? 2 : 1;
        link_pending_[key] += copies;
        pending_delayed_ += copies;
        if (duplicate) ScheduleFifoLocked(key, from, to, frame, delay_ns);
        ScheduleFifoLocked(key, from, to, std::move(frame), delay_ns);
        return Status::Ok();
      }
      link_pending_.erase(key);
      delay_ns = 0;  // link idle and no jitter: forward directly below
    } else if (delay_ns > 0) {
      ++stats_.frames_delayed;
    }
  }

  if (duplicate) {
    Bytes copy = frame;
    if (delay_ns == 0) {
      ForwardNow(from, to, std::move(copy));
    } else {
      ScheduleDelayed(from, to, std::move(copy), delay_ns);
    }
  }
  if (delay_ns == 0) {
    ForwardNow(from, to, std::move(frame));
  } else {
    ScheduleDelayed(from, to, std::move(frame), delay_ns);
  }
  return Status::Ok();
}

void FaultyNetwork::ForwardNow(ServerId from, ServerId to, Bytes frame) {
  Endpoint* sender = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto it = live_.find(from);
    if (it == live_.end()) return;  // sender died mid-delay: frame lost
    sender = it->second;
  }
  // Outside the lock: the inner Send may itself take time (it only
  // enqueues on every current transport, but don't depend on that).
  const Status status = sender->Send(to, std::move(frame));
  if (!status.ok()) {
    CMOM_LOG(kDebug) << "faulty forward " << to_string(from) << "->"
                     << to_string(to) << ": " << status;
  }
}

void FaultyNetwork::ScheduleDelayed(ServerId from, ServerId to, Bytes frame,
                                    std::uint64_t delay_ns) {
  {
    std::lock_guard lock(mutex_);
    ++pending_delayed_;
  }
  // The runtime is required to outlive and be destroyed before this
  // network (see header), so `this` is valid whenever the timer fires.
  runtime_->After(delay_ns,
                  [this, from, to, frame = std::move(frame)]() mutable {
                    {
                      std::lock_guard lock(mutex_);
                      --pending_delayed_;
                    }
                    ForwardNow(from, to, std::move(frame));
                  });
}

void FaultyNetwork::ScheduleFifoLocked(std::uint64_t key, ServerId from,
                                       ServerId to, Bytes frame,
                                       std::uint64_t delay_ns) {
  // mutex_ is held; ThreadRuntime::After only enqueues (never runs the
  // callback inline), so this cannot deadlock.  The frame goes to the
  // tail of the link's parked queue and the callback releases the HEAD:
  // even if After's internal clock re-read hands two equal-release
  // frames swapped deadlines, frames still leave in send order.  All
  // callbacks run on the runtime's single timer thread, so the head
  // pops are themselves serialized.  Counters are decremented only
  // *after* forwarding, so a later undelayed frame keeps taking the
  // timer path until its predecessors really reached the inner network.
  link_parked_[key].push_back(std::move(frame));
  runtime_->After(delay_ns, [this, key, from, to]() {
    Bytes head;
    bool have = false;
    {
      std::lock_guard lock(mutex_);
      auto parked = link_parked_.find(key);
      if (parked != link_parked_.end() && !parked->second.empty()) {
        head = std::move(parked->second.front());
        parked->second.pop_front();
        if (parked->second.empty()) link_parked_.erase(parked);
        have = true;
      }
    }
    if (have) ForwardNow(from, to, std::move(head));
    std::lock_guard lock(mutex_);
    --pending_delayed_;
    auto it = link_pending_.find(key);
    if (it != link_pending_.end() && --it->second == 0) {
      link_pending_.erase(it);
    }
  });
}

bool FaultyNetwork::PartitionedLocked(ServerId from, ServerId to) const {
  for (const auto& [name, group] : partitions_) {
    (void)name;
    const bool a_to_b =
        group.side_a.contains(from) && group.side_b.contains(to);
    const bool b_to_a =
        group.side_b.contains(from) && group.side_a.contains(to);
    if (a_to_b || b_to_a) return true;
  }
  return false;
}

void FaultyNetwork::Partition(const std::string& name,
                              std::vector<ServerId> side_a,
                              std::vector<ServerId> side_b) {
  std::lock_guard lock(mutex_);
  PartitionGroup group;
  group.side_a.insert(side_a.begin(), side_a.end());
  group.side_b.insert(side_b.begin(), side_b.end());
  partitions_[name] = std::move(group);
}

void FaultyNetwork::Heal(const std::string& name) {
  std::lock_guard lock(mutex_);
  partitions_.erase(name);
}

void FaultyNetwork::HealAll() {
  std::lock_guard lock(mutex_);
  partitions_.clear();
}

std::vector<std::string> FaultyNetwork::ActivePartitions() const {
  std::lock_guard lock(mutex_);
  std::vector<std::string> names;
  names.reserve(partitions_.size());
  for (const auto& [name, group] : partitions_) {
    (void)group;
    names.push_back(name);
  }
  return names;
}

FaultyNetworkStats FaultyNetwork::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t FaultyNetwork::pending_delayed() const {
  std::lock_guard lock(mutex_);
  return pending_delayed_;
}

}  // namespace cmom::net
