// Time and deferred-execution abstraction.
//
// The MOM code (retransmission timers, modeled processing delays) is
// written once against this interface and runs unchanged on simulated
// time (SimRuntime) or wall-clock time (ThreadRuntime).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "sim/simulator.h"

namespace cmom::net {

class Runtime {
 public:
  virtual ~Runtime() = default;

  // Monotonic nanoseconds (simulated or real).
  [[nodiscard]] virtual std::uint64_t NowNs() = 0;

  // Runs `fn` approximately `delay_ns` from now.  Never runs `fn`
  // inline.  Callbacks scheduled with equal delays run in FIFO order on
  // the simulated runtime; the threaded runtime gives no order guarantee
  // beyond the timer resolution.
  virtual void After(std::uint64_t delay_ns, std::function<void()> fn) = 0;
};

// Simulated time: defers onto the discrete-event loop.
class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(sim::Simulator& simulator) : simulator_(&simulator) {}

  std::uint64_t NowNs() override { return simulator_->now(); }
  void After(std::uint64_t delay_ns, std::function<void()> fn) override {
    simulator_->ScheduleAfter(delay_ns, std::move(fn));
  }

 private:
  sim::Simulator* simulator_;
};

// Wall-clock time: a dedicated timer thread fires deferred callbacks.
class ThreadRuntime final : public Runtime {
 public:
  ThreadRuntime();
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  std::uint64_t NowNs() override;
  void After(std::uint64_t delay_ns, std::function<void()> fn) override;

 private:
  void TimerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::multimap<std::uint64_t, std::function<void()>> deadlines_;
  bool stopping_ = false;
  std::thread timer_thread_;
};

}  // namespace cmom::net
