// Time and deferred-execution abstraction.
//
// The MOM code (retransmission timers, modeled processing delays) is
// written once against this interface and runs unchanged on simulated
// time (SimRuntime) or wall-clock time (ThreadRuntime).
//
// Runtimes also answer for CPU parallelism: MakeExecutor() hands out a
// lane executor (a fixed set of serial task queues running
// concurrently) on runtimes that own real threads, and nullptr on
// deterministic runtimes -- so a caller that wants a worker pool
// degrades to inline single-threaded execution under the simulator
// without special-casing, and simulated runs stay bit-reproducible.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "sim/simulator.h"

namespace cmom::net {

// A fixed set of serial execution lanes.  Tasks posted to one lane run
// in FIFO order, one at a time; distinct lanes run concurrently.  This
// is exactly the contract a sharded pipeline stage needs: hash a key
// to a lane and per-key ordering is preserved while throughput scales
// with the lane count.
class Executor {
 public:
  virtual ~Executor() = default;

  // Per-lane hand-off instrumentation, maintained by implementations
  // that own real queues.  All counters are cumulative since
  // construction; the histograms are recorded by the lane's consumer.
  struct LaneStats {
    std::uint64_t posts = 0;           // tasks enqueued on this lane
    std::uint64_t overflow_posts = 0;  // posts that overflowed the ring
    std::uint64_t parks = 0;           // consumer sleeps on an empty lane
    LogHistogram depth;                // queue depth seen at each dequeue
    LogHistogram stall_ns;             // enqueue->dequeue latency per task
  };

  [[nodiscard]] virtual std::size_t worker_count() const = 0;

  // Enqueues `fn` on lane `lane % worker_count()`.  Never blocks the
  // caller: implementations with bounded queues must spill to an
  // unbounded overflow path rather than wait for the consumer (a
  // blocking Post deadlocks pipelines where the consumer needs a lock
  // the producer holds).
  virtual void Post(std::size_t lane, std::function<void()> fn) = 0;

  // Tasks queued (not yet started) on a lane; an instantaneous reading
  // for depth instrumentation, immediately stale.  O(1) and lock-free
  // on ring-based implementations.
  [[nodiscard]] virtual std::size_t PendingCount(std::size_t lane) const = 0;

  // Snapshot of a lane's hand-off statistics.  Default: empty (an
  // implementation without instrumentation).
  [[nodiscard]] virtual LaneStats GetLaneStats(std::size_t lane) const {
    (void)lane;
    return {};
  }
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  // Monotonic nanoseconds (simulated or real).
  [[nodiscard]] virtual std::uint64_t NowNs() = 0;

  // Runs `fn` approximately `delay_ns` from now.  Never runs `fn`
  // inline.  Callbacks scheduled with equal delays run in FIFO order on
  // the simulated runtime; the threaded runtime gives no order guarantee
  // beyond the timer resolution.
  virtual void After(std::uint64_t delay_ns, std::function<void()> fn) = 0;

  // A `lanes`-wide executor backed by real threads, or nullptr when
  // this runtime is deterministic (SimRuntime): the caller must then
  // run the work inline so simulated traces stay reproducible.
  [[nodiscard]] virtual std::unique_ptr<Executor> MakeExecutor(
      std::size_t lanes) {
    (void)lanes;
    return nullptr;
  }
};

// Simulated time: defers onto the discrete-event loop.
class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(sim::Simulator& simulator) : simulator_(&simulator) {}

  std::uint64_t NowNs() override { return simulator_->now(); }
  void After(std::uint64_t delay_ns, std::function<void()> fn) override {
    simulator_->ScheduleAfter(delay_ns, std::move(fn));
  }

 private:
  sim::Simulator* simulator_;
};

// One dedicated thread per lane, fed through a bounded MPSC ring.
//
// Hand-off is wait-free in the common case: producers claim a slot with
// one fetch-style CAS on the tail index and publish it with a release
// store on the slot's sequence number (Vyukov bounded-queue protocol);
// the single consumer pops with plain acquire loads -- no mutex, no
// condvar, no cache line ping-pong beyond the indices themselves.  The
// consumer parks on a futex (C++20 atomic wait) only when the lane is
// empty; producers notify only when they observed the parked flag, so a
// busy lane never pays a syscall.
//
// The ring is bounded but Post never blocks: when a lane's ring is full
// the task spills to a mutex-guarded overflow queue, and once that
// queue is non-empty EVERY subsequent post joins it until the consumer
// has drained the ring and spliced the overflow back in -- preserving
// lane FIFO order, which per-agent causal delivery depends on.
// (Blocking in Post would deadlock the reaction pipeline: the dispatch
// stage posts while holding the server lock that the shard worker
// draining this ring needs to finish its current task.)
//
// Destruction joins every lane after its currently running task
// completes; tasks still queued are discarded (owners shutting down a
// pipeline rely on durable state, not on queued work draining).
class ThreadPoolExecutor final : public Executor {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1024;

  explicit ThreadPoolExecutor(std::size_t lanes,
                              std::size_t ring_capacity = kDefaultRingCapacity);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  [[nodiscard]] std::size_t worker_count() const override {
    return lanes_.size();
  }
  void Post(std::size_t lane, std::function<void()> fn) override;
  // O(1): (tail - head) off the ring indices plus the overflow count;
  // no lock taken.
  [[nodiscard]] std::size_t PendingCount(std::size_t lane) const override;
  [[nodiscard]] LaneStats GetLaneStats(std::size_t lane) const override;

 private:
  // One ring slot.  `seq` drives the Vyukov protocol: it reads
  // `position` when the slot is free for the producer claiming that
  // position, `position + 1` once the task is published, and
  // `position + capacity` after the consumer recycled it for the next
  // lap.
  struct Slot {
    std::atomic<std::size_t> seq{0};
    std::uint64_t enqueue_ns = 0;
    std::function<void()> fn;
  };

  struct OverflowItem {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
  };

  struct Lane {
    std::unique_ptr<Slot[]> slots;
    std::size_t mask = 0;      // capacity - 1 (capacity is a power of 2)
    std::size_t capacity = 0;

    // Producers CAS `tail` to claim slots; the consumer owns `head` and
    // publishes it for PendingCount readers.
    alignas(64) std::atomic<std::size_t> tail{0};
    alignas(64) std::atomic<std::size_t> head{0};

    // Futex-style parking: the consumer advertises `parked`, re-checks
    // emptiness (seq_cst fences on both sides make the Dekker argument
    // sound), then waits for `wake_epoch` to move.
    alignas(64) std::atomic<bool> parked{false};
    std::atomic<std::uint32_t> wake_epoch{0};

    // Spill path for a full ring; `overflow_count` doubles as the
    // "overflow active" flag that keeps posts FIFO across the spill.
    std::mutex overflow_mutex;
    std::deque<OverflowItem> overflow;
    std::atomic<std::size_t> overflow_count{0};

    // Instrumentation.  Counters are atomics (producers bump posts);
    // the histograms belong to the consumer and are snapshotted under
    // stats_mutex.
    std::atomic<std::uint64_t> posts{0};
    std::atomic<std::uint64_t> overflow_posts{0};
    std::atomic<std::uint64_t> parks{0};
    mutable std::mutex stats_mutex;
    LogHistogram depth_hist;
    LogHistogram stall_hist;

    std::thread thread;
  };

  // Multi-producer-safe claim+publish; false when the ring is full.
  static bool TryPush(Lane& lane, std::function<void()>& fn,
                      std::uint64_t enqueue_ns);
  // Consumer-only pop; false when the ring is empty.
  bool TryPop(Lane& lane, std::function<void()>& fn,
              std::uint64_t& enqueue_ns);
  // Consumer-only: splice overflow tasks into the (drained) ring.
  bool RefillFromOverflow(Lane& lane);
  void WakeLane(Lane& lane);
  void LaneLoop(Lane& lane);

  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Lane>> lanes_;
};

// Wall-clock time: a dedicated timer thread fires deferred callbacks.
class ThreadRuntime final : public Runtime {
 public:
  ThreadRuntime();
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  std::uint64_t NowNs() override;
  void After(std::uint64_t delay_ns, std::function<void()> fn) override;
  [[nodiscard]] std::unique_ptr<Executor> MakeExecutor(
      std::size_t lanes) override;

 private:
  void TimerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::multimap<std::uint64_t, std::function<void()>> deadlines_;
  bool stopping_ = false;
  std::thread timer_thread_;
};

}  // namespace cmom::net
