// Time and deferred-execution abstraction.
//
// The MOM code (retransmission timers, modeled processing delays) is
// written once against this interface and runs unchanged on simulated
// time (SimRuntime) or wall-clock time (ThreadRuntime).
//
// Runtimes also answer for CPU parallelism: MakeExecutor() hands out a
// lane executor (a fixed set of serial task queues running
// concurrently) on runtimes that own real threads, and nullptr on
// deterministic runtimes -- so a caller that wants a worker pool
// degrades to inline single-threaded execution under the simulator
// without special-casing, and simulated runs stay bit-reproducible.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace cmom::net {

// A fixed set of serial execution lanes.  Tasks posted to one lane run
// in FIFO order, one at a time; distinct lanes run concurrently.  This
// is exactly the contract a sharded pipeline stage needs: hash a key
// to a lane and per-key ordering is preserved while throughput scales
// with the lane count.
class Executor {
 public:
  virtual ~Executor() = default;

  [[nodiscard]] virtual std::size_t worker_count() const = 0;

  // Enqueues `fn` on lane `lane % worker_count()`.
  virtual void Post(std::size_t lane, std::function<void()> fn) = 0;

  // Tasks queued (not yet started) on a lane; an instantaneous reading
  // for depth instrumentation, immediately stale.
  [[nodiscard]] virtual std::size_t PendingCount(std::size_t lane) const = 0;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  // Monotonic nanoseconds (simulated or real).
  [[nodiscard]] virtual std::uint64_t NowNs() = 0;

  // Runs `fn` approximately `delay_ns` from now.  Never runs `fn`
  // inline.  Callbacks scheduled with equal delays run in FIFO order on
  // the simulated runtime; the threaded runtime gives no order guarantee
  // beyond the timer resolution.
  virtual void After(std::uint64_t delay_ns, std::function<void()> fn) = 0;

  // A `lanes`-wide executor backed by real threads, or nullptr when
  // this runtime is deterministic (SimRuntime): the caller must then
  // run the work inline so simulated traces stay reproducible.
  [[nodiscard]] virtual std::unique_ptr<Executor> MakeExecutor(
      std::size_t lanes) {
    (void)lanes;
    return nullptr;
  }
};

// Simulated time: defers onto the discrete-event loop.
class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(sim::Simulator& simulator) : simulator_(&simulator) {}

  std::uint64_t NowNs() override { return simulator_->now(); }
  void After(std::uint64_t delay_ns, std::function<void()> fn) override {
    simulator_->ScheduleAfter(delay_ns, std::move(fn));
  }

 private:
  sim::Simulator* simulator_;
};

// One dedicated thread per lane.  Destruction joins every lane after
// its currently running task completes; tasks still queued are
// discarded (owners shutting down a pipeline rely on durable state,
// not on queued work draining).
class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(std::size_t lanes);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  [[nodiscard]] std::size_t worker_count() const override {
    return lanes_.size();
  }
  void Post(std::size_t lane, std::function<void()> fn) override;
  [[nodiscard]] std::size_t PendingCount(std::size_t lane) const override;

 private:
  struct Lane {
    mutable std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::function<void()>> tasks;
    bool stopping = false;
    std::thread thread;
  };

  void LaneLoop(Lane& lane);

  std::vector<std::unique_ptr<Lane>> lanes_;
};

// Wall-clock time: a dedicated timer thread fires deferred callbacks.
class ThreadRuntime final : public Runtime {
 public:
  ThreadRuntime();
  ~ThreadRuntime() override;

  ThreadRuntime(const ThreadRuntime&) = delete;
  ThreadRuntime& operator=(const ThreadRuntime&) = delete;

  std::uint64_t NowNs() override;
  void After(std::uint64_t delay_ns, std::function<void()> fn) override;
  [[nodiscard]] std::unique_ptr<Executor> MakeExecutor(
      std::size_t lanes) override;

 private:
  void TimerLoop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::multimap<std::uint64_t, std::function<void()>> deadlines_;
  bool stopping_ = false;
  std::thread timer_thread_;
};

}  // namespace cmom::net
