// In-process threaded network.
//
// Every endpoint owns a bounded FIFO inbox and a consumer thread that
// invokes the receive handler; Send() enqueues into the destination's
// inbox.  This gives real wall-clock behaviour with reliable FIFO
// links, the configuration the AAA Message Bus assumes, and is what the
// wall-clock cross-check benches and most examples run on.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace cmom::net {

class InprocNetwork final : public Network {
 public:
  InprocNetwork() = default;
  ~InprocNetwork() override;

  InprocNetwork(const InprocNetwork&) = delete;
  InprocNetwork& operator=(const InprocNetwork&) = delete;

  Result<std::unique_ptr<Endpoint>> CreateEndpoint(ServerId id) override;

  // Blocks until every inbox is empty and every consumer is idle; used
  // by tests to reach quiescence without sleeping.
  void WaitQuiescent();

 private:
  class InprocEndpoint;
  friend class InprocEndpoint;

  struct Inbox {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<std::pair<ServerId, Bytes>> frames;
    ReceiveHandler handler;
    bool busy = false;
    bool stopping = false;
    std::thread consumer;
  };

  Status Push(ServerId from, ServerId to, Bytes frame);
  void ConsumeLoop(Inbox& inbox);

  std::mutex registry_mutex_;
  std::unordered_map<ServerId, std::unique_ptr<Inbox>> inboxes_;
};

}  // namespace cmom::net
