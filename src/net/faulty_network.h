// Transport-agnostic fault injection.
//
// FaultyNetwork wraps any Network (inproc, TCP, even sim) and injects
// frame drops, duplication, reordering delay and forced disconnects on
// the send path from a seeded RNG -- the same FaultModel knobs the
// simulated transport honors, so one fault sweep runs unchanged on real
// sockets.  The Channel's ACK/retransmit protocol plus clock-based
// duplicate detection must mask everything injected here.
//
// Delays need a timer: pass the Runtime the cluster already uses
// (ThreadRuntime for real transports, SimRuntime under the simulator).
// With a null runtime, jitter is ignored and only drops, duplicates and
// disconnects fire.  When the model's allow_reordering is false,
// delayed frames are released through a per-link FIFO (a delayed frame
// also delays everything sent after it on that link), preserving the
// wire-FIFO contract the Message Bus assumes; with reordering enabled,
// frames overtake each other and exercise the hold-back queue.
//
// The RNG is shared across all wrapped endpoints and protected by the
// network mutex: a given seed yields one deterministic fault stream per
// interleaving of Send calls.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "net/cost_model.h"
#include "net/runtime.h"
#include "net/transport.h"

namespace cmom::net {

struct FaultyNetworkOptions {
  FaultModel model;
  // Probability (per frame sent) of forcibly severing the sender's
  // connection to the destination first.  The frame itself still goes
  // through the normal drop/duplicate/delay pipeline and is buffered by
  // the supervised transport.
  double disconnect_probability = 0.0;
  std::uint64_t seed = 1;
};

// Injection counters (what the decorator did, not what the transport
// saw).
struct FaultyNetworkStats {
  std::uint64_t frames_seen = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t frames_duplicated = 0;
  std::uint64_t frames_delayed = 0;
  std::uint64_t disconnects_forced = 0;
  // Frames dropped because an active partition separated the endpoints
  // (both data and ack paths; counted separately from random drops).
  std::uint64_t frames_partitioned = 0;
};

class FaultyNetwork final : public Network {
 public:
  // `inner` must outlive this network; `runtime` (optional) must
  // outlive it too and be destroyed *before* it, so that pending delay
  // callbacks never fire into a dead FaultyNetwork.
  FaultyNetwork(Network& inner, FaultyNetworkOptions options,
                Runtime* runtime = nullptr);
  ~FaultyNetwork() override;

  Result<std::unique_ptr<Endpoint>> CreateEndpoint(ServerId id) override;

  [[nodiscard]] FaultyNetworkStats stats() const;

  // Frames currently parked on delay timers (quiescence checks).
  [[nodiscard]] std::size_t pending_delayed() const;

  // --- named bidirectional partitions --------------------------------
  // Installs (or replaces) partition `name`: every frame between a
  // server in `side_a` and one in `side_b` -- either direction, data
  // and acks alike -- is dropped until Heal(name).  Frames already
  // parked on delay timers when the cut lands were in flight before it
  // and still deliver, like packets on the wire when a cable is pulled.
  // Servers in neither set are unaffected; overlapping partitions
  // compose (a frame crossing ANY active cut is dropped).
  void Partition(const std::string& name, std::vector<ServerId> side_a,
                 std::vector<ServerId> side_b);
  // Removes partition `name` (unknown names are a no-op).  Retransmit
  // timers take over: nothing lost to the cut stays lost.
  void Heal(const std::string& name);
  void HealAll();
  // Active partition names, for schedules that heal-by-enumeration.
  [[nodiscard]] std::vector<std::string> ActivePartitions() const;

 private:
  class FaultyEndpoint;
  friend class FaultyEndpoint;

  // Runs the fault pipeline for one frame; called with an alive inner
  // endpoint looked up from the registry.
  Status InjectedSend(ServerId from, ServerId to, Bytes frame);
  void ForwardNow(ServerId from, ServerId to, Bytes frame);
  void ScheduleDelayed(ServerId from, ServerId to, Bytes frame,
                       std::uint64_t delay_ns);
  // FIFO-preserving variant: called with mutex_ held.  The frame is
  // parked at the tail of the link's queue and the timer callback
  // releases whatever is at the head, so timer deadline jitter (After
  // re-reads the clock) cannot reorder frames within a link.
  void ScheduleFifoLocked(std::uint64_t key, ServerId from, ServerId to,
                          Bytes frame, std::uint64_t delay_ns);

  // True when an active partition separates `from` and `to`.  Caller
  // holds mutex_.
  [[nodiscard]] bool PartitionedLocked(ServerId from, ServerId to) const;

  Network* inner_;
  FaultyNetworkOptions options_;
  Runtime* runtime_;

  mutable std::mutex mutex_;
  Rng rng_;
  FaultyNetworkStats stats_;
  struct PartitionGroup {
    std::unordered_set<ServerId> side_a;
    std::unordered_set<ServerId> side_b;
  };
  std::unordered_map<std::string, PartitionGroup> partitions_;
  std::size_t pending_delayed_ = 0;
  // Live wrapped endpoints by id; delayed sends re-resolve through this
  // map so a frame whose sender died mid-delay is dropped, not a UAF.
  std::unordered_map<ServerId, Endpoint*> live_;
  // FIFO release ordering per directed link when reordering is off.
  std::unordered_map<std::uint64_t, std::uint64_t> link_release_ns_;
  // Frames per link still parked on timers; while nonzero, undelayed
  // frames on that link are routed through the timer too so they cannot
  // overtake a delayed predecessor whose callback lags its deadline.
  // (Decremented only after the frame reached the inner network.)
  std::unordered_map<std::uint64_t, std::size_t> link_pending_;
  // The parked frames themselves, FIFO per link: each timer callback
  // forwards the head, not "its own" frame.
  std::unordered_map<std::uint64_t, std::deque<Bytes>> link_parked_;
};

}  // namespace cmom::net
