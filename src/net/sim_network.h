// Discrete-event simulated network.
//
// Models point-to-point links with propagation latency, per-byte
// serialization cost and per-link transmission queueing (a frame cannot
// start transmitting before the previous frame on the same link has
// finished), so wire-level FIFO holds by construction.  A FaultModel
// can drop, duplicate or delay frames to exercise the recovery
// machinery; reordering is only possible when explicitly enabled.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/rng.h"
#include "net/cost_model.h"
#include "net/transport.h"
#include "sim/simulator.h"

namespace cmom::net {

class SimNetwork final : public Network {
 public:
  SimNetwork(sim::Simulator& simulator, CostModel cost_model,
             FaultModel fault_model = {}, std::uint64_t fault_seed = 1);

  Result<std::unique_ptr<Endpoint>> CreateEndpoint(ServerId id) override;

  // Adds a fixed extra propagation delay to one directed link (on top
  // of the cost model's base latency).  FIFO on the link is preserved.
  // Used to realize specific schedules -- e.g. the slow direct link of
  // the Figure 4(a) causality-break scenario.
  void SetLinkLatency(ServerId from, ServerId to, sim::Duration extra);

  // Statistics, reset by ResetStats(): total frames and bytes accepted
  // for transmission (before fault injection).
  [[nodiscard]] std::uint64_t frames_sent() const { return frames_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return frames_dropped_; }
  void ResetStats();

 private:
  class SimEndpoint;
  friend class SimEndpoint;

  struct EndpointState {
    ReceiveHandler handler;
  };

  Status Transmit(ServerId from, ServerId to, Bytes frame);
  void Deliver(ServerId from, ServerId to, const Bytes& frame,
               sim::Duration delay);

  sim::Simulator* simulator_;
  CostModel cost_model_;
  FaultModel fault_model_;
  Rng fault_rng_;
  std::unordered_map<ServerId, EndpointState> endpoints_;
  // busy-until time per directed link, for transmission queueing.
  std::unordered_map<std::uint64_t, sim::Time> link_busy_until_;
  std::unordered_map<std::uint64_t, sim::Duration> link_extra_latency_;

  std::uint64_t frames_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t frames_dropped_ = 0;
};

}  // namespace cmom::net
