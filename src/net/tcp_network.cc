#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/log.h"

namespace cmom::net {

namespace {

// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { Close(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

Status WriteAll(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

class TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(ServerId self, std::uint16_t base_port)
      : self_(self), base_port_(base_port) {}

  ~TcpEndpoint() override {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    Wake();
    if (receive_thread_.joinable()) receive_thread_.join();
  }

  Status Start() {
    listen_fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!listen_fd_.valid()) {
      return Status::Unavailable(std::string("socket: ") +
                                 std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(base_port_ + self_.value()));
    if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
    }
    if (::listen(listen_fd_.get(), 64) != 0) {
      return Status::Unavailable(std::string("listen: ") +
                                 std::strerror(errno));
    }
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return Status::Unavailable(std::string("pipe: ") + std::strerror(errno));
    }
    wake_read_ = Fd(pipe_fds[0]);
    wake_write_ = Fd(pipe_fds[1]);
    receive_thread_ = std::thread([this] { ReceiveLoop(); });
    return Status::Ok();
  }

  [[nodiscard]] ServerId self() const override { return self_; }

  Status Send(ServerId to, Bytes frame) override {
    std::lock_guard lock(send_mutex_);
    auto it = out_connections_.find(to);
    if (it == out_connections_.end()) {
      auto connected = Connect(to);
      if (!connected.ok()) return connected.status();
      it = out_connections_.emplace(to, std::move(connected).value()).first;
    }
    // [u32 length][u16 sender][payload]
    std::uint8_t header[6];
    const std::uint32_t length = static_cast<std::uint32_t>(frame.size()) + 2;
    std::memcpy(header, &length, 4);
    const std::uint16_t sender = self_.value();
    std::memcpy(header + 4, &sender, 2);
    Status status = WriteAll(it->second.get(), header, sizeof(header));
    if (status.ok() && !frame.empty()) {
      status = WriteAll(it->second.get(), frame.data(), frame.size());
    }
    if (!status.ok()) out_connections_.erase(to);
    return status;
  }

  void SetReceiveHandler(ReceiveHandler handler) override {
    std::lock_guard lock(mutex_);
    handler_ = std::move(handler);
  }

 private:
  struct Connection {
    Fd fd;
    Bytes buffer;
  };

  void Wake() {
    if (wake_write_.valid()) {
      const char byte = 'w';
      [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
    }
  }

  Result<Fd> Connect(ServerId to) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      return Status::Unavailable(std::string("socket: ") +
                                 std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(base_port_ + to.value()));
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      return Status::Unavailable("connect to " + to_string(to) + ": " +
                                 std::strerror(errno));
    }
    return fd;
  }

  void ReceiveLoop() {
    std::vector<Connection> connections;
    while (true) {
      {
        std::lock_guard lock(mutex_);
        if (stopping_) return;
      }
      std::vector<pollfd> fds;
      fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
      fds.push_back(pollfd{listen_fd_.get(), POLLIN, 0});
      for (const Connection& connection : connections) {
        fds.push_back(pollfd{connection.fd.get(), POLLIN, 0});
      }
      if (::poll(fds.data(), fds.size(), 100) < 0) {
        if (errno == EINTR) continue;
        CMOM_LOG(kError) << "poll: " << std::strerror(errno);
        return;
      }
      if (fds[0].revents & POLLIN) {
        char scratch[64];
        [[maybe_unused]] ssize_t n =
            ::read(wake_read_.get(), scratch, sizeof(scratch));
      }
      if (fds[1].revents & POLLIN) {
        int accepted = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (accepted >= 0) {
          int one = 1;
          ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          connections.push_back(Connection{Fd(accepted), {}});
        }
      }
      for (std::size_t i = 0; i + 2 < fds.size() + 0; ++i) {
        // connection i corresponds to fds[i + 2]
        if (i + 2 >= fds.size()) break;
        if (!(fds[i + 2].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        if (!ReadFrames(connections[i])) {
          connections[i].fd.Close();
        }
      }
      std::erase_if(connections,
                    [](const Connection& c) { return !c.fd.valid(); });
    }
  }

  // Reads available bytes and dispatches every complete frame; returns
  // false when the peer closed or errored.
  bool ReadFrames(Connection& connection) {
    std::uint8_t chunk[16 * 1024];
    while (true) {
      ssize_t n = ::recv(connection.fd.get(), chunk, sizeof(chunk),
                         MSG_DONTWAIT);
      if (n > 0) {
        connection.buffer.insert(connection.buffer.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) return DispatchBuffered(connection), false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    DispatchBuffered(connection);
    return true;
  }

  void DispatchBuffered(Connection& connection) {
    Bytes& buffer = connection.buffer;
    std::size_t offset = 0;
    while (buffer.size() - offset >= 6) {
      std::uint32_t length = 0;
      std::memcpy(&length, buffer.data() + offset, 4);
      if (buffer.size() - offset - 4 < length) break;
      std::uint16_t sender = 0;
      std::memcpy(&sender, buffer.data() + offset + 4, 2);
      Bytes payload(buffer.begin() + static_cast<std::ptrdiff_t>(offset + 6),
                    buffer.begin() +
                        static_cast<std::ptrdiff_t>(offset + 4 + length));
      offset += 4 + length;
      ReceiveHandler handler;
      {
        std::lock_guard lock(mutex_);
        handler = handler_;
      }
      if (handler) handler(ServerId(sender), std::move(payload));
    }
    buffer.erase(buffer.begin(), buffer.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  ServerId self_;
  std::uint16_t base_port_;
  Fd listen_fd_;
  Fd wake_read_;
  Fd wake_write_;
  std::mutex mutex_;
  bool stopping_ = false;
  ReceiveHandler handler_;
  std::mutex send_mutex_;
  std::unordered_map<ServerId, Fd> out_connections_;
  std::thread receive_thread_;
};

Result<std::unique_ptr<Endpoint>> TcpNetwork::CreateEndpoint(ServerId id) {
  auto endpoint = std::make_unique<TcpEndpoint>(id, base_port_);
  Status status = endpoint->Start();
  if (!status.ok()) return status;
  return {std::unique_ptr<Endpoint>(std::move(endpoint))};
}

}  // namespace cmom::net
