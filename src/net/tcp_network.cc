#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <utility>

#include "common/log.h"
#include "common/rng.h"

namespace cmom::net {

namespace {

constexpr std::uint64_t kIdlePollNs = 100ull * 1000 * 1000;  // 100 ms

// Retired wire buffers kept per peer for reuse by later Sends.  Bounds
// the idle-memory cost of the pool while still covering a flush burst.
constexpr std::size_t kSpareWireBuffers = 8;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { Close(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

class TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(ServerId self, std::uint16_t base_port,
              TcpNetworkOptions options)
      : self_(self),
        base_port_(base_port),
        options_(options),
        jitter_rng_(options.jitter_seed * 0x9E3779B9ull + self.value()) {}

  ~TcpEndpoint() override {
    {
      std::lock_guard lock(mutex_);
      stopping_ = true;
    }
    Wake();
    if (io_thread_.joinable()) io_thread_.join();
  }

  Status Start() {
    listen_fd_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!listen_fd_.valid()) {
      return Status::Unavailable(std::string("socket: ") +
                                 std::strerror(errno));
    }
    int one = 1;
    ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(base_port_ + self_.value()));
    if (::bind(listen_fd_.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Unavailable(std::string("bind: ") + std::strerror(errno));
    }
    if (::listen(listen_fd_.get(), 64) != 0) {
      return Status::Unavailable(std::string("listen: ") +
                                 std::strerror(errno));
    }
    SetNonBlocking(listen_fd_.get());
    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
      return Status::Unavailable(std::string("pipe: ") + std::strerror(errno));
    }
    wake_read_ = Fd(pipe_fds[0]);
    wake_write_ = Fd(pipe_fds[1]);
    SetNonBlocking(wake_read_.get());
    io_thread_ = std::thread([this] { IoLoop(); });
    return Status::Ok();
  }

  [[nodiscard]] ServerId self() const override { return self_; }

  // Frames and enqueues; all socket I/O happens on the I/O thread so
  // partial writes can never interleave.
  Status Send(ServerId to, Bytes frame) override {
    // [u32 length][u16 sender][payload]
    const std::size_t wire_size = 6 + frame.size();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) return Status::FailedPrecondition("endpoint stopped");
      Peer& peer = PeerFor(to);
      if (peer.outbox.size() >= options_.outbox_max_frames ||
          peer.outbox_bytes + wire_size > options_.outbox_max_bytes) {
        // Backpressure, not failure: the peer link is alive but the
        // caller is producing faster than the wire drains.  Distinct
        // from kUnavailable (peer gone) so flow control can react by
        // pausing instead of treating the link as down.
        ++stats_.frames_dropped;
        return Status::Overloaded("outbox full for " + to_string(to));
      }
      // Frame into a retired wire buffer when one is pooled (its
      // capacity survives the clear), instead of allocating per send.
      Bytes wire;
      if (!peer.spare.empty()) {
        wire = std::move(peer.spare.back());
        peer.spare.pop_back();
      }
      wire.resize(wire_size);
      const std::uint32_t length =
          static_cast<std::uint32_t>(frame.size()) + 2;
      std::memcpy(wire.data(), &length, 4);
      const std::uint16_t sender = self_.value();
      std::memcpy(wire.data() + 4, &sender, 2);
      if (!frame.empty()) {
        std::memcpy(wire.data() + 6, frame.data(), frame.size());
      }
      if (peer.state != PeerState::kConnected) ++stats_.frames_buffered;
      peer.outbox_bytes += wire_size;
      peer.outbox.push_back(std::move(wire));
    }
    Wake();
    return Status::Ok();
  }

  void SetReceiveHandler(ReceiveHandler handler) override {
    std::unique_lock lock(mutex_);
    handler_ = std::move(handler);
    // Swap barrier (see Endpoint): reader threads invoke a copy of the
    // old handler unlocked; wait those dispatches out so the caller
    // can safely destroy what the old handler captured.
    handler_idle_.wait(lock, [&] { return dispatching_ == 0; });
  }

  void Disconnect(ServerId to) override {
    {
      std::lock_guard lock(mutex_);
      auto it = peers_.find(to);
      if (it == peers_.end() ||
          it->second->state == PeerState::kDisconnected) {
        return;  // nothing live to sever
      }
      it->second->kill = true;
      ++stats_.forced_disconnects;
    }
    Wake();
  }

  [[nodiscard]] TransportStats stats() const override {
    std::lock_guard lock(mutex_);
    TransportStats out = stats_;
    for (const auto& [id, peer] : peers_) {
      (void)id;
      out.outbox_frames += peer->outbox.size();
      out.outbox_bytes += peer->outbox_bytes;
      if (peer->state == PeerState::kDisconnected) {
        out.current_backoff_ns =
            std::max(out.current_backoff_ns, peer->backoff_ns);
      }
    }
    return out;
  }

 private:
  enum class PeerState { kDisconnected, kConnecting, kConnected };

  // Supervised outbound link to one peer.
  struct Peer {
    ServerId id;
    PeerState state = PeerState::kDisconnected;
    Fd fd;
    std::deque<Bytes> outbox;       // framed wire bytes, FIFO
    std::vector<Bytes> spare;       // retired wire buffers for reuse
    std::size_t front_offset = 0;   // bytes of outbox.front() already sent
    std::size_t outbox_bytes = 0;
    std::uint64_t backoff_ns = 0;   // current delay; 0 = no failures yet
    std::uint64_t retry_at_ns = 0;  // next connect attempt deadline
    bool ever_connected = false;
    bool kill = false;              // forced disconnect pending
  };

  struct Connection {
    Fd fd;
    Bytes buffer;
  };

  Peer& PeerFor(ServerId to) {
    auto it = peers_.find(to);
    if (it == peers_.end()) {
      auto peer = std::make_unique<Peer>();
      peer->id = to;
      it = peers_.emplace(to, std::move(peer)).first;
    }
    return *it->second;
  }

  void Wake() {
    if (wake_write_.valid()) {
      const char byte = 'w';
      [[maybe_unused]] ssize_t n = ::write(wake_write_.get(), &byte, 1);
    }
  }

  // Next backoff delay with jitter; grows exponentially up to the cap.
  std::uint64_t NextBackoff(Peer& peer) {
    peer.backoff_ns = peer.backoff_ns == 0
                          ? options_.backoff_initial_ns
                          : std::min(options_.backoff_max_ns,
                                     peer.backoff_ns * 2);
    const double jitter =
        1.0 + options_.backoff_jitter * (2.0 * jitter_rng_.NextDouble() - 1.0);
    return static_cast<std::uint64_t>(
        static_cast<double>(peer.backoff_ns) * std::max(0.0, jitter));
  }

  // The connection died (write error, EOF, refused connect or forced
  // disconnect): keep the outbox, rewind the partially-written front
  // frame and schedule a supervised reconnect.
  void MarkDown(Peer& peer, std::uint64_t now, bool connect_failed) {
    peer.fd.Close();
    peer.state = PeerState::kDisconnected;
    if (peer.front_offset > 0) {
      stats_.bytes_retransmitted += peer.front_offset;
      peer.front_offset = 0;  // resend the whole frame on the next link
    }
    if (connect_failed) ++stats_.connect_failures;
    peer.retry_at_ns = now + NextBackoff(peer);
  }

  // Begins (or completes) a non-blocking connect.
  void StartConnect(Peer& peer, std::uint64_t now) {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      MarkDown(peer, now, /*connect_failed=*/true);
      return;
    }
    SetNonBlocking(fd.get());
    int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(static_cast<std::uint16_t>(base_port_ + peer.id.value()));
    const int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                             sizeof(addr));
    if (rc == 0) {
      peer.fd = std::move(fd);
      MarkUp(peer);
      return;
    }
    if (errno == EINPROGRESS || errno == EINTR) {
      peer.fd = std::move(fd);
      peer.state = PeerState::kConnecting;
      return;
    }
    MarkDown(peer, now, /*connect_failed=*/true);
  }

  void MarkUp(Peer& peer) {
    peer.state = PeerState::kConnected;
    ++stats_.connects;
    if (peer.ever_connected) ++stats_.reconnects;
    peer.ever_connected = true;
    peer.backoff_ns = 0;
  }

  // Writes as much of the outbox as the socket accepts; never blocks.
  void FlushPeer(Peer& peer, std::uint64_t now) {
    while (!peer.outbox.empty()) {
      const Bytes& wire = peer.outbox.front();
      while (peer.front_offset < wire.size()) {
        const ssize_t n =
            ::send(peer.fd.get(), wire.data() + peer.front_offset,
                   wire.size() - peer.front_offset, MSG_NOSIGNAL);
        if (n >= 0) {
          peer.front_offset += static_cast<std::size_t>(n);
          continue;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // poll again
        MarkDown(peer, now, /*connect_failed=*/false);
        return;
      }
      ++stats_.frames_sent;
      peer.outbox_bytes -= wire.size();
      Bytes retired = std::move(peer.outbox.front());
      peer.outbox.pop_front();
      peer.front_offset = 0;
      if (peer.spare.size() < kSpareWireBuffers) {
        retired.clear();
        peer.spare.push_back(std::move(retired));
      }
    }
  }

  void IoLoop() {
    std::vector<Connection> connections;
    std::vector<Peer*> polled_peers;
    std::vector<pollfd> fds;
    while (true) {
      std::uint64_t timeout_ns = kIdlePollNs;
      fds.clear();
      polled_peers.clear();
      {
        std::lock_guard lock(mutex_);
        if (stopping_) return;
        const std::uint64_t now = NowNs();
        for (auto& [id, peer_ptr] : peers_) {
          (void)id;
          Peer& peer = *peer_ptr;
          if (peer.kill) {
            peer.kill = false;
            if (peer.state != PeerState::kDisconnected) {
              // Forced disconnects retry quickly: the peer is usually
              // still alive, this is fault injection, not an outage.
              peer.fd.Close();
              peer.state = PeerState::kDisconnected;
              if (peer.front_offset > 0) {
                stats_.bytes_retransmitted += peer.front_offset;
                peer.front_offset = 0;
              }
              peer.backoff_ns = 0;
              peer.retry_at_ns = now + NextBackoff(peer);
            }
          }
          if (peer.state == PeerState::kDisconnected &&
              !peer.outbox.empty() && peer.retry_at_ns <= now) {
            StartConnect(peer, now);
          }
          switch (peer.state) {
            case PeerState::kDisconnected:
              if (!peer.outbox.empty() && peer.retry_at_ns > now) {
                timeout_ns = std::min(timeout_ns, peer.retry_at_ns - now);
              }
              break;
            case PeerState::kConnecting:
              fds.push_back(pollfd{peer.fd.get(), POLLOUT, 0});
              polled_peers.push_back(&peer);
              break;
            case PeerState::kConnected: {
              short events = POLLIN;  // detect FIN/RST from the peer
              if (!peer.outbox.empty()) events |= POLLOUT;
              fds.push_back(pollfd{peer.fd.get(), events, 0});
              polled_peers.push_back(&peer);
              break;
            }
          }
        }
      }
      const std::size_t peer_fds = fds.size();
      fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
      fds.push_back(pollfd{listen_fd_.get(), POLLIN, 0});
      for (const Connection& connection : connections) {
        fds.push_back(pollfd{connection.fd.get(), POLLIN, 0});
      }

      const int timeout_ms = static_cast<int>(
          std::min<std::uint64_t>(timeout_ns / 1000000 + 1, 100));
      if (::poll(fds.data(), fds.size(), timeout_ms) < 0) {
        if (errno == EINTR) continue;
        CMOM_LOG(kError) << "poll: " << std::strerror(errno);
        return;
      }

      // Outbound side.
      {
        std::lock_guard lock(mutex_);
        if (stopping_) return;
        const std::uint64_t now = NowNs();
        for (std::size_t i = 0; i < peer_fds; ++i) {
          Peer& peer = *polled_peers[i];
          // A kill flag raced in while we were polling; next pass
          // handles it (the fd is still the one we polled).
          if (fds[i].revents == 0) continue;
          if (peer.state == PeerState::kConnecting) {
            int error = 0;
            socklen_t len = sizeof(error);
            if (::getsockopt(peer.fd.get(), SOL_SOCKET, SO_ERROR, &error,
                             &len) != 0) {
              error = errno;
            }
            if (error == 0 && (fds[i].revents & POLLOUT)) {
              MarkUp(peer);
              FlushPeer(peer, now);
            } else if (error != 0 ||
                       (fds[i].revents & (POLLERR | POLLHUP))) {
              MarkDown(peer, now, /*connect_failed=*/true);
            }
            continue;
          }
          if (peer.state != PeerState::kConnected) continue;
          if (fds[i].revents & POLLIN) {
            // The outbound socket never carries frames toward us; any
            // readable event is a FIN (n==0) or an error.
            std::uint8_t scratch[256];
            const ssize_t n = ::recv(peer.fd.get(), scratch, sizeof(scratch),
                                     MSG_DONTWAIT);
            if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                           errno != EINTR)) {
              MarkDown(peer, now, /*connect_failed=*/false);
              continue;
            }
          }
          if (fds[i].revents & (POLLERR | POLLHUP)) {
            MarkDown(peer, now, /*connect_failed=*/false);
            continue;
          }
          if (fds[i].revents & POLLOUT) FlushPeer(peer, now);
        }
      }

      // Wake pipe.
      if (fds[peer_fds].revents & POLLIN) {
        char scratch[64];
        [[maybe_unused]] ssize_t n =
            ::read(wake_read_.get(), scratch, sizeof(scratch));
      }
      // Inbound side.
      if (fds[peer_fds + 1].revents & POLLIN) {
        while (true) {
          const int accepted = ::accept(listen_fd_.get(), nullptr, nullptr);
          if (accepted < 0) break;
          int one = 1;
          ::setsockopt(accepted, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          SetNonBlocking(accepted);
          connections.push_back(Connection{Fd(accepted), {}});
        }
      }
      for (std::size_t i = 0; i < connections.size(); ++i) {
        const std::size_t fd_index = peer_fds + 2 + i;
        if (fd_index >= fds.size()) break;  // accepted this round
        if (!(fds[fd_index].revents & (POLLIN | POLLHUP | POLLERR))) continue;
        if (!ReadFrames(connections[i])) {
          connections[i].fd.Close();
        }
      }
      std::erase_if(connections,
                    [](const Connection& c) { return !c.fd.valid(); });
    }
  }

  // Reads available bytes and dispatches every complete frame; returns
  // false when the peer closed or errored.  A torn trailing frame is
  // discarded with the connection -- the sender rewrites it from its
  // first byte on the replacement connection.
  bool ReadFrames(Connection& connection) {
    std::uint8_t chunk[16 * 1024];
    while (true) {
      ssize_t n = ::recv(connection.fd.get(), chunk, sizeof(chunk),
                         MSG_DONTWAIT);
      if (n > 0) {
        connection.buffer.insert(connection.buffer.end(), chunk, chunk + n);
        continue;
      }
      if (n == 0) return DispatchBuffered(connection), false;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    DispatchBuffered(connection);
    return true;
  }

  void DispatchBuffered(Connection& connection) {
    Bytes& buffer = connection.buffer;
    std::size_t offset = 0;
    while (buffer.size() - offset >= 6) {
      std::uint32_t length = 0;
      std::memcpy(&length, buffer.data() + offset, 4);
      if (buffer.size() - offset - 4 < length) break;
      std::uint16_t sender = 0;
      std::memcpy(&sender, buffer.data() + offset + 4, 2);
      Bytes payload(buffer.begin() + static_cast<std::ptrdiff_t>(offset + 6),
                    buffer.begin() +
                        static_cast<std::ptrdiff_t>(offset + 4 + length));
      offset += 4 + length;
      ReceiveHandler handler;
      {
        std::lock_guard lock(mutex_);
        handler = handler_;
        ++dispatching_;
      }
      if (handler) handler(ServerId(sender), std::move(payload));
      {
        std::lock_guard lock(mutex_);
        if (--dispatching_ == 0) handler_idle_.notify_all();
      }
    }
    buffer.erase(buffer.begin(),
                 buffer.begin() + static_cast<std::ptrdiff_t>(offset));
  }

  ServerId self_;
  std::uint16_t base_port_;
  TcpNetworkOptions options_;
  Fd listen_fd_;
  Fd wake_read_;
  Fd wake_write_;

  mutable std::mutex mutex_;
  bool stopping_ = false;
  ReceiveHandler handler_;
  // Reader threads currently inside a handler invocation; the swap
  // barrier in SetReceiveHandler waits for this to reach zero.
  std::size_t dispatching_ = 0;
  std::condition_variable handler_idle_;
  std::unordered_map<ServerId, std::unique_ptr<Peer>> peers_;
  Rng jitter_rng_;
  TransportStats stats_;

  std::thread io_thread_;
};

Result<std::unique_ptr<Endpoint>> TcpNetwork::CreateEndpoint(ServerId id) {
  auto endpoint = std::make_unique<TcpEndpoint>(id, base_port_, options_);
  Status status = endpoint->Start();
  if (!status.ok()) return status;
  return {std::unique_ptr<Endpoint>(std::move(endpoint))};
}

}  // namespace cmom::net
