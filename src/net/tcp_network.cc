#include "net/tcp_network.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/buffer_pool.h"
#include "common/log.h"
#include "common/rng.h"

namespace cmom::net {

namespace {

// Frame header on the wire: [u32 length][u16 sender]; length counts the
// sender id plus the payload.
constexpr std::size_t kHeaderSize = 6;

// Frames gathered into one sendmsg() round.
constexpr std::size_t kMaxFramesPerWrite = 64;

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ApplySocketOptions(int fd, const TcpNetworkOptions& options) {
  if (options.tcp_nodelay) {
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (options.so_rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options.so_rcvbuf,
                 sizeof(options.so_rcvbuf));
  }
  if (options.so_sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.so_sndbuf,
                 sizeof(options.so_sndbuf));
  }
}

}  // namespace

class TcpEndpoint final : public Endpoint {
 public:
  TcpEndpoint(ServerId self, std::uint16_t base_port, TcpNetworkOptions options,
              std::shared_ptr<Reactor> reactor)
      : state_(std::make_shared<State>(self, base_port, options,
                                       std::move(reactor))) {}

  ~TcpEndpoint() override { state_->Stop(); }

  Status Start() { return state_->Start(); }

  [[nodiscard]] ServerId self() const override { return state_->self; }

  Status Send(ServerId to, Bytes frame) override {
    return state_->Send(to, std::move(frame));
  }

  void SetReceiveHandler(ReceiveHandler handler) override {
    state_->SetReceiveHandler(std::move(handler));
  }

  void Disconnect(ServerId to) override { state_->Disconnect(to); }

  [[nodiscard]] TransportStats stats() const override {
    return state_->Stats();
  }

 private:
  // All endpoint state lives behind a shared_ptr: reactor tasks and
  // timers capture it, so a late backoff retry after the endpoint was
  // destroyed finds `stopping` set instead of freed memory.  Stop()
  // deregisters (and thereby quiesces) every socket before returning,
  // so the fds are released deterministically with the endpoint.
  struct State : std::enable_shared_from_this<State> {
    // One outbound frame: the 6-byte wire header plus the caller's
    // encoding, gathered by sendmsg without copying the payload.
    struct OutFrame {
      std::array<std::uint8_t, kHeaderSize> header;
      Bytes body;
    };

    enum class PeerState { kDisconnected, kConnecting, kConnected };

    // Supervised outbound link to one peer.
    struct Peer {
      ServerId id;
      PeerState state = PeerState::kDisconnected;
      ScopedFd fd;
      std::uint64_t token = 0;        // reactor registration
      std::deque<OutFrame> outbox;    // FIFO
      std::size_t front_offset = 0;   // wire bytes of front() already sent
      std::size_t outbox_bytes = 0;   // header+body bytes queued
      std::uint64_t backoff_ns = 0;   // current delay; 0 = no failures yet
      std::uint64_t retry_at_ns = 0;  // next connect attempt deadline
      bool ever_connected = false;
      bool retry_pending = false;     // backoff timer armed
      bool flush_pending = false;     // flush task posted
    };

    // One accepted inbound connection; touched only on the shard
    // thread, so the parse buffer needs no lock.
    struct Conn {
      ScopedFd fd;
      std::uint64_t token = 0;
      Bytes buffer;
    };

    State(ServerId self_id, std::uint16_t port, TcpNetworkOptions opts,
          std::shared_ptr<Reactor> reactor_ptr)
        : self(self_id),
          base_port(port),
          options(opts),
          reactor(std::move(reactor_ptr)),
          jitter_rng(opts.jitter_seed * 0x9E3779B9ull + self_id.value()) {}

    Status Start() {
      shard = reactor->PickShard();
      listen_fd = ScopedFd(::socket(AF_INET, SOCK_STREAM, 0));
      if (!listen_fd.valid()) {
        return Status::Unavailable(std::string("socket: ") +
                                   std::strerror(errno));
      }
      int one = 1;
      ::setsockopt(listen_fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                   sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port =
          htons(static_cast<std::uint16_t>(base_port + self.value()));
      if (::bind(listen_fd.get(), reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        return Status::Unavailable(std::string("bind: ") +
                                   std::strerror(errno));
      }
      if (::listen(listen_fd.get(), options.listen_backlog) != 0) {
        return Status::Unavailable(std::string("listen: ") +
                                   std::strerror(errno));
      }
      SetNonBlocking(listen_fd.get());
      auto self_ptr = shared_from_this();
      listen_token =
          reactor->Register(shard, listen_fd.get(),
                            [self_ptr](std::uint32_t) { self_ptr->Accept(); });
      if (listen_token == 0) {
        return Status::Unavailable("reactor registration failed");
      }
      return Status::Ok();
    }

    // Blocks until no socket of this endpoint can dispatch again, then
    // closes them.  Late timers find `stopping` and return.
    void Stop() {
      std::uint64_t listener = 0;
      std::vector<std::uint64_t> tokens;
      {
        std::lock_guard lock(mutex);
        if (stopping) return;
        stopping = true;
        listener = std::exchange(listen_token, 0);
        for (auto& [id, peer] : peers) {
          (void)id;
          tokens.push_back(std::exchange(peer->token, 0));
        }
        for (auto& [token, conn] : conns) {
          (void)conn;
          tokens.push_back(token);
        }
      }
      if (listener != 0) reactor->Deregister(listener);
      for (std::uint64_t token : tokens) reactor->Deregister(token);
      std::lock_guard lock(mutex);
      listen_fd.Close();
      for (auto& [id, peer] : peers) {
        (void)id;
        peer->fd.Close();
      }
      for (auto& [token, conn] : conns) {
        (void)token;
        conn->fd.Close();
      }
      conns.clear();
    }

    // ---- send path ---------------------------------------------------

    Status Send(ServerId to, Bytes frame) {
      const std::size_t wire_size = kHeaderSize + frame.size();
      std::size_t target_shard;
      std::shared_ptr<State> self_ptr;
      bool kick_flush = false;
      bool kick_connect = false;
      std::uint64_t connect_delay_ns = 0;
      {
        std::lock_guard lock(mutex);
        if (stopping) return Status::FailedPrecondition("endpoint stopped");
        Peer& peer = PeerFor(to);
        if (peer.outbox.size() >= options.outbox_max_frames ||
            peer.outbox_bytes + wire_size > options.outbox_max_bytes) {
          // Backpressure, not failure: the peer link is alive but the
          // caller is producing faster than the wire drains.  Distinct
          // from kUnavailable (peer gone) so flow control can react by
          // pausing instead of treating the link as down.
          ++stats.frames_dropped;
          return Status::Overloaded("outbox full for " + to_string(to));
        }
        OutFrame out;
        const std::uint32_t length =
            static_cast<std::uint32_t>(frame.size()) + 2;
        std::memcpy(out.header.data(), &length, 4);
        const std::uint16_t sender = self.value();
        std::memcpy(out.header.data() + 4, &sender, 2);
        out.body = std::move(frame);
        peer.outbox_bytes += wire_size;
        peer.outbox.push_back(std::move(out));
        switch (peer.state) {
          case PeerState::kConnected:
            if (!peer.flush_pending) {
              peer.flush_pending = true;
              kick_flush = true;
            }
            break;
          case PeerState::kConnecting:
            ++stats.frames_buffered;
            break;
          case PeerState::kDisconnected: {
            ++stats.frames_buffered;
            if (!peer.retry_pending) {
              peer.retry_pending = true;
              kick_connect = true;
              const std::uint64_t now = NowNs();
              connect_delay_ns =
                  peer.retry_at_ns > now ? peer.retry_at_ns - now : 0;
            }
            break;
          }
        }
        target_shard = shard;
        if (kick_flush || kick_connect) self_ptr = shared_from_this();
      }
      if (kick_flush) {
        reactor->Post(target_shard,
                      [self_ptr, to] { self_ptr->FlushTask(to); });
      } else if (kick_connect) {
        reactor->PostDelayed(target_shard, connect_delay_ns,
                             [self_ptr, to] { self_ptr->RetryTask(to); });
      }
      return Status::Ok();
    }

    void FlushTask(ServerId to) {
      std::lock_guard lock(mutex);
      auto it = peers.find(to);
      if (it == peers.end()) return;
      it->second->flush_pending = false;
      if (stopping || it->second->state != PeerState::kConnected) return;
      FlushPeerLocked(*it->second);
    }

    // Backoff retry: reconnect if there is still something to send.
    void RetryTask(ServerId to) {
      std::lock_guard lock(mutex);
      auto it = peers.find(to);
      if (it == peers.end()) return;
      Peer& peer = *it->second;
      peer.retry_pending = false;
      if (stopping || peer.state != PeerState::kDisconnected ||
          peer.outbox.empty()) {
        return;
      }
      const std::uint64_t now = NowNs();
      if (peer.retry_at_ns > now) {
        ScheduleRetryLocked(peer, peer.retry_at_ns - now);
        return;
      }
      StartConnectLocked(peer);
    }

    void ScheduleRetryLocked(Peer& peer, std::uint64_t delay_ns) {
      if (peer.retry_pending) return;
      peer.retry_pending = true;
      auto self_ptr = shared_from_this();
      const ServerId to = peer.id;
      reactor->PostDelayed(shard, delay_ns,
                           [self_ptr, to] { self_ptr->RetryTask(to); });
    }

    // Next backoff delay with jitter; grows exponentially up to the cap.
    std::uint64_t NextBackoffLocked(Peer& peer) {
      peer.backoff_ns = peer.backoff_ns == 0
                            ? options.backoff_initial_ns
                            : std::min(options.backoff_max_ns,
                                       peer.backoff_ns * 2);
      const double jitter =
          1.0 + options.backoff_jitter * (2.0 * jitter_rng.NextDouble() - 1.0);
      return static_cast<std::uint64_t>(
          static_cast<double>(peer.backoff_ns) * std::max(0.0, jitter));
    }

    // The connection died (write error, EOF, refused connect or forced
    // disconnect): keep the outbox, rewind the partially-written front
    // frame and schedule a supervised reconnect.  Shard thread only.
    void MarkDownLocked(Peer& peer, bool connect_failed) {
      if (peer.token != 0) reactor->Deregister(std::exchange(peer.token, 0));
      peer.fd.Close();
      peer.state = PeerState::kDisconnected;
      peer.flush_pending = false;
      if (peer.front_offset > 0) {
        stats.bytes_retransmitted += peer.front_offset;
        peer.front_offset = 0;  // resend the whole frame on the next link
      }
      if (connect_failed) ++stats.connect_failures;
      const std::uint64_t delay = NextBackoffLocked(peer);
      peer.retry_at_ns = NowNs() + delay;
      if (!peer.outbox.empty()) ScheduleRetryLocked(peer, delay);
    }

    void MarkUpLocked(Peer& peer) {
      peer.state = PeerState::kConnected;
      ++stats.connects;
      if (peer.ever_connected) ++stats.reconnects;
      peer.ever_connected = true;
      peer.backoff_ns = 0;
    }

    // Begins (or completes) a non-blocking connect.  Shard thread only.
    void StartConnectLocked(Peer& peer) {
      ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
      if (!fd.valid()) {
        MarkDownLocked(peer, /*connect_failed=*/true);
        return;
      }
      SetNonBlocking(fd.get());
      ApplySocketOptions(fd.get(), options);
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port =
          htons(static_cast<std::uint16_t>(base_port + peer.id.value()));
      const int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                               sizeof(addr));
      if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
        MarkDownLocked(peer, /*connect_failed=*/true);
        return;
      }
      peer.fd = std::move(fd);
      peer.state = rc == 0 ? PeerState::kConnected : PeerState::kConnecting;
      auto self_ptr = shared_from_this();
      const ServerId to = peer.id;
      peer.token = reactor->Register(
          shard, peer.fd.get(),
          [self_ptr, to](std::uint32_t events) {
            self_ptr->OnPeerEvent(to, events);
          });
      if (peer.token == 0) {
        MarkDownLocked(peer, /*connect_failed=*/true);
        return;
      }
      if (rc == 0) {
        MarkUpLocked(peer);
        FlushPeerLocked(peer);
      }
    }

    void OnPeerEvent(ServerId to, std::uint32_t events) {
      std::lock_guard lock(mutex);
      if (stopping) return;
      auto it = peers.find(to);
      if (it == peers.end()) return;
      Peer& peer = *it->second;
      if (peer.state == PeerState::kConnecting) {
        int error = 0;
        socklen_t len = sizeof(error);
        if (::getsockopt(peer.fd.get(), SOL_SOCKET, SO_ERROR, &error, &len) !=
            0) {
          error = errno;
        }
        if (error == 0 && (events & EPOLLOUT) != 0) {
          MarkUpLocked(peer);
          FlushPeerLocked(peer);
        } else if (error != 0 || (events & (EPOLLERR | EPOLLHUP)) != 0) {
          MarkDownLocked(peer, /*connect_failed=*/true);
        }
        return;
      }
      if (peer.state != PeerState::kConnected) return;
      if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        // The outbound socket never carries frames toward us; readable
        // means FIN (n == 0) or an error.  Edge-triggered, so drain.
        while (true) {
          std::uint8_t scratch[256];
          const ssize_t n =
              ::recv(peer.fd.get(), scratch, sizeof(scratch), MSG_DONTWAIT);
          if (n > 0) continue;
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          MarkDownLocked(peer, /*connect_failed=*/false);
          return;
        }
      }
      if ((events & (EPOLLERR | EPOLLHUP)) != 0) {
        MarkDownLocked(peer, /*connect_failed=*/false);
        return;
      }
      if ((events & EPOLLOUT) != 0) FlushPeerLocked(peer);
    }

    // Writes as much of the outbox as the socket accepts with vectored
    // sendmsg straight from the queued frame encodings; never blocks.
    // Shard thread only, caller holds `mutex`.
    void FlushPeerLocked(Peer& peer) {
      while (!peer.outbox.empty()) {
        std::array<iovec, 2 * kMaxFramesPerWrite> iov;
        std::size_t iov_count = 0;
        std::size_t frames = 0;
        for (auto it = peer.outbox.begin();
             it != peer.outbox.end() && frames < kMaxFramesPerWrite;
             ++it, ++frames) {
          std::size_t skip = frames == 0 ? peer.front_offset : 0;
          if (skip < kHeaderSize) {
            iov[iov_count].iov_base = it->header.data() + skip;
            iov[iov_count].iov_len = kHeaderSize - skip;
            ++iov_count;
            skip = 0;
          } else {
            skip -= kHeaderSize;
          }
          if (it->body.size() > skip) {
            iov[iov_count].iov_base = it->body.data() + skip;
            iov[iov_count].iov_len = it->body.size() - skip;
            ++iov_count;
          }
        }
        msghdr msg{};
        msg.msg_iov = iov.data();
        msg.msg_iovlen = iov_count;
        const ssize_t n = ::sendmsg(peer.fd.get(), &msg, MSG_NOSIGNAL);
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            ++stats.partial_writes;
            return;  // EPOLLOUT edge resumes the flush
          }
          MarkDownLocked(peer, /*connect_failed=*/false);
          return;
        }
        std::size_t written = static_cast<std::size_t>(n);
        while (written > 0 && !peer.outbox.empty()) {
          OutFrame& front = peer.outbox.front();
          const std::size_t wire_size = kHeaderSize + front.body.size();
          const std::size_t remaining = wire_size - peer.front_offset;
          if (written < remaining) {
            peer.front_offset += written;
            written = 0;
            break;
          }
          written -= remaining;
          ++stats.frames_sent;
          peer.outbox_bytes -= wire_size;
          peer.front_offset = 0;
          BufferPool::Release(std::move(front.body));
          peer.outbox.pop_front();
        }
      }
    }

    // ---- receive path ------------------------------------------------

    void Accept() {
      while (true) {
        const int accepted = ::accept(listen_fd.get(), nullptr, nullptr);
        if (accepted < 0) break;
        SetNonBlocking(accepted);
        ApplySocketOptions(accepted, options);
        auto conn = std::make_shared<Conn>();
        conn->fd = ScopedFd(accepted);
        auto self_ptr = shared_from_this();
        const std::uint64_t token = reactor->Register(
            shard, conn->fd.get(),
            [self_ptr, conn](std::uint32_t events) {
              self_ptr->OnConnEvent(*conn, events);
            });
        if (token == 0) continue;  // conn's fd closes with the lambda
        conn->token = token;
        std::lock_guard lock(mutex);
        if (stopping) {
          // Raced with Stop(): it no longer sees this conn, so undo.
          // (Deregister from the shard thread is inline and safe.)
          reactor->Deregister(token);
          continue;
        }
        conns.emplace(token, std::move(conn));
      }
    }

    void OnConnEvent(Conn& conn, std::uint32_t events) {
      bool closed = (events & (EPOLLERR | EPOLLHUP)) != 0;
      while (!closed) {
        std::uint8_t chunk[16 * 1024];
        const ssize_t n =
            ::recv(conn.fd.get(), chunk, sizeof(chunk), MSG_DONTWAIT);
        if (n > 0) {
          conn.buffer.insert(conn.buffer.end(), chunk, chunk + n);
          continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
        closed = true;  // FIN or error
      }
      DispatchBuffered(conn);
      if (closed) {
        reactor->Deregister(std::exchange(conn.token, 0));
        conn.fd.Close();
        std::lock_guard lock(mutex);
        for (auto it = conns.begin(); it != conns.end(); ++it) {
          if (it->second.get() == &conn) {
            conns.erase(it);
            break;
          }
        }
      }
    }

    // Parses and dispatches every complete frame in `conn.buffer`.  A
    // torn trailing frame stays buffered (or is discarded with the
    // connection -- the sender rewrites it from its first byte on the
    // replacement connection).
    void DispatchBuffered(Conn& conn) {
      Bytes& buffer = conn.buffer;
      if (buffer.size() < kHeaderSize) return;
      ReceiveHandler handler;
      {
        std::lock_guard lock(mutex);
        handler = this->handler;
        ++dispatching;
      }
      std::size_t offset = 0;
      while (buffer.size() - offset >= kHeaderSize) {
        std::uint32_t length = 0;
        std::memcpy(&length, buffer.data() + offset, 4);
        if (buffer.size() - offset - 4 < length) break;
        std::uint16_t sender = 0;
        std::memcpy(&sender, buffer.data() + offset + 4, 2);
        const std::size_t payload_size = length - 2;
        Bytes payload = BufferPool::Acquire(payload_size);
        payload.resize(payload_size);
        if (payload_size > 0) {
          std::memcpy(payload.data(), buffer.data() + offset + kHeaderSize,
                      payload_size);
        }
        offset += 4 + length;
        if (handler) handler(ServerId(sender), std::move(payload));
      }
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(offset));
      {
        std::lock_guard lock(mutex);
        if (--dispatching == 0) handler_idle.notify_all();
      }
    }

    // ---- control -----------------------------------------------------

    void SetReceiveHandler(ReceiveHandler new_handler) {
      std::unique_lock lock(mutex);
      handler = std::move(new_handler);
      // Swap barrier (see Endpoint): shard threads invoke a copy of the
      // old handler unlocked; wait those dispatches out so the caller
      // can safely destroy what the old handler captured.
      handler_idle.wait(lock, [&] { return dispatching == 0; });
    }

    void Disconnect(ServerId to) {
      std::shared_ptr<State> self_ptr;
      {
        std::lock_guard lock(mutex);
        auto it = peers.find(to);
        if (it == peers.end() ||
            it->second->state == PeerState::kDisconnected) {
          return;  // nothing live to sever
        }
        ++stats.forced_disconnects;
        self_ptr = shared_from_this();
      }
      reactor->Post(shard, [self_ptr, to] {
        std::lock_guard lock(self_ptr->mutex);
        if (self_ptr->stopping) return;
        auto it = self_ptr->peers.find(to);
        if (it == self_ptr->peers.end() ||
            it->second->state == PeerState::kDisconnected) {
          return;
        }
        // Forced disconnects retry quickly: the peer is usually still
        // alive, this is fault injection, not an outage.
        it->second->backoff_ns = 0;
        self_ptr->MarkDownLocked(*it->second, /*connect_failed=*/false);
      });
    }

    [[nodiscard]] TransportStats Stats() const {
      std::lock_guard lock(mutex);
      TransportStats out = stats;
      for (const auto& [id, peer] : peers) {
        (void)id;
        out.outbox_frames += peer->outbox.size();
        out.outbox_bytes += peer->outbox_bytes;
        if (peer->state == PeerState::kDisconnected) {
          out.current_backoff_ns =
              std::max(out.current_backoff_ns, peer->backoff_ns);
        }
      }
      return out;
    }

    Peer& PeerFor(ServerId to) {
      auto it = peers.find(to);
      if (it == peers.end()) {
        auto peer = std::make_unique<Peer>();
        peer->id = to;
        it = peers.emplace(to, std::move(peer)).first;
      }
      return *it->second;
    }

    const ServerId self;
    const std::uint16_t base_port;
    const TcpNetworkOptions options;
    const std::shared_ptr<Reactor> reactor;
    std::size_t shard = 0;
    ScopedFd listen_fd;
    std::uint64_t listen_token = 0;

    mutable std::mutex mutex;
    bool stopping = false;
    ReceiveHandler handler;
    // Shard threads currently inside a handler invocation; the swap
    // barrier in SetReceiveHandler waits for this to reach zero.
    std::size_t dispatching = 0;
    std::condition_variable handler_idle;
    std::unordered_map<ServerId, std::unique_ptr<Peer>> peers;
    std::unordered_map<std::uint64_t, std::shared_ptr<Conn>> conns;
    Rng jitter_rng;
    TransportStats stats;
  };

  std::shared_ptr<State> state_;
};

TcpNetwork::~TcpNetwork() {
  if (reactor_ != nullptr) reactor_->Stop();
}

std::shared_ptr<Reactor> TcpNetwork::reactor() {
  std::lock_guard lock(mutex_);
  if (reactor_ == nullptr) {
    std::size_t threads = options_.reactor_threads;
    if (threads == 0) {
      const std::size_t hw = std::thread::hardware_concurrency();
      threads = std::clamp<std::size_t>(hw / 2, 2, 4);
    }
    reactor_ = std::make_shared<Reactor>(threads);
  }
  return reactor_;
}

std::vector<ReactorShardStats> TcpNetwork::reactor_stats() const {
  std::lock_guard lock(mutex_);
  if (reactor_ == nullptr) return {};
  return reactor_->Stats();
}

Result<std::unique_ptr<Endpoint>> TcpNetwork::CreateEndpoint(ServerId id) {
  auto endpoint =
      std::make_unique<TcpEndpoint>(id, base_port_, options_, reactor());
  Status status = endpoint->Start();
  if (!status.ok()) return status;
  return {std::unique_ptr<Endpoint>(std::move(endpoint))};
}

}  // namespace cmom::net
