// Shared epoll reactor: a small fixed pool of event-loop threads
// multiplexing every socket of a process.
//
// The old transport ran one blocking poll() thread per endpoint -- fine
// for a ten-server domain graph, hopeless for a gateway fanning in tens
// of thousands of client sessions.  The reactor inverts that: N shard
// threads (N fixed at construction, independent of connection count),
// each owning one epoll instance, an eventfd for cross-thread wakeups,
// a task queue and a timer heap.  Sockets register edge-triggered
// (EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET) exactly once; all state
// transitions afterwards are event- or task-driven, so the per-
// connection idle cost is one epoll entry and whatever the owner keeps.
//
// Threading contract:
//   - A registration is pinned to one shard; its event callback and
//     every task posted to that shard run on that shard's thread, so
//     per-connection state needs no lock of its own.
//   - Register/Post/PostDelayed are thread-safe.
//   - Deregister blocks until the callback can no longer be running
//     (it runs the removal ON the shard thread and waits for it, or
//     inline when already called from that thread).  After it returns
//     the caller owns the fd again and may close it.
//
// Stale-event safety: epoll events carry a monotonically increasing
// token, not the fd.  A callback is looked up by token under the shard
// lock at dispatch time, so an event queued before a Deregister -- or
// for a recycled fd number -- dispatches to nothing instead of to the
// wrong connection.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unistd.h>
#include <utility>
#include <vector>

namespace cmom::net {

// RAII file descriptor (shared by the reactor, transport and gateway).
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ScopedFd(ScopedFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  ScopedFd& operator=(ScopedFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;
  ~ScopedFd() { Close(); }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

void SetNonBlocking(int fd);

// Per-shard health counters (momtool and the net bench surface these).
struct ReactorShardStats {
  std::uint64_t polls = 0;    // epoll_wait returns
  std::uint64_t events = 0;   // socket events dispatched
  std::uint64_t tasks = 0;    // posted tasks run
  std::uint64_t timers = 0;   // delayed tasks fired
  std::uint64_t wakeups = 0;  // cross-thread eventfd kicks
  std::uint64_t fds = 0;      // currently registered sockets (gauge)
};

class Reactor {
 public:
  // `epoll_events` is the raw event mask (EPOLLIN/EPOLLOUT/...).
  using EventFn = std::function<void(std::uint32_t epoll_events)>;
  using Task = std::function<void()>;

  explicit Reactor(std::size_t shards);
  ~Reactor();

  // Stops and joins every shard thread, then destroys all still-queued
  // tasks, timers and handlers on the calling thread.  Idempotent; the
  // destructor calls it.  Owners that hand their reactor out via
  // shared_ptr (TcpNetwork::reactor()) must call this before dropping
  // their reference: queued tasks may capture objects that themselves
  // hold the reactor (a reference cycle until the queues are cleared),
  // and a shard thread dropping the last reference would self-join.
  // Must not be called from a shard thread.
  void Stop();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  [[nodiscard]] std::size_t shard_count() const;

  // Least-loaded shard (fewest registered fds) for a new connection.
  [[nodiscard]] std::size_t PickShard() const;

  // Registers `fd` edge-triggered on `shard`.  The fd must already be
  // non-blocking; the caller retains ownership of it.  Returns a token
  // for Deregister (0 on failure).
  std::uint64_t Register(std::size_t shard, int fd, EventFn fn);

  // Removes the registration and blocks until its callback cannot run
  // again (see header comment).  Safe to call from the shard thread
  // itself (inline removal; the current invocation finishes normally).
  void Deregister(std::uint64_t token);

  // Runs `task` on the shard thread, after any dispatch in progress.
  // Returns false when the reactor is already stopping (task dropped).
  bool Post(std::size_t shard, Task task);
  // Runs `task` on the shard thread once `delay_ns` elapsed.
  void PostDelayed(std::size_t shard, std::uint64_t delay_ns, Task task);

  [[nodiscard]] bool OnShardThread(std::size_t shard) const;
  [[nodiscard]] std::vector<ReactorShardStats> Stats() const;

 private:
  struct Shard;
  static constexpr std::uint64_t kTokenShardShift = 48;
  [[nodiscard]] Shard& ShardOf(std::uint64_t token) const;
  static void Loop(Shard* shard);

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cmom::net
