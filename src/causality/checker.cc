#include "causality/checker.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace cmom::causality {

namespace {

std::string Describe(const Violation& violation) {
  std::ostringstream out;
  out << "at " << to_string(violation.process) << ": " << violation.later
      << " delivered before " << violation.earlier << ", but "
      << violation.earlier << " causally precedes it";
  return out.str();
}

}  // namespace

CausalityChecker::CausalityChecker(std::vector<ServerId> servers)
    : servers_(std::move(servers)) {
  std::sort(servers_.begin(), servers_.end());
}

std::size_t CausalityChecker::RankOf(ServerId server) const {
  auto it = std::lower_bound(servers_.begin(), servers_.end(), server);
  return static_cast<std::size_t>(it - servers_.begin());
}

CheckReport CausalityChecker::CheckCausalDelivery(
    const Trace& trace, std::size_t max_violations) const {
  CheckReport report;
  const std::size_t n = servers_.size();

  // Per-server vector clock, replayed over the recorded order.
  std::vector<clocks::VectorClock> clock(n, clocks::VectorClock(n));
  // Vector timestamp of each message's send event.
  std::unordered_map<MessageId, clocks::VectorClock> send_stamp;
  // Sends whose delivery has not been replayed yet, per destination.
  std::unordered_map<ServerId, std::vector<MessageId>> in_flight;

  for (const TraceEvent& event : trace) {
    const std::size_t p = RankOf(event.process);
    if (event.kind == EventKind::kSend) {
      ++report.messages_sent;
      clock[p].Increment(p);
      send_stamp.emplace(event.message, clock[p]);
      in_flight[event.destination].push_back(event.message);
    } else {
      ++report.messages_delivered;
      auto stamp_it = send_stamp.find(event.message);
      if (stamp_it == send_stamp.end()) continue;  // delivery without send
      const clocks::VectorClock& delivered_stamp = stamp_it->second;

      // Any still-undelivered message to this destination whose send
      // causally precedes this one should have been delivered first.
      auto& pending = in_flight[event.destination];
      for (MessageId other : pending) {
        if (other == event.message) continue;
        if (report.violations.size() >= max_violations) break;
        const clocks::VectorClock& other_stamp = send_stamp.at(other);
        if (other_stamp.HappensBefore(delivered_stamp) ||
            (other_stamp == delivered_stamp && other < event.message)) {
          Violation violation{other, event.message, event.process, {}};
          violation.description = Describe(violation);
          report.violations.push_back(std::move(violation));
        }
      }
      pending.erase(std::remove(pending.begin(), pending.end(), event.message),
                    pending.end());

      clock[p].MergeFrom(delivered_stamp);
      clock[p].Increment(p);
    }
  }
  return report;
}

Status CausalityChecker::CheckExactlyOnce(const Trace& trace) const {
  std::unordered_map<MessageId, int> deliveries;
  std::unordered_set<MessageId> sends;
  for (const TraceEvent& event : trace) {
    if (event.kind == EventKind::kSend) {
      if (!sends.insert(event.message).second) {
        std::ostringstream out;
        out << "message " << event.message << " sent twice";
        return Status::Internal(out.str());
      }
    } else {
      if (++deliveries[event.message] > 1) {
        std::ostringstream out;
        out << "message " << event.message << " delivered more than once";
        return Status::DataLoss(out.str());
      }
    }
  }
  for (MessageId message : sends) {
    if (deliveries[message] == 0) {
      std::ostringstream out;
      out << "message " << message << " sent but never delivered";
      return Status::DataLoss(out.str());
    }
  }
  for (const auto& [message, count] : deliveries) {
    if (!sends.contains(message)) {
      std::ostringstream out;
      out << "message " << message << " delivered but never sent";
      return Status::DataLoss(out.str());
    }
  }
  return Status::Ok();
}

}  // namespace cmom::causality
