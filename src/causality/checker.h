// Offline causal-delivery oracle.
//
// Independent of the matrix-clock machinery under test: the checker
// re-derives the causal precedence relation of Section 4.2 from the
// recorded trace with per-server vector clocks (send and delivery
// events replayed in recorded order), then verifies
//
//   dst(m) = p  and  dst(m') = p  and  m "causally precedes" m'
//       ==>  m delivered at p before m'            (causal delivery)
//
// plus the Message Bus's reliability contract: every sent message is
// delivered exactly once (no loss at quiescence, no duplicates).
//
// m causally precedes m' iff V(send m) <= V(send m') with m != m',
// where V are event vector timestamps -- the standard characterization,
// equivalent to the paper's three-clause definition.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "causality/trace.h"
#include "clocks/vector_clock.h"
#include "common/ids.h"
#include "common/status.h"

namespace cmom::causality {

struct Violation {
  // `earlier` causally precedes `later`, yet `later` was delivered
  // first at `process`.
  MessageId earlier;
  MessageId later;
  ServerId process;
  std::string description;
};

struct CheckReport {
  std::vector<Violation> violations;
  std::size_t messages_sent = 0;
  std::size_t messages_delivered = 0;

  [[nodiscard]] bool causal() const { return violations.empty(); }
};

class CausalityChecker {
 public:
  // `servers` enumerates every process that may appear in the trace.
  explicit CausalityChecker(std::vector<ServerId> servers);

  // Verifies causal delivery over the whole trace.  Stops collecting
  // after `max_violations` findings (the trace may contain thousands).
  [[nodiscard]] CheckReport CheckCausalDelivery(
      const Trace& trace, std::size_t max_violations = 16) const;

  // Exactly-once: every send has exactly one delivery at its
  // destination, and every delivery matches a prior send.
  [[nodiscard]] Status CheckExactlyOnce(const Trace& trace) const;

 private:
  [[nodiscard]] std::size_t RankOf(ServerId server) const;

  std::vector<ServerId> servers_;
};

}  // namespace cmom::causality
