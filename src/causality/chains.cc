#include "causality/chains.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace cmom::causality {

ChainAnalyzer::ChainAnalyzer(const Trace& trace) {
  // Local event position counters per process, advanced in trace order
  // (the trace is recorded in an order consistent with each process's
  // local time).
  std::unordered_map<ServerId, std::size_t> next_position;
  std::unordered_map<MessageId, MessageInfo> partial;

  for (const TraceEvent& event : trace) {
    const std::size_t position = next_position[event.process]++;
    if (event.kind == EventKind::kSend) {
      MessageInfo& info = partial[event.message];
      info.id = event.message;
      info.sender = event.process;
      info.send_pos = position;
    } else {
      MessageInfo& info = partial[event.message];
      info.id = event.message;
      info.receiver = event.process;
      info.deliver_pos = position;
    }
  }
  // Keep only messages with both endpoints recorded, in a deterministic
  // order.
  for (const TraceEvent& event : trace) {
    if (event.kind != EventKind::kSend) continue;
    auto it = partial.find(event.message);
    if (it == partial.end()) continue;
    // A delivery implies a receiver different from a default value only
    // if it was recorded; detect missing delivery via re-scan flag.
    messages_.push_back(it->second);
  }
  // Drop sends that were never delivered: their deliver_pos is
  // meaningless.  A message delivered at position 0 is valid, so track
  // delivery presence explicitly.
  std::unordered_map<MessageId, bool> delivered;
  for (const TraceEvent& event : trace) {
    if (event.kind == EventKind::kDeliver) delivered[event.message] = true;
  }
  std::erase_if(messages_, [&](const MessageInfo& info) {
    return !delivered.contains(info.id);
  });

  for (std::size_t i = 0; i < messages_.size(); ++i) {
    sends_by_process_[messages_[i].sender].push_back(i);
  }
}

const ChainAnalyzer::MessageInfo* ChainAnalyzer::Find(MessageId id) const {
  for (const MessageInfo& info : messages_) {
    if (info.id == id) return &info;
  }
  return nullptr;
}

std::optional<std::size_t> ChainAnalyzer::SendPosition(MessageId id) const {
  const MessageInfo* info = Find(id);
  if (info == nullptr) return std::nullopt;
  return info->send_pos;
}

std::optional<std::size_t> ChainAnalyzer::DeliverPosition(
    MessageId id) const {
  const MessageInfo* info = Find(id);
  if (info == nullptr) return std::nullopt;
  return info->deliver_pos;
}

bool ChainAnalyzer::IsChain(const Chain& chain) const {
  if (chain.empty()) return false;
  const MessageInfo* previous = nullptr;
  for (MessageId id : chain) {
    const MessageInfo* info = Find(id);
    if (info == nullptr) return false;
    if (previous != nullptr) {
      // Linked at the previous receiver, receive before send.
      if (info->sender != previous->receiver) return false;
      if (info->send_pos <= previous->deliver_pos) return false;
    }
    previous = info;
  }
  return true;
}

ServerId ChainAnalyzer::Source(const Chain& chain) const {
  assert(!chain.empty());
  return Find(chain.front())->sender;
}

ServerId ChainAnalyzer::Destination(const Chain& chain) const {
  assert(!chain.empty());
  return Find(chain.back())->receiver;
}

std::vector<ServerId> ChainAnalyzer::AssociatedPath(
    const Chain& chain) const {
  std::vector<ServerId> path;
  for (MessageId id : chain) path.push_back(Find(id)->sender);
  if (!chain.empty()) path.push_back(Find(chain.back())->receiver);
  return path;
}

bool ChainAnalyzer::IsDirect(const Chain& chain) const {
  const std::vector<ServerId> path = AssociatedPath(chain);
  std::vector<ServerId> sorted = path;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

Chain ChainAnalyzer::MakeDirect(Chain chain) const {
  assert(IsChain(chain));
  assert(Source(chain) != Destination(chain));
  // Appendix B, Lemma 1: while the associated path (p1..pk+1) repeats a
  // process (pi == pj, i < j), splice out the loop.  Following the
  // proof's three cases:
  //   i == 1           -> keep (mj, ..., mK)             [case a]
  //   j == K+1         -> keep (m1, ..., m(i-1))         [case b]
  //   otherwise        -> (m1..m(i-1), mj..mK)           [case c]
  // Each step shortens the chain, so this terminates with a direct
  // chain with the same endpoints.
  while (!IsDirect(chain)) {
    const std::vector<ServerId> path = AssociatedPath(chain);
    // Find the first repeat (i < j minimal lexicographically).
    std::size_t loop_i = 0, loop_j = 0;
    bool found = false;
    for (std::size_t i = 0; i < path.size() && !found; ++i) {
      for (std::size_t j = i + 1; j < path.size(); ++j) {
        if (path[i] == path[j]) {
          loop_i = i;
          loop_j = j;
          found = true;
          break;
        }
      }
    }
    assert(found);
    const std::size_t k = chain.size();
    Chain next;
    if (loop_i == 0 && loop_j < k) {
      next.assign(chain.begin() + static_cast<long>(loop_j), chain.end());
    } else if (loop_j == k) {  // path index K+1 == chain size k
      next.assign(chain.begin(), chain.begin() + static_cast<long>(loop_i));
    } else {
      next.assign(chain.begin(), chain.begin() + static_cast<long>(loop_i));
      next.insert(next.end(), chain.begin() + static_cast<long>(loop_j),
                  chain.end());
    }
    assert(!next.empty());
    chain = std::move(next);
    assert(IsChain(chain));
  }
  return chain;
}

std::vector<Chain> ChainAnalyzer::ChainsFrom(MessageId first,
                                             std::size_t max_length) const {
  std::vector<Chain> result;
  const MessageInfo* info = Find(first);
  if (info == nullptr) return result;

  Chain current{first};
  auto extend = [&](auto&& self, const MessageInfo& tail) -> void {
    result.push_back(current);
    if (current.size() >= max_length) return;
    auto it = sends_by_process_.find(tail.receiver);
    if (it == sends_by_process_.end()) return;
    for (std::size_t index : it->second) {
      const MessageInfo& candidate = messages_[index];
      if (candidate.send_pos <= tail.deliver_pos) continue;
      current.push_back(candidate.id);
      self(self, candidate);
      current.pop_back();
    }
  };
  extend(extend, *info);
  return result;
}

}  // namespace cmom::causality
