// Execution trace recording.
//
// The oracle needs the global history of the computation (Section 4.2):
// the send and delivery events of every application-level message, in
// an order consistent with real (or simulated) time.  Servers call
// RecordSend / RecordDeliver; the recorder is thread-safe so the same
// code serves the simulated, in-process-threaded and TCP transports.
//
// Only *application* messages are recorded -- a message forwarded
// through causal router-servers is one virtual message (one chain) and
// appears as a single send at its origin server and a single delivery
// at its final destination server, which is exactly the granularity the
// theorem speaks about.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/ids.h"

namespace cmom::causality {

enum class EventKind : std::uint8_t { kSend, kDeliver };

struct TraceEvent {
  EventKind kind;
  MessageId message;
  ServerId process;      // server where the event happened
  ServerId destination;  // final destination server of the message
  AgentId src_agent;
  AgentId dst_agent;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

using Trace = std::vector<TraceEvent>;

class TraceRecorder {
 public:
  void RecordSend(MessageId message, ServerId at, ServerId destination,
                  AgentId src_agent, AgentId dst_agent);
  void RecordDeliver(MessageId message, ServerId at, ServerId destination,
                     AgentId src_agent, AgentId dst_agent);

  // Copies the events recorded so far, in recording order.
  [[nodiscard]] Trace Snapshot() const;

  [[nodiscard]] std::size_t size() const;

  void Clear();

 private:
  mutable std::mutex mutex_;
  Trace events_;
};

}  // namespace cmom::causality
