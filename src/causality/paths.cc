#include "causality/paths.h"

#include <algorithm>
#include <set>

namespace cmom::causality {

PathAnalyzer::PathAnalyzer(domains::MomConfig config)
    : config_(std::move(config)) {}

std::vector<std::size_t> PathAnalyzer::DomainsContaining(
    ServerId server) const {
  std::vector<std::size_t> result;
  for (std::size_t d = 0; d < config_.domains.size(); ++d) {
    const auto& members = config_.domains[d].members;
    if (std::find(members.begin(), members.end(), server) != members.end()) {
      result.push_back(d);
    }
  }
  return result;
}

bool PathAnalyzer::SameDomain(ServerId a, ServerId b) const {
  for (const domains::DomainSpec& domain : config_.domains) {
    const auto& m = domain.members;
    if (std::find(m.begin(), m.end(), a) != m.end() &&
        std::find(m.begin(), m.end(), b) != m.end()) {
      return true;
    }
  }
  return false;
}

bool PathAnalyzer::IsPath(const Path& path) const {
  if (path.empty()) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!SameDomain(path[i], path[i + 1])) return false;
  }
  return true;
}

bool PathAnalyzer::IsDirect(const Path& path) const {
  if (!IsPath(path)) return false;
  std::set<ServerId> seen(path.begin(), path.end());
  return seen.size() == path.size();
}

bool PathAnalyzer::IsMinimal(const Path& path) const {
  if (!IsDirect(path)) return false;
  for (std::size_t i = 0; i < path.size(); ++i) {
    for (std::size_t j = i + 2; j < path.size(); ++j) {
      if (SameDomain(path[i], path[j])) return false;
    }
  }
  return true;
}

bool PathAnalyzer::CoveredByOneDomain(const Path& path) const {
  for (const domains::DomainSpec& domain : config_.domains) {
    bool all = true;
    for (ServerId server : path) {
      const auto& m = domain.members;
      if (std::find(m.begin(), m.end(), server) == m.end()) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

bool PathAnalyzer::IsCycle(const Path& path) const {
  if (path.size() < 2) return false;
  if (!IsDirect(path)) return false;
  if (!SameDomain(path.front(), path.back())) return false;
  return !CoveredByOneDomain(path);
}

std::optional<Path> PathAnalyzer::FindAnyCycle(std::size_t max_length) const {
  // Depth-first enumeration of direct paths, pruned by max_length.
  Path current;
  std::optional<Path> found;

  auto extend = [&](auto&& self, ServerId last) -> bool {
    if (IsCycle(current)) {
      found = current;
      return true;
    }
    if (current.size() >= max_length) return false;
    for (ServerId next : config_.servers) {
      if (std::find(current.begin(), current.end(), next) != current.end()) {
        continue;
      }
      if (!SameDomain(last, next)) continue;
      current.push_back(next);
      if (self(self, next)) return true;
      current.pop_back();
    }
    return false;
  };

  for (ServerId start : config_.servers) {
    current = {start};
    if (extend(extend, start)) return found;
  }
  return std::nullopt;
}

}  // namespace cmom::causality
