// Message chains (Section 4.2) and the Appendix-B lemma machinery,
// executable.
//
// A chain (m1, ..., mk) is a sequence of messages in which each message
// after the first is sent by the process that received the preceding
// one, after that receipt.  Chains are how the paper models indirect
// communication ("virtual messages") across domains, and Lemma 1 --
// every chain between distinct endpoints has a *direct* chain (no
// repeated process) with the same endpoints, no earlier at the source
// and no later at the destination -- is the engine of the main proof.
//
// This module reconstructs chains from recorded traces and implements
// the constructive step of Lemma 1's proof (loop excision), so the
// property tests can check the lemma's guarantees on real executions.
#pragma once

#include <optional>
#include <vector>

#include "causality/trace.h"
#include "common/ids.h"

namespace cmom::causality {

using Chain = std::vector<MessageId>;

class ChainAnalyzer {
 public:
  // Indexes the trace: send/deliver positions per message and per
  // process.  Messages without both a send and a delivery event are
  // ignored (they cannot participate in a chain).
  explicit ChainAnalyzer(const Trace& trace);

  [[nodiscard]] std::size_t message_count() const {
    return messages_.size();
  }

  // True when `chain` is a message chain of the trace: consecutive
  // messages link receiver -> next sender with receive-before-send.
  [[nodiscard]] bool IsChain(const Chain& chain) const;

  // Source process (sender of the first message) / destination process
  // (receiver of the last).  Chain must be nonempty and valid.
  [[nodiscard]] ServerId Source(const Chain& chain) const;
  [[nodiscard]] ServerId Destination(const Chain& chain) const;

  // The path associated with a chain: src(m1), src(m2), ..., dst(mk).
  [[nodiscard]] std::vector<ServerId> AssociatedPath(
      const Chain& chain) const;

  // Direct chain: the associated path has no repeated process.
  [[nodiscard]] bool IsDirect(const Chain& chain) const;

  // The constructive step of Lemma 1: excises loops from `chain` until
  // it is direct, preserving source and destination, never moving the
  // first message later at the source nor the last message earlier at
  // the destination.  Requires a valid chain with distinct endpoints.
  [[nodiscard]] Chain MakeDirect(Chain chain) const;

  // Enumerate every chain of length <= max_length starting from
  // message `first` (for exhaustive small-trace property tests).
  [[nodiscard]] std::vector<Chain> ChainsFrom(MessageId first,
                                              std::size_t max_length) const;

  // Position of an event in the per-process local order (the paper's
  // <p relation); nullopt when the event is not in the trace.
  [[nodiscard]] std::optional<std::size_t> SendPosition(MessageId id) const;
  [[nodiscard]] std::optional<std::size_t> DeliverPosition(
      MessageId id) const;

 private:
  struct MessageInfo {
    MessageId id;
    ServerId sender;
    ServerId receiver;
    std::size_t send_pos = 0;     // index in sender's local event order
    std::size_t deliver_pos = 0;  // index in receiver's local event order
  };

  [[nodiscard]] const MessageInfo* Find(MessageId id) const;

  std::vector<MessageInfo> messages_;
  // For ChainsFrom: messages sent by each process, by local position.
  std::unordered_map<ServerId, std::vector<std::size_t>> sends_by_process_;
};

}  // namespace cmom::causality
