#include "causality/trace.h"

namespace cmom::causality {

void TraceRecorder::RecordSend(MessageId message, ServerId at,
                               ServerId destination, AgentId src_agent,
                               AgentId dst_agent) {
  std::lock_guard lock(mutex_);
  events_.push_back(TraceEvent{EventKind::kSend, message, at, destination,
                               src_agent, dst_agent});
}

void TraceRecorder::RecordDeliver(MessageId message, ServerId at,
                                  ServerId destination, AgentId src_agent,
                                  AgentId dst_agent) {
  std::lock_guard lock(mutex_);
  events_.push_back(TraceEvent{EventKind::kDeliver, message, at, destination,
                               src_agent, dst_agent});
}

Trace TraceRecorder::Snapshot() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::size_t TraceRecorder::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void TraceRecorder::Clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
}

}  // namespace cmom::causality
