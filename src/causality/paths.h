// The paper's formal path machinery (Section 4.2), executable.
//
// A (process) path is a sequence of servers in which consecutive
// servers share a domain; it is *direct* when all servers differ,
// *minimal* when it never "lingers" in a domain (no shortcut between
// non-adjacent elements), and a *cycle* when some domain contains both
// its endpoints while no domain contains the whole path.  These
// definitions drive the theorem's proof; the property tests use this
// module to cross-check DomainGraph::IsAcyclic against an exhaustive
// search for cycle paths on small configurations.
#pragma once

#include <optional>
#include <vector>

#include "common/ids.h"
#include "domains/config.h"

namespace cmom::causality {

using Path = std::vector<ServerId>;

class PathAnalyzer {
 public:
  // Takes a copy: configurations are small and this removes any
  // lifetime coupling to the caller's object.
  explicit PathAnalyzer(domains::MomConfig config);

  // True when `a` and `b` share at least one domain.
  [[nodiscard]] bool SameDomain(ServerId a, ServerId b) const;

  // Nonempty and every consecutive pair shares a domain.
  [[nodiscard]] bool IsPath(const Path& path) const;

  // Path with all servers distinct.
  [[nodiscard]] bool IsDirect(const Path& path) const;

  // Direct path with no domain shortcut between elements i and j when
  // j > i + 1 (the paper's "does not linger in a domain").
  [[nodiscard]] bool IsMinimal(const Path& path) const;

  // Some domain contains all servers of `path`.
  [[nodiscard]] bool CoveredByOneDomain(const Path& path) const;

  // Direct path whose endpoints share a domain while no single domain
  // covers the whole path.
  [[nodiscard]] bool IsCycle(const Path& path) const;

  // Exhaustive search (exponential; small configs only) for any cycle
  // path.  The theorem says one exists iff the domain interconnection
  // graph is cyclic, which the tests verify against DomainGraph.
  [[nodiscard]] std::optional<Path> FindAnyCycle(
      std::size_t max_length = 8) const;

 private:
  [[nodiscard]] std::vector<std::size_t> DomainsContaining(
      ServerId server) const;

  domains::MomConfig config_;
};

}  // namespace cmom::causality
