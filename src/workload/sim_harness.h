// Assembles a complete simulated MOM: deployment, simulated network,
// one store and agent server per configured server, trace recording.
//
// Usage:
//   SimHarness harness(topologies::Bus(4, 5), options);
//   harness.Init(installer);   // installer attaches agents per server
//   harness.BootAll();
//   harness.Send(...); / harness.server(id).SendMessage(...)
//   harness.Run();             // drain the event loop to quiescence
//   harness.trace(), harness.checker() ...
//
// Crash testing: Crash(id) drops a server's volatile state (the store,
// i.e. the "disk", survives); Restart(id) rebuilds it from the store
// with the installer re-attaching the same agents.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>

#include "causality/checker.h"
#include "causality/trace.h"
#include "domains/deployment.h"
#include "domains/topologies.h"
#include "mom/agent_server.h"
#include "mom/store.h"
#include "net/runtime.h"
#include "net/sim_network.h"
#include "sim/simulator.h"

namespace cmom::workload {

struct SimHarnessOptions {
  // When true, processing transactions consume simulated time per the
  // cost model; when false, only wire delays are modeled (fast runs for
  // correctness-only tests).
  bool simulate_processing_costs = true;
  net::CostModel cost_model{};
  net::FaultModel fault_model{};
  std::uint64_t fault_seed = 1;
  std::uint64_t retransmit_timeout_ns = 500ull * 1000 * 1000;
  // 0 = retry forever (the default, matching the reliable bus).
  std::uint32_t max_retransmit_attempts = 0;
  // Durable-image layout and batching limits, forwarded to every
  // server (see AgentServerOptions).
  mom::PersistMode persist_mode = mom::PersistMode::kIncremental;
  std::size_t engine_batch = 16;
  std::size_t channel_batch = 16;
  // Forwarded to AgentServerOptions::engine_workers.  Under SimRuntime
  // the executor request resolves to nullptr, so any value keeps the
  // inline engine and bit-identical traces -- the knob exists here so
  // one workload config struct can drive both harnesses.
  std::size_t engine_workers = 0;
  // Credit windows, fair forwarding and admission control, forwarded
  // to every server (see flow::FlowOptions).
  flow::FlowOptions flow;
};

class SimHarness {
 public:
  // Installs agents on a freshly constructed (not yet booted) server.
  using AgentInstaller = std::function<void(ServerId, mom::AgentServer&)>;

  SimHarness(domains::MomConfig config, SimHarnessOptions options = {});

  // Builds deployment, network, stores and servers, then runs the
  // installer for each server.  Must be called exactly once.
  [[nodiscard]] Status Init(AgentInstaller installer = {});
  [[nodiscard]] Status BootAll();

  // Convenience: application send from a (possibly non-existent) agent
  // `from_local` on `from` to agent `to_local` on `to`.
  Result<MessageId> Send(ServerId from, std::uint32_t from_local, ServerId to,
                         std::uint32_t to_local, std::string subject,
                         Bytes payload = {});

  // Drains the simulator.  Returns the number of events executed.
  std::size_t Run() { return simulator_.RunToCompletion(); }
  std::size_t RunUntil(sim::Time deadline) {
    return simulator_.RunUntil(deadline);
  }

  // Crash: discard a server's volatile state; its store survives.
  void Crash(ServerId id);
  // Rebuild a crashed server from its store and boot it.
  [[nodiscard]] Status Restart(ServerId id);

  // Changes the persist mode used by subsequent Restart() calls --
  // simulating a software upgrade across a crash (the store-schema
  // migration path).
  void set_persist_mode(mom::PersistMode mode) {
    options_.persist_mode = mode;
  }

  [[nodiscard]] mom::AgentServer& server(ServerId id) {
    return *servers_.at(id);
  }
  [[nodiscard]] bool IsCrashed(ServerId id) const {
    return !servers_.contains(id) || servers_.at(id) == nullptr;
  }
  [[nodiscard]] sim::Simulator& simulator() { return simulator_; }
  [[nodiscard]] net::SimNetwork& network() { return *network_; }
  [[nodiscard]] causality::TraceRecorder& trace() { return trace_; }
  [[nodiscard]] const domains::Deployment& deployment() const {
    return *deployment_;
  }
  [[nodiscard]] mom::InMemoryStore& store(ServerId id) {
    return *stores_.at(id);
  }

  // Oracle over all configured servers.
  [[nodiscard]] causality::CausalityChecker MakeChecker() const;

  // Asserts quiescence invariants after Run(): all servers idle and no
  // held-back messages anywhere.
  [[nodiscard]] Status CheckQuiescent() const;

 private:
  [[nodiscard]] mom::AgentServerOptions ServerOptions();

  domains::MomConfig config_;
  SimHarnessOptions options_;
  AgentInstaller installer_;

  sim::Simulator simulator_;
  net::SimRuntime runtime_{simulator_};
  std::unique_ptr<domains::Deployment> deployment_;
  std::unique_ptr<net::SimNetwork> network_;
  causality::TraceRecorder trace_;

  std::unordered_map<ServerId, std::unique_ptr<mom::InMemoryStore>> stores_;
  std::unordered_map<ServerId, std::unique_ptr<net::Endpoint>> endpoints_;
  std::unordered_map<ServerId, std::unique_ptr<mom::AgentServer>> servers_;
};

}  // namespace cmom::workload
