// Least-squares fits used to report the paper's "quadratic fit" /
// "linear fit" curves (Figures 7, 8 and 10) together with an R^2
// goodness measure, so EXPERIMENTS.md can state which model explains a
// measured series.
#pragma once

#include <cstddef>
#include <vector>

namespace cmom::workload {

struct FitResult {
  double intercept = 0;  // a in y = a + b * f(x)
  double slope = 0;      // b
  double r_squared = 0;

  [[nodiscard]] double Evaluate(double fx) const {
    return intercept + slope * fx;
  }
};

// Fits y = a + b * x.
[[nodiscard]] FitResult FitLinear(const std::vector<double>& x,
                                  const std::vector<double>& y);

// Fits y = a + b * x^2 (the paper's quadratic fit has no linear term).
[[nodiscard]] FitResult FitQuadratic(const std::vector<double>& x,
                                     const std::vector<double>& y);

}  // namespace cmom::workload
