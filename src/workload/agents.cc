#include "workload/agents.h"

#include "common/log.h"

namespace cmom::workload {

// ---------------------------------------------------------------- Echo

void EchoAgent::React(mom::ReactionContext& ctx, const mom::Message& message) {
  if (message.subject == kPing) {
    pings_seen_.fetch_add(1, std::memory_order_relaxed);
    ctx.Send(message.from, kPong, message.payload);
  }
}

void EchoAgent::EncodeState(ByteWriter& out) const {
  out.WriteVarU64(pings_seen_.load(std::memory_order_relaxed));
}

Status EchoAgent::DecodeState(ByteReader& in) {
  auto pings = in.ReadVarU64();
  if (!pings.ok()) return pings.status();
  pings_seen_.store(pings.value(), std::memory_order_relaxed);
  return Status::Ok();
}

// ---------------------------------------------------------------- Sink

void SinkAgent::React(mom::ReactionContext& ctx,
                      const mom::Message& message) {
  (void)ctx;
  ++received_;
  order_.push_back(message.id);
}

// ---------------------------------------------------- PingPongDriver

void PingPongDriver::SendPing(mom::ReactionContext& ctx) {
  round_start_ns_ = ctx.NowNs();
  ctx.Send(target_, kPing);
}

void PingPongDriver::React(mom::ReactionContext& ctx,
                           const mom::Message& message) {
  if (message.subject == kStart) {
    if (!done()) SendPing(ctx);
    return;
  }
  if (message.subject != kPong) return;
  round_trips_ns_.push_back(ctx.NowNs() - round_start_ns_);
  ++completed_;
  if (!done()) SendPing(ctx);
}

void PingPongDriver::EncodeState(ByteWriter& out) const {
  out.WriteVarU64(completed_);
  out.WriteVarU64(round_start_ns_);
  out.WriteVarU64(round_trips_ns_.size());
  for (std::uint64_t rtt : round_trips_ns_) out.WriteVarU64(rtt);
}

Status PingPongDriver::DecodeState(ByteReader& in) {
  auto completed = in.ReadVarU64();
  if (!completed.ok()) return completed.status();
  completed_ = static_cast<std::size_t>(completed.value());
  auto start = in.ReadVarU64();
  if (!start.ok()) return start.status();
  round_start_ns_ = start.value();
  auto count = in.ReadVarU64();
  if (!count.ok()) return count.status();
  round_trips_ns_.clear();
  for (std::uint64_t i = 0; i < count.value(); ++i) {
    auto rtt = in.ReadVarU64();
    if (!rtt.ok()) return rtt.status();
    round_trips_ns_.push_back(rtt.value());
  }
  return Status::Ok();
}

// --------------------------------------------------- BroadcastDriver

void BroadcastDriver::StartRound(mom::ReactionContext& ctx) {
  round_start_ns_ = ctx.NowNs();
  pongs_outstanding_ = targets_.size();
  for (AgentId target : targets_) ctx.Send(target, kPing);
}

void BroadcastDriver::React(mom::ReactionContext& ctx,
                            const mom::Message& message) {
  if (message.subject == kStart) {
    if (!done() && !targets_.empty()) StartRound(ctx);
    return;
  }
  if (message.subject != kPong || pongs_outstanding_ == 0) return;
  if (--pongs_outstanding_ > 0) return;
  round_trips_ns_.push_back(ctx.NowNs() - round_start_ns_);
  ++completed_;
  if (!done()) StartRound(ctx);
}

// ------------------------------------------------------ ChatterAgent

Bytes ChatterAgent::MakeChatPayload(std::uint32_t hops) {
  ByteWriter out;
  out.WriteVarU32(hops);
  return std::move(out).Take();
}

void ChatterAgent::React(mom::ReactionContext& ctx,
                         const mom::Message& message) {
  if (message.subject != kChat) return;
  ++received_;
  ByteReader in(message.payload);
  auto hops = in.ReadVarU32();
  if (!hops.ok() || hops.value() == 0) return;

  Rng rng(rng_state_);
  const std::size_t fanout = 1 + rng.NextBelow(2);
  for (std::size_t i = 0; i < fanout && !peers_.empty(); ++i) {
    const AgentId peer = peers_[rng.NextBelow(peers_.size())];
    ctx.Send(peer, kChat, MakeChatPayload(hops.value() - 1));
  }
  // Advance the persistent RNG stream so the next reaction differs.
  rng_state_ = rng.NextU64();
}

void ChatterAgent::EncodeState(ByteWriter& out) const {
  out.WriteU64(rng_state_);
  out.WriteVarU64(received_);
}

Status ChatterAgent::DecodeState(ByteReader& in) {
  auto state = in.ReadU64();
  if (!state.ok()) return state.status();
  rng_state_ = state.value();
  auto received = in.ReadVarU64();
  if (!received.ok()) return received.status();
  received_ = received.value();
  return Status::Ok();
}

}  // namespace cmom::workload
