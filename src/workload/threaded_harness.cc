#include "workload/threaded_harness.h"

#include <chrono>
#include <thread>

namespace cmom::workload {

ThreadedHarness::ThreadedHarness(domains::MomConfig config,
                                 ThreadedHarnessOptions options)
    : config_(std::move(config)), options_(options) {}

ThreadedHarness::~ThreadedHarness() { ShutdownAll(); }

mom::AgentServerOptions ThreadedHarness::ServerOptions() {
  mom::AgentServerOptions server_options;
  server_options.trace = &trace_;
  server_options.retransmit_timeout_ns = options_.retransmit_timeout_ns;
  server_options.persist_mode = options_.persist_mode;
  server_options.engine_batch = options_.engine_batch;
  server_options.channel_batch = options_.channel_batch;
  server_options.engine_workers = options_.engine_workers;
  return server_options;
}

Status ThreadedHarness::Init(AgentInstaller installer) {
  installer_ = std::move(installer);

  auto deployment = domains::Deployment::Create(config_);
  if (!deployment.ok()) return deployment.status();
  deployment_ =
      std::make_unique<domains::Deployment>(std::move(deployment).value());

  network_ = std::make_unique<net::InprocNetwork>();
  net::Network* frontend = network_.get();
  if (options_.fault.has_value()) {
    faulty_ = std::make_unique<net::FaultyNetwork>(*network_, *options_.fault,
                                                   &runtime_);
    frontend = faulty_.get();
  }

  for (ServerId id : deployment_->servers()) {
    auto endpoint = frontend->CreateEndpoint(id);
    if (!endpoint.ok()) return endpoint.status();
    endpoints_.emplace(id, std::move(endpoint).value());
    stores_.emplace(id, std::make_unique<mom::InMemoryStore>());

    auto server = std::make_unique<mom::AgentServer>(
        *deployment_, id, endpoints_.at(id).get(), &runtime_,
        stores_.at(id).get(), ServerOptions());
    if (installer_) installer_(id, *server);
    servers_.emplace(id, std::move(server));
  }
  return Status::Ok();
}

Status ThreadedHarness::BootAll() {
  for (ServerId id : deployment_->servers()) {
    CMOM_RETURN_IF_ERROR(servers_.at(id)->Boot());
  }
  return Status::Ok();
}

Result<MessageId> ThreadedHarness::Send(ServerId from,
                                        std::uint32_t from_local, ServerId to,
                                        std::uint32_t to_local,
                                        std::string subject, Bytes payload) {
  return servers_.at(from)->SendMessage(AgentId{from, from_local},
                                        AgentId{to, to_local},
                                        std::move(subject),
                                        std::move(payload));
}

void ThreadedHarness::WaitQuiescent() {
  int stable = 0;
  while (stable < 2) {
    network_->WaitQuiescent();
    bool idle = faulty_ == nullptr || faulty_->pending_delayed() == 0;
    for (const auto& [id, server] : servers_) {
      (void)id;
      if (server == nullptr) continue;  // crashed and not restarted
      // Idle() alone is not quiescence under fault injection: a server
      // is idle while a dropped frame waits on its retransmit timer, so
      // the outgoing queue must have drained (everything ACKed) too.
      if (!server->Idle() || server->queue_out_size() != 0 ||
          server->holdback_size() != 0) {
        idle = false;
        break;
      }
    }
    if (idle) {
      ++stable;
    } else {
      stable = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ThreadedHarness::ShutdownAll() {
  for (auto& [id, server] : servers_) {
    (void)id;
    if (server) server->Shutdown();
  }
}

void ThreadedHarness::HaltAll() {
  for (auto& [id, server] : servers_) {
    (void)id;
    if (server) server->Halt();
  }
}

void ThreadedHarness::Crash(ServerId id) {
  // ~AgentServer halts: shard workers join and their un-committed
  // speculative reactions are discarded, leaving only what the store
  // already committed -- the same cut a power failure would make.
  servers_.at(id) = nullptr;
}

Status ThreadedHarness::Restart(ServerId id) {
  auto server = std::make_unique<mom::AgentServer>(
      *deployment_, id, endpoints_.at(id).get(), &runtime_,
      stores_.at(id).get(), ServerOptions());
  if (installer_) installer_(id, *server);
  servers_.at(id) = std::move(server);
  return servers_.at(id)->Boot();
}

causality::CausalityChecker ThreadedHarness::MakeChecker() const {
  std::vector<ServerId> servers(deployment_->servers().begin(),
                                deployment_->servers().end());
  return causality::CausalityChecker(std::move(servers));
}

}  // namespace cmom::workload
