#include "workload/threaded_harness.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace cmom::workload {

ThreadedHarness::ThreadedHarness(domains::MomConfig config,
                                 ThreadedHarnessOptions options)
    : config_(std::move(config)), options_(options) {}

ThreadedHarness::~ThreadedHarness() { ShutdownAll(); }

mom::AgentServerOptions ThreadedHarness::ServerOptions(std::uint64_t epoch) {
  mom::AgentServerOptions server_options;
  server_options.trace = &trace_;
  server_options.retransmit_timeout_ns = options_.retransmit_timeout_ns;
  server_options.persist_mode = options_.persist_mode;
  server_options.engine_batch = options_.engine_batch;
  server_options.channel_batch = options_.channel_batch;
  server_options.engine_workers = options_.engine_workers;
  server_options.flow = options_.flow;
  server_options.epoch = epoch;
  return server_options;
}

Result<const domains::Deployment*> ThreadedHarness::DeploymentFor(
    std::uint64_t epoch, const domains::MomConfig& config) {
  auto it = deployments_.find(epoch);
  if (it != deployments_.end()) return it->second.get();
  auto deployment = domains::Deployment::Create(config);
  if (!deployment.ok()) return deployment.status();
  it = deployments_
           .emplace(epoch, std::make_unique<domains::Deployment>(
                               std::move(deployment).value()))
           .first;
  return it->second.get();
}

Status ThreadedHarness::Init(AgentInstaller installer) {
  installer_ = std::move(installer);

  network_ = std::make_unique<net::InprocNetwork>();
  frontend_ = network_.get();
  if (options_.fault.has_value()) {
    faulty_ = std::make_unique<net::FaultyNetwork>(*network_, *options_.fault,
                                                   &runtime_);
    frontend_ = faulty_.get();
  }

  auto deployment = DeploymentFor(cluster_epoch_, config_);
  if (!deployment.ok()) return deployment.status();

  for (ServerId id : deployment.value()->servers()) {
    auto endpoint = frontend_->CreateEndpoint(id);
    if (!endpoint.ok()) return endpoint.status();
    endpoints_.emplace(id, std::move(endpoint).value());
    stores_.emplace(id, std::make_unique<mom::InMemoryStore>());

    auto server = std::make_unique<mom::AgentServer>(
        *deployment.value(), id, endpoints_.at(id).get(), &runtime_,
        ServerStore(id), ServerOptions(cluster_epoch_));
    if (installer_) installer_(id, *server);
    servers_.emplace(id, std::move(server));
    server_epochs_[id] = cluster_epoch_;
  }
  return Status::Ok();
}

Status ThreadedHarness::BootAll() {
  for (ServerId id : deployment().servers()) {
    CMOM_RETURN_IF_ERROR(servers_.at(id)->Boot());
  }
  return Status::Ok();
}

Result<MessageId> ThreadedHarness::Send(ServerId from,
                                        std::uint32_t from_local, ServerId to,
                                        std::uint32_t to_local,
                                        std::string subject, Bytes payload) {
  mom::AgentServer* server = ServerOf(from);
  if (server == nullptr) {
    return Status::Unavailable(to_string(from) + " is not running");
  }
  return server->SendMessage(AgentId{from, from_local}, AgentId{to, to_local},
                             std::move(subject), std::move(payload));
}

void ThreadedHarness::WaitQuiescent() {
  int stable = 0;
  while (stable < 2) {
    network_->WaitQuiescent();
    bool idle = faulty_ == nullptr || faulty_->pending_delayed() == 0;
    for (const auto& [id, server] : servers_) {
      (void)id;
      if (server == nullptr) continue;  // crashed and not restarted
      // Idle() alone is not quiescence under fault injection: a server
      // is idle while a dropped frame waits on its retransmit timer, so
      // the outgoing queue must have drained (everything ACKed) too.
      if (!server->Idle() || server->queue_out_size() != 0 ||
          server->holdback_size() != 0) {
        idle = false;
        break;
      }
    }
    if (idle) {
      ++stable;
    } else {
      stable = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ThreadedHarness::ShutdownAll() {
  for (auto& [id, server] : servers_) {
    (void)id;
    if (server) server->Shutdown();
  }
}

void ThreadedHarness::HaltAll() {
  for (auto& [id, server] : servers_) {
    (void)id;
    if (server) server->Halt();
  }
}

void ThreadedHarness::Crash(ServerId id) {
  // ~AgentServer halts: shard workers join and their un-committed
  // speculative reactions are discarded, leaving only what the store
  // already committed -- the same cut a power failure would make.
  servers_.at(id) = nullptr;
}

Status ThreadedHarness::Restart(ServerId id) {
  const std::uint64_t epoch = server_epochs_.at(id);
  const domains::Deployment& deployment = *deployments_.at(epoch);
  auto server = std::make_unique<mom::AgentServer>(
      deployment, id, endpoints_.at(id).get(), &runtime_, ServerStore(id),
      ServerOptions(epoch));
  if (installer_) installer_(id, *server);
  servers_.at(id) = std::move(server);
  return servers_.at(id)->Boot();
}

// --- control::ClusterHost --------------------------------------------

std::vector<ServerId> ThreadedHarness::KnownServers() {
  std::vector<ServerId> ids;
  ids.reserve(stores_.size());
  for (const auto& [id, store] : stores_) {
    (void)store;
    ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

mom::AgentServer* ThreadedHarness::ServerOf(ServerId id) {
  auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : it->second.get();
}

mom::Store* ThreadedHarness::ServerStore(ServerId id) {
  mom::Store* inner = StoreOf(id);
  if (!options_.store_fault.has_value()) return inner;
  auto it = faulty_stores_.find(id);
  if (it == faulty_stores_.end()) {
    mom::FaultyStoreOptions store_options = *options_.store_fault;
    // Per-server fault streams: a shared seed would make every server
    // fail in lockstep.
    store_options.seed += id.value();
    it = faulty_stores_
             .emplace(id, std::make_unique<mom::FaultyStore>(*inner,
                                                             store_options))
             .first;
  }
  return it->second.get();
}

mom::FaultyStore* ThreadedHarness::faulty_store(ServerId id) {
  auto it = faulty_stores_.find(id);
  return it == faulty_stores_.end() ? nullptr : it->second.get();
}

mom::Store* ThreadedHarness::StoreOf(ServerId id) {
  auto it = stores_.find(id);
  if (it == stores_.end()) {
    // A server about to join the cluster: its "disk" exists before its
    // first boot, just like a freshly provisioned machine.
    it = stores_.emplace(id, std::make_unique<mom::InMemoryStore>()).first;
  }
  return it->second.get();
}

Status ThreadedHarness::StopServer(ServerId id) {
  auto it = servers_.find(id);
  if (it == servers_.end() || it->second == nullptr) return Status::Ok();
  // Halt (not Shutdown): the control plane is about to rewrite the
  // store, so every timer and worker must be out before it does.
  it->second->Halt();
  it->second = nullptr;
  return Status::Ok();
}

Status ThreadedHarness::StartServer(ServerId id, std::uint64_t epoch,
                                    const domains::MomConfig& config) {
  if (ServerOf(id) != nullptr) {
    return Status::FailedPrecondition(to_string(id) + " is already running");
  }
  auto deployment = DeploymentFor(epoch, config);
  if (!deployment.ok()) return deployment.status();
  if (endpoints_.find(id) == endpoints_.end()) {
    auto endpoint = frontend_->CreateEndpoint(id);
    if (!endpoint.ok()) return endpoint.status();
    endpoints_.emplace(id, std::move(endpoint).value());
  }
  auto server = std::make_unique<mom::AgentServer>(
      *deployment.value(), id, endpoints_.at(id).get(), &runtime_,
      ServerStore(id), ServerOptions(epoch));
  if (installer_) installer_(id, *server);
  servers_[id] = std::move(server);
  server_epochs_[id] = epoch;
  cluster_epoch_ = std::max(cluster_epoch_, epoch);
  return servers_.at(id)->Boot();
}

causality::CausalityChecker ThreadedHarness::MakeChecker() const {
  std::vector<ServerId> servers;
  servers.reserve(stores_.size());
  for (const auto& [id, store] : stores_) {
    (void)store;
    servers.push_back(id);
  }
  std::sort(servers.begin(), servers.end());
  return causality::CausalityChecker(std::move(servers));
}

}  // namespace cmom::workload
