// Aggregated metrics reporting for a running MOM.
//
// Collects per-server ServerStats plus store I/O counters into one
// summary a bench or operator tool can print -- the counters behind
// the paper's two Section-3 problems (network overload from timestamp
// data, disk I/O for the persistent clock image) made visible.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "mom/agent_server.h"
#include "mom/store.h"

namespace cmom::workload {

struct ServerMetrics {
  ServerId server;
  mom::ServerStats stats;
  std::uint64_t disk_bytes = 0;
};

struct MetricsSummary {
  std::vector<ServerMetrics> servers;

  [[nodiscard]] std::uint64_t TotalSent() const;
  [[nodiscard]] std::uint64_t TotalDelivered() const;
  [[nodiscard]] std::uint64_t TotalForwarded() const;
  [[nodiscard]] std::uint64_t TotalStampBytes() const;
  [[nodiscard]] std::uint64_t TotalDiskBytes() const;
  [[nodiscard]] std::uint64_t TotalRetransmissions() const;
  [[nodiscard]] std::uint64_t TotalCommits() const;
  [[nodiscard]] std::uint64_t TotalCommitBytes() const;

  // Appends one server's numbers.
  void Add(ServerId id, const mom::AgentServer& server,
           const mom::Store& store);

  // Renders an aligned table plus a totals line.
  [[nodiscard]] std::string ToTable() const;
};

}  // namespace cmom::workload
