#include "workload/experiments.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "workload/agents.h"
#include "workload/fit.h"

namespace cmom::workload {

namespace {

constexpr std::uint32_t kDriverLocalId = 100;
constexpr std::uint32_t kEchoLocalId = 1;

double NsToMs(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

ExperimentResult Summarize(SimHarness& harness,
                           const std::vector<std::uint64_t>& rtts_ns,
                           std::size_t servers, std::size_t sim_events) {
  ExperimentResult result;
  result.servers = servers;
  result.rounds = rtts_ns.size();
  if (!rtts_ns.empty()) {
    std::uint64_t total = 0;
    std::uint64_t lo = rtts_ns.front();
    std::uint64_t hi = rtts_ns.front();
    for (std::uint64_t rtt : rtts_ns) {
      total += rtt;
      lo = std::min(lo, rtt);
      hi = std::max(hi, rtt);
    }
    result.avg_rtt_ms = NsToMs(total / rtts_ns.size());
    result.min_rtt_ms = NsToMs(lo);
    result.max_rtt_ms = NsToMs(hi);
  }
  result.wire_frames = harness.network().frames_sent();
  result.wire_bytes = harness.network().bytes_sent();
  for (ServerId id : harness.deployment().servers()) {
    result.stamp_bytes += harness.server(id).stats().stamp_bytes_sent;
    result.disk_bytes += harness.store(id).total_bytes_written();
  }
  result.sim_events = sim_events;
  return result;
}

Status VerifyRun(SimHarness& harness) {
  CMOM_RETURN_IF_ERROR(harness.CheckQuiescent());
  auto checker = harness.MakeChecker();
  const causality::Trace trace = harness.trace().Snapshot();
  auto report = checker.CheckCausalDelivery(trace);
  if (!report.causal()) {
    return Status::Internal("causality violated: " +
                            report.violations.front().description);
  }
  return checker.CheckExactlyOnce(trace);
}

}  // namespace

Result<ExperimentResult> RunPingPong(const domains::MomConfig& config,
                                     ServerId main_server,
                                     ServerId echo_server,
                                     const ExperimentOptions& options) {
  SimHarness harness(config, options.harness);
  PingPongDriver* driver = nullptr;

  const AgentId echo_id{echo_server, kEchoLocalId};
  Status init = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id == echo_server) {
      server.AttachAgent(kEchoLocalId, std::make_unique<EchoAgent>());
    }
    if (id == main_server) {
      auto agent = std::make_unique<PingPongDriver>(echo_id, options.rounds);
      driver = agent.get();
      server.AttachAgent(kDriverLocalId, std::move(agent));
    }
  });
  if (!init.ok()) return init;
  CMOM_RETURN_IF_ERROR(harness.BootAll());

  auto start = harness.Send(main_server, kDriverLocalId, main_server,
                            kDriverLocalId, kStart);
  if (!start.ok()) return start.status();
  const std::size_t events = harness.Run();

  if (driver == nullptr || !driver->done()) {
    return Status::Internal("ping-pong driver did not finish");
  }
  if (options.verify_causality) CMOM_RETURN_IF_ERROR(VerifyRun(harness));
  return Summarize(harness, driver->round_trip_ns(), config.servers.size(),
                   events);
}

Result<ExperimentResult> RunBroadcast(const domains::MomConfig& config,
                                      ServerId main_server,
                                      const ExperimentOptions& options) {
  SimHarness harness(config, options.harness);
  BroadcastDriver* driver = nullptr;

  std::vector<AgentId> targets;
  for (ServerId id : config.servers) {
    if (id != main_server) targets.push_back(AgentId{id, kEchoLocalId});
  }

  Status init = harness.Init([&](ServerId id, mom::AgentServer& server) {
    if (id != main_server) {
      server.AttachAgent(kEchoLocalId, std::make_unique<EchoAgent>());
    } else {
      auto agent = std::make_unique<BroadcastDriver>(targets, options.rounds);
      driver = agent.get();
      server.AttachAgent(kDriverLocalId, std::move(agent));
    }
  });
  if (!init.ok()) return init;
  CMOM_RETURN_IF_ERROR(harness.BootAll());

  auto start = harness.Send(main_server, kDriverLocalId, main_server,
                            kDriverLocalId, kStart);
  if (!start.ok()) return start.status();
  const std::size_t events = harness.Run();

  if (driver == nullptr || !driver->done()) {
    return Status::Internal("broadcast driver did not finish");
  }
  if (options.verify_causality) CMOM_RETURN_IF_ERROR(VerifyRun(harness));
  return Summarize(harness, driver->round_trip_ns(), config.servers.size(),
                   events);
}

void PrintSeries(const std::string& title,
                 const std::vector<SeriesPoint>& series) {
  std::printf("\n%s\n", title.c_str());
  const bool have_paper =
      std::any_of(series.begin(), series.end(),
                  [](const SeriesPoint& p) { return p.paper_ms >= 0; });
  if (have_paper) {
    std::printf("%10s %16s %16s\n", "servers", "measured (ms)", "paper (ms)");
  } else {
    std::printf("%10s %16s\n", "servers", "measured (ms)");
  }
  std::vector<double> xs, ys;
  for (const SeriesPoint& point : series) {
    if (have_paper && point.paper_ms >= 0) {
      std::printf("%10zu %16.2f %16.2f\n", point.n, point.measured_ms,
                  point.paper_ms);
    } else {
      std::printf("%10zu %16.2f\n", point.n, point.measured_ms);
    }
    xs.push_back(static_cast<double>(point.n));
    ys.push_back(point.measured_ms);
  }
  if (series.size() >= 3) {
    const FitResult linear = FitLinear(xs, ys);
    const FitResult quadratic = FitQuadratic(xs, ys);
    std::printf("  linear fit    y = %.3f + %.4f * n      (R^2 = %.4f)\n",
                linear.intercept, linear.slope, linear.r_squared);
    std::printf("  quadratic fit y = %.3f + %.6f * n^2    (R^2 = %.4f)\n",
                quadratic.intercept, quadratic.slope, quadratic.r_squared);
  }
}

}  // namespace cmom::workload
