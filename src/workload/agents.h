// Reusable agents for experiments, examples and tests.
//
// EchoAgent and the two driver agents implement the measurement
// protocol of Section 6.1: a main agent on server 0 sends pings and
// computes round-trip times over a fixed number of rounds, against
// echo agents that send every received message back.  ChatterAgent
// generates branching causal chains for the property tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "mom/agent.h"

namespace cmom::workload {

// Conventional subjects used by the workload agents.
inline constexpr const char* kStart = "start";
inline constexpr const char* kPing = "ping";
inline constexpr const char* kPong = "pong";
inline constexpr const char* kChat = "chat";

// Sends every "ping" back to its sender as a "pong" with the same
// payload.  Counts pings for test introspection; the counter is
// atomic because tests poll it from their own thread while a threaded
// (or sharded) engine is still reacting.
class EchoAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override;

  [[nodiscard]] std::uint64_t pings_seen() const {
    return pings_seen_.load(std::memory_order_relaxed);
  }

  void EncodeState(ByteWriter& out) const override;
  [[nodiscard]] Status DecodeState(ByteReader& in) override;

 private:
  std::atomic<std::uint64_t> pings_seen_{0};
};

// Swallows everything; keeps a count.  Used as a destination when the
// test itself injects traffic.
class SinkAgent final : public mom::Agent {
 public:
  void React(mom::ReactionContext& ctx, const mom::Message& message) override;

  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] const std::vector<MessageId>& order() const { return order_; }

 private:
  std::uint64_t received_ = 0;
  std::vector<MessageId> order_;
};

// The "main agent" of the unicast experiments: after a kStart message
// it ping-pongs `rounds` times against a single echo agent, recording
// each round trip.
class PingPongDriver final : public mom::Agent {
 public:
  PingPongDriver(AgentId target, std::size_t rounds)
      : target_(target), rounds_(rounds) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override;

  [[nodiscard]] bool done() const { return completed_ >= rounds_; }
  // Nanoseconds per completed round trip (simulated or wall time).
  [[nodiscard]] const std::vector<std::uint64_t>& round_trip_ns() const {
    return round_trips_ns_;
  }

  void EncodeState(ByteWriter& out) const override;
  [[nodiscard]] Status DecodeState(ByteReader& in) override;

 private:
  void SendPing(mom::ReactionContext& ctx);

  AgentId target_;
  std::size_t rounds_;
  std::size_t completed_ = 0;
  std::uint64_t round_start_ns_ = 0;
  std::vector<std::uint64_t> round_trips_ns_;
};

// The "main agent" of the broadcast experiment: each round sends a ping
// to every target and completes when all pongs arrived.
class BroadcastDriver final : public mom::Agent {
 public:
  BroadcastDriver(std::vector<AgentId> targets, std::size_t rounds)
      : targets_(std::move(targets)), rounds_(rounds) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override;

  [[nodiscard]] bool done() const { return completed_ >= rounds_; }
  [[nodiscard]] const std::vector<std::uint64_t>& round_trip_ns() const {
    return round_trips_ns_;
  }

 private:
  void StartRound(mom::ReactionContext& ctx);

  std::vector<AgentId> targets_;
  std::size_t rounds_;
  std::size_t completed_ = 0;
  std::size_t pongs_outstanding_ = 0;
  std::uint64_t round_start_ns_ = 0;
  std::vector<std::uint64_t> round_trips_ns_;
};

// Random causal-chain generator: a kChat message carries a remaining
// hop count; the agent forwards it to 1-2 random peers with the count
// decremented, creating branching receive-then-send chains across the
// whole topology.  Fully deterministic from the seed (the RNG state is
// part of the agent's persistent image).
class ChatterAgent final : public mom::Agent {
 public:
  ChatterAgent(std::uint64_t seed, std::vector<AgentId> peers)
      : rng_state_(seed), peers_(std::move(peers)) {}

  void React(mom::ReactionContext& ctx, const mom::Message& message) override;

  [[nodiscard]] std::uint64_t received() const { return received_; }

  void EncodeState(ByteWriter& out) const override;
  [[nodiscard]] Status DecodeState(ByteReader& in) override;

  // Payload helpers (varint hop count).
  [[nodiscard]] static Bytes MakeChatPayload(std::uint32_t hops);

 private:
  std::uint64_t rng_state_;
  std::vector<AgentId> peers_;
  std::uint64_t received_ = 0;
};

}  // namespace cmom::workload
