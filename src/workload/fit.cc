#include "workload/fit.h"

#include <cassert>
#include <cmath>

namespace cmom::workload {

namespace {

// Least squares on y = a + b * t where t = f(x) is precomputed.
FitResult FitAgainst(const std::vector<double>& t,
                     const std::vector<double>& y) {
  assert(t.size() == y.size());
  const std::size_t n = t.size();
  assert(n >= 2);
  double sum_t = 0, sum_y = 0, sum_tt = 0, sum_ty = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_t += t[i];
    sum_y += y[i];
    sum_tt += t[i] * t[i];
    sum_ty += t[i] * y[i];
  }
  const double denom = n * sum_tt - sum_t * sum_t;
  FitResult fit;
  fit.slope = denom != 0 ? (n * sum_ty - sum_t * sum_y) / denom : 0;
  fit.intercept = (sum_y - fit.slope * sum_t) / n;

  const double mean_y = sum_y / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double predicted = fit.intercept + fit.slope * t[i];
    ss_res += (y[i] - predicted) * (y[i] - predicted);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r_squared = ss_tot != 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace

FitResult FitLinear(const std::vector<double>& x,
                    const std::vector<double>& y) {
  return FitAgainst(x, y);
}

FitResult FitQuadratic(const std::vector<double>& x,
                       const std::vector<double>& y) {
  std::vector<double> squared(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) squared[i] = x[i] * x[i];
  return FitAgainst(squared, y);
}

}  // namespace cmom::workload
